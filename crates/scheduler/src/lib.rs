#![warn(missing_docs)]
//! Scheduling machinery of the distributed Q/A system (§3–§4 of the paper).
//!
//! * [`meta`] — the meta-scheduling algorithm of Fig. 4: select under-loaded
//!   processors (or the least-loaded one), weight them by available
//!   resources, and assign task fractions;
//! * [`partition`] — the three partitioning algorithms of §4.1: **SEND**
//!   (contiguous weighted split), **ISEND** (interleaved weighted split) and
//!   **RECV** (receiver-pulled equal-size chunks);
//! * [`recovery`] — backend-agnostic failure-recovery state machines for the
//!   sender-controlled (Fig. 5c) and receiver-controlled (Fig. 6b)
//!   distribution strategies;
//! * [`dispatcher`] — the question dispatcher's migrate-or-stay decision
//!   with the anti-thrashing hysteresis ("a question is migrated only if the
//!   difference between the load of the source node and the load of the
//!   destination node is greater than the average workload of a single
//!   question");
//! * [`diffusion`] — classic baselines from the related work (sender-
//!   initiated diffusion, the gradient model) for broader comparisons.

pub mod diffusion;
pub mod dispatcher;
pub mod meta;
pub mod partition;
pub mod recovery;

pub use diffusion::{GradientModel, SenderDiffusion};
pub use dispatcher::QuestionDispatcher;
pub use meta::{meta_schedule, Allocation};
pub use partition::{
    partition_counts, partition_isend, partition_recv, partition_send, PartitionStrategy,
};
pub use recovery::{ChunkQueue, SenderDistribution};
