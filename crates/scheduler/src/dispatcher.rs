//! The question dispatcher: migrate-or-stay decisions (§3.1).
//!
//! "If the DNS-allocated node is over-loaded, the dispatcher migrates the
//! Q/A task to another node … The dispatcher's strategy is to select the
//! processor with the smallest average load for the Q/A task. To avoid
//! useless migrations, a question is migrated only if the difference between
//! the load of the source node and the load of the destination node is
//! greater than the average workload of a single question."

use loadsim::functions::LoadFunctions;
use qa_types::{NodeId, QaModule, ResourceVector};
use serde::{Deserialize, Serialize};

/// Migration decision logic shared by all three scheduling points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuestionDispatcher {
    /// The load functions in force (Table-3 weights by default).
    pub functions: LoadFunctions,
    /// The hysteresis threshold: the load-function delta one average
    /// question contributes. Migration requires
    /// `load(src) − load(dst) > hysteresis`.
    pub hysteresis: f64,
}

impl QuestionDispatcher {
    /// Paper defaults: Table-3 weights; one question's load on a node that
    /// can host four is ≈ 0.25 on both resources.
    pub fn paper() -> Self {
        Self {
            functions: LoadFunctions::paper(),
            hysteresis: LoadFunctions::paper()
                .qa
                .load(ResourceVector::new(0.25, 0.25)),
        }
    }

    /// Decide whether to migrate a task currently placed on `current`.
    ///
    /// `loads` is this node's view of every live node (from the load
    /// table), *including* `current`. Returns `Some(target)` when migration
    /// is worthwhile, `None` to stay. `module` selects the load function:
    /// the question dispatcher passes [`QaModule::Qp`] (whole-task weights),
    /// the PR/AP dispatchers pass their module.
    pub fn decide(
        &self,
        module: QaModule,
        current: NodeId,
        loads: &[(NodeId, ResourceVector)],
    ) -> Option<NodeId> {
        let src_load = loads
            .iter()
            .find(|(n, _)| *n == current)
            .map(|(_, v)| self.functions.load_for(module, *v))?;

        let (best, best_load) = loads
            .iter()
            .filter(|(n, _)| *n != current)
            .map(|(n, v)| (*n, self.functions.load_for(module, *v)))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })?;

        if src_load - best_load > self.hysteresis {
            Some(best)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn v(cpu: f64, disk: f64) -> ResourceVector {
        ResourceVector::new(cpu, disk)
    }

    #[test]
    fn overloaded_source_migrates_to_least_loaded() {
        let d = QuestionDispatcher::paper();
        let loads = vec![
            (n(0), v(1.5, 1.0)),
            (n(1), v(0.1, 0.1)),
            (n(2), v(0.6, 0.4)),
        ];
        assert_eq!(d.decide(QaModule::Qp, n(0), &loads), Some(n(1)));
    }

    #[test]
    fn small_imbalance_stays_put() {
        let d = QuestionDispatcher::paper();
        let loads = vec![(n(0), v(0.30, 0.30)), (n(1), v(0.20, 0.20))];
        // Delta 0.10 < hysteresis 0.25: no migration.
        assert_eq!(d.decide(QaModule::Qp, n(0), &loads), None);
    }

    #[test]
    fn already_least_loaded_stays() {
        let d = QuestionDispatcher::paper();
        let loads = vec![(n(0), v(0.0, 0.0)), (n(1), v(1.0, 1.0))];
        assert_eq!(d.decide(QaModule::Qp, n(0), &loads), None);
    }

    #[test]
    fn module_specific_weights_change_the_decision() {
        let d = QuestionDispatcher::paper();
        // Source is disk-saturated but CPU-idle; candidate is the reverse.
        let loads = vec![(n(0), v(0.0, 1.8)), (n(1), v(0.9, 0.0))];
        // The AP dispatcher (pure CPU) prefers the disk-bound node 0 — stay.
        assert_eq!(d.decide(QaModule::Ap, n(0), &loads), None);
        // The PR dispatcher (80 % disk) migrates to the CPU-bound node 1:
        // load_PR(src) = 0.8·1.8 = 1.44, load_PR(dst) = 0.2·0.9 = 0.18.
        assert_eq!(d.decide(QaModule::Pr, n(0), &loads), Some(n(1)));
    }

    #[test]
    fn single_node_system_never_migrates() {
        let d = QuestionDispatcher::paper();
        let loads = vec![(n(0), v(5.0, 5.0))];
        assert_eq!(d.decide(QaModule::Qp, n(0), &loads), None);
    }

    #[test]
    fn unknown_current_node_stays() {
        let d = QuestionDispatcher::paper();
        let loads = vec![(n(1), v(0.0, 0.0))];
        assert_eq!(d.decide(QaModule::Qp, n(0), &loads), None);
    }

    #[test]
    fn tie_breaks_on_node_id() {
        let d = QuestionDispatcher::paper();
        let loads = vec![
            (n(0), v(2.0, 2.0)),
            (n(2), v(0.0, 0.0)),
            (n(1), v(0.0, 0.0)),
        ];
        assert_eq!(d.decide(QaModule::Qp, n(0), &loads), Some(n(1)));
    }
}
