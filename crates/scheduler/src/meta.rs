//! The meta-scheduling algorithm (Fig. 4).
//!
//! ```text
//! metaScheduler(task, loadFunction, underloadCondition)
//! 1. select all processors P with underloadCondition(P) true
//! 2. if none selected, select the processor with the smallest loadFunction
//! 3. assign each selected P an unnormalized weight
//!    w'_P = (maxLoad - loadFunction(P)) / maxLoad,
//!    where maxLoad is the largest load observed in the selected set
//! 4. normalize: w_P = w'_P / Σ w'
//! 5. assign each selected P the fraction w_P of the task
//! ```
//!
//! When every selected processor reports the same load (e.g. an idle
//! homogeneous cluster) all unnormalized weights are zero; the algorithm
//! then degenerates to a uniform split, which matches the paper's Fig. 7
//! traces where four idle nodes each receive ~¼ of the paragraphs.

use qa_types::{NodeId, QaError, ResourceVector};
use serde::{Deserialize, Serialize};

/// One processor's share of a partitioned task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The processor.
    pub node: NodeId,
    /// Normalized task fraction in `(0, 1]`; allocations sum to 1.
    pub weight: f64,
}

/// Run the meta-scheduler over candidate processors.
///
/// `candidates` pairs each live node with its current load vector. Returns
/// the selected nodes with normalized weights, largest weight first (ties
/// broken by node id). Errors only when `candidates` is empty.
///
/// # Examples
/// ```
/// use loadsim::functions::LoadFunctions;
/// use qa_types::{NodeId, QaModule, ResourceVector};
/// use scheduler::meta::meta_schedule;
///
/// let f = LoadFunctions::paper();
/// let idle = ResourceVector::new(0.0, 0.0);
/// let nodes = vec![(NodeId::new(0), idle), (NodeId::new(1), idle)];
/// let alloc = meta_schedule(
///     &nodes,
///     |v| f.load_for(QaModule::Ap, v),
///     |v| f.is_underloaded(QaModule::Ap, v),
/// )
/// .unwrap();
/// assert_eq!(alloc.len(), 2);
/// assert!((alloc[0].weight - 0.5).abs() < 1e-9);
/// ```
pub fn meta_schedule(
    candidates: &[(NodeId, ResourceVector)],
    load_fn: impl Fn(ResourceVector) -> f64,
    underload: impl Fn(ResourceVector) -> bool,
) -> Result<Vec<Allocation>, QaError> {
    if candidates.is_empty() {
        return Err(QaError::InvalidConfig(
            "meta_schedule: no candidates".into(),
        ));
    }

    // Step 1: all under-loaded processors.
    let mut selected: Vec<(NodeId, f64)> = candidates
        .iter()
        .filter(|(_, v)| underload(*v))
        .map(|(n, v)| (*n, load_fn(*v)))
        .collect();

    // Step 2: none under-loaded → single least-loaded processor.
    if selected.is_empty() {
        let (node, load) = candidates
            .iter()
            .map(|(n, v)| (*n, load_fn(*v)))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty candidates");
        let _ = load;
        return Ok(vec![Allocation { node, weight: 1.0 }]);
    }

    // Steps 3–4: weight by available resources. A near-zero maximum means
    // an (effectively) idle set: fall back to uniform weights rather than
    // amplifying floating-point noise into exclusions.
    let max_load = selected.iter().map(|(_, l)| *l).fold(f64::MIN, f64::max);
    let raw: Vec<f64> = if max_load <= 1e-9 {
        vec![1.0; selected.len()]
    } else {
        selected
            .iter()
            .map(|(_, l)| (max_load - l) / max_load)
            .collect()
    };
    let sum: f64 = raw.iter().sum();
    let weights: Vec<f64> = if sum <= 0.0 {
        vec![1.0 / selected.len() as f64; selected.len()]
    } else {
        raw.iter().map(|w| w / sum).collect()
    };

    let mut out: Vec<Allocation> = selected
        .drain(..)
        .zip(weights)
        .map(|((node, _), weight)| Allocation { node, weight })
        .collect();
    out.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.node.cmp(&b.node))
    });
    // Drop zero-weight processors (the max-loaded member of the selected
    // set): they would receive no items anyway.
    let nonzero: Vec<Allocation> = out.iter().copied().filter(|a| a.weight > 0.0).collect();
    Ok(if nonzero.is_empty() { out } else { nonzero })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loadsim::functions::{pr_load, LoadFunctions};
    use qa_types::QaModule;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn idle_homogeneous_cluster_splits_uniformly() {
        let idle = ResourceVector::new(0.0, 0.0);
        let cands = vec![(n(0), idle), (n(1), idle), (n(2), idle), (n(3), idle)];
        let f = LoadFunctions::paper();
        let alloc = meta_schedule(
            &cands,
            |v| f.load_for(QaModule::Ap, v),
            |v| f.is_underloaded(QaModule::Ap, v),
        )
        .unwrap();
        assert_eq!(alloc.len(), 4);
        for a in &alloc {
            assert!((a.weight - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let cands = vec![
            (n(0), ResourceVector::new(0.1, 0.1)),
            (n(1), ResourceVector::new(0.5, 0.2)),
            (n(2), ResourceVector::new(0.8, 0.1)),
        ];
        let f = LoadFunctions::paper();
        let alloc = meta_schedule(
            &cands,
            |v| f.load_for(QaModule::Ap, v),
            |v| f.is_underloaded(QaModule::Ap, v),
        )
        .unwrap();
        let sum: f64 = alloc.iter().map(|a| a.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Least loaded node gets the largest share.
        assert_eq!(alloc[0].node, n(0));
    }

    #[test]
    fn no_underloaded_falls_back_to_single_least_loaded() {
        // All nodes CPU-saturated: nobody is AP-under-loaded.
        let cands = vec![
            (n(0), ResourceVector::new(1.4, 0.0)),
            (n(1), ResourceVector::new(1.1, 0.0)),
            (n(2), ResourceVector::new(2.0, 0.0)),
        ];
        let f = LoadFunctions::paper();
        let alloc = meta_schedule(
            &cands,
            |v| f.load_for(QaModule::Ap, v),
            |v| f.is_underloaded(QaModule::Ap, v),
        )
        .unwrap();
        assert_eq!(alloc.len(), 1);
        assert_eq!(alloc[0].node, n(1));
        assert_eq!(alloc[0].weight, 1.0);
    }

    #[test]
    fn max_loaded_selected_node_is_dropped() {
        // Two under-loaded nodes with different loads: the busier one has
        // zero available weight and is dropped.
        let cands = vec![
            (n(0), ResourceVector::new(0.0, 0.0)),
            (n(1), ResourceVector::new(0.5, 0.5)),
        ];
        let f = LoadFunctions::paper();
        let alloc = meta_schedule(
            &cands,
            |v| f.load_for(QaModule::Pr, v),
            |v| f.is_underloaded(QaModule::Pr, v),
        )
        .unwrap();
        assert_eq!(alloc.len(), 1);
        assert_eq!(alloc[0].node, n(0));
        assert_eq!(alloc[0].weight, 1.0);
    }

    #[test]
    fn empty_candidates_error() {
        let f = LoadFunctions::paper();
        assert!(meta_schedule(&[], pr_load, |v| f.is_underloaded(QaModule::Pr, v)).is_err());
    }

    #[test]
    fn deterministic_ordering_on_ties() {
        let idle = ResourceVector::new(0.0, 0.0);
        let cands = vec![(n(3), idle), (n(1), idle), (n(2), idle)];
        let f = LoadFunctions::paper();
        let alloc = meta_schedule(
            &cands,
            |v| f.load_for(QaModule::Ap, v),
            |v| f.is_underloaded(QaModule::Ap, v),
        )
        .unwrap();
        let ids: Vec<_> = alloc.iter().map(|a| a.node).collect();
        assert_eq!(ids, vec![n(1), n(2), n(3)]);
    }
}
