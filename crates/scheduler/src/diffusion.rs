//! Classic load-balancing baselines from the paper's related work (§1.4):
//! sender-initiated diffusion (Willebeek-LeMair & Reeves) and the gradient
//! model (Lin & Keller). The paper compares its DQA strategy only against
//! DNS round-robin and a single global dispatcher (INTER); these two give
//! the comparison more context in the `baseline_comparison` bench.
//!
//! Both are *local* policies: SID probes a bounded neighbor set instead of
//! reading a global load table; the gradient model routes work one hop at a
//! time toward the nearest lightly-loaded node on a ring topology.

use qa_types::{NodeId, ResourceVector};
use serde::{Deserialize, Serialize};

/// Sender-initiated diffusion parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenderDiffusion {
    /// A node with load above this watermark tries to shed new work.
    pub high_watermark: f64,
    /// How many successive peers are probed (bounded probing is the point
    /// of diffusion methods — no global knowledge).
    pub probe_limit: usize,
    /// Minimum load advantage a target must offer.
    pub threshold: f64,
}

impl Default for SenderDiffusion {
    fn default() -> Self {
        Self {
            high_watermark: 2.0,
            probe_limit: 3,
            threshold: 0.5,
        }
    }
}

impl SenderDiffusion {
    /// Decide where a task arriving at `home` should run. `loads` must be
    /// sorted by node id and include `home`; probing walks the ring
    /// starting after `home`.
    pub fn decide(
        &self,
        home: NodeId,
        loads: &[(NodeId, ResourceVector)],
        load_fn: impl Fn(ResourceVector) -> f64,
    ) -> Option<NodeId> {
        let n = loads.len();
        if n < 2 {
            return None;
        }
        let home_idx = loads.iter().position(|(id, _)| *id == home)?;
        let home_load = load_fn(loads[home_idx].1);
        if home_load <= self.high_watermark {
            return None; // not overloaded: keep the work
        }
        let mut best: Option<(NodeId, f64)> = None;
        for k in 1..=self.probe_limit.min(n - 1) {
            let (id, v) = loads[(home_idx + k) % n];
            let l = load_fn(v);
            match best {
                Some((_, bl)) if bl <= l => {}
                _ => best = Some((id, l)),
            }
        }
        match best {
            Some((id, l)) if home_load - l > self.threshold => Some(id),
            _ => None,
        }
    }
}

/// The gradient model: every node knows its *proximity* — the ring
/// distance to the nearest lightly-loaded node — and overloaded nodes
/// forward work to the neighbor with the smaller proximity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientModel {
    /// Nodes with load below this are "lightly loaded" (proximity 0).
    pub low_watermark: f64,
    /// Nodes with load above this try to shed work.
    pub high_watermark: f64,
}

impl Default for GradientModel {
    fn default() -> Self {
        Self {
            low_watermark: 0.75,
            high_watermark: 2.0,
        }
    }
}

impl GradientModel {
    /// Compute the proximity map over a ring of `loads.len()` nodes
    /// (index = position in `loads`). A node with no lightly-loaded node
    /// anywhere gets `u32::MAX`.
    pub fn proximity_map(
        &self,
        loads: &[(NodeId, ResourceVector)],
        load_fn: impl Fn(ResourceVector) -> f64,
    ) -> Vec<u32> {
        let n = loads.len();
        let mut prox = vec![u32::MAX; n];
        for (i, (_, v)) in loads.iter().enumerate() {
            if load_fn(*v) < self.low_watermark {
                prox[i] = 0;
            }
        }
        if prox.iter().all(|&p| p == u32::MAX) {
            return prox;
        }
        // Relax around the ring until fixpoint (≤ n sweeps).
        for _ in 0..n {
            let mut changed = false;
            for i in 0..n {
                let left = prox[(i + n - 1) % n].saturating_add(1);
                let right = prox[(i + 1) % n].saturating_add(1);
                let best = prox[i].min(left).min(right);
                if best < prox[i] {
                    prox[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        prox
    }

    /// One routing step: if `home` is overloaded and a ring neighbor is
    /// strictly closer to a lightly-loaded node, forward to that neighbor
    /// (work descends the gradient one hop per decision, as in the
    /// original model).
    pub fn decide(
        &self,
        home: NodeId,
        loads: &[(NodeId, ResourceVector)],
        load_fn: impl Fn(ResourceVector) -> f64,
    ) -> Option<NodeId> {
        let n = loads.len();
        if n < 2 {
            return None;
        }
        let i = loads.iter().position(|(id, _)| *id == home)?;
        if load_fn(loads[i].1) <= self.high_watermark {
            return None;
        }
        let prox = self.proximity_map(loads, &load_fn);
        if prox[i] == 0 || prox[i] == u32::MAX {
            return None;
        }
        let left = (i + n - 1) % n;
        let right = (i + 1) % n;
        let (target, target_prox) = if prox[left] <= prox[right] {
            (left, prox[left])
        } else {
            (right, prox[right])
        };
        (target_prox < prox[i]).then(|| loads[target].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loadsim::functions::qa_load;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loads(vals: &[f64]) -> Vec<(NodeId, ResourceVector)> {
        vals.iter()
            .enumerate()
            .map(|(i, &l)| (n(i as u32), ResourceVector::new(l, l)))
            .collect()
    }

    #[test]
    fn sid_keeps_work_when_not_overloaded() {
        let d = SenderDiffusion::default();
        let l = loads(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(d.decide(n(0), &l, qa_load), None);
    }

    #[test]
    fn sid_sheds_to_best_probed_peer() {
        let d = SenderDiffusion::default();
        // Home overloaded; probes nodes 1..=3 and picks the least loaded.
        let l = loads(&[5.0, 3.0, 0.2, 1.0, 0.0]);
        assert_eq!(d.decide(n(0), &l, qa_load), Some(n(2)));
    }

    #[test]
    fn sid_probe_limit_is_respected() {
        let d = SenderDiffusion {
            probe_limit: 2,
            ..SenderDiffusion::default()
        };
        // The idle node 4 is outside the probe window of node 0.
        let l = loads(&[5.0, 4.5, 4.6, 0.0, 0.0]);
        let got = d.decide(n(0), &l, qa_load);
        assert_ne!(got, Some(n(3)));
        assert_ne!(got, Some(n(4)));
    }

    #[test]
    fn sid_requires_a_worthwhile_gap() {
        let d = SenderDiffusion::default();
        let l = loads(&[2.5, 2.2, 2.3, 2.4]);
        assert_eq!(d.decide(n(0), &l, qa_load), None, "gap below threshold");
    }

    #[test]
    fn sid_single_node_never_migrates() {
        let d = SenderDiffusion::default();
        assert_eq!(d.decide(n(0), &loads(&[9.0]), qa_load), None);
    }

    #[test]
    fn gradient_proximity_map_ring_distances() {
        let g = GradientModel::default();
        // Only node 0 lightly loaded on a 5-ring: distances 0,1,2,2,1.
        let l = loads(&[0.0, 3.0, 3.0, 3.0, 3.0]);
        let p = g.proximity_map(&l, qa_load);
        assert_eq!(p, vec![0, 1, 2, 2, 1]);
    }

    #[test]
    fn gradient_map_all_loaded_is_saturated() {
        let g = GradientModel::default();
        let l = loads(&[3.0, 3.0, 3.0]);
        let p = g.proximity_map(&l, qa_load);
        assert!(p.iter().all(|&x| x == u32::MAX));
        assert_eq!(g.decide(n(0), &l, qa_load), None);
    }

    #[test]
    fn gradient_routes_one_hop_toward_idle_node() {
        let g = GradientModel::default();
        // Idle node 0; overloaded node 2 forwards toward 1 (prox 1 < 2).
        let l = loads(&[0.0, 3.0, 3.0, 3.0, 3.0]);
        assert_eq!(g.decide(n(2), &l, qa_load), Some(n(1)));
        // Node 3 is equidistant (2) with neighbors 2 (prox 2) and 4 (prox 1):
        // goes right.
        assert_eq!(g.decide(n(3), &l, qa_load), Some(n(4)));
    }

    #[test]
    fn gradient_idle_and_non_overloaded_nodes_stay() {
        let g = GradientModel::default();
        let l = loads(&[0.0, 1.0, 3.0]);
        assert_eq!(g.decide(n(0), &l, qa_load), None, "lightly loaded");
        assert_eq!(g.decide(n(1), &l, qa_load), None, "below high watermark");
    }
}
