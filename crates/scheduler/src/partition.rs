//! The three partitioning algorithms of §4.1.
//!
//! All three assume the task is *iterative* — a sequence of items
//! (sub-collections for PR, paragraphs for PS/AP):
//!
//! * **SEND** (Fig. 5a): the item array is split into *consecutive* runs
//!   sized by the processor weights. Assumes sub-task granularity does not
//!   vary much between items.
//! * **ISEND** (Fig. 5b): items are dealt round-robin so each partition
//!   still receives its weighted count but items are *interleaved*. Assumes
//!   the item array is sorted by decreasing granularity (true for AP input,
//!   which PO sorts by rank).
//! * **RECV** (Fig. 6a): the item array is cut into equal-size chunks that
//!   receivers pull one at a time; no granularity assumption at all.

use serde::{Deserialize, Serialize};

/// Which partitioning algorithm a dispatcher uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Sender-controlled, contiguous weighted split.
    Send,
    /// Sender-controlled, interleaved weighted split.
    Isend,
    /// Receiver-controlled fixed-size chunks.
    Recv {
        /// Items per chunk (≥ 1). Fig. 10 sweeps this; 40 is optimal on the
        /// paper's platform.
        chunk_size: usize,
    },
}

/// Convert normalized weights into integer item counts summing to `total`
/// (largest-remainder apportionment, deterministic on ties by index).
pub fn partition_counts(total: usize, weights: &[f64]) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        // Degenerate: uniform.
        let base = total / weights.len();
        let mut counts = vec![base; weights.len()];
        for c in counts.iter_mut().take(total % weights.len()) {
            *c += 1;
        }
        return counts;
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut i = 0;
    while assigned < total {
        counts[order[i % order.len()]] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// SEND: consecutive runs sized by weights (Fig. 5a).
///
/// # Examples
/// ```
/// use scheduler::partition::partition_send;
/// let parts = partition_send((0..10).collect(), &[0.5, 0.5]);
/// assert_eq!(parts[0], vec![0, 1, 2, 3, 4]);
/// assert_eq!(parts[1], vec![5, 6, 7, 8, 9]);
/// ```
pub fn partition_send<T>(items: Vec<T>, weights: &[f64]) -> Vec<Vec<T>> {
    let counts = partition_counts(items.len(), weights);
    let mut out: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    let mut it = items.into_iter();
    for (part, &c) in out.iter_mut().zip(&counts) {
        part.extend(it.by_ref().take(c));
    }
    out
}

/// ISEND: round-robin interleave honoring weighted counts (Fig. 5b).
///
/// Items are dealt cyclically across partitions, skipping partitions that
/// have already reached their weighted count, so the `k`-th heaviest items
/// spread evenly instead of clustering in one partition.
///
/// # Examples
/// ```
/// use scheduler::partition::partition_isend;
/// // Items sorted by decreasing cost: the heavy head spreads across both.
/// let parts = partition_isend((0..6).collect(), &[0.5, 0.5]);
/// assert_eq!(parts[0], vec![0, 2, 4]);
/// assert_eq!(parts[1], vec![1, 3, 5]);
/// ```
pub fn partition_isend<T>(items: Vec<T>, weights: &[f64]) -> Vec<Vec<T>> {
    let counts = partition_counts(items.len(), weights);
    let n = counts.len();
    let mut out: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    if n == 0 {
        return out;
    }
    let mut next = 0usize;
    for item in items {
        // Find the next partition with remaining capacity.
        let mut tries = 0;
        while out[next].len() >= counts[next] {
            next = (next + 1) % n;
            tries += 1;
            debug_assert!(tries <= n, "counts sum to items.len()");
        }
        out[next].push(item);
        next = (next + 1) % n;
    }
    out
}

/// RECV: cut into equal-size chunks (Fig. 6a). The final chunk absorbs the
/// remainder ("chunk k extended to include the last item") when the
/// remainder is smaller than half a chunk; otherwise it becomes its own
/// chunk.
pub fn partition_recv<T>(items: Vec<T>, chunk_size: usize) -> Vec<Vec<T>> {
    let chunk_size = chunk_size.max(1);
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(total / chunk_size + 1);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    // Pad the last chunk into the previous one when it is a small remainder.
    if chunks.len() >= 2 {
        let last_len = chunks.last().map(Vec::len).unwrap_or(0);
        if last_len * 2 < chunk_size {
            let last = chunks.pop().expect("len >= 2");
            chunks.last_mut().expect("len >= 1").extend(last);
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_and_follow_weights() {
        let c = partition_counts(441, &[0.25, 0.25, 0.25, 0.25]);
        assert_eq!(c.iter().sum::<usize>(), 441);
        // 441 / 4 = 110.25 → three 110s and one 111 (first index wins tie).
        assert!(c.iter().all(|&x| x == 110 || x == 111));
        let c = partition_counts(100, &[0.7, 0.2, 0.1]);
        assert_eq!(c, vec![70, 20, 10]);
    }

    #[test]
    fn counts_zero_weights_uniform() {
        let c = partition_counts(10, &[0.0, 0.0, 0.0]);
        assert_eq!(c.iter().sum::<usize>(), 10);
        assert_eq!(c, vec![4, 3, 3]);
    }

    #[test]
    fn counts_empty_weights() {
        assert!(partition_counts(5, &[]).is_empty());
    }

    #[test]
    fn send_partitions_are_consecutive() {
        let items: Vec<u32> = (0..10).collect();
        let parts = partition_send(items, &[0.5, 0.3, 0.2]);
        assert_eq!(parts[0], (0..5).collect::<Vec<_>>());
        assert_eq!(parts[1], (5..8).collect::<Vec<_>>());
        assert_eq!(parts[2], (8..10).collect::<Vec<_>>());
    }

    #[test]
    fn isend_interleaves_heavy_items() {
        // Items sorted by decreasing granularity (index 0 heaviest): the
        // first `n` items must land in `n` distinct partitions.
        let items: Vec<u32> = (0..12).collect();
        let parts = partition_isend(items, &[0.25, 0.25, 0.25, 0.25]);
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.len(), 3);
        }
        assert_eq!(parts[0], vec![0, 4, 8]);
        assert_eq!(parts[1], vec![1, 5, 9]);
        assert_eq!(parts[2], vec![2, 6, 10]);
        assert_eq!(parts[3], vec![3, 7, 11]);
    }

    #[test]
    fn isend_respects_weighted_counts() {
        let items: Vec<u32> = (0..10).collect();
        let parts = partition_isend(items, &[0.6, 0.4]);
        assert_eq!(parts[0].len(), 6);
        assert_eq!(parts[1].len(), 4);
        // Everything assigned exactly once.
        let mut all: Vec<u32> = parts.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn isend_balances_weighted_sum_of_sorted_granularities() {
        // Granularities decreasing 100, 99, ... 1; two equal partitions.
        let items: Vec<u32> = (1..=100).rev().collect();
        let parts = partition_isend(items.clone(), &[0.5, 0.5]);
        let sum0: u32 = parts[0].iter().sum();
        let sum1: u32 = parts[1].iter().sum();
        let imbalance = (sum0 as i64 - sum1 as i64).abs();
        // SEND would give |sum0 - sum1| = 2500; ISEND stays tiny.
        assert!(imbalance <= 100, "imbalance {imbalance}");
        let send_parts = partition_send(items, &[0.5, 0.5]);
        let ssum0: u32 = send_parts[0].iter().sum();
        let ssum1: u32 = send_parts[1].iter().sum();
        assert!((ssum0 as i64 - ssum1 as i64).abs() > imbalance);
    }

    #[test]
    fn recv_chunks_equal_size_with_padded_tail() {
        let items: Vec<u32> = (0..9).collect();
        let chunks = partition_recv(items, 2);
        // 2,2,2,2,1 → the final 1-item remainder (1*2 < 2 is false) stays.
        assert_eq!(chunks.len(), 5);
        assert_eq!(chunks[4], vec![8]);

        let items: Vec<u32> = (0..10).collect();
        let chunks = partition_recv(items, 4);
        // 4,4,2 → remainder 2, 2*2 >= 4 keeps it separate.
        assert_eq!(chunks.len(), 3);

        let items: Vec<u32> = (0..9).collect();
        let chunks = partition_recv(items, 4);
        // 4,4,1 → remainder 1, 1*2 < 4 folds into previous: 4,5.
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 5);
    }

    #[test]
    fn recv_edge_cases() {
        assert!(partition_recv(Vec::<u32>::new(), 4).is_empty());
        let chunks = partition_recv(vec![1, 2, 3], 0);
        assert_eq!(chunks.len(), 3, "chunk size clamps to 1");
        let chunks = partition_recv(vec![1, 2], 10);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn all_strategies_preserve_every_item() {
        let items: Vec<u32> = (0..57).collect();
        for parts in [
            partition_send(items.clone(), &[0.4, 0.35, 0.25]),
            partition_isend(items.clone(), &[0.4, 0.35, 0.25]),
            partition_recv(items.clone(), 8),
        ] {
            let mut all: Vec<u32> = parts.concat();
            all.sort_unstable();
            assert_eq!(all, items);
        }
    }
}
