//! Failure-recovery state machines for the distribution strategies.
//!
//! These are backend-agnostic: the thread runtime (`dqa-runtime`) and the
//! discrete-event simulator (`cluster-sim`) both drive them, reporting
//! sub-task completions and node failures; the state machine answers "what
//! still needs to run".

use qa_types::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Sender-controlled distribution (Fig. 5c): partitions are allocated up
/// front; failed partitions are collected and rescheduled as a new task.
///
/// Node-keyed state is an ordered map so that recovery rounds replay in the
/// same order for the same seed (both the DES and the thread runtime drive
/// this machine).
#[derive(Debug, Clone)]
pub struct SenderDistribution<T> {
    in_flight: BTreeMap<NodeId, Vec<T>>,
    failed_items: Vec<T>,
    completed: usize,
}

impl<T> SenderDistribution<T> {
    /// Start a round with the given node → partition assignment.
    /// Empty partitions are dropped.
    pub fn new(assignment: Vec<(NodeId, Vec<T>)>) -> Self {
        Self {
            in_flight: assignment
                .into_iter()
                .filter(|(_, p)| !p.is_empty())
                .collect(),
            failed_items: Vec::new(),
            completed: 0,
        }
    }

    /// Nodes still working, in ascending id order.
    pub fn pending_nodes(&self) -> Vec<NodeId> {
        self.in_flight.keys().copied().collect()
    }

    /// The partition assigned to a node (if still in flight).
    pub fn partition_of(&self, node: NodeId) -> Option<&[T]> {
        self.in_flight.get(&node).map(Vec::as_slice)
    }

    /// Mark a node's sub-task successfully finished ("if successful
    /// termination remove partition from the partition set").
    pub fn complete(&mut self, node: NodeId) -> bool {
        if self.in_flight.remove(&node).is_some() {
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Mark a node failed; its unprocessed items join the recovery pool
    /// ("build a new task from the unprocessed partitions").
    pub fn fail(&mut self, node: NodeId) -> bool {
        if let Some(items) = self.in_flight.remove(&node) {
            self.failed_items.extend(items);
            true
        } else {
            false
        }
    }

    /// True when no partition is in flight.
    pub fn round_done(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Items that must be redistributed in a new round (empties the pool).
    pub fn take_failed(&mut self) -> Vec<T> {
        std::mem::take(&mut self.failed_items)
    }

    /// Count of successfully completed partitions so far.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

/// What [`ChunkQueue::complete_keyed`] decided about a reported result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// First result for this chunk: count it.
    Fresh,
    /// A speculative or duplicated copy already completed: discard it.
    Duplicate,
    /// The chunk id was never issued by this queue: protocol error.
    Unknown,
}

/// Receiver-controlled distribution (Fig. 6b): a shared chunk queue that
/// workers pull from; chunks held by a failed worker go back into the queue.
///
/// `T: Clone` because the queue retains each pulled chunk until the worker
/// confirms completion — that retained copy is what failure recovery
/// restores ("move chunk back to the chunk set").
///
/// Every chunk carries a stable id assigned at construction. Ids make
/// *speculative re-execution* safe: [`ChunkQueue::speculate`] hands a copy
/// of a straggler's chunk to a second worker, and whichever result arrives
/// first wins at [`ChunkQueue::complete_keyed`] — the loser is reported as
/// a [`ChunkOutcome::Duplicate`] and dropped. The same mechanism absorbs
/// link-level message duplication.
#[derive(Debug, Clone)]
pub struct ChunkQueue<T: Clone> {
    available: VecDeque<(u32, Vec<T>)>,
    in_flight: BTreeMap<NodeId, Vec<(u32, Vec<T>)>>,
    done: BTreeSet<u32>,
    total: u32,
}

impl<T: Clone> ChunkQueue<T> {
    /// Build from pre-cut chunks (see
    /// [`partition_recv`](crate::partition::partition_recv)).
    pub fn new(chunks: Vec<Vec<T>>) -> Self {
        let available: VecDeque<_> = chunks
            .into_iter()
            .filter(|c| !c.is_empty())
            .enumerate()
            .map(|(i, c)| (i as u32, c))
            .collect();
        let total = available.len() as u32;
        Self {
            available,
            in_flight: BTreeMap::new(),
            done: BTreeSet::new(),
            total,
        }
    }

    /// A worker pulls the next chunk ("each working processor requests and
    /// processes one chunk at a time according to its local resource
    /// availability").
    pub fn pull(&mut self, worker: NodeId) -> Option<Vec<T>> {
        self.pull_keyed(worker).map(|(_, chunk)| chunk)
    }

    /// Like [`ChunkQueue::pull`] but also returns the chunk id, for callers
    /// that report completions with [`ChunkQueue::complete_keyed`].
    pub fn pull_keyed(&mut self, worker: NodeId) -> Option<(u32, Vec<T>)> {
        let (id, chunk) = self.available.pop_front()?;
        self.in_flight
            .entry(worker)
            .or_default()
            .push((id, chunk.clone()));
        Some((id, chunk))
    }

    /// Worker reports its oldest outstanding chunk done.
    pub fn complete_one(&mut self, worker: NodeId) -> bool {
        let Some(&(id, _)) = self.in_flight.get(&worker).and_then(|l| l.first()) else {
            return false;
        };
        self.complete_keyed(worker, id) == ChunkOutcome::Fresh
    }

    /// A result for chunk `id` arrived from `worker`. First result wins:
    /// any other copies of the chunk — speculative twins on other workers,
    /// a requeued copy in the available queue after the worker was presumed
    /// failed — are retired with it.
    pub fn complete_keyed(&mut self, worker: NodeId, id: u32) -> ChunkOutcome {
        if self.done.contains(&id) {
            self.retire(id);
            return ChunkOutcome::Duplicate;
        }
        let held = self
            .in_flight
            .get(&worker)
            .is_some_and(|l| l.iter().any(|(i, _)| *i == id));
        let queued = self.available.iter().any(|(i, _)| *i == id);
        let twin = self
            .in_flight
            .values()
            .any(|l| l.iter().any(|(i, _)| *i == id));
        if !held && !queued && !twin {
            return ChunkOutcome::Unknown;
        }
        self.done.insert(id);
        self.retire(id);
        ChunkOutcome::Fresh
    }

    /// Remove every copy of chunk `id` from the queue and all workers.
    fn retire(&mut self, id: u32) {
        self.available.retain(|(i, _)| *i != id);
        self.in_flight.retain(|_, l| {
            l.retain(|(i, _)| *i != id);
            !l.is_empty()
        });
    }

    /// Worker failed: every chunk it held returns to the available queue —
    /// unless a speculative twin is still running elsewhere or the chunk
    /// already completed.
    pub fn fail(&mut self, worker: NodeId) -> usize {
        let chunks = self.in_flight.remove(&worker).unwrap_or_default();
        let mut requeued = 0;
        for (id, c) in chunks {
            let twin = self
                .in_flight
                .values()
                .any(|l| l.iter().any(|(i, _)| *i == id));
            let queued = self.available.iter().any(|(i, _)| *i == id);
            if !self.done.contains(&id) && !twin && !queued {
                self.available.push_back((id, c));
                requeued += 1;
            }
        }
        requeued
    }

    /// Clone `from`'s oldest outstanding chunk and issue it to `to` as well
    /// (speculative re-execution of a straggler partition). Returns the
    /// speculated chunk for dispatch, or `None` when `from` holds nothing
    /// or `to` already has a copy of it.
    pub fn speculate(&mut self, from: NodeId, to: NodeId) -> Option<(u32, Vec<T>)> {
        let &(id, ref chunk) = self.in_flight.get(&from)?.first()?;
        let chunk = chunk.clone();
        if from == to
            || self
                .in_flight
                .get(&to)
                .is_some_and(|l| l.iter().any(|(i, _)| *i == id))
        {
            return None;
        }
        self.in_flight
            .entry(to)
            .or_default()
            .push((id, chunk.clone()));
        Some((id, chunk))
    }

    /// Give up on everything not yet completed (graceful degradation once
    /// the retry budget or question deadline is exhausted). Returns the
    /// number of distinct chunks abandoned; afterwards the queue reports
    /// drained and [`ChunkQueue::completed`] < [`ChunkQueue::total`].
    pub fn abandon(&mut self) -> u32 {
        self.available.clear();
        self.in_flight.clear();
        self.total - self.done.len() as u32
    }

    /// Chunks waiting to be pulled.
    pub fn available(&self) -> usize {
        self.available.len()
    }

    /// True when nothing is queued and nothing is in flight.
    pub fn drained(&self) -> bool {
        self.available.is_empty() && self.in_flight.is_empty()
    }

    /// Outstanding chunk count for a worker.
    pub fn outstanding(&self, worker: NodeId) -> usize {
        self.in_flight.get(&worker).map_or(0, Vec::len)
    }

    /// Distinct chunks completed so far.
    pub fn completed(&self) -> u32 {
        self.done.len() as u32
    }

    /// Chunks the queue was built with.
    pub fn total(&self) -> u32 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sender_happy_path() {
        let mut d = SenderDistribution::new(vec![(n(0), vec![1, 2]), (n(1), vec![3])]);
        assert_eq!(d.pending_nodes(), vec![n(0), n(1)]);
        assert_eq!(d.partition_of(n(0)), Some([1, 2].as_slice()));
        assert!(d.complete(n(0)));
        assert!(d.complete(n(1)));
        assert!(d.round_done());
        assert!(d.take_failed().is_empty());
        assert_eq!(d.completed(), 2);
    }

    #[test]
    fn sender_failure_collects_items() {
        let mut d = SenderDistribution::new(vec![(n(0), vec![1, 2]), (n(1), vec![3, 4])]);
        assert!(d.complete(n(0)));
        assert!(d.fail(n(1)));
        assert!(d.round_done());
        let mut failed = d.take_failed();
        failed.sort_unstable();
        assert_eq!(failed, vec![3, 4]);
        // Second round with the recovered items.
        let mut d2 = SenderDistribution::new(vec![(n(0), failed)]);
        assert!(d2.complete(n(0)));
        assert!(d2.round_done());
    }

    #[test]
    fn sender_ignores_unknown_nodes_and_empty_partitions() {
        let mut d = SenderDistribution::new(vec![(n(0), vec![1]), (n(1), Vec::<u32>::new())]);
        assert_eq!(d.pending_nodes(), vec![n(0)]);
        assert!(!d.complete(n(7)));
        assert!(!d.fail(n(7)));
    }

    #[test]
    fn chunk_queue_pull_complete_drain() {
        let mut q = ChunkQueue::new(vec![vec![1, 2], vec![3, 4], vec![5]]);
        assert_eq!(q.available(), 3);
        let c1 = q.pull(n(0)).unwrap();
        let c2 = q.pull(n(1)).unwrap();
        assert_eq!(c1, vec![1, 2]);
        assert_eq!(c2, vec![3, 4]);
        assert_eq!(q.outstanding(n(0)), 1);
        assert!(q.complete_one(n(0)));
        assert!(q.complete_one(n(1)));
        let c3 = q.pull(n(0)).unwrap();
        assert_eq!(c3, vec![5]);
        assert!(!q.drained());
        assert!(q.complete_one(n(0)));
        assert!(q.drained());
    }

    #[test]
    fn chunk_queue_failure_requeues_held_chunks() {
        let mut q = ChunkQueue::new(vec![vec![1, 2], vec![3]]);
        let _c = q.pull(n(0)).unwrap();
        let _d = q.pull(n(0)).unwrap();
        assert_eq!(q.outstanding(n(0)), 2);
        assert_eq!(q.fail(n(0)), 2);
        assert_eq!(q.available(), 2);
        // Another worker finishes everything.
        let a = q.pull(n(1)).unwrap();
        let b = q.pull(n(1)).unwrap();
        assert_eq!(a.len() + b.len(), 3);
        q.complete_one(n(1));
        q.complete_one(n(1));
        assert!(q.drained());
    }

    #[test]
    fn chunk_queue_completes_in_fifo_order() {
        let mut q = ChunkQueue::new(vec![vec![1], vec![2]]);
        q.pull(n(0));
        q.pull(n(0));
        assert!(q.complete_one(n(0)));
        assert_eq!(q.outstanding(n(0)), 1);
        // A failure now only requeues the *second* chunk.
        assert_eq!(q.fail(n(0)), 1);
        let back = q.pull(n(1)).unwrap();
        assert_eq!(back, vec![2]);
    }

    #[test]
    fn speculation_first_result_wins_and_twin_is_duplicate() {
        let mut q = ChunkQueue::new(vec![vec![1, 2], vec![3]]);
        let (id, chunk) = q.pull_keyed(n(0)).unwrap();
        assert_eq!((id, chunk), (0, vec![1, 2]));
        // Node 0 straggles; speculate its chunk onto node 1.
        let (sid, schunk) = q.speculate(n(0), n(1)).unwrap();
        assert_eq!((sid, schunk), (0, vec![1, 2]));
        assert_eq!(q.outstanding(n(0)), 1);
        assert_eq!(q.outstanding(n(1)), 1);
        // Re-speculating the same chunk onto the same node is refused.
        assert!(q.speculate(n(0), n(1)).is_none());
        assert!(q.speculate(n(0), n(0)).is_none());
        // The speculative copy finishes first…
        assert_eq!(q.complete_keyed(n(1), sid), ChunkOutcome::Fresh);
        // …and retires the original everywhere.
        assert_eq!(q.outstanding(n(0)), 0);
        // The straggler's late result is a duplicate, not fresh work.
        assert_eq!(q.complete_keyed(n(0), id), ChunkOutcome::Duplicate);
        assert_eq!(q.completed(), 1);
        assert_eq!(q.total(), 2);
    }

    #[test]
    fn failed_worker_with_live_twin_does_not_requeue() {
        let mut q = ChunkQueue::new(vec![vec![1]]);
        q.pull_keyed(n(0)).unwrap();
        q.speculate(n(0), n(1)).unwrap();
        // Node 0 dies; its chunk must NOT go back to the queue because the
        // twin on node 1 is still running.
        assert_eq!(q.fail(n(0)), 0);
        assert_eq!(q.available(), 0);
        assert_eq!(q.complete_keyed(n(1), 0), ChunkOutcome::Fresh);
        assert!(q.drained());
    }

    #[test]
    fn late_result_from_presumed_dead_worker_still_counts() {
        let mut q = ChunkQueue::new(vec![vec![7]]);
        let (id, _) = q.pull_keyed(n(0)).unwrap();
        // Worker is presumed failed; the chunk goes back to the queue…
        assert_eq!(q.fail(n(0)), 1);
        // …but its result then arrives anyway: first result wins, and the
        // requeued copy is retired so nobody re-runs it.
        assert_eq!(q.complete_keyed(n(0), id), ChunkOutcome::Fresh);
        assert_eq!(q.available(), 0);
        assert!(q.drained());
    }

    #[test]
    fn unknown_chunk_ids_are_rejected() {
        let mut q = ChunkQueue::new(vec![vec![1]]);
        assert_eq!(q.complete_keyed(n(0), 99), ChunkOutcome::Unknown);
        let (id, _) = q.pull_keyed(n(0)).unwrap();
        assert_eq!(q.complete_keyed(n(0), id), ChunkOutcome::Fresh);
        // Double-completion of the same id is a duplicate.
        assert_eq!(q.complete_keyed(n(0), id), ChunkOutcome::Duplicate);
    }

    #[test]
    fn abandon_reports_lost_chunks_and_drains() {
        let mut q = ChunkQueue::new(vec![vec![1], vec![2], vec![3]]);
        q.pull_keyed(n(0)).unwrap();
        assert!(q.complete_one(n(0)));
        q.pull_keyed(n(1)).unwrap();
        // One done, one in flight, one queued → abandoning loses two.
        assert_eq!(q.abandon(), 2);
        assert!(q.drained());
        assert_eq!(q.completed(), 1);
        assert_eq!(q.total(), 3);
    }

    #[test]
    fn chunk_queue_empty_edge_cases() {
        let mut q: ChunkQueue<u32> = ChunkQueue::new(vec![]);
        assert!(q.drained());
        assert!(q.pull(n(0)).is_none());
        assert!(!q.complete_one(n(0)));
        assert_eq!(q.fail(n(0)), 0);
        let q2: ChunkQueue<u32> = ChunkQueue::new(vec![vec![]]);
        assert!(q2.drained(), "empty chunks are dropped");
    }
}
