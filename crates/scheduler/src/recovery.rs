//! Failure-recovery state machines for the distribution strategies.
//!
//! These are backend-agnostic: the thread runtime (`dqa-runtime`) and the
//! discrete-event simulator (`cluster-sim`) both drive them, reporting
//! sub-task completions and node failures; the state machine answers "what
//! still needs to run".

use qa_types::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// Sender-controlled distribution (Fig. 5c): partitions are allocated up
/// front; failed partitions are collected and rescheduled as a new task.
///
/// Node-keyed state is an ordered map so that recovery rounds replay in the
/// same order for the same seed (both the DES and the thread runtime drive
/// this machine).
#[derive(Debug, Clone)]
pub struct SenderDistribution<T> {
    in_flight: BTreeMap<NodeId, Vec<T>>,
    failed_items: Vec<T>,
    completed: usize,
}

impl<T> SenderDistribution<T> {
    /// Start a round with the given node → partition assignment.
    /// Empty partitions are dropped.
    pub fn new(assignment: Vec<(NodeId, Vec<T>)>) -> Self {
        Self {
            in_flight: assignment
                .into_iter()
                .filter(|(_, p)| !p.is_empty())
                .collect(),
            failed_items: Vec::new(),
            completed: 0,
        }
    }

    /// Nodes still working, in ascending id order.
    pub fn pending_nodes(&self) -> Vec<NodeId> {
        self.in_flight.keys().copied().collect()
    }

    /// The partition assigned to a node (if still in flight).
    pub fn partition_of(&self, node: NodeId) -> Option<&[T]> {
        self.in_flight.get(&node).map(Vec::as_slice)
    }

    /// Mark a node's sub-task successfully finished ("if successful
    /// termination remove partition from the partition set").
    pub fn complete(&mut self, node: NodeId) -> bool {
        if self.in_flight.remove(&node).is_some() {
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Mark a node failed; its unprocessed items join the recovery pool
    /// ("build a new task from the unprocessed partitions").
    pub fn fail(&mut self, node: NodeId) -> bool {
        if let Some(items) = self.in_flight.remove(&node) {
            self.failed_items.extend(items);
            true
        } else {
            false
        }
    }

    /// True when no partition is in flight.
    pub fn round_done(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Items that must be redistributed in a new round (empties the pool).
    pub fn take_failed(&mut self) -> Vec<T> {
        std::mem::take(&mut self.failed_items)
    }

    /// Count of successfully completed partitions so far.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

/// Receiver-controlled distribution (Fig. 6b): a shared chunk queue that
/// workers pull from; chunks held by a failed worker go back into the queue.
///
/// `T: Clone` because the queue retains each pulled chunk until the worker
/// confirms completion — that retained copy is what failure recovery
/// restores ("move chunk back to the chunk set").
#[derive(Debug, Clone)]
pub struct ChunkQueue<T: Clone> {
    available: VecDeque<Vec<T>>,
    in_flight: BTreeMap<NodeId, Vec<Vec<T>>>,
}

impl<T: Clone> ChunkQueue<T> {
    /// Build from pre-cut chunks (see
    /// [`partition_recv`](crate::partition::partition_recv)).
    pub fn new(chunks: Vec<Vec<T>>) -> Self {
        Self {
            available: chunks.into_iter().filter(|c| !c.is_empty()).collect(),
            in_flight: BTreeMap::new(),
        }
    }

    /// A worker pulls the next chunk ("each working processor requests and
    /// processes one chunk at a time according to its local resource
    /// availability").
    pub fn pull(&mut self, worker: NodeId) -> Option<Vec<T>> {
        let chunk = self.available.pop_front()?;
        self.in_flight
            .entry(worker)
            .or_default()
            .push(chunk.clone());
        Some(chunk)
    }

    /// Worker reports its oldest outstanding chunk done.
    pub fn complete_one(&mut self, worker: NodeId) -> bool {
        match self.in_flight.get_mut(&worker) {
            Some(list) if !list.is_empty() => {
                list.remove(0);
                if list.is_empty() {
                    self.in_flight.remove(&worker);
                }
                true
            }
            _ => false,
        }
    }

    /// Worker failed: every chunk it held returns to the available queue.
    pub fn fail(&mut self, worker: NodeId) -> usize {
        let chunks = self.in_flight.remove(&worker).unwrap_or_default();
        let n = chunks.len();
        for c in chunks {
            self.available.push_back(c);
        }
        n
    }

    /// Chunks waiting to be pulled.
    pub fn available(&self) -> usize {
        self.available.len()
    }

    /// True when nothing is queued and nothing is in flight.
    pub fn drained(&self) -> bool {
        self.available.is_empty() && self.in_flight.is_empty()
    }

    /// Outstanding chunk count for a worker.
    pub fn outstanding(&self, worker: NodeId) -> usize {
        self.in_flight.get(&worker).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sender_happy_path() {
        let mut d = SenderDistribution::new(vec![(n(0), vec![1, 2]), (n(1), vec![3])]);
        assert_eq!(d.pending_nodes(), vec![n(0), n(1)]);
        assert_eq!(d.partition_of(n(0)), Some([1, 2].as_slice()));
        assert!(d.complete(n(0)));
        assert!(d.complete(n(1)));
        assert!(d.round_done());
        assert!(d.take_failed().is_empty());
        assert_eq!(d.completed(), 2);
    }

    #[test]
    fn sender_failure_collects_items() {
        let mut d = SenderDistribution::new(vec![(n(0), vec![1, 2]), (n(1), vec![3, 4])]);
        assert!(d.complete(n(0)));
        assert!(d.fail(n(1)));
        assert!(d.round_done());
        let mut failed = d.take_failed();
        failed.sort_unstable();
        assert_eq!(failed, vec![3, 4]);
        // Second round with the recovered items.
        let mut d2 = SenderDistribution::new(vec![(n(0), failed)]);
        assert!(d2.complete(n(0)));
        assert!(d2.round_done());
    }

    #[test]
    fn sender_ignores_unknown_nodes_and_empty_partitions() {
        let mut d = SenderDistribution::new(vec![(n(0), vec![1]), (n(1), Vec::<u32>::new())]);
        assert_eq!(d.pending_nodes(), vec![n(0)]);
        assert!(!d.complete(n(7)));
        assert!(!d.fail(n(7)));
    }

    #[test]
    fn chunk_queue_pull_complete_drain() {
        let mut q = ChunkQueue::new(vec![vec![1, 2], vec![3, 4], vec![5]]);
        assert_eq!(q.available(), 3);
        let c1 = q.pull(n(0)).unwrap();
        let c2 = q.pull(n(1)).unwrap();
        assert_eq!(c1, vec![1, 2]);
        assert_eq!(c2, vec![3, 4]);
        assert_eq!(q.outstanding(n(0)), 1);
        assert!(q.complete_one(n(0)));
        assert!(q.complete_one(n(1)));
        let c3 = q.pull(n(0)).unwrap();
        assert_eq!(c3, vec![5]);
        assert!(!q.drained());
        assert!(q.complete_one(n(0)));
        assert!(q.drained());
    }

    #[test]
    fn chunk_queue_failure_requeues_held_chunks() {
        let mut q = ChunkQueue::new(vec![vec![1, 2], vec![3]]);
        let _c = q.pull(n(0)).unwrap();
        let _d = q.pull(n(0)).unwrap();
        assert_eq!(q.outstanding(n(0)), 2);
        assert_eq!(q.fail(n(0)), 2);
        assert_eq!(q.available(), 2);
        // Another worker finishes everything.
        let a = q.pull(n(1)).unwrap();
        let b = q.pull(n(1)).unwrap();
        assert_eq!(a.len() + b.len(), 3);
        q.complete_one(n(1));
        q.complete_one(n(1));
        assert!(q.drained());
    }

    #[test]
    fn chunk_queue_completes_in_fifo_order() {
        let mut q = ChunkQueue::new(vec![vec![1], vec![2]]);
        q.pull(n(0));
        q.pull(n(0));
        assert!(q.complete_one(n(0)));
        assert_eq!(q.outstanding(n(0)), 1);
        // A failure now only requeues the *second* chunk.
        assert_eq!(q.fail(n(0)), 1);
        let back = q.pull(n(1)).unwrap();
        assert_eq!(back, vec![2]);
    }

    #[test]
    fn chunk_queue_empty_edge_cases() {
        let mut q: ChunkQueue<u32> = ChunkQueue::new(vec![]);
        assert!(q.drained());
        assert!(q.pull(n(0)).is_none());
        assert!(!q.complete_one(n(0)));
        assert_eq!(q.fail(n(0)), 0);
        let q2: ChunkQueue<u32> = ChunkQueue::new(vec![vec![]]);
        assert!(q2.drained(), "empty chunks are dropped");
    }
}
