//! Property tests of the meta-scheduler.

use loadsim::functions::LoadFunctions;
use proptest::prelude::*;
use qa_types::{NodeId, QaModule, ResourceVector};
use scheduler::meta::meta_schedule;

proptest! {
    #[test]
    fn weights_normalize_and_nodes_come_from_candidates(
        loads in proptest::collection::vec((0.0f64..3.0, 0.0f64..3.0), 1..16),
    ) {
        let candidates: Vec<(NodeId, ResourceVector)> = loads
            .iter()
            .enumerate()
            .map(|(i, &(c, d))| (NodeId::new(i as u32), ResourceVector::new(c, d)))
            .collect();
        let f = LoadFunctions::paper();
        for module in [QaModule::Pr, QaModule::Ap] {
            let alloc = meta_schedule(
                &candidates,
                |v| f.load_for(module, v),
                |v| f.is_underloaded(module, v),
            )
            .unwrap();
            prop_assert!(!alloc.is_empty());
            let sum: f64 = alloc.iter().map(|a| a.weight).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "weights sum {sum}");
            for a in &alloc {
                prop_assert!(a.weight > 0.0 && a.weight <= 1.0 + 1e-9);
                prop_assert!(candidates.iter().any(|(n, _)| *n == a.node));
            }
            // No node appears twice.
            let mut ids: Vec<_> = alloc.iter().map(|a| a.node).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), alloc.len());
        }
    }

    #[test]
    fn less_loaded_nodes_never_get_smaller_weights(
        loads in proptest::collection::vec(0.0f64..0.9, 2..10),
    ) {
        // All CPU-only loads below the AP under-load threshold: every node
        // selected; weights must be monotone non-increasing in load.
        let candidates: Vec<(NodeId, ResourceVector)> = loads
            .iter()
            .enumerate()
            .map(|(i, &c)| (NodeId::new(i as u32), ResourceVector::new(c, 0.0)))
            .collect();
        let f = LoadFunctions::paper();
        let alloc = meta_schedule(
            &candidates,
            |v| f.load_for(QaModule::Ap, v),
            |v| f.is_underloaded(QaModule::Ap, v),
        )
        .unwrap();
        for a in &alloc {
            for b in &alloc {
                let la = loads[a.node.index()];
                let lb = loads[b.node.index()];
                if la < lb {
                    prop_assert!(
                        a.weight >= b.weight - 1e-9,
                        "load {la} got weight {} < load {lb}'s {}",
                        a.weight,
                        b.weight
                    );
                }
            }
        }
    }
}
