//! Series generators for the paper's analytical figures and Table 4.

use crate::inter::InterQuestionModel;
use crate::intra::IntraQuestionModel;
use qa_types::params::{GBPS, MBPS};
use qa_types::{SystemParams, Trec9Profile};
use serde::{Deserialize, Serialize};

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Processor count.
    pub n: usize,
    /// Speedup at `n`.
    pub speedup: f64,
}

/// One cell of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Cell {
    /// Disk bandwidth (bytes/s).
    pub disk_bandwidth: f64,
    /// Network bandwidth (bytes/s).
    pub net_bandwidth: f64,
    /// Practical processor limit `N_max` (Eq. 34).
    pub n_max: usize,
    /// Speedup at `N_max`.
    pub speedup: f64,
}

/// Fig. 8a: analytical *system* speedup vs processors for network bandwidths
/// of 10 Mbps, 100 Mbps and 1 Gbps. Returns one `(bandwidth, curve)` per
/// network.
pub fn figure8a(max_n: usize, step: usize) -> Vec<(f64, Vec<SpeedupPoint>)> {
    let nets = [10.0 * MBPS, 100.0 * MBPS, GBPS];
    nets.iter()
        .map(|&net| {
            let model = InterQuestionModel::new(
                SystemParams::trec9().with_net_bandwidth(net),
                Trec9Profile::average(),
            );
            let curve = (1..=max_n)
                .step_by(step.max(1))
                .map(|n| SpeedupPoint {
                    n,
                    speedup: model.speedup(n),
                })
                .collect();
            (net, curve)
        })
        .collect()
}

/// Fig. 9a: analytical *question* speedup vs processors at 1 Gbps disk for
/// network bandwidths of 1, 10, 100 Mbps and 1 Gbps.
pub fn figure9a(max_n: usize, step: usize) -> Vec<(f64, Vec<SpeedupPoint>)> {
    let nets = [MBPS, 10.0 * MBPS, 100.0 * MBPS, GBPS];
    nets.iter()
        .map(|&net| (net, intra_curve(net, GBPS, max_n, step)))
        .collect()
}

/// Fig. 9b: analytical *question* speedup vs processors at 1 Gbps network
/// for disk bandwidths of 100, 250, 500 Mbps and 1 Gbps.
pub fn figure9b(max_n: usize, step: usize) -> Vec<(f64, Vec<SpeedupPoint>)> {
    let disks = [100.0 * MBPS, 250.0 * MBPS, 500.0 * MBPS, GBPS];
    disks
        .iter()
        .map(|&disk| (disk, intra_curve(GBPS, disk, max_n, step)))
        .collect()
}

fn intra_curve(net: f64, disk: f64, max_n: usize, step: usize) -> Vec<SpeedupPoint> {
    let model = IntraQuestionModel::new(
        SystemParams::trec9()
            .with_net_bandwidth(net)
            .with_disk_bandwidth(disk),
        Trec9Profile::complex(),
    );
    (1..=max_n)
        .step_by(step.max(1))
        .map(|n| SpeedupPoint {
            n,
            speedup: model.speedup(n),
        })
        .collect()
}

/// Table 4: practical processor limits and speedups over the paper's
/// 4×4 disk × network bandwidth grid.
pub fn table4() -> Vec<Table4Cell> {
    let disks = [100.0 * MBPS, 250.0 * MBPS, 500.0 * MBPS, GBPS];
    let nets = [MBPS, 10.0 * MBPS, 100.0 * MBPS, GBPS];
    let mut out = Vec::with_capacity(16);
    for &disk in &disks {
        for &net in &nets {
            let model = IntraQuestionModel::new(
                SystemParams::trec9()
                    .with_net_bandwidth(net)
                    .with_disk_bandwidth(disk),
                Trec9Profile::complex(),
            );
            let (n_max, speedup) = model.practical_limit();
            out.push(Table4Cell {
                disk_bandwidth: disk,
                net_bandwidth: net,
                n_max,
                speedup,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8a_has_three_ordered_curves() {
        let fig = figure8a(1000, 100);
        assert_eq!(fig.len(), 3);
        // Faster network → higher curve at N = 1000-ish.
        let last: Vec<f64> = fig.iter().map(|(_, c)| c.last().unwrap().speedup).collect();
        assert!(last[0] < last[1] && last[1] < last[2], "{last:?}");
    }

    #[test]
    fn figure9a_curves_increase_with_net_bandwidth() {
        let fig = figure9a(200, 20);
        assert_eq!(fig.len(), 4);
        let at_100: Vec<f64> = fig
            .iter()
            .map(|(_, c)| c.iter().find(|p| p.n >= 100).unwrap().speedup)
            .collect();
        for w in at_100.windows(2) {
            assert!(w[0] < w[1], "{at_100:?}");
        }
    }

    #[test]
    fn figure9b_curves_decrease_with_disk_bandwidth() {
        let fig = figure9b(200, 20);
        assert_eq!(fig.len(), 4);
        let at_100: Vec<f64> = fig
            .iter()
            .map(|(_, c)| c.iter().find(|p| p.n >= 100).unwrap().speedup)
            .collect();
        for w in at_100.windows(2) {
            assert!(w[0] >= w[1], "Fig 9b ordering violated: {at_100:?}");
        }
    }

    #[test]
    fn table4_is_full_grid_with_sane_cells() {
        let t = table4();
        assert_eq!(t.len(), 16);
        for c in &t {
            assert!(c.n_max >= 5 && c.n_max <= 150, "N_max {}", c.n_max);
            assert!(c.speedup > 1.0 && c.speedup < 100.0);
            // Speedup at the practical limit is roughly half the asymptote,
            // i.e. close to N/2 (the paper's cells all satisfy this).
            let ratio = c.speedup / (c.n_max as f64);
            assert!((0.35..=0.65).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn table4_monotone_in_net_bandwidth_within_rows() {
        let t = table4();
        for row in t.chunks(4) {
            for w in row.windows(2) {
                assert!(w[0].n_max <= w[1].n_max);
                assert!(w[0].speedup <= w[1].speedup + 1e-9);
            }
        }
    }
}
