//! Parameter sensitivity analysis of the analytical model.
//!
//! Table 4 varies two parameters (network and disk bandwidth); this module
//! generalizes the exercise: perturb each model parameter by a relative
//! factor and report how the practical processor limit `N_max` and the
//! asymptotic question speedup move. Useful both as a robustness check on
//! the calibration (DESIGN.md §5) and as a capacity-planning tool —
//! "which knob should we actually buy hardware for?"

use crate::intra::IntraQuestionModel;
use qa_types::{ModuleProfile, SystemParams};
use serde::{Deserialize, Serialize};

/// The perturbable parameters of the intra-question model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parameter {
    /// `B_net` — network bandwidth.
    NetBandwidth,
    /// `B_disk` — disk bandwidth.
    DiskBandwidth,
    /// `N_p` — paragraphs retrieved.
    ParagraphsRetrieved,
    /// `N_pa` — paragraphs accepted.
    ParagraphsAccepted,
    /// `S_par` — paragraph size.
    ParagraphBytes,
    /// `T_ctl` — constant partition-control cost.
    PartitionConstant,
    /// Disk read amplification `κ`.
    ReadAmplification,
}

impl Parameter {
    /// Every perturbable parameter.
    pub const ALL: [Parameter; 7] = [
        Parameter::NetBandwidth,
        Parameter::DiskBandwidth,
        Parameter::ParagraphsRetrieved,
        Parameter::ParagraphsAccepted,
        Parameter::ParagraphBytes,
        Parameter::PartitionConstant,
        Parameter::ReadAmplification,
    ];

    /// Apply a multiplicative factor to this parameter.
    pub fn scale(self, mut params: SystemParams, factor: f64) -> SystemParams {
        match self {
            Parameter::NetBandwidth => params.net_bandwidth *= factor,
            Parameter::DiskBandwidth => params.disk_bandwidth *= factor,
            Parameter::ParagraphsRetrieved => params.paragraphs_retrieved *= factor,
            Parameter::ParagraphsAccepted => params.paragraphs_accepted *= factor,
            Parameter::ParagraphBytes => params.paragraph_bytes *= factor,
            Parameter::PartitionConstant => params.partition_constant_secs *= factor,
            Parameter::ReadAmplification => params.disk_read_amplification *= factor,
        }
        params
    }
}

/// Effect of one parameter perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Which parameter was perturbed.
    pub parameter: Parameter,
    /// The multiplicative factor applied.
    pub factor: f64,
    /// `N_max` at baseline.
    pub n_max_base: usize,
    /// `N_max` after perturbation.
    pub n_max: usize,
    /// Asymptotic speedup at baseline.
    pub limit_base: f64,
    /// Asymptotic speedup after perturbation.
    pub limit: f64,
}

impl Sensitivity {
    /// Relative change of `N_max` per relative change of the parameter
    /// (a finite-difference elasticity).
    pub fn elasticity(&self) -> f64 {
        let dp = self.factor - 1.0;
        if dp.abs() < 1e-12 || self.n_max_base == 0 {
            return 0.0;
        }
        let dn = (self.n_max as f64 - self.n_max_base as f64) / self.n_max_base as f64;
        dn / dp
    }
}

/// Perturb every parameter by `factor` and collect the effects.
pub fn sweep(params: SystemParams, profile: ModuleProfile, factor: f64) -> Vec<Sensitivity> {
    let base = IntraQuestionModel::new(params, profile);
    let n_max_base = base.n_max();
    let limit_base = base.speedup_limit();
    Parameter::ALL
        .iter()
        .map(|&p| {
            let m = IntraQuestionModel::new(p.scale(params, factor), profile);
            Sensitivity {
                parameter: p,
                factor,
                n_max_base,
                n_max: m.n_max(),
                limit_base,
                limit: m.speedup_limit(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::Trec9Profile;

    fn base() -> (SystemParams, ModuleProfile) {
        (SystemParams::trec9(), Trec9Profile::complex())
    }

    #[test]
    fn sweep_covers_every_parameter() {
        let (p, prof) = base();
        let s = sweep(p, prof, 1.5);
        assert_eq!(s.len(), Parameter::ALL.len());
        let params: Vec<_> = s.iter().map(|x| x.parameter).collect();
        for want in Parameter::ALL {
            assert!(params.contains(&want));
        }
    }

    #[test]
    fn identity_factor_changes_nothing() {
        let (p, prof) = base();
        for s in sweep(p, prof, 1.0) {
            assert_eq!(s.n_max, s.n_max_base, "{:?}", s.parameter);
            assert!((s.limit - s.limit_base).abs() < 1e-9);
            assert_eq!(s.elasticity(), 0.0);
        }
    }

    #[test]
    fn directions_match_the_model() {
        let (p, prof) = base();
        let up = sweep(p, prof, 2.0);
        let by = |param: Parameter| up.iter().find(|s| s.parameter == param).unwrap();
        // More network bandwidth → higher practical limit.
        assert!(by(Parameter::NetBandwidth).n_max >= by(Parameter::NetBandwidth).n_max_base);
        // Bigger paragraphs → more transfer overhead → lower limit.
        assert!(by(Parameter::ParagraphBytes).n_max <= by(Parameter::ParagraphBytes).n_max_base);
        // A larger constant control cost → lower limit.
        assert!(
            by(Parameter::PartitionConstant).n_max <= by(Parameter::PartitionConstant).n_max_base
        );
        // Faster disks shrink T_par → lower practical limit (Table 4 columns).
        assert!(by(Parameter::DiskBandwidth).n_max <= by(Parameter::DiskBandwidth).n_max_base);
    }

    #[test]
    fn elasticity_sign_matches_direction() {
        let (p, prof) = base();
        for s in sweep(p, prof, 1.5) {
            let dn = s.n_max as i64 - s.n_max_base as i64;
            if dn > 0 {
                assert!(s.elasticity() > 0.0, "{:?}", s.parameter);
            }
            if dn < 0 {
                assert!(s.elasticity() < 0.0, "{:?}", s.parameter);
            }
        }
    }

    #[test]
    fn scale_is_local_to_one_parameter() {
        let (p, _) = base();
        let scaled = Parameter::NetBandwidth.scale(p, 2.0);
        assert_eq!(scaled.net_bandwidth, p.net_bandwidth * 2.0);
        assert_eq!(scaled.disk_bandwidth, p.disk_bandwidth);
        assert_eq!(scaled.paragraph_bytes, p.paragraph_bytes);
    }
}
