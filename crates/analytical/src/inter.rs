//! Inter-question parallelism model (Eqs. 9–23).
//!
//! `S(N) = N / (1 + T_overhead(N) / T̄)` (Eq. 12), where the per-question
//! distribution overhead (Eq. 13) is the sum of:
//!
//! * **load monitoring** (Eq. 14): once per second for the duration of the
//!   question, each node measures its load (`T_loc`), broadcasts a packet on
//!   a medium shared by all `N` simultaneous broadcasters, and stores `N`
//!   received packets to memory;
//! * **dispatching** (Eq. 15): three dispatchers each scan the `N`-entry
//!   load table;
//! * **migration** (Eq. 20): with probabilities `p_QA`, `p_PR`, `p_AP` the
//!   question/keywords/paragraphs travel over a network whose per-flow
//!   bandwidth is `B_net / (N·q·p_net)` — `q` simultaneous questions per
//!   node, each on the wire with probability `p_net`.

use qa_types::{ModuleProfile, SystemParams};
use serde::{Deserialize, Serialize};

/// The inter-question speedup model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterQuestionModel {
    /// Model parameters (`B_net`, migration probabilities, …).
    pub params: SystemParams,
    /// Average question execution profile (`T̄` and module times).
    pub profile: ModuleProfile,
}

impl InterQuestionModel {
    /// Build from parameters and a question profile.
    pub fn new(params: SystemParams, profile: ModuleProfile) -> Self {
        Self { params, profile }
    }

    /// Average sequential question time `T̄`.
    pub fn t_bar(&self) -> f64 {
        self.profile.sequential_total()
    }

    /// Load-monitoring overhead per question (Eq. 14).
    pub fn monitoring_overhead(&self, n: usize) -> f64 {
        let p = &self.params;
        let n = n as f64;
        let per_second = p.load_measure_secs
            + p.load_packet_bytes * n / p.net_bandwidth
            + n * p.load_packet_bytes / p.mem_bandwidth;
        self.t_bar() * per_second
    }

    /// Dispatcher-scan overhead per question (Eq. 15): three dispatchers,
    /// each linear in `N`.
    pub fn dispatch_overhead(&self, n: usize) -> f64 {
        3.0 * self.params.dispatch_scan_secs_per_node * n as f64
    }

    /// Migration overhead per question (Eqs. 16–20).
    pub fn migration_overhead(&self, n: usize) -> f64 {
        let p = &self.params;
        // Bytes that cross the network when each dispatcher fires, weighted
        // by its firing probability. Question migration moves the question
        // out and the answers back (Eq. 17); PR migration moves keywords out
        // and paragraphs back (Eq. 18, keyword term negligible); AP migration
        // moves accepted paragraphs out and answers back (Eq. 19). Both
        // directions are charged.
        let qa_bytes = p.p_migrate_qa * (p.question_bytes + p.answers_requested * p.answer_bytes);
        let pr_bytes =
            p.p_migrate_pr * (p.keywords_per_question * p.keyword_bytes + p.retrieved_bytes());
        let ap_bytes = p.p_migrate_ap * (p.accepted_bytes() + p.answers_requested * p.answer_bytes);
        let bytes = 2.0 * (qa_bytes + pr_bytes + ap_bytes);
        // Effective per-flow bandwidth: B_net shared by N·q·p_net flows.
        let contention = (n as f64 * p.questions_per_node * p.p_net).max(1.0);
        bytes * contention / p.net_bandwidth
    }

    /// Total distribution overhead per question (Eq. 21).
    pub fn distribution_overhead(&self, n: usize) -> f64 {
        self.monitoring_overhead(n) + self.dispatch_overhead(n) + self.migration_overhead(n)
    }

    /// System speedup over one node for the same workload (Eq. 23).
    pub fn speedup(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let t = self.t_bar();
        n as f64 * t / (t + self.distribution_overhead(n))
    }

    /// Efficiency `E = S/N`.
    pub fn efficiency(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.speedup(n) / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::params::{GBPS, MBPS};
    use qa_types::Trec9Profile;

    fn model(net: f64) -> InterQuestionModel {
        InterQuestionModel::new(
            SystemParams::trec9().with_net_bandwidth(net),
            Trec9Profile::average(),
        )
    }

    #[test]
    fn speedup_of_one_node_is_one() {
        let m = model(GBPS);
        let s = m.speedup(1);
        assert!((s - 1.0).abs() < 0.01, "S(1) = {s}");
    }

    #[test]
    fn gigabit_network_stays_efficient_at_1000_nodes() {
        // Headline claim: "the system efficiency is good (approximately 0.9)
        // even for 1000 processors" on a fast interconnection network.
        let m = model(GBPS);
        let e = m.efficiency(1000);
        assert!(e > 0.85 && e <= 1.0, "efficiency {e}");
    }

    #[test]
    fn slower_networks_lose_efficiency() {
        let e_1g = model(GBPS).efficiency(1000);
        let e_100m = model(100.0 * MBPS).efficiency(1000);
        let e_10m = model(10.0 * MBPS).efficiency(1000);
        assert!(e_1g > e_100m, "{e_1g} vs {e_100m}");
        assert!(e_100m > e_10m, "{e_100m} vs {e_10m}");
        // 10 Mbps collapses hard at scale.
        assert!(e_10m < 0.4, "{e_10m}");
    }

    #[test]
    fn hundred_nodes_on_100mbps_stay_decent() {
        // §5.1: "the system obtains an efficiency ≈ 0.8 for 100 processors
        // and a 100 Mbps interconnection network".
        let e = model(100.0 * MBPS).efficiency(100);
        assert!(e > 0.7 && e < 1.0, "efficiency {e}");
    }

    #[test]
    fn speedup_monotonically_increases_with_n_on_fast_net() {
        let m = model(GBPS);
        let mut prev = 0.0;
        for n in [1, 10, 100, 500, 1000] {
            let s = m.speedup(n);
            assert!(s > prev, "S({n}) = {s} not increasing");
            prev = s;
        }
    }

    #[test]
    fn overhead_components_are_nonnegative_and_scale() {
        let m = model(100.0 * MBPS);
        for n in [1, 10, 100] {
            assert!(m.monitoring_overhead(n) >= 0.0);
            assert!(m.dispatch_overhead(n) >= 0.0);
            assert!(m.migration_overhead(n) >= 0.0);
        }
        assert!(m.migration_overhead(100) > m.migration_overhead(10));
        assert!(m.monitoring_overhead(100) > m.monitoring_overhead(10));
    }

    #[test]
    fn zero_nodes_degenerate() {
        let m = model(GBPS);
        assert_eq!(m.speedup(0), 0.0);
        assert_eq!(m.efficiency(0), 0.0);
    }
}
