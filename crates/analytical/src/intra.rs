//! Intra-question parallelism model (Eqs. 24–36).
//!
//! The question time on `N` nodes splits into (Eq. 31)
//!
//! ```text
//! T_N = T_par / N + T_seq
//! T_par = T_PR + T_PS + T_AP                               (Eq. 32)
//! T_seq = T_QP + T_PO + T_ctl
//!       + (N_p + N_pa)·S_par / B_net                        (network copy)
//!       + κ·(N_p + N_pa)·S_par / B_disk                     (merging reads)
//! ```
//!
//! where `T_ctl` is the constant CPU cost of the partition-control modules
//! and `κ` the disk read amplification (Eq. 33 with the two calibration
//! constants made explicit). `T_PR` itself is disk-bound: its disk portion
//! (80 %, Table 3) rescales with the modeled disk bandwidth relative to the
//! measurement platform — this is why Fig. 9b's speedup *decreases* as disk
//! bandwidth increases ("T_par decreases as disk bandwidth increases, hence
//! the distribution overhead becomes comparatively more significant").
//!
//! The practical processor limit is where the shrinking parallel part stops
//! dominating: `N_max = ⌊T_par / T_seq⌋` (Eq. 34).

use qa_types::{ModuleProfile, SystemParams};
use serde::{Deserialize, Serialize};

/// The intra-question speedup model.
///
/// # Examples
/// ```
/// use analytical::IntraQuestionModel;
/// use qa_types::{SystemParams, Trec9Profile};
///
/// let model = IntraQuestionModel::new(SystemParams::trec9(), Trec9Profile::complex());
/// assert!((model.speedup(1) - 1.0).abs() < 1e-9);
/// let (n_max, s) = model.practical_limit();
/// assert!(n_max > 10 && s > 5.0, "partitioning pays well below the limit");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntraQuestionModel {
    /// Model parameters (bandwidths, paragraph counts/sizes, …).
    pub params: SystemParams,
    /// Question profile measured at `params.ref_disk_bandwidth`.
    pub profile: ModuleProfile,
}

impl IntraQuestionModel {
    /// Build from parameters and a question profile.
    pub fn new(params: SystemParams, profile: ModuleProfile) -> Self {
        Self { params, profile }
    }

    /// `T_PR` rescaled to the modeled disk bandwidth.
    pub fn t_pr(&self) -> f64 {
        let w = self.profile.pr_weights;
        let scale = self.params.ref_disk_bandwidth / self.params.disk_bandwidth;
        self.profile.times.pr * (w.cpu + w.disk * scale)
    }

    /// The parallelizable part `T_par` (Eq. 32), disk-rescaled.
    pub fn t_par(&self) -> f64 {
        self.t_pr() + self.profile.times.ps + self.profile.times.ap
    }

    /// The sequential remainder `T_seq` (Eq. 33).
    pub fn t_seq(&self) -> f64 {
        let p = &self.params;
        let payload = p.retrieved_bytes() + p.accepted_bytes();
        self.profile.sequential_fixed()
            + p.partition_constant_secs
            + payload / p.net_bandwidth
            + p.disk_read_amplification * payload / p.disk_bandwidth
    }

    /// Sequential (1-node, no partitioning) question time at the modeled
    /// disk bandwidth.
    pub fn t1(&self) -> f64 {
        self.profile.sequential_fixed() + self.t_par()
    }

    /// Question time on `N` nodes (Eq. 31).
    pub fn t_n(&self, n: usize) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        if n == 1 {
            return self.t1();
        }
        self.t_seq() + self.t_par() / n as f64
    }

    /// Individual question speedup (Eq. 36).
    pub fn speedup(&self, n: usize) -> f64 {
        self.t1() / self.t_n(n)
    }

    /// Practical upper limit on the processor count (Eq. 34):
    /// the `N` at which `T_par / N` drops to `T_seq`.
    pub fn n_max(&self) -> usize {
        (self.t_par() / self.t_seq()).floor().max(1.0) as usize
    }

    /// A Table-4 cell: `(N_max, speedup at N_max)`.
    pub fn practical_limit(&self) -> (usize, f64) {
        let n = self.n_max();
        (n, self.speedup(n))
    }

    /// Asymptotic speedup as `N → ∞`.
    pub fn speedup_limit(&self) -> f64 {
        self.t1() / self.t_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::params::{GBPS, MBPS};
    use qa_types::Trec9Profile;

    fn model(net_mbps: f64, disk_mbps: f64) -> IntraQuestionModel {
        IntraQuestionModel::new(
            SystemParams::trec9()
                .with_net_bandwidth(net_mbps * MBPS)
                .with_disk_bandwidth(disk_mbps * MBPS),
            Trec9Profile::complex(),
        )
    }

    #[test]
    fn speedup_of_one_is_one() {
        let m = model(100.0, 100.0);
        assert!((m.speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table4_disk_100mbps_row_matches_paper() {
        // Paper row (disk 100 Mbps): N = 17, 64, 89, 93 for nets of
        // 1 Mbps, 10 Mbps, 100 Mbps, 1 Gbps. The calibrated model must land
        // within ±3 of each.
        let expected = [(1.0, 17i64), (10.0, 64), (100.0, 89), (1000.0, 93)];
        for (net, n_paper) in expected {
            let n = model(net, 100.0).n_max() as i64;
            assert!(
                (n - n_paper).abs() <= 3,
                "net {net} Mbps: N_max {n} vs paper {n_paper}"
            );
        }
    }

    #[test]
    fn table4_speedups_track_paper_factors() {
        // Paper speedups for the disk=100 Mbps row: 8.65, 32.84, 45.75, 47.73.
        let expected = [(1.0, 8.65), (10.0, 32.84), (100.0, 45.75), (1000.0, 47.73)];
        for (net, s_paper) in expected {
            let (_, s) = model(net, 100.0).practical_limit();
            let ratio = s / s_paper;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "net {net} Mbps: speedup {s:.2} vs paper {s_paper} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn n_max_grows_with_network_bandwidth() {
        for disk in [100.0, 250.0, 500.0, 1000.0] {
            let ns: Vec<usize> = [1.0, 10.0, 100.0, 1000.0]
                .iter()
                .map(|&net| model(net, disk).n_max())
                .collect();
            for w in ns.windows(2) {
                assert!(w[0] <= w[1], "N_max not monotone in net bw: {ns:?}");
            }
        }
    }

    #[test]
    fn n_max_shrinks_with_disk_bandwidth() {
        // Table 4's columns: faster disks lower the practical limit because
        // T_par shrinks while the distribution overhead does not.
        for net in [1.0, 10.0, 100.0, 1000.0] {
            let n_slow = model(net, 100.0).n_max();
            let n_fast = model(net, 1000.0).n_max();
            assert!(
                n_fast <= n_slow,
                "net {net}: N_max grew with disk bw ({n_slow} -> {n_fast})"
            );
        }
    }

    #[test]
    fn practical_range_spans_roughly_10_to_100() {
        // Abstract: "practical up to about 90 processors, depending on the
        // system parameters"; Table 4 spans 11–93.
        let mut lo = usize::MAX;
        let mut hi = 0;
        for net in [1.0, 10.0, 100.0, 1000.0] {
            for disk in [100.0, 250.0, 500.0, 1000.0] {
                let n = model(net, disk).n_max();
                lo = lo.min(n);
                hi = hi.max(n);
            }
        }
        assert!((8..=25).contains(&lo), "lower bound {lo}");
        assert!((80..=130).contains(&hi), "upper bound {hi}");
    }

    #[test]
    fn speedup_decreases_with_disk_bandwidth_fig9b() {
        let s_slow = model(1000.0, 100.0).speedup(60);
        let s_fast = model(1000.0, 1000.0).speedup(60);
        assert!(
            s_slow > s_fast,
            "Fig 9b inversion: {s_slow:.1} !> {s_fast:.1}"
        );
    }

    #[test]
    fn speedup_increases_with_network_bandwidth_fig9a() {
        let s_slow = model(1.0, 1000.0).speedup(60);
        let s_fast = model(1000.0, 1000.0).speedup(60);
        assert!(s_fast > s_slow);
    }

    #[test]
    fn speedup_saturates_below_limit() {
        let m = model(100.0, 100.0);
        let lim = m.speedup_limit();
        for n in [10, 50, 100, 1000, 100000] {
            assert!(m.speedup(n) < lim);
        }
        assert!(m.speedup(100000) > 0.95 * lim);
    }

    #[test]
    fn t_n_degenerate_inputs() {
        let m = model(100.0, 100.0);
        assert!(m.t_n(0).is_infinite());
        assert!((m.t_n(1) - m.t1()).abs() < 1e-12);
    }

    #[test]
    fn gigabit_everything_uses_params_constructor() {
        let m = IntraQuestionModel::new(
            SystemParams::trec9()
                .with_net_bandwidth(GBPS)
                .with_disk_bandwidth(GBPS),
            Trec9Profile::complex(),
        );
        assert!(m.n_max() > 10);
    }
}
