#![warn(missing_docs)]
//! The analytical performance model of Section 5.
//!
//! Two sub-models:
//!
//! * [`inter`] — inter-question parallelism (Eqs. 9–23): system speedup for
//!   `q·N` simultaneous questions when all three dispatchers run but
//!   partitioning is disabled; overheads are load monitoring (Eq. 14),
//!   dispatcher scans (Eq. 15) and question/PR/AP migrations (Eq. 20).
//!   Generates Fig. 8a.
//! * [`intra`] — intra-question parallelism (Eqs. 24–36): individual
//!   question speedup when the PR/PS/AP modules are partitioned over N
//!   nodes; the sequential remainder `T_seq` (Eq. 33) bounds the practical
//!   processor count `N_max` (Eq. 34). Generates Figs. 9a/9b and Table 4.
//!
//! Calibration notes (documented in `DESIGN.md` §5 and `EXPERIMENTS.md`):
//! the paper's Fig. 8b parameter table is garbled in the archived text; the
//! defaults in [`qa_types::SystemParams::trec9`] were fitted so the
//! disk = 100 Mbps row of Table 4 reproduces (17, 64, 89, 93) and the 1 Gbps
//! network curve of Fig. 8a stays near-linear to 1000 processors.

pub mod equations;
pub mod inter;
pub mod intra;
pub mod sensitivity;
pub mod tables;

pub use inter::InterQuestionModel;
pub use intra::IntraQuestionModel;
pub use sensitivity::{sweep, Parameter, Sensitivity};
pub use tables::{figure8a, figure9a, figure9b, table4, SpeedupPoint, Table4Cell};
