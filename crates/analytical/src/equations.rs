//! The paper's equations, one named function each.
//!
//! The model structs ([`crate::inter`], [`crate::intra`]) bundle the
//! equations for use; this module exposes them individually, named by
//! their number in the paper, so a reader can check the code against the
//! text line by line. Tests assert the bundles agree with the primitives.

use qa_types::{ModuleProfile, SystemParams};

/// Eq. 9/12 — speedup from average question time and per-question overhead:
/// `S = N / (1 + T_overhead / T̄)`.
pub fn eq12_speedup(n: usize, t_bar: f64, t_overhead: f64) -> f64 {
    if t_bar <= 0.0 {
        return 0.0;
    }
    n as f64 / (1.0 + t_overhead / t_bar)
}

/// Eq. 14 — load-monitoring overhead per question: every second the monitor
/// measures (`T_loc`), broadcasts on a medium shared by `N` broadcasters,
/// and stores `N` packets; this repeats for the question's duration `T̄`.
pub fn eq14_monitoring(n: usize, p: &SystemParams, t_bar: f64) -> f64 {
    let n = n as f64;
    t_bar
        * (p.load_measure_secs
            + p.load_packet_bytes * n / p.net_bandwidth
            + n * p.load_packet_bytes / p.mem_bandwidth)
}

/// Eq. 15 — dispatcher-scan overhead: three dispatchers, each scanning `N`
/// load-table entries.
pub fn eq15_dispatch(n: usize, p: &SystemParams) -> f64 {
    3.0 * p.dispatch_scan_secs_per_node * n as f64
}

/// Eq. 17 — question-dispatcher migration payload (bytes): the question out,
/// the `N_a` answers back.
pub fn eq17_qa_migration_bytes(p: &SystemParams) -> f64 {
    p.question_bytes + p.answers_requested * p.answer_bytes
}

/// Eq. 18 — PR-dispatcher migration payload (bytes): keywords out,
/// retrieved paragraphs back (keyword term negligible but included).
pub fn eq18_pr_migration_bytes(p: &SystemParams) -> f64 {
    p.keywords_per_question * p.keyword_bytes + p.retrieved_bytes()
}

/// Eq. 19 — AP-dispatcher migration payload (bytes): accepted paragraphs
/// out, answers back.
pub fn eq19_ap_migration_bytes(p: &SystemParams) -> f64 {
    p.accepted_bytes() + p.answers_requested * p.answer_bytes
}

/// Eq. 20 — expected migration overhead per question: probability-weighted
/// payloads, both directions, over the contended per-flow bandwidth
/// `B_net / (N·q·p_net)`.
pub fn eq20_migration(n: usize, p: &SystemParams) -> f64 {
    let bytes = 2.0
        * (p.p_migrate_qa * eq17_qa_migration_bytes(p)
            + p.p_migrate_pr * eq18_pr_migration_bytes(p)
            + p.p_migrate_ap * eq19_ap_migration_bytes(p));
    let contention = (n as f64 * p.questions_per_node * p.p_net).max(1.0);
    bytes * contention / p.net_bandwidth
}

/// Eq. 32 — the parallelizable part `T_par = T_PR + T_PS + T_AP`, with
/// `T_PR`'s disk portion rescaled to the modeled disk bandwidth.
pub fn eq32_t_par(p: &SystemParams, profile: &ModuleProfile) -> f64 {
    let w = profile.pr_weights;
    let scale = p.ref_disk_bandwidth / p.disk_bandwidth;
    profile.times.pr * (w.cpu + w.disk * scale) + profile.times.ps + profile.times.ap
}

/// Eq. 33 — the sequential remainder `T_seq`: QP + PO + the partition
/// control constant + paragraph traffic over network and (amplified) disk.
pub fn eq33_t_seq(p: &SystemParams, profile: &ModuleProfile) -> f64 {
    let payload = p.retrieved_bytes() + p.accepted_bytes();
    profile.sequential_fixed()
        + p.partition_constant_secs
        + payload / p.net_bandwidth
        + p.disk_read_amplification * payload / p.disk_bandwidth
}

/// Eq. 31 — question time on `N` nodes: `T_N = T_seq + T_par / N`.
pub fn eq31_t_n(n: usize, t_seq: f64, t_par: f64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    t_seq + t_par / n as f64
}

/// Eq. 34 — the practical processor limit: the `N` where `T_par/N` falls to
/// `T_seq`.
pub fn eq34_n_max(t_seq: f64, t_par: f64) -> usize {
    if t_seq <= 0.0 {
        return usize::MAX;
    }
    (t_par / t_seq).floor().max(1.0) as usize
}

/// Eq. 36 — individual question speedup `S_Q = T_1 / T_N`.
pub fn eq36_question_speedup(t_1: f64, t_n: f64) -> f64 {
    if t_n <= 0.0 {
        return 0.0;
    }
    t_1 / t_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inter::InterQuestionModel;
    use crate::intra::IntraQuestionModel;
    use qa_types::Trec9Profile;

    fn setup() -> (SystemParams, ModuleProfile) {
        (SystemParams::trec9(), Trec9Profile::complex())
    }

    #[test]
    fn inter_model_is_built_from_the_primitives() {
        let p = SystemParams::trec9();
        let profile = Trec9Profile::average();
        let m = InterQuestionModel::new(p, profile);
        let t_bar = profile.sequential_total();
        for n in [1usize, 10, 100, 1000] {
            assert!((m.monitoring_overhead(n) - eq14_monitoring(n, &p, t_bar)).abs() < 1e-9);
            assert!((m.dispatch_overhead(n) - eq15_dispatch(n, &p)).abs() < 1e-12);
            assert!((m.migration_overhead(n) - eq20_migration(n, &p)).abs() < 1e-9);
            let overhead =
                eq14_monitoring(n, &p, t_bar) + eq15_dispatch(n, &p) + eq20_migration(n, &p);
            assert!((m.speedup(n) - eq12_speedup(n, t_bar, overhead)).abs() < 1e-9);
        }
    }

    #[test]
    fn intra_model_is_built_from_the_primitives() {
        let (p, profile) = setup();
        let m = IntraQuestionModel::new(p, profile);
        let t_par = eq32_t_par(&p, &profile);
        let t_seq = eq33_t_seq(&p, &profile);
        assert!((m.t_par() - t_par).abs() < 1e-9);
        assert!((m.t_seq() - t_seq).abs() < 1e-9);
        assert_eq!(m.n_max(), eq34_n_max(t_seq, t_par));
        for n in [2usize, 8, 64] {
            assert!((m.t_n(n) - eq31_t_n(n, t_seq, t_par)).abs() < 1e-9);
            assert!(
                (m.speedup(n) - eq36_question_speedup(m.t1(), eq31_t_n(n, t_seq, t_par))).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn migration_payloads_ordering() {
        // Paragraph-bearing migrations dwarf the question-bearing one.
        let (p, _) = setup();
        assert!(eq18_pr_migration_bytes(&p) > eq17_qa_migration_bytes(&p));
        assert!(eq19_ap_migration_bytes(&p) > eq17_qa_migration_bytes(&p));
        assert!(eq18_pr_migration_bytes(&p) > eq19_ap_migration_bytes(&p));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(eq12_speedup(10, 0.0, 1.0), 0.0);
        assert!(eq31_t_n(0, 1.0, 10.0).is_infinite());
        assert_eq!(eq34_n_max(0.0, 10.0), usize::MAX);
        assert_eq!(eq34_n_max(100.0, 10.0), 1, "floor clamps to at least 1");
        assert_eq!(eq36_question_speedup(10.0, 0.0), 0.0);
    }
}
