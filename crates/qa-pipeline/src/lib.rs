#![warn(missing_docs)]
//! The sequential Falcon-style question/answering pipeline (Fig. 1).
//!
//! Five modules, in order:
//!
//! 1. **QP** (Question Processing) — answer-type detection + keyword
//!    extraction, delegated to [`nlp::QuestionProcessor`];
//! 2. **PR** (Paragraph Retrieval) — Boolean IR + paragraph extraction,
//!    delegated to [`ir_engine::ParagraphRetriever`];
//! 3. **PS** (Paragraph Scoring) — [`scoring`]: three surface-text
//!    heuristics estimating paragraph relevance from keyword counts and
//!    inter-keyword distance;
//! 4. **PO** (Paragraph Ordering) — [`ordering`]: sort by rank, keep only
//!    paragraphs above a threshold;
//! 5. **AP** (Answer Processing) — [`answer`]: candidate-answer detection,
//!    answer-window construction, scoring with seven heuristics, ranking.
//!
//! Each module is exposed as a standalone function over its own inputs so
//! the distributed runtime can execute *partitions* of PR/PS/AP on
//! different nodes and merge the results — exactly the structure of the
//! paper's Fig. 3 — while [`QaPipeline`] chains them sequentially with
//! per-module timing.

pub mod answer;
pub mod config;
pub mod feedback;
pub mod ordering;
pub mod pipeline;
pub mod scoring;

pub use answer::{extract_answers, extract_windows, ApItem};
pub use config::PipelineConfig;
pub use feedback::FeedbackOutput;
pub use ordering::order_paragraphs;
pub use pipeline::{PipelineOutput, QaPipeline};
pub use scoring::{score_paragraph, score_paragraphs, ScoredParagraph};
