//! Paragraph Ordering (PO): sort by rank and filter with a threshold.
//!
//! PO is one of the two inherently sequential modules (Table 2): the
//! threshold is relative to the *global* best score, so ranking and
//! filtering must be centralized even in the distributed system — which is
//! why Fig. 3 funnels every PS partition's output through one paragraph
//! merging + ordering stage.

use crate::scoring::ScoredParagraph;

/// Sort paragraphs by decreasing score and keep those above
/// `threshold × best_score`, capped at `max_accepted`.
///
/// Ties break on paragraph id so output is deterministic regardless of the
/// order in which PS partitions delivered their results.
pub fn order_paragraphs(
    mut scored: Vec<ScoredParagraph>,
    threshold: f64,
    max_accepted: usize,
) -> Vec<ScoredParagraph> {
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.paragraph.id.cmp(&b.paragraph.id))
    });
    let best = scored.first().map(|s| s.score).unwrap_or(0.0);
    if best <= 0.0 {
        return Vec::new();
    }
    let cut = best * threshold;
    let keep = scored
        .iter()
        .take_while(|s| s.score >= cut)
        .count()
        .min(max_accepted);
    scored.truncate(keep);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::{DocId, Paragraph, ParagraphId, SubCollectionId};

    fn sp(doc: u32, score: f64) -> ScoredParagraph {
        ScoredParagraph {
            paragraph: Paragraph {
                id: ParagraphId::new(DocId::new(doc), 0),
                sub_collection: SubCollectionId::new(0),
                text: format!("p{doc}"),
            },
            score,
        }
    }

    #[test]
    fn sorts_descending() {
        let out = order_paragraphs(vec![sp(1, 0.2), sp(2, 0.9), sp(3, 0.5)], 0.0, 10);
        let scores: Vec<_> = out.iter().map(|s| s.score).collect();
        assert_eq!(scores, [0.9, 0.5, 0.2]);
    }

    #[test]
    fn threshold_filters_relative_to_best() {
        let out = order_paragraphs(vec![sp(1, 1.0), sp(2, 0.5), sp(3, 0.1)], 0.4, 10);
        assert_eq!(out.len(), 2, "0.1 < 0.4 * 1.0 dropped");
    }

    #[test]
    fn cap_applies_after_threshold() {
        let input: Vec<_> = (0..20).map(|i| sp(i, 1.0)).collect();
        let out = order_paragraphs(input, 0.5, 5);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn empty_and_all_zero_inputs() {
        assert!(order_paragraphs(vec![], 0.5, 10).is_empty());
        assert!(order_paragraphs(vec![sp(1, 0.0), sp(2, 0.0)], 0.5, 10).is_empty());
    }

    #[test]
    fn deterministic_under_input_permutation() {
        let a = order_paragraphs(vec![sp(2, 0.5), sp(1, 0.5), sp(3, 0.9)], 0.1, 10);
        let b = order_paragraphs(vec![sp(3, 0.9), sp(1, 0.5), sp(2, 0.5)], 0.1, 10);
        assert_eq!(a, b);
        // Equal scores ordered by paragraph id.
        assert_eq!(a[1].paragraph.id.doc, DocId::new(1));
        assert_eq!(a[2].paragraph.id.doc, DocId::new(2));
    }
}
