//! Answer Processing (AP): candidate detection, answer windows, ranking.
//!
//! Per the paper (§2.1): "Answer processing starts with the identification
//! of candidate answers within paragraphs. Candidate answers are
//! lexico-semantic entities with the same type as the question answer type.
//! Around the candidate answers the system builds answer windows … Each
//! window is assigned a score which is a combination of seven heuristics."
//!
//! The seven heuristics implemented here mirror the frequency/distance
//! metrics of LASSO/Falcon:
//!
//! 1. keyword coverage inside the window;
//! 2. keyword order agreement with the question;
//! 3. candidate-to-keyword proximity;
//! 4. keyword density inside the window;
//! 5. keyword coverage of the whole paragraph;
//! 6. the paragraph's PS rank;
//! 7. candidate specificity (multi-word entities are more specific).

use crate::config::PipelineConfig;
use ir_engine::terms::normalize_term;
use nlp::ner::NamedEntityRecognizer;
use nlp::tokenize::{tokenize, Token};
use qa_types::{Answer, AnswerType, AnswerWindow, Paragraph, ProcessedQuestion, RankedAnswers};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One unit of AP work: a paragraph plus its PS rank.
///
/// AP items arrive sorted by decreasing rank from PO — the property the
/// ISEND partitioning algorithm relies on ("the input data is an array
/// sorted in descending order of the sub-task granularities").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApItem {
    /// The accepted paragraph.
    pub paragraph: Paragraph,
    /// PS rank (heuristic 6); PS scores are already in `[0, 1]`, so the
    /// rank is used directly — batch-relative normalization would make
    /// partitioned AP disagree with sequential AP.
    pub rank: f64,
}

/// Heuristic weights; they sum to 1.
const W: [f64; 7] = [0.24, 0.10, 0.18, 0.10, 0.12, 0.16, 0.10];

/// Extract every scored answer window from a batch — the *pre-ranking*
/// view of AP, for explainability and debugging ("why did this answer
/// win?"). Windows are returned in paragraph order, unranked and
/// undeduplicated.
pub fn extract_windows(
    items: &[ApItem],
    question: &ProcessedQuestion,
    ner: &NamedEntityRecognizer,
    cfg: &PipelineConfig,
) -> Vec<AnswerWindow> {
    let mut out = Vec::new();
    for item in items {
        for (ans, entity_type, offset, window) in candidates_in_paragraph(item, question, ner, cfg)
        {
            out.push(AnswerWindow {
                paragraph: ans.paragraph,
                candidate: ans.candidate,
                entity_type,
                window,
                offset,
                score: ans.score,
            });
        }
    }
    out
}

/// Extract and rank answers from a batch of accepted paragraphs.
///
/// This is the unit of AP partitioning: each partition runs
/// `extract_answers` over its paragraph subset and returns its local best
/// `answers_requested` answers; the initiating node merges with
/// [`RankedAnswers::merge`].
pub fn extract_answers(
    items: &[ApItem],
    question: &ProcessedQuestion,
    ner: &NamedEntityRecognizer,
    cfg: &PipelineConfig,
) -> RankedAnswers {
    let mut best: HashMap<String, Answer> = HashMap::new();

    for item in items {
        for ans in answers_in_paragraph(item, question, ner, cfg) {
            match best.get_mut(&ans.candidate) {
                Some(cur) if !Answer::better(&ans, cur) => {}
                Some(cur) => *cur = ans,
                None => {
                    best.insert(ans.candidate.clone(), ans);
                }
            }
        }
    }

    RankedAnswers::from_unsorted(best.into_values().collect(), cfg.answers_requested)
}

fn answers_in_paragraph(
    item: &ApItem,
    question: &ProcessedQuestion,
    ner: &NamedEntityRecognizer,
    cfg: &PipelineConfig,
) -> Vec<Answer> {
    candidates_in_paragraph(item, question, ner, cfg)
        .into_iter()
        .map(|(ans, _, _, _)| ans)
        .collect()
}

/// Shared candidate extraction: every typed entity with keyword support,
/// with its window metadata `(answer, entity type, byte offset, window
/// text)`.
fn candidates_in_paragraph(
    item: &ApItem,
    question: &ProcessedQuestion,
    ner: &NamedEntityRecognizer,
    cfg: &PipelineConfig,
) -> Vec<(Answer, AnswerType, usize, String)> {
    let text = &item.paragraph.text;
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return Vec::new();
    }
    let mentions = ner.recognize_tokens(text, &tokens);

    // Keyword positions in the token stream (after stemming).
    let kw_terms: Vec<&str> = question.keywords.iter().map(|k| k.term.as_str()).collect();
    let kw_pos: Vec<Vec<usize>> = {
        let mut pos = vec![Vec::new(); kw_terms.len()];
        for (i, t) in tokens.iter().enumerate() {
            let stemmed = normalize_term(&t.text);
            if let Some(k) = kw_terms.iter().position(|kt| *kt == stemmed) {
                pos[k].push(i);
            }
        }
        pos
    };
    let paragraph_coverage =
        kw_pos.iter().filter(|p| !p.is_empty()).count() as f64 / kw_terms.len().max(1) as f64;

    let wanted = question.answer_type;
    let mut out = Vec::new();
    for m in mentions {
        let type_ok = match wanted {
            AnswerType::Definition | AnswerType::Unknown => true,
            t => m.entity_type == t,
        };
        if !type_ok {
            continue;
        }
        // Candidate token span.
        let c_first = tokens.iter().position(|t| t.start >= m.start).unwrap_or(0);
        let c_last = tokens
            .iter()
            .rposition(|t| t.end <= m.end)
            .unwrap_or(c_first)
            .max(c_first);

        let win_lo = c_first.saturating_sub(cfg.window_tokens);
        let win_hi = (c_last + cfg.window_tokens).min(tokens.len() - 1);

        let score = score_window(
            &kw_pos,
            win_lo,
            win_hi,
            c_first,
            c_last,
            paragraph_coverage,
            item.rank.clamp(0.0, 1.0),
            &m.text,
        );
        if score <= 0.0 {
            continue;
        }

        let text_span = answer_span(text, &tokens, win_lo, win_hi, cfg.answer_bytes);
        let full_window = text[tokens[win_lo].start..tokens[win_hi].end].to_string();
        out.push((
            Answer {
                paragraph: item.paragraph.id,
                candidate: m.text.clone(),
                text: text_span,
                score,
            },
            m.entity_type,
            m.start,
            full_window,
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn score_window(
    kw_pos: &[Vec<usize>],
    win_lo: usize,
    win_hi: usize,
    c_first: usize,
    c_last: usize,
    paragraph_coverage: f64,
    rank: f64,
    candidate_text: &str,
) -> f64 {
    let n_kw = kw_pos.len().max(1);

    // Keyword occurrences inside the window, keeping question order info.
    let mut in_window: Vec<(usize, usize)> = Vec::new(); // (token pos, kw index)
    for (k, ps) in kw_pos.iter().enumerate() {
        for &p in ps {
            if p >= win_lo && p <= win_hi {
                in_window.push((p, k));
            }
        }
    }
    in_window.sort_unstable();

    let distinct_in_window = {
        let mut ks: Vec<usize> = in_window.iter().map(|&(_, k)| k).collect();
        ks.sort_unstable();
        ks.dedup();
        ks.len()
    };

    // h1: coverage in window.
    let h1 = distinct_in_window as f64 / n_kw as f64;

    // h2: order agreement — fraction of adjacent pairs in question order.
    let h2 = if in_window.len() >= 2 {
        let pairs = in_window.windows(2).count();
        let ordered = in_window.windows(2).filter(|w| w[0].1 <= w[1].1).count();
        ordered as f64 / pairs as f64
    } else {
        0.0
    };

    // h3: proximity of keywords to candidate.
    let h3 = if in_window.is_empty() {
        0.0
    } else {
        let total: f64 = in_window
            .iter()
            .map(|&(p, _)| {
                let d = if p < c_first {
                    c_first - p
                } else {
                    p.saturating_sub(c_last)
                };
                d as f64
            })
            .sum();
        let avg = total / in_window.len() as f64;
        1.0 / (1.0 + avg / 4.0)
    };

    // h4: density in window.
    let win_len = (win_hi - win_lo + 1).max(1);
    let h4 = (in_window.len() as f64 / win_len as f64).min(1.0);

    // h5: paragraph coverage (computed once per paragraph by the caller).
    let h5 = paragraph_coverage;

    // h6: PS rank (already in [0, 1] from PS).
    let h6 = rank.clamp(0.0, 1.0);

    // h7: candidate specificity.
    let words = candidate_text.split_whitespace().count();
    let h7 = (words.min(3) as f64) / 3.0;

    // A window with no keyword support is not an answer.
    if distinct_in_window == 0 {
        return 0.0;
    }

    W[0] * h1 + W[1] * h2 + W[2] * h3 + W[3] * h4 + W[4] * h5 + W[5] * h6 + W[6] * h7
}

/// Cut the answer text: the window tokens, truncated to `max_bytes` at a
/// character boundary.
fn answer_span(
    text: &str,
    tokens: &[Token],
    win_lo: usize,
    win_hi: usize,
    max_bytes: usize,
) -> String {
    let start = tokens[win_lo].start;
    let end = tokens[win_hi].end;
    let slice = &text[start..end];
    if slice.len() <= max_bytes {
        return slice.to_string();
    }
    let mut cut = max_bytes;
    while cut > 0 && !slice.is_char_boundary(cut) {
        cut -= 1;
    }
    slice[..cut].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlp::gazetteer::Gazetteers;
    use nlp::QuestionProcessor;
    use qa_types::{DocId, Keyword, ParagraphId, Question, QuestionId, SubCollectionId};

    fn para(doc: u32, text: &str) -> Paragraph {
        Paragraph {
            id: ParagraphId::new(DocId::new(doc), 0),
            sub_collection: SubCollectionId::new(0),
            text: text.to_string(),
        }
    }

    fn pq(text: &str) -> ProcessedQuestion {
        QuestionProcessor::new()
            .process(&Question::new(QuestionId::new(1), text))
            .unwrap()
    }

    fn location() -> String {
        Gazetteers::standard().entities(AnswerType::Location)[5].clone()
    }

    #[test]
    fn finds_planted_answer_of_matching_type() {
        let loc = location();
        let q = pq("Where is the granite quarry ledge?");
        let items = vec![ApItem {
            paragraph: para(0, &format!("The granite quarry ledge sits in {loc} today.")),
            rank: 1.0,
        }];
        let ans = extract_answers(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        assert!(!ans.is_empty());
        assert_eq!(ans.best().unwrap().candidate, loc);
    }

    #[test]
    fn rejects_wrong_entity_type() {
        let q = pq("Where is the granite quarry ledge?");
        // Paragraph mentions a year (DATE), not a location.
        let items = vec![ApItem {
            paragraph: para(0, "The granite quarry ledge opened in 1950."),
            rank: 1.0,
        }];
        let ans = extract_answers(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        assert!(ans.is_empty());
    }

    #[test]
    fn candidate_without_keyword_support_is_dropped() {
        let loc = location();
        let q = pq("Where is the granite quarry ledge?");
        // Entity present but zero question keywords anywhere near it.
        let filler = "unrelated words only ".repeat(20);
        let items = vec![ApItem {
            paragraph: para(0, &format!("{filler} {loc} {filler}")),
            rank: 1.0,
        }];
        let ans = extract_answers(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        assert!(ans.is_empty());
    }

    #[test]
    fn closer_keywords_score_higher() {
        let loc = location();
        let q = pq("Where is the granite quarry ledge?");
        let near = vec![ApItem {
            paragraph: para(0, &format!("The granite quarry ledge is in {loc}.")),
            rank: 1.0,
        }];
        let far = vec![ApItem {
            paragraph: para(
                1,
                &format!(
                    "granite quarry ledge. {} In the end we reached {loc}.",
                    "filler words abound here truly. ".repeat(3)
                ),
            ),
            rank: 1.0,
        }];
        let ner = NamedEntityRecognizer::standard();
        let cfg = PipelineConfig::default();
        let a = extract_answers(&near, &q, &ner, &cfg);
        let b = extract_answers(&far, &q, &ner, &cfg);
        assert!(!a.is_empty());
        let sa = a.best().unwrap().score;
        let sb = b.best().map(|x| x.score).unwrap_or(0.0);
        assert!(sa > sb, "{sa} vs {sb}");
    }

    #[test]
    fn answer_text_respects_byte_budget() {
        let loc = location();
        let q = pq("Where is the granite quarry ledge?");
        let items = vec![ApItem {
            paragraph: para(
                0,
                &format!("The granite quarry ledge near {loc} extends over many words and keeps going with more description."),
            ),
            rank: 1.0,
        }];
        let cfg = PipelineConfig::short_answers();
        let ans = extract_answers(&items, &q, &NamedEntityRecognizer::standard(), &cfg);
        let best = ans.best().unwrap();
        assert!(best.text.len() <= 50, "{} bytes", best.text.len());
    }

    #[test]
    fn keeps_at_most_requested_answers() {
        let g = Gazetteers::standard();
        let q = pq("Where is the granite quarry ledge?");
        let items: Vec<ApItem> = (0..10)
            .map(|i| {
                let loc = &g.entities(AnswerType::Location)[i];
                ApItem {
                    paragraph: para(i as u32, &format!("The granite quarry ledge is in {loc}.")),
                    rank: 1.0 - i as f64 * 0.05,
                }
            })
            .collect();
        let cfg = PipelineConfig {
            answers_requested: 3,
            ..PipelineConfig::default()
        };
        let ans = extract_answers(&items, &q, &NamedEntityRecognizer::standard(), &cfg);
        assert_eq!(ans.len(), 3);
    }

    #[test]
    fn higher_ranked_paragraph_wins_ties() {
        let loc = location();
        let q = pq("Where is the granite quarry ledge?");
        let text = format!("The granite quarry ledge is in {loc}.");
        let items = vec![
            ApItem {
                paragraph: para(0, &text),
                rank: 0.2,
            },
            ApItem {
                paragraph: para(1, &text),
                rank: 1.0,
            },
        ];
        let ans = extract_answers(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        // Same candidate in both: deduped, and the surviving answer is the
        // higher-ranked paragraph's.
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.best().unwrap().paragraph.doc, DocId::new(1));
    }

    #[test]
    fn definition_questions_accept_any_entity() {
        let q = ProcessedQuestion {
            question: Question::new(QuestionId::new(2), "What is a ledge?"),
            answer_type: AnswerType::Definition,
            keywords: vec![Keyword::new("ledge", 1.0)],
        };
        let items = vec![ApItem {
            paragraph: para(0, "The ledge was surveyed in 1984."),
            rank: 1.0,
        }];
        let ans = extract_answers(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        assert!(!ans.is_empty());
    }

    #[test]
    fn extract_windows_exposes_the_pre_ranking_view() {
        let loc = location();
        let q = pq("Where is the granite quarry ledge?");
        let text = format!("The granite quarry ledge sits in {loc} today.");
        let items = vec![ApItem {
            paragraph: para(0, &text),
            rank: 1.0,
        }];
        let windows = extract_windows(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        assert!(!windows.is_empty());
        let w = &windows[0];
        assert_eq!(w.candidate, loc);
        assert_eq!(w.entity_type, AnswerType::Location);
        assert!(w.window.contains(&loc));
        assert_eq!(&text[w.offset..w.offset + loc.len()], loc.as_str());
        assert!(w.score > 0.0);
        // The ranked answers are a subset of the windows' candidates.
        let ans = extract_answers(
            &items,
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        for a in &ans.answers {
            assert!(windows.iter().any(|w| w.candidate == a.candidate));
        }
    }

    #[test]
    fn empty_items_empty_answers() {
        let q = pq("Where is the granite quarry ledge?");
        let ans = extract_answers(
            &[],
            &q,
            &NamedEntityRecognizer::standard(),
            &PipelineConfig::default(),
        );
        assert!(ans.is_empty());
    }
}
