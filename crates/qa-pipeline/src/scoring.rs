//! Paragraph Scoring (PS): three surface-text heuristics.
//!
//! Per the paper (§2.1), PS "assigns a rank to each paragraph provided by
//! the PR module using three surface-text heuristics. The heuristics
//! estimate the relevance of each paragraph based on the number of keywords
//! present in the paragraph and the inter-keyword distance" — the LASSO
//! heuristics. Our three:
//!
//! 1. **coverage** — fraction of distinct question keywords present;
//! 2. **density** — keyword occurrences relative to paragraph length;
//! 3. **proximity** — inverse length of the smallest token window that
//!    contains every present keyword.

use ir_engine::terms::index_terms;
use qa_types::{Keyword, Paragraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A paragraph plus its PS rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredParagraph {
    /// The scored paragraph.
    pub paragraph: Paragraph,
    /// Combined heuristic score in `[0, 1]`-ish range (weighted sum of three
    /// components each in `[0, 1]`).
    pub score: f64,
}

/// Weights of the three PS heuristics (sum to 1).
const W_COVERAGE: f64 = 0.5;
const W_DENSITY: f64 = 0.2;
const W_PROXIMITY: f64 = 0.3;

/// Score one paragraph against the question keywords.
pub fn score_paragraph(paragraph: &Paragraph, keywords: &[Keyword]) -> f64 {
    if keywords.is_empty() {
        return 0.0;
    }
    let terms = index_terms(&paragraph.text);
    if terms.is_empty() {
        return 0.0;
    }

    let kw_index: HashMap<&str, usize> = keywords
        .iter()
        .enumerate()
        .map(|(i, k)| (k.term.as_str(), i))
        .collect();

    // Positions of each keyword in the term stream.
    let mut positions: Vec<Vec<usize>> = vec![Vec::new(); keywords.len()];
    let mut occurrences = 0usize;
    for (pos, t) in terms.iter().enumerate() {
        if let Some(&k) = kw_index.get(t.as_str()) {
            positions[k].push(pos);
            occurrences += 1;
        }
    }

    let present = positions.iter().filter(|p| !p.is_empty()).count();
    if present == 0 {
        return 0.0;
    }

    let coverage = present as f64 / kw_index.len() as f64;
    let density = (occurrences as f64 / terms.len() as f64).min(1.0);
    let proximity = match smallest_window(&positions) {
        Some(w) if present > 1 => (present as f64 / w as f64).min(1.0),
        _ => {
            if present == 1 {
                0.5 // single keyword: neutral proximity
            } else {
                0.0
            }
        }
    };

    W_COVERAGE * coverage + W_DENSITY * density + W_PROXIMITY * proximity
}

/// Size (in tokens, inclusive) of the smallest window containing at least
/// one occurrence of every *present* keyword. `None` when fewer than two
/// keywords are present.
fn smallest_window(positions: &[Vec<usize>]) -> Option<usize> {
    // Merge all (position, keyword) pairs, sorted by position.
    let mut events: Vec<(usize, usize)> = Vec::new();
    let mut wanted = 0usize;
    for (k, ps) in positions.iter().enumerate() {
        if ps.is_empty() {
            continue;
        }
        wanted += 1;
        for &p in ps {
            events.push((p, k));
        }
    }
    if wanted < 2 {
        return None;
    }
    events.sort_unstable();

    // Classic minimum covering window sweep.
    let mut counts: HashMap<usize, usize> = HashMap::new();
    let mut have = 0usize;
    let mut best: Option<usize> = None;
    let mut lo = 0usize;
    for hi in 0..events.len() {
        let c = counts.entry(events[hi].1).or_insert(0);
        if *c == 0 {
            have += 1;
        }
        *c += 1;
        while have == wanted {
            let width = events[hi].0 - events[lo].0 + 1;
            best = Some(best.map_or(width, |b| b.min(width)));
            let c = counts.get_mut(&events[lo].1).expect("tracked keyword");
            *c -= 1;
            if *c == 0 {
                have -= 1;
            }
            lo += 1;
        }
    }
    best
}

/// Score a batch of paragraphs (the PS module proper). Order is preserved —
/// ordering is PO's job.
pub fn score_paragraphs(paragraphs: Vec<Paragraph>, keywords: &[Keyword]) -> Vec<ScoredParagraph> {
    paragraphs
        .into_iter()
        .map(|p| {
            let score = score_paragraph(&p, keywords);
            ScoredParagraph {
                paragraph: p,
                score,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::{DocId, ParagraphId, SubCollectionId};

    fn para(text: &str) -> Paragraph {
        Paragraph {
            id: ParagraphId::new(DocId::new(0), 0),
            sub_collection: SubCollectionId::new(0),
            text: text.to_string(),
        }
    }

    fn kws(terms: &[&str]) -> Vec<Keyword> {
        terms.iter().map(|t| Keyword::new(*t, 1.0)).collect()
    }

    #[test]
    fn full_coverage_beats_partial() {
        let k = kws(&["alpha", "beta", "gamma"]);
        let all = score_paragraph(&para("alpha beta gamma together"), &k);
        let two = score_paragraph(&para("alpha beta filler filler"), &k);
        let one = score_paragraph(&para("alpha filler filler filler"), &k);
        assert!(all > two, "{all} vs {two}");
        assert!(two > one, "{two} vs {one}");
    }

    #[test]
    fn tight_windows_beat_spread_keywords() {
        let k = kws(&["alpha", "beta"]);
        let tight = score_paragraph(&para("alpha beta filler filler filler filler"), &k);
        let spread = score_paragraph(&para("alpha filler filler filler filler beta"), &k);
        assert!(tight > spread, "{tight} vs {spread}");
    }

    #[test]
    fn no_keywords_scores_zero() {
        assert_eq!(score_paragraph(&para("some text here"), &[]), 0.0);
        let k = kws(&["missing"]);
        assert_eq!(
            score_paragraph(&para("completely unrelated words"), &k),
            0.0
        );
    }

    #[test]
    fn empty_paragraph_scores_zero() {
        let k = kws(&["alpha"]);
        assert_eq!(score_paragraph(&para(""), &k), 0.0);
        assert_eq!(score_paragraph(&para("the of and"), &k), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        let k = kws(&["alpha", "beta"]);
        for text in [
            "alpha beta",
            "alpha alpha alpha beta beta beta",
            "alpha",
            "alpha beta alpha beta alpha beta alpha beta",
        ] {
            let s = score_paragraph(&para(text), &k);
            assert!((0.0..=1.0).contains(&s), "{text} -> {s}");
        }
    }

    #[test]
    fn smallest_window_sweep() {
        // keyword 0 at {0, 9}, keyword 1 at {5}: best window is 5..=9 -> 5.
        let positions = vec![vec![0, 9], vec![5]];
        assert_eq!(smallest_window(&positions), Some(5));
        // Single present keyword -> None.
        assert_eq!(smallest_window(&[vec![3], vec![]]), None);
        // Adjacent keywords -> window 2.
        assert_eq!(smallest_window(&[vec![4], vec![5]]), Some(2));
    }

    #[test]
    fn batch_preserves_order_and_length() {
        let k = kws(&["alpha"]);
        let ps = vec![para("alpha"), para("nothing"), para("alpha alpha")];
        let scored = score_paragraphs(ps.clone(), &k);
        assert_eq!(scored.len(), 3);
        for (s, p) in scored.iter().zip(&ps) {
            assert_eq!(s.paragraph.text, p.text);
        }
        assert!(scored[0].score > scored[1].score);
    }

    #[test]
    fn stemmed_keywords_match_inflected_text() {
        // Keywords arrive stemmed from QP; document text is stemmed at
        // scoring time, so "cities" matches keyword "city".
        let k = kws(&["city"]);
        let s = score_paragraph(&para("the cities were large"), &k);
        assert!(s > 0.0);
    }
}
