//! Pipeline tuning parameters.

use ir_engine::RetrievalConfig;
use qa_types::answer::{LONG_ANSWER_BYTES, SHORT_ANSWER_BYTES};
use serde::{Deserialize, Serialize};

/// Configuration of the sequential pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Paragraph-retrieval knobs.
    pub retrieval: RetrievalConfig,
    /// PO keeps paragraphs scoring at least this fraction of the best
    /// paragraph's score ("only the paragraphs with a rank over a certain
    /// threshold are passed to the next stage").
    pub po_threshold: f64,
    /// Hard cap on accepted paragraphs (bounds AP work).
    pub max_accepted: usize,
    /// Number of answers requested by the user (`N_a`).
    pub answers_requested: usize,
    /// Answer window size in bytes (50 for TREC short, 250 for long).
    pub answer_bytes: usize,
    /// Answer-window radius in tokens around the candidate.
    pub window_tokens: usize,
}

impl PipelineConfig {
    /// TREC "short answer" configuration (50-byte windows).
    pub fn short_answers() -> Self {
        Self {
            answer_bytes: SHORT_ANSWER_BYTES,
            ..Self::default()
        }
    }

    /// TREC "long answer" configuration (250-byte windows).
    pub fn long_answers() -> Self {
        Self {
            answer_bytes: LONG_ANSWER_BYTES,
            ..Self::default()
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            retrieval: RetrievalConfig::default(),
            po_threshold: 0.25,
            max_accepted: 512,
            answers_requested: 5,
            answer_bytes: LONG_ANSWER_BYTES,
            window_tokens: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_set_answer_bytes() {
        assert_eq!(PipelineConfig::short_answers().answer_bytes, 50);
        assert_eq!(PipelineConfig::long_answers().answer_bytes, 250);
    }

    #[test]
    fn default_is_sane() {
        let c = PipelineConfig::default();
        assert!(c.po_threshold > 0.0 && c.po_threshold < 1.0);
        assert!(c.max_accepted > 0);
        assert!(c.answers_requested > 0);
        assert!(c.window_tokens > 0);
    }
}
