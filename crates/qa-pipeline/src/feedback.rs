//! Falcon-style feedback loops ("boosting").
//!
//! The real Falcon's signature feature (Harabagiu et al., TREC-9) is a set
//! of retrieval feedback loops: when answer extraction comes back empty,
//! the system *relaxes* the Boolean query — dropping the least important
//! keywords — and retries. The IPPS paper inherits this behaviour inside
//! its PR module ("Falcon currently uses a Boolean IR system" whose query
//! is built from the QP keyword set); this module implements the loop on
//! top of the sequential pipeline.
//!
//! Strategy: attempt 0 uses the full keyword set; each following attempt
//! drops the lowest-weight keyword (QP orders keywords by weight), down to
//! a floor of two keywords. The first attempt that yields answers wins.

use crate::pipeline::{PipelineOutput, QaPipeline};
use qa_types::{ProcessedQuestion, QaError, Question};

/// Outcome of a feedback run.
#[derive(Debug, Clone)]
pub struct FeedbackOutput {
    /// The final (answering or last) pipeline output.
    pub output: PipelineOutput,
    /// Number of attempts executed (1 = no retry needed).
    pub attempts: usize,
    /// Keywords used by the final attempt.
    pub final_keywords: usize,
}

impl QaPipeline {
    /// Answer with Falcon's keyword-relaxation feedback loop: retry with
    /// progressively fewer keywords until answers appear or the keyword
    /// floor (2) is reached. `max_attempts` bounds the loop.
    pub fn answer_with_feedback(
        &self,
        question: &Question,
        max_attempts: usize,
    ) -> Result<FeedbackOutput, QaError> {
        let max_attempts = max_attempts.max(1);
        let mut attempts = 0usize;
        let mut drop_count = 0usize;

        loop {
            attempts += 1;
            let out = if drop_count == 0 {
                self.answer(question)?
            } else {
                // Re-run with a truncated keyword set.
                let processed = self.process_question(question)?;
                let keep = processed.keywords.len().saturating_sub(drop_count).max(2);
                let relaxed = ProcessedQuestion {
                    keywords: processed.keywords[..keep.min(processed.keywords.len())].to_vec(),
                    ..processed
                };
                self.answer_processed(&relaxed)?
            };

            let exhausted = attempts >= max_attempts || out.processed.keywords.len() <= 2;
            if !out.answers.is_empty() || exhausted {
                let final_keywords = out.processed.keywords.len();
                return Ok(FeedbackOutput {
                    output: out,
                    attempts,
                    final_keywords,
                });
            }
            drop_count += 1;
            let _ = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use corpus::{Corpus, CorpusConfig, QuestionGenerator};
    use ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
    use nlp::NamedEntityRecognizer;
    use qa_types::QuestionId;
    use std::sync::Arc;

    fn pipeline(seed: u64) -> (Corpus, QaPipeline) {
        let c = Corpus::generate(CorpusConfig::small(seed)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let qa = QaPipeline::new(
            ParagraphRetriever::new(index, store, RetrievalConfig::default()),
            NamedEntityRecognizer::standard(),
            PipelineConfig::default(),
        );
        (c, qa)
    }

    #[test]
    fn answerable_question_needs_one_attempt() {
        let (c, qa) = pipeline(301);
        let gq = QuestionGenerator::new(&c, 1).generate(1).remove(0);
        let fb = qa.answer_with_feedback(&gq.question, 4).unwrap();
        assert_eq!(fb.attempts, 1);
        assert!(!fb.output.answers.is_empty());
    }

    #[test]
    fn noisy_keywords_trigger_relaxation() {
        let (c, qa) = pipeline(302);
        let gq = QuestionGenerator::new(&c, 2).generate(1).remove(0);
        // Poison the question with off-corpus words that become top-weight
        // keywords (capitalized), breaking the strict retrieval.
        let poisoned = Question::new(
            QuestionId::new(7777),
            format!("{} Zzyqx Vrrblat", gq.question.text.trim_end_matches('?')),
        );
        let strict = qa.answer(&poisoned).unwrap();
        let fb = qa.answer_with_feedback(&poisoned, 6).unwrap();
        assert!(fb.attempts >= 1, "feedback ran {} attempts", fb.attempts);
        // The loop must do at least as well as the single-shot pipeline.
        assert!(fb.output.answers.len() >= strict.answers.len());
    }

    #[test]
    fn unanswerable_question_stops_at_bound() {
        let (_, qa) = pipeline(303);
        let q = Question::new(
            QuestionId::new(1),
            "Where is the Qqqqzz Wwwxx Vvvyy Rrrtt Nnnpp?",
        );
        let fb = qa.answer_with_feedback(&q, 3).unwrap();
        assert!(fb.attempts <= 3);
        assert!(fb.output.answers.is_empty());
    }

    #[test]
    fn attempt_bound_of_zero_is_clamped_to_one() {
        let (c, qa) = pipeline(304);
        let gq = QuestionGenerator::new(&c, 3).generate(1).remove(0);
        let fb = qa.answer_with_feedback(&gq.question, 0).unwrap();
        assert_eq!(fb.attempts, 1);
    }
}
