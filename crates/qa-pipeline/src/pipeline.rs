//! The end-to-end sequential pipeline with per-module timing.

use crate::answer::{extract_answers, ApItem};
use crate::config::PipelineConfig;
use crate::ordering::order_paragraphs;
use crate::scoring::score_paragraphs;
use ir_engine::{ParagraphRetriever, RetrievalResult};
use nlp::{NamedEntityRecognizer, QuestionProcessor};
use qa_types::{ModuleTimings, ProcessedQuestion, QaError, QaModule, Question, RankedAnswers};
use std::time::Instant;

/// Everything the pipeline produces for one question.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// QP output (answer type + keywords).
    pub processed: ProcessedQuestion,
    /// Ranked answers.
    pub answers: RankedAnswers,
    /// Wall-clock time per module (Tables 2 and 8 rows).
    pub timings: ModuleTimings,
    /// Number of paragraphs retrieved by PR (`N_p`).
    pub paragraphs_retrieved: usize,
    /// Number of paragraphs accepted by PO (`N_pa`).
    pub paragraphs_accepted: usize,
    /// Simulated disk bytes touched by PR.
    pub pr_io_bytes: u64,
}

/// The sequential Falcon pipeline.
#[derive(Debug, Clone)]
pub struct QaPipeline {
    qp: QuestionProcessor,
    retriever: ParagraphRetriever,
    ner: NamedEntityRecognizer,
    config: PipelineConfig,
}

impl QaPipeline {
    /// Assemble a pipeline from its substrates.
    pub fn new(
        retriever: ParagraphRetriever,
        ner: NamedEntityRecognizer,
        config: PipelineConfig,
    ) -> Self {
        Self {
            qp: QuestionProcessor::new(),
            retriever,
            ner,
            config,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The paragraph retriever (shared with distributed PR partitions).
    pub fn retriever(&self) -> &ParagraphRetriever {
        &self.retriever
    }

    /// The entity recognizer (shared with distributed AP partitions).
    pub fn ner(&self) -> &NamedEntityRecognizer {
        &self.ner
    }

    /// Run QP alone (used by the feedback loop to relax keywords between
    /// attempts without re-running retrieval).
    pub fn process_question(&self, question: &Question) -> Result<ProcessedQuestion, QaError> {
        self.qp.process(question)
    }

    /// Answer a question, timing each module.
    pub fn answer(&self, question: &Question) -> Result<PipelineOutput, QaError> {
        // QP.
        let t = Instant::now();
        let processed = self.qp.process(question)?;
        let mut timings = ModuleTimings::default();
        timings.add_duration(QaModule::Qp, t.elapsed());
        self.answer_with_timings(processed, timings)
    }

    /// Run the post-QP pipeline (PR → PS → PO → AP) on an already-processed
    /// question — the entry point for relaxed feedback attempts.
    pub fn answer_processed(
        &self,
        processed: &ProcessedQuestion,
    ) -> Result<PipelineOutput, QaError> {
        self.answer_with_timings(processed.clone(), ModuleTimings::default())
    }

    fn answer_with_timings(
        &self,
        processed: ProcessedQuestion,
        mut timings: ModuleTimings,
    ) -> Result<PipelineOutput, QaError> {
        // PR over all sub-collections.
        let t = Instant::now();
        let retrieval: RetrievalResult = self.retriever.retrieve_all(&processed.keywords);
        timings.add_duration(QaModule::Pr, t.elapsed());
        let paragraphs_retrieved = retrieval.paragraphs.len();
        let pr_io_bytes = retrieval.io_bytes;

        // PS.
        let t = Instant::now();
        let scored = score_paragraphs(retrieval.paragraphs, &processed.keywords);
        timings.add_duration(QaModule::Ps, t.elapsed());

        // PO.
        let t = Instant::now();
        let accepted = order_paragraphs(scored, self.config.po_threshold, self.config.max_accepted);
        timings.add_duration(QaModule::Po, t.elapsed());
        let paragraphs_accepted = accepted.len();

        // AP.
        let t = Instant::now();
        let items: Vec<ApItem> = accepted
            .into_iter()
            .map(|s| ApItem {
                paragraph: s.paragraph,
                rank: s.score,
            })
            .collect();
        let answers = extract_answers(&items, &processed, &self.ner, &self.config);
        timings.add_duration(QaModule::Ap, t.elapsed());

        Ok(PipelineOutput {
            processed,
            answers,
            timings,
            paragraphs_retrieved,
            paragraphs_accepted,
            pr_io_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig, QuestionGenerator};
    use ir_engine::{DocumentStore, RetrievalConfig, ShardedIndex};
    use std::sync::Arc;

    fn pipeline(seed: u64) -> (Corpus, QaPipeline) {
        let c = Corpus::generate(CorpusConfig::small(seed)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let qa = QaPipeline::new(
            retriever,
            NamedEntityRecognizer::standard(),
            PipelineConfig::default(),
        );
        (c, qa)
    }

    #[test]
    fn answers_planted_questions_end_to_end() {
        let (c, qa) = pipeline(77);
        let qs = QuestionGenerator::new(&c, 1).generate(30);
        let mut correct = 0;
        let mut answered = 0;
        for gq in &qs {
            let out = qa.answer(&gq.question).unwrap();
            if !out.answers.is_empty() {
                answered += 1;
            }
            if out
                .answers
                .answers
                .iter()
                .any(|a| a.candidate == gq.expected_answer)
            {
                correct += 1;
            }
        }
        assert!(answered >= 25, "answered {answered}/30");
        // The planted answer must rank among the returned answers for a
        // clear majority of questions (Falcon hit 66–86 % on real TREC).
        assert!(correct >= 20, "correct {correct}/30");
    }

    #[test]
    fn timings_populate_every_stage() {
        let (c, qa) = pipeline(78);
        let qs = QuestionGenerator::new(&c, 2).generate(1);
        let out = qa.answer(&qs[0].question).unwrap();
        // Times are tiny but non-negative; totals consistent.
        assert!(out.timings.total() >= out.timings.ap);
        assert!(out.timings.qp >= 0.0 && out.timings.pr >= 0.0);
        assert!(out.paragraphs_retrieved >= out.paragraphs_accepted);
        assert!(out.pr_io_bytes > 0);
    }

    #[test]
    fn unanswerable_question_yields_empty_not_error() {
        let (_, qa) = pipeline(79);
        let q = Question::new(
            qa_types::QuestionId::new(9999),
            "Where is the zzznope qqqnothing?",
        );
        let out = qa.answer(&q).unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn stopword_only_question_errors() {
        let (_, qa) = pipeline(80);
        let q = Question::new(qa_types::QuestionId::new(9998), "Who is he?");
        assert!(qa.answer(&q).is_err());
    }

    #[test]
    fn deterministic_output() {
        let (c, qa) = pipeline(81);
        let qs = QuestionGenerator::new(&c, 3).generate(5);
        for gq in &qs {
            let a = qa.answer(&gq.question).unwrap();
            let b = qa.answer(&gq.question).unwrap();
            assert_eq!(a.answers, b.answers);
        }
    }
}
