/root/repo/crates/xtask/target/release/xtask: /root/repo/crates/xtask/src/lib.rs /root/repo/crates/xtask/src/main.rs /root/repo/crates/xtask/src/rules.rs /root/repo/crates/xtask/src/scan.rs
