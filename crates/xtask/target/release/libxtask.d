/root/repo/crates/xtask/target/release/libxtask.rlib: /root/repo/crates/xtask/src/lib.rs /root/repo/crates/xtask/src/rules.rs /root/repo/crates/xtask/src/scan.rs
