/root/repo/crates/xtask/target/release/deps/xtask-17fb87dc96d9d7cb.d: src/main.rs

/root/repo/crates/xtask/target/release/deps/xtask-17fb87dc96d9d7cb: src/main.rs

src/main.rs:
