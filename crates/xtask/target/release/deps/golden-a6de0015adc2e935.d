/root/repo/crates/xtask/target/release/deps/golden-a6de0015adc2e935.d: tests/golden.rs

/root/repo/crates/xtask/target/release/deps/golden-a6de0015adc2e935: tests/golden.rs

tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
