/root/repo/crates/xtask/target/release/deps/xtask-db15bb617dcf467e.d: src/main.rs

/root/repo/crates/xtask/target/release/deps/xtask-db15bb617dcf467e: src/main.rs

src/main.rs:
