/root/repo/crates/xtask/target/release/deps/xtask-162829946c1e7240.d: src/lib.rs src/rules.rs src/scan.rs

/root/repo/crates/xtask/target/release/deps/xtask-162829946c1e7240: src/lib.rs src/rules.rs src/scan.rs

src/lib.rs:
src/rules.rs:
src/scan.rs:
