/root/repo/crates/xtask/target/release/deps/xtask-68b982ff369bfd67.d: src/lib.rs src/rules.rs src/scan.rs

/root/repo/crates/xtask/target/release/deps/libxtask-68b982ff369bfd67.rlib: src/lib.rs src/rules.rs src/scan.rs

/root/repo/crates/xtask/target/release/deps/libxtask-68b982ff369bfd67.rmeta: src/lib.rs src/rules.rs src/scan.rs

src/lib.rs:
src/rules.rs:
src/scan.rs:
