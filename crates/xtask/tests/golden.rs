//! Golden tests for dqa-lint: seeded-violation fixtures must flag every
//! rule at exact file:line positions, waivers and exemptions must hold,
//! and the clean fixture (plus the real workspace) must produce zero
//! diagnostics.

use std::path::PathBuf;
use xtask::{lint_source, render_json, run_lint};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violations_fixture_flags_each_rule_at_exact_lines() {
    let (checked, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    assert_eq!(checked, 9, "fixture tree should contribute 9 source files");

    let got: Vec<(&str, &str, u32, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.rule, d.line, d.matched.as_str()))
        .collect();
    let sim = "crates/cluster-sim/src/lib.rs";
    let obs = "crates/dqa-obs/src/trace.rs";
    let rt = "crates/dqa-runtime/src/lib.rs";
    let fed = "crates/federation/src/lib.rs";
    let fedl = "crates/federation/src/loader.rs";
    let reb = "crates/rebalance/src/lib.rs";
    let want = vec![
        (sim, "unordered-state", 4, "HashMap"),
        (sim, "wall-clock", 5, "std::time::Instant"),
        (sim, "wall-clock", 8, "std::time::Instant"),
        (sim, "unordered-state", 9, "HashMap"),
        (sim, "wall-clock", 13, "thread::sleep"),
        (sim, "unseeded-rng", 22, "rand::thread_rng"),
        (obs, "raw-instant", 8, "Instant::now()"),
        (rt, "runtime-panic", 5, ".unwrap()"),
        (rt, "runtime-panic", 9, ".expect()"),
        (rt, "runtime-panic", 13, "panic!"),
        (rt, "runtime-panic", 17, "unreachable!"),
        (rt, "unbounded-channel", 21, "crossbeam_channel::unbounded"),
        (rt, "raw-instant", 26, "Instant::now()"),
        (rt, "unbounded-recv", 34, ".recv()"),
        (rt, "raw-fs-write", 54, "fs::write"),
        (rt, "raw-fs-write", 58, "File::create"),
        (fed, "unbounded-channel", 5, "crossbeam_channel::unbounded"),
        (fedl, "unchecked-decode", 4, "persist::decode_index"),
        (fedl, "unchecked-decode", 7, "persist::decode_index"),
        (fedl, "unchecked-decode", 11, "persist::decode_index"),
        (reb, "raw-instant", 6, "Instant::now()"),
        (reb, "unbounded-recv", 10, ".recv()"),
        (reb, "unbounded-channel", 14, "crossbeam_channel::unbounded"),
        ("src/lib.rs", "unseeded-rng", 5, "SeedableRng::from_entropy"),
    ];
    assert_eq!(got, want);
}

#[test]
fn rebalance_inherits_clock_and_channel_rules_but_not_panic_rules() {
    let (_, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    let reb: Vec<_> = diags
        .iter()
        .filter(|d| d.file.ends_with("rebalance/src/lib.rs"))
        .collect();
    // Exactly the three seeded threaded-runtime flags: the `.unwrap()`
    // (runtime-panic stays dqa-runtime-only) and the pragma'd
    // Instant/recv must not.
    assert_eq!(reb.len(), 3, "rebalance fixture diags: {reb:?}");
    assert!(
        reb.iter().all(|d| d.rule != "runtime-panic"),
        "runtime-panic leaked into the rebalance scope: {reb:?}"
    );
}

#[test]
fn federation_inherits_channel_rules_but_not_panic_rules() {
    let (_, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    let fed: Vec<_> = diags
        .iter()
        .filter(|d| d.file.ends_with("federation/src/lib.rs"))
        .collect();
    // Exactly the seeded unbounded() flags: the `.unwrap()` (runtime-panic
    // stays dqa-runtime-only) and the pragma'd Instant/recv must not.
    assert_eq!(fed.len(), 1, "federation fixture diags: {fed:?}");
    assert_eq!(fed[0].rule, "unbounded-channel");
}

#[test]
fn pragma_and_test_code_waivers_hold_in_violations_fixture() {
    let (_, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    // Line 18 of the cluster-sim fixture carries a pragma'd Instant; line
    // 30 of the dqa-runtime fixture a pragma'd unwrap, line 39 a pragma'd
    // bare recv, line 44 a pragma'd unbounded(), line 50 a pragma'd
    // Instant::now() and line 63 a pragma'd fs::write (pragma on the line
    // above). Every #[cfg(test)] mod holds violations of the crate-scoped
    // rules. Past the waived region starting at line 29 only the seeded
    // bare-recv (34) and raw-fs-write (54, 58) violations may flag.
    assert!(
        diags
            .iter()
            .all(|d| !(d.file.ends_with("cluster-sim/src/lib.rs") && d.line >= 16 && d.line != 22)),
        "waived or test-mod line flagged in cluster-sim fixture: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .all(|d| !(d.file.ends_with("dqa-runtime/src/lib.rs")
                && d.line >= 29
                && ![34, 54, 58].contains(&d.line))),
        "waived or test-mod line flagged in dqa-runtime fixture: {diags:?}"
    );
}

#[test]
fn raw_instant_covers_the_trace_module_but_not_the_rest_of_dqa_obs() {
    let (_, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    let obs: Vec<_> = diags
        .iter()
        .filter(|d| d.file.contains("dqa-obs"))
        .collect();
    // Exactly the seeded trace-module read flags: the pragma'd twin in
    // trace.rs is waived, and clock.rs — the sanctioned wall-clock read
    // point — stays outside the path-scoped extension entirely.
    assert_eq!(obs.len(), 1, "dqa-obs fixture diags: {obs:?}");
    assert_eq!(obs[0].file, "crates/dqa-obs/src/trace.rs");
    assert_eq!(obs[0].rule, "raw-instant");
    assert!(
        diags.iter().all(|d| !d.file.ends_with("dqa-obs/src/clock.rs")),
        "raw-instant leaked outside the trace module: {diags:?}"
    );
}

#[test]
fn qa_cli_is_exempt_from_unseeded_rng() {
    let (_, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    assert!(
        diags.iter().all(|d| !d.file.contains("qa-cli")),
        "qa-cli should be exempt from unseeded-rng: {diags:?}"
    );
}

#[test]
fn clean_fixture_has_zero_diagnostics() {
    let (checked, diags) = run_lint(&fixture("clean")).expect("fixture lint");
    assert_eq!(checked, 1);
    assert!(diags.is_empty(), "clean fixture flagged: {diags:?}");
}

#[test]
fn json_rendering_is_valid_and_complete() {
    let (checked, diags) = run_lint(&fixture("violations")).expect("fixture lint");
    let json = render_json(checked, &diags);
    assert!(json.starts_with(&format!(
        "{{\"files_checked\":{checked},\"count\":{}",
        diags.len()
    )));
    // Every diagnostic's location must appear verbatim.
    for d in &diags {
        assert!(json.contains(&format!("\"file\":\"{}\",\"line\":{}", d.file, d.line)));
    }
    // All nine v1-style rule names exercised except the per-fixture
    // exemptions.
    for rule in [
        "wall-clock",
        "unordered-state",
        "raw-instant",
        "runtime-panic",
        "unbounded-recv",
        "unbounded-channel",
        "raw-fs-write",
        "unseeded-rng",
        "unchecked-decode",
    ] {
        assert!(
            json.contains(&format!("\"rule\":\"{rule}\"")),
            "missing {rule}"
        );
    }
}

#[test]
fn lexer_ignores_strings_comments_and_attr_tokens() {
    let src = r####"
        //! HashMap in a doc comment is fine.
        /* block comment: thread_rng, Instant, .unwrap() */
        #[doc = "Instant HashMap thread_rng"]
        pub fn f() -> &'static str {
            "panic! unreachable! HashMap Instant thread_rng"
        }
        pub const RAW: &str = r##"SystemTime .expect("x")"##;
    "####;
    for krate in ["cluster-sim", "dqa-runtime", "corpus"] {
        let diags = lint_source(krate, "crates/x/src/lib.rs", src);
        assert!(diags.is_empty(), "{krate}: false positives {diags:?}");
    }
}

#[test]
fn deep_fixture_flags_each_new_rule_at_exact_lines() {
    let (checked, diags) = run_lint(&fixture("deep")).expect("fixture lint");
    assert_eq!(
        checked, 4,
        "deep fixture tree should contribute 4 source files"
    );

    let got: Vec<(&str, &str, u32, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.rule, d.line, d.matched.as_str()))
        .collect();
    let want = vec![
        (
            "crates/clocky/src/lib.rs",
            "clock-leak",
            9,
            "Instant::now()",
        ),
        (
            "crates/guardy/src/lib.rs",
            "blocking-under-guard",
            9,
            ".recv_timeout() while holding guardy::fn.m",
        ),
        (
            "crates/hashy/src/lib.rs",
            "hashmap-iter-order",
            12,
            "iteration over &self.map",
        ),
        (
            "crates/hashy/src/lib.rs",
            "hashmap-iter-order",
            29,
            "iteration over m.iter()",
        ),
        (
            "crates/locky/src/lib.rs",
            "lock-order",
            15,
            "locky::Pair.a -> locky::Pair.b",
        ),
        (
            "crates/locky/src/lib.rs",
            "lock-order",
            21,
            "locky::Pair.b -> locky::Pair.a",
        ),
    ];
    assert_eq!(got, want);
}

#[test]
fn deep_fixture_waived_and_clean_variants_stay_silent() {
    let (_, diags) = run_lint(&fixture("deep")).expect("fixture lint");
    // Each fixture file carries a pragma-waived twin of its violation and
    // clean variants (consistent lock order, condvar hand-over,
    // drop-before-block, BTree-collect, sort-after, wall-only fn). None
    // of those lines may flag: locky past line 24 (ba_waived + cd pair),
    // guardy past line 12 (waived stall, wait_ok, drop_first), hashy past
    // line 17 (waived iteration + ordered forms), clocky past line 13
    // (waived bridge, pure_virtual, wall_only).
    // `allowed` lists the seeded violations that legitimately live past
    // the floor (hashy's free-fn violation sits below its clean forms).
    for (file, floor, allowed) in [
        ("crates/locky/src/lib.rs", 24, &[][..]),
        ("crates/guardy/src/lib.rs", 12, &[][..]),
        ("crates/hashy/src/lib.rs", 17, &[29u32][..]),
        ("crates/clocky/src/lib.rs", 13, &[][..]),
    ] {
        assert!(
            diags
                .iter()
                .all(|d| !(d.file == file && d.line >= floor && !allowed.contains(&d.line))),
            "waived/clean variant flagged in {file}: {diags:?}"
        );
    }
}

#[test]
fn fix_golden_rewrites_hash_state_to_btree() {
    let before = std::fs::read_to_string(fixture("fix/before.rs")).expect("before fixture");
    let after = std::fs::read_to_string(fixture("fix/after.rs")).expect("after fixture");
    let analysis = xtask::analyze_source("scheduler", "crates/scheduler/src/state.rs", &before);
    let (fixed, n) = xtask::fix::apply(&before, &analysis.fixes);
    assert!(n >= 6, "expected >=6 mechanical edits, got {n}");
    assert_eq!(
        fixed, after,
        "--fix output must match the golden after file"
    );
    // The rewritten file must lint clean.
    let diags = lint_source("scheduler", "crates/scheduler/src/state.rs", &fixed);
    assert!(diags.is_empty(), "diags after fix: {diags:?}");
    // And the fixed point: fixing the clean file changes nothing.
    let again = xtask::analyze_source("scheduler", "crates/scheduler/src/state.rs", &after);
    assert!(
        again.fixes.is_empty(),
        "fix must be idempotent: {:?}",
        again.fixes
    );
}

#[test]
fn item_scoped_allow_pragma_waives_the_whole_item() {
    let src = "\
// dqa-lint: allow(runtime-panic)
pub fn noisy(x: Option<u64>) -> u64 {
    let a = x.unwrap();
    let b = x.expect(\"still waived\");
    a + b
}

pub fn other(x: Option<u64>) -> u64 {
    x.unwrap()
}
";
    let diags = lint_source("dqa-runtime", "crates/dqa-runtime/src/x.rs", src);
    // Only `other`'s unwrap may flag: the pragma above `noisy` covers
    // every line of that item.
    assert_eq!(diags.len(), 1, "diags: {diags:?}");
    assert_eq!(diags[0].line, 9);
}

#[test]
fn resolution_kills_shadowed_name_false_positives() {
    // A virtual-time crate defining its *own* Instant (the whole point of
    // virtual time) must not trip wall-clock; same for an internal import.
    let src = "\
pub struct Instant {
    pub ticks: u64,
}

pub fn now(clock_ticks: u64) -> Instant {
    Instant { ticks: clock_ticks }
}
";
    let diags = lint_source("cluster-sim", "crates/cluster-sim/src/time.rs", src);
    assert!(diags.is_empty(), "local Instant flagged: {diags:?}");

    let src2 = "use crate::virt::Instant;\npub fn t() -> Instant { Instant::default() }\n";
    let diags2 = lint_source("cluster-sim", "crates/cluster-sim/src/t.rs", src2);
    assert!(
        diags2.is_empty(),
        "internal Instant import flagged: {diags2:?}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (checked, diags) = run_lint(&root).expect("workspace lint");
    assert!(
        checked > 50,
        "workspace walk found too few files: {checked}"
    );
    assert!(diags.is_empty(), "workspace must lint clean: {diags:?}");
}
