//! Golden fixture: the elastic re-sharding tier inherits the
//! threaded-runtime clock and channel rules. Never compiled — this
//! tree is data for `tests/golden.rs`.

pub fn migration_pacing_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn step_ack_wait(rx: std::sync::mpsc::Receiver<u32>) -> u32 {
    rx.recv().unwrap_or(0)
}

pub fn step_queue() -> usize {
    let (_tx, rx) = crossbeam_channel::unbounded::<u32>();
    rx.len()
}

pub fn detector_may_unwrap(v: Option<f64>) -> f64 {
    // runtime-panic stays dqa-runtime-only: detector math may unwrap.
    v.unwrap()
}

pub fn waived_heal_clock() -> std::time::Instant {
    // dqa-lint: allow(raw-instant)
    std::time::Instant::now()
}

pub fn waived_step_ack(rx: std::sync::mpsc::Receiver<u32>) -> u32 {
    // dqa-lint: allow(unbounded-recv)
    rx.recv().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_is_fine_in_tests() {
        let (tx, _rx) = crossbeam_channel::unbounded::<u32>();
        drop(tx);
    }
}
