//! Golden fixture: seeded violations of the runtime-panic rule. Never
//! compiled — this tree is data for `tests/golden.rs`.

pub fn hard_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn hard_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn boom() {
    panic!("boom");
}

pub fn never() {
    unreachable!("protocol violation");
}

pub fn hidden_queue() -> usize {
    let (_tx, rx) = crossbeam_channel::unbounded::<u32>();
    rx.len()
}

pub fn raw_now() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn waived_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // dqa-lint: allow(runtime-panic)
}

pub fn blocking_recv(rx: std::sync::mpsc::Receiver<u32>) -> u32 {
    rx.recv().unwrap_or(0)
}

pub fn waived_recv(rx: std::sync::mpsc::Receiver<u32>) -> u32 {
    // dqa-lint: allow(unbounded-recv)
    rx.recv().unwrap_or(0)
}

pub fn waived_queue() -> usize {
    // dqa-lint: allow(unbounded-channel)
    let (_tx, rx) = crossbeam_channel::unbounded::<u32>();
    rx.len()
}

pub fn waived_now() -> std::time::Instant {
    // dqa-lint: allow(raw-instant)
    std::time::Instant::now()
}

pub fn raw_dump(bytes: &[u8]) {
    std::fs::write("/tmp/dump.bin", bytes).ok();
}

pub fn raw_create() -> std::io::Result<std::fs::File> {
    std::fs::File::create("/tmp/out.bin")
}

pub fn waived_dump(bytes: &[u8]) {
    // dqa-lint: allow(raw-fs-write)
    std::fs::write("/tmp/dump.bin", bytes).ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }

    #[test]
    fn bare_recv_is_fine_in_tests() {
        let (tx, rx) = std::sync::mpsc::channel();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn unbounded_is_fine_in_tests() {
        let (tx, _rx) = crossbeam_channel::unbounded::<u32>();
        drop(tx);
    }

    #[test]
    fn raw_instant_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
