//! Golden fixture: `qa-cli` is exempt from the unseeded-rng rule, so the
//! entropy sources below must produce zero diagnostics.

fn main() {
    let _rng = rand::thread_rng();
    let _n: u64 = rand::random();
}
