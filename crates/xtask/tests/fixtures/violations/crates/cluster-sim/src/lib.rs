//! Golden fixture: seeded violations of the virtual-time rules. Never
//! compiled — this tree is data for `tests/golden.rs`.

use std::collections::HashMap;
use std::time::Instant;

pub struct SimState {
    pub started: Instant,
    pub partitions: HashMap<u32, Vec<usize>>,
}

pub fn pause() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn waived_wall_clock() {
    // dqa-lint: allow(wall-clock)
    let _t = Instant::now();
}

pub fn entropy() -> u32 {
    let _rng = rand::thread_rng();
    0
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn wall_clock_and_hash_maps_are_fine_in_tests() {
        let _t = Instant::now();
        let _m: HashMap<u32, u32> = HashMap::new();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
