//! Golden fixture: runtime index loads must use the verifying reader.
//! Never compiled — this tree is data for `tests/golden.rs`.

use ir_engine::persist::decode_index;

pub fn load_via_import(bytes: &[u8]) -> usize {
    decode_index(bytes).map(|i| i.shard_count()).unwrap_or(0)
}

pub fn load_via_path(bytes: &[u8]) -> usize {
    ir_engine::persist::decode_index(bytes)
        .map(|i| i.shard_count())
        .unwrap_or(0)
}

// dqa-lint: allow(unchecked-decode)
pub fn load_waived(bytes: &[u8]) -> usize {
    ir_engine::persist::decode_index(bytes)
        .map(|i| i.shard_count())
        .unwrap_or(0)
}

pub fn load_verified(bytes: &[u8]) -> usize {
    ir_engine::decode_index_auto(bytes)
        .map(|i| i.shard_count())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn raw_reader_is_fine_in_tests() {
        let _ = ir_engine::persist::decode_index(&[]);
    }
}
