//! Golden fixture: the broker tier inherits the threaded-runtime channel
//! rules. Never compiled — this tree is data for `tests/golden.rs`.

pub fn hedge_queue() -> usize {
    let (_tx, rx) = crossbeam_channel::unbounded::<u32>();
    rx.len()
}

pub fn merge_may_unwrap(v: Option<u32>) -> u32 {
    // runtime-panic stays dqa-runtime-only: broker code may unwrap.
    v.unwrap()
}

pub fn waived_deadline_clock() -> std::time::Instant {
    // dqa-lint: allow(raw-instant)
    std::time::Instant::now()
}

pub fn waived_reply_recv(rx: std::sync::mpsc::Receiver<u32>) -> u32 {
    // dqa-lint: allow(unbounded-recv)
    rx.recv().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_is_fine_in_tests() {
        let (tx, _rx) = crossbeam_channel::unbounded::<u32>();
        drop(tx);
    }
}
