//! Golden fixture: the causal-tracing module is covered by
//! `raw-instant` via `RAW_INSTANT_EXTRA_PATHS` even though dqa-obs as
//! a crate is exempt (it hosts the sanctioned WallClock impl). Span
//! timestamps must come from the recorder's injected Clock. Never
//! compiled — this tree is data for `tests/golden.rs`.

pub fn span_start_raw() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn waived_span_start() -> std::time::Instant {
    // dqa-lint: allow(raw-instant)
    std::time::Instant::now()
}
