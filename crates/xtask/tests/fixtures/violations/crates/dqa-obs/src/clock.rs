//! Golden fixture control: outside the trace module the dqa-obs crate
//! stays exempt from `raw-instant` — this is where the one sanctioned
//! wall-clock read point lives. Never compiled — this tree is data for
//! `tests/golden.rs`.

pub fn wall_now() -> std::time::Instant {
    std::time::Instant::now()
}
