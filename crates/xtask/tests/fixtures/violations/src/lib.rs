//! Golden fixture: the root facade package is *not* exempt from the
//! unseeded-rng rule.

pub fn entropy_seeded_rng() {
    let _rng = SmallRng::from_entropy();
}
