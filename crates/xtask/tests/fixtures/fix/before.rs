//! --fix golden: the unordered-state family rewrites to BTree twins.
use std::collections::{HashMap, HashSet};

pub struct Table {
    pub slots: HashMap<u64, u64>,
    pub seen: HashSet<u64>,
}

pub fn build(n: u64) -> Table {
    let mut slots: HashMap<u64, u64> = HashMap::with_capacity(16);
    let mut seen = HashSet::new();
    for i in 0..n {
        slots.insert(i, i * i);
        seen.insert(i);
    }
    Table { slots, seen }
}
