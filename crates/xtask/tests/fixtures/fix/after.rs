//! --fix golden: the unordered-state family rewrites to BTree twins.
use std::collections::{BTreeMap, BTreeSet};

pub struct Table {
    pub slots: BTreeMap<u64, u64>,
    pub seen: BTreeSet<u64>,
}

pub fn build(n: u64) -> Table {
    let mut slots: BTreeMap<u64, u64> = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for i in 0..n {
        slots.insert(i, i * i);
        seen.insert(i);
    }
    Table { slots, seen }
}
