//! lock-order fixture: `ab` and `ba` acquire the pair in opposite
//! orders — a lock-graph cycle no token pattern can see.
use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    c: Mutex<u64>,
    d: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }

    /// Waived: the pragma covers the inner acquisition site.
    pub fn ba_waived(&self) -> u64 {
        let gb = self.b.lock();
        // dqa-lint: allow(lock-order)
        let ga = self.a.lock();
        *ga - *gb
    }

    /// Consistent order on an independent pair: clean.
    pub fn cd_one(&self) -> u64 {
        let gc = self.c.lock();
        let gd = self.d.lock();
        *gc + *gd
    }

    /// Same order again: still clean.
    pub fn cd_two(&self) -> u64 {
        let gc = self.c.lock();
        let gd = self.d.lock();
        *gc * *gd
    }
}
