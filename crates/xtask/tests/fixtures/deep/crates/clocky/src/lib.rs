//! clock-leak fixture: wall-clock reads inside code that is already
//! parameterized by the virtual Clock seam.
use dqa_obs::Clock;
use std::time::Instant;

/// Mixing domains: the budget check reads the wall clock while the
/// caller's deadline lives in virtual time.
pub fn mixed(clock: &dyn Clock, budget_us: u64) -> bool {
    let started = Instant::now();
    let _virtual_now = clock.now();
    started.elapsed().as_micros() as u64 <= budget_us
}

/// Waived (bridging code that intentionally samples both domains).
pub fn bridge(clock: &dyn Clock) -> u64 {
    // dqa-lint: allow(clock-leak)
    let wall = Instant::now();
    clock.now().saturating_add(wall.elapsed().as_micros() as u64)
}

/// Clean: a Clock-scoped fn that derives everything from the seam.
pub fn pure_virtual(clock: &dyn Clock) -> u64 {
    clock.now()
}

/// Clean: no virtual-clock evidence, so a wall read is fine here.
pub fn wall_only() -> u64 {
    Instant::now().elapsed().as_micros() as u64
}
