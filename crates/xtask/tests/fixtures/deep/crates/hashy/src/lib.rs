//! hashmap-iter-order fixture: hash-order iteration through locals and
//! self fields, plus the sanctioned sorted/BTree forms.
use std::collections::{BTreeSet, HashMap};

pub struct Index {
    map: HashMap<String, u64>,
}

impl Index {
    /// Hash order picks the entry: nondeterministic across runs.
    pub fn any_entry(&self) -> Option<(&String, &u64)> {
        for (k, v) in &self.map {
            return Some((k, v));
        }
        None
    }

    /// Waived.
    pub fn any_entry_waived(&self) -> Option<(&String, &u64)> {
        // dqa-lint: allow(hashmap-iter-order)
        for (k, v) in &self.map {
            return Some((k, v));
        }
        None
    }
}

pub fn first_key(m: &HashMap<String, u64>) -> Option<String> {
    for (k, _v) in m.iter() {
        return Some(k.clone());
    }
    None
}

/// Collecting into an ordered set before iterating is sanctioned.
pub fn ordered_keys(m: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for k in m.keys().collect::<BTreeSet<_>>() {
        out.push(k.clone());
    }
    out
}

/// Sorting after collecting is sanctioned too.
pub fn sorted_values(m: &HashMap<String, u64>) -> Vec<u64> {
    let mut vals: Vec<u64> = m.values().copied().collect();
    vals.sort_unstable();
    vals
}
