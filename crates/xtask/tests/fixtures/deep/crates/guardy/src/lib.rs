//! blocking-under-guard fixture: a blocking receive while a guard is
//! held, the sanctioned condvar hand-over, and the drop-first fix.
use crossbeam_channel::Receiver;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

pub fn stall(rx: &Receiver<u64>, m: &Mutex<u64>) -> u64 {
    let g = m.lock();
    let v = rx.recv_timeout(Duration::from_millis(5)).unwrap_or(0);
    *g + v
}

/// Waived.
pub fn stall_waived(rx: &Receiver<u64>, m: &Mutex<u64>) -> u64 {
    let g = m.lock();
    // dqa-lint: allow(blocking-under-guard)
    let v = rx.recv_timeout(Duration::from_millis(5)).unwrap_or(0);
    *g + v
}

/// The condvar protocol hands the guard over: sanctioned.
pub fn wait_ok(cv: &Condvar, m: &Mutex<bool>) {
    let mut g = m.lock();
    while !*g {
        cv.wait(&mut g);
    }
}

/// Dropping the guard before blocking is the fix the rule suggests.
pub fn drop_first(rx: &Receiver<u64>, m: &Mutex<u64>) -> u64 {
    let g = m.lock();
    let base = *g;
    drop(g);
    base + rx.recv_timeout(Duration::from_millis(5)).unwrap_or(0)
}
