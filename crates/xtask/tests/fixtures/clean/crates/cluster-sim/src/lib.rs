//! Golden fixture: determinism-conformant sim code — zero diagnostics
//! expected. Mentions of banned names in comments ("Instant", "HashMap",
//! "thread_rng") and strings must not trip the lexer.

use std::collections::BTreeMap;

pub struct SimState {
    /// Virtual-time stamp, not a wall-clock Instant.
    pub now: f64,
    pub partitions: BTreeMap<u32, Vec<usize>>,
}

pub fn describe() -> &'static str {
    "never calls thread_rng or std::thread::sleep; HashMap is banned here"
}

pub fn advance(state: &mut SimState, dt: f64) {
    state.now += dt;
}
