//! `cargo xtask lint --fix`: apply the mechanical rewrites the rules
//! recorded as byte-span [`Edit`]s.
//!
//! Only rewrites with one obviously-correct replacement are recorded —
//! today that is the `unordered-state` family (`HashMap` → `BTreeMap`,
//! `HashSet` → `BTreeSet`, `HashMap::with_capacity(n)` →
//! `BTreeMap::new()`). Everything else (panics, blocking calls, lock
//! cycles) needs a human.

use crate::rules::Edit;

/// Apply edits to a source string. Overlapping or duplicate spans are
/// collapsed (first wins); edits apply back-to-front so earlier spans
/// stay valid. Returns (rewritten source, edits applied).
pub fn apply(src: &str, edits: &[Edit]) -> (String, usize) {
    let mut sorted: Vec<Edit> = edits.to_vec();
    sorted.sort();
    sorted.dedup();
    // Drop overlapping spans (keep the first of each overlapping run).
    let mut kept: Vec<Edit> = Vec::with_capacity(sorted.len());
    for e in sorted {
        if e.hi > src.len() || e.lo > e.hi {
            continue;
        }
        if kept.last().is_some_and(|prev| e.lo < prev.hi) {
            continue;
        }
        kept.push(e);
    }
    let mut out = src.to_string();
    for e in kept.iter().rev() {
        out.replace_range(e.lo..e.hi, &e.replacement);
    }
    (out, kept.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edit(lo: usize, hi: usize, r: &str) -> Edit {
        Edit {
            lo,
            hi,
            replacement: r.to_string(),
        }
    }

    #[test]
    fn applies_back_to_front() {
        let src = "aa bb cc";
        let (out, n) = apply(src, &[edit(0, 2, "XX"), edit(6, 8, "YY")]);
        assert_eq!(out, "XX bb YY");
        assert_eq!(n, 2);
    }

    #[test]
    fn overlaps_and_duplicates_collapse() {
        let src = "abcdef";
        let (out, n) = apply(src, &[edit(1, 4, "X"), edit(1, 4, "X"), edit(2, 5, "Y")]);
        assert_eq!(out, "aXef");
        assert_eq!(n, 1);
    }

    #[test]
    fn out_of_range_edits_are_dropped() {
        let src = "short";
        let (out, n) = apply(src, &[edit(2, 99, "X")]);
        assert_eq!(out, "short");
        assert_eq!(n, 0);
    }

    #[test]
    fn end_to_end_hashmap_rewrite() {
        let src = "use std::collections::HashMap;\n\
                   fn build() {\n\
                       let mut m: HashMap<u64, u64> = HashMap::new();\n\
                       m.insert(1, 2);\n\
                   }\n";
        let analysis = crate::analyze_source("scheduler", "crates/scheduler/src/lib.rs", src);
        let (fixed, n) = apply(src, &analysis.fixes);
        assert!(n >= 3, "expected >=3 edits, got {n}");
        assert!(!fixed.contains("HashMap"), "fixed source: {fixed}");
        assert!(fixed.contains("use std::collections::BTreeMap;"));
        assert!(fixed.contains("let mut m: BTreeMap<u64, u64> = BTreeMap::new();"));
        // The fixed file must lint clean.
        let diags = crate::lint_source("scheduler", "crates/scheduler/src/lib.rs", &fixed);
        assert!(diags.is_empty(), "diags after fix: {diags:?}");
    }

    #[test]
    fn with_capacity_becomes_new() {
        let src = "fn build() { let m = HashMap::with_capacity(32); m.len(); }";
        let analysis = crate::analyze_source("scheduler", "crates/scheduler/src/lib.rs", src);
        let (fixed, _) = apply(src, &analysis.fixes);
        assert!(fixed.contains("BTreeMap::new()"), "fixed: {fixed}");
        assert!(!fixed.contains("with_capacity"), "fixed: {fixed}");
    }
}
