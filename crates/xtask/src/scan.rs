//! The dqa-lint lexer: a minimal, dependency-free Rust tokenizer.
//!
//! The scanner reduces a source file to identifiers, punctuation and
//! literal placeholders with line numbers *and byte spans* (the spans feed
//! `--fix` rewrites), stripping everything that could produce false
//! positives: line/block comments (nested), string literals (plain, raw,
//! byte, raw byte), char literals vs. lifetimes, and numeric literals.
//! Comments are inspected for `dqa-lint: allow(<rule>, ...)` pragmas
//! before being dropped.
//!
//! This is the bottom layer of the v2 AST engine: [`crate::tree`] groups
//! the stream into delimiter trees and [`crate::ast`] parses items out of
//! those. The workspace's own offline constraint rules out `syn`; this
//! lexer has no dependencies at all.

use std::collections::BTreeMap;

/// What kind of literal a [`TokKind::Lit`] placeholder stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// `"..."`, `r"..."`, `b"..."`, `br#"..."#`.
    Str,
    /// `'x'`, `b'x'`.
    Char,
    /// `123`, `1_000u64`, `0x1f`, `2.5e-3`.
    Num,
}

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers are unprefixed).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A literal, content dropped (so banned names inside strings never
    /// reach the rules) but position kept (so the AST layer sees e.g.
    /// `#[doc = "..."]` as a complete attribute).
    Lit(LitKind),
    /// A lifetime such as `'a` (quote plus identifier).
    Lifetime,
}

/// A token plus its 1-based line and byte span in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub line: u32,
    /// Byte offset of the first byte of the token.
    pub lo: usize,
    /// Byte offset one past the last byte of the token.
    pub hi: usize,
    pub kind: TokKind,
}

impl Tok {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// Scanner output: the token stream plus pragma lines.
#[derive(Debug, Default)]
pub struct ScanResult {
    pub toks: Vec<Tok>,
    /// Line → rule names allowed on that line (and, per the waiver
    /// contract, the line below it or the whole item that starts below
    /// it).
    pub allows: BTreeMap<u32, Vec<String>>,
}

/// Tokenize `src`, collecting `dqa-lint: allow(...)` pragmas from comments.
pub fn scan(src: &str) -> ScanResult {
    Lexer {
        src,
        b: src.char_indices().collect(),
        i: 0,
        line: 1,
        out: ScanResult::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    /// (byte offset, char) pairs.
    b: Vec<(usize, char)>,
    i: usize,
    line: u32,
    out: ScanResult,
}

impl Lexer<'_> {
    fn ch(&self, k: usize) -> Option<char> {
        self.b.get(k).map(|&(_, c)| c)
    }

    fn off(&self, k: usize) -> usize {
        self.b.get(k).map_or(self.src.len(), |&(o, _)| o)
    }

    fn push(&mut self, kind: TokKind, lo_idx: usize, hi_idx: usize, line: u32) {
        self.out.toks.push(Tok {
            line,
            lo: self.off(lo_idx),
            hi: self.off(hi_idx),
            kind,
        });
    }

    fn run(mut self) -> ScanResult {
        let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
        let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

        while let Some(c) = self.ch(self.i) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_whitespace() => self.i += 1,
                '/' if self.ch(self.i + 1) == Some('/') => {
                    let start = self.i;
                    while self.i < self.b.len() && self.ch(self.i) != Some('\n') {
                        self.i += 1;
                    }
                    let text: String = self.b[start..self.i].iter().map(|&(_, c)| c).collect();
                    record_pragma(&text, self.line, &mut self.out.allows);
                }
                '/' if self.ch(self.i + 1) == Some('*') => {
                    let start = self.i;
                    let start_line = self.line;
                    let mut depth = 1;
                    self.i += 2;
                    while self.i < self.b.len() && depth > 0 {
                        if self.ch(self.i) == Some('/') && self.ch(self.i + 1) == Some('*') {
                            depth += 1;
                            self.i += 2;
                        } else if self.ch(self.i) == Some('*') && self.ch(self.i + 1) == Some('/') {
                            depth -= 1;
                            self.i += 2;
                        } else {
                            if self.ch(self.i) == Some('\n') {
                                self.line += 1;
                            }
                            self.i += 1;
                        }
                    }
                    let end = self.i.min(self.b.len());
                    let text: String = self.b[start..end].iter().map(|&(_, c)| c).collect();
                    record_pragma(&text, start_line, &mut self.out.allows);
                }
                '"' => {
                    let start = self.i;
                    let line = self.line;
                    self.i = self.skip_string(self.i);
                    self.push(TokKind::Lit(LitKind::Str), start, self.i, line);
                }
                '\'' => {
                    let start = self.i;
                    let line = self.line;
                    let (next, kind) = self.skip_char_or_lifetime(self.i);
                    self.i = next;
                    self.push(kind, start, self.i, line);
                }
                'r' | 'b' if self.starts_literal(self.i) => {
                    let start = self.i;
                    let line = self.line;
                    let (next, kind) = self.skip_prefixed_literal(self.i);
                    self.i = next;
                    self.push(kind, start, self.i, line);
                }
                'r' if self.ch(self.i + 1) == Some('#')
                    && self.ch(self.i + 2).is_some_and(is_ident_start) =>
                {
                    // Raw identifier r#ident: emit the bare identifier.
                    let mut j = self.i + 2;
                    while j < self.b.len() && self.ch(j).is_some_and(is_ident_cont) {
                        j += 1;
                    }
                    let name: String = self.b[self.i + 2..j].iter().map(|&(_, c)| c).collect();
                    let line = self.line;
                    self.push(TokKind::Ident(name), self.i, j, line);
                    self.i = j;
                }
                c if is_ident_start(c) => {
                    let mut j = self.i;
                    while j < self.b.len() && self.ch(j).is_some_and(is_ident_cont) {
                        j += 1;
                    }
                    let name: String = self.b[self.i..j].iter().map(|&(_, c)| c).collect();
                    let line = self.line;
                    self.push(TokKind::Ident(name), self.i, j, line);
                    self.i = j;
                }
                c if c.is_ascii_digit() => {
                    // Numeric literal: digits and suffix chars, no dots (so
                    // the `.` of `1.method()` and `0..n` stays a punct;
                    // harmless since numbers carry no names).
                    let mut j = self.i;
                    while j < self.b.len() && self.ch(j).is_some_and(is_ident_cont) {
                        j += 1;
                    }
                    let line = self.line;
                    self.push(TokKind::Lit(LitKind::Num), self.i, j, line);
                    self.i = j;
                }
                c => {
                    let line = self.line;
                    self.push(TokKind::Punct(c), self.i, self.i + 1, line);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    /// `r"`, `r#...#"`, `b"`, `br"`, `br#...#"`, `b'` start a literal.
    fn starts_literal(&self, i: usize) -> bool {
        match self.ch(i) {
            Some('r') => {
                let mut j = i + 1;
                while self.ch(j) == Some('#') {
                    j += 1;
                }
                j > i + 1 && self.ch(j) == Some('"') || self.ch(i + 1) == Some('"')
            }
            Some('b') => match self.ch(i + 1) {
                Some('"') | Some('\'') => true,
                Some('r') => {
                    let mut j = i + 2;
                    while self.ch(j) == Some('#') {
                        j += 1;
                    }
                    self.ch(j) == Some('"')
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Skip a literal that starts with an `r`/`b`/`br` prefix at `i`.
    fn skip_prefixed_literal(&mut self, i: usize) -> (usize, TokKind) {
        let mut j = i;
        let raw = {
            let mut raw = false;
            if self.ch(j) == Some('b') {
                j += 1;
            }
            if self.ch(j) == Some('r') {
                raw = true;
                j += 1;
            }
            raw
        };
        if self.ch(j) == Some('\'') {
            return self.skip_char_or_lifetime(j);
        }
        let mut hashes = 0usize;
        while self.ch(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        debug_assert_eq!(self.ch(j), Some('"'));
        j += 1;
        if raw {
            // Ends at `"` followed by `hashes` hashes; no escapes.
            while j < self.b.len() {
                if self.ch(j) == Some('\n') {
                    self.line += 1;
                }
                if self.ch(j) == Some('"')
                    && (1..=hashes).all(|k| self.ch(j + k) == Some('#'))
                {
                    return (j + 1 + hashes, TokKind::Lit(LitKind::Str));
                }
                j += 1;
            }
            (j, TokKind::Lit(LitKind::Str))
        } else {
            (self.skip_string(j - 1), TokKind::Lit(LitKind::Str))
        }
    }

    /// Skip a `"..."` string starting at the opening quote; returns the
    /// index past the closing quote.
    fn skip_string(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        while j < self.b.len() {
            match self.ch(j) {
                Some('\\') => j += 2,
                Some('"') => return j + 1,
                Some(c) => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    j += 1;
                }
                None => break,
            }
        }
        j
    }

    /// Disambiguate `'a'` (char literal) from `'a` (lifetime); skip either.
    fn skip_char_or_lifetime(&mut self, i: usize) -> (usize, TokKind) {
        match self.ch(i + 1) {
            Some('\\') => {
                // Escaped char literal: skip to the closing quote.
                let mut j = i + 2;
                while j < self.b.len() {
                    match self.ch(j) {
                        Some('\\') => j += 2,
                        Some('\'') => return (j + 1, TokKind::Lit(LitKind::Char)),
                        Some(c) => {
                            if c == '\n' {
                                self.line += 1;
                            }
                            j += 1;
                        }
                        None => break,
                    }
                }
                (j, TokKind::Lit(LitKind::Char))
            }
            Some(c) if self.ch(i + 2) == Some('\'') && c != '\'' => {
                (i + 3, TokKind::Lit(LitKind::Char)) // 'x'
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Lifetime: consume the quote plus the identifier.
                let mut j = i + 1;
                while j < self.b.len()
                    && self.ch(j).is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    j += 1;
                }
                (j, TokKind::Lifetime)
            }
            _ => (i + 1, TokKind::Punct('\'')),
        }
    }
}

/// Extract `dqa-lint: allow(a, b)` rule names from a comment's text.
fn record_pragma(text: &str, line: u32, allows: &mut BTreeMap<u32, Vec<String>>) {
    let Some(pos) = text.find("dqa-lint:") else {
        return;
    };
    let rest = &text[pos + "dqa-lint:".len()..];
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(end) = args.find(')') else {
        return;
    };
    let entry = allows.entry(line).or_default();
    for rule in args[..end].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.push(rule.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_drop_their_contents() {
        let src = r####"
            // line comment HashMap
            /* block /* nested */ Instant */
            let s = "thread_rng";
            let r = r#"SystemTime"#;
            let b = b"unbounded";
            let c = 'x';
        "####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = scan("fn f<'a>(x: &'a str) -> &'a str { x }").toks;
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().all(|t| t.kind != TokKind::Lit(LitKind::Char)));
    }

    #[test]
    fn byte_spans_reproduce_source_text() {
        let src = "use std::collections::HashMap;\nlet m = HashMap::new();";
        for t in scan(src).toks {
            if let TokKind::Ident(name) = &t.kind {
                assert_eq!(&src[t.lo..t.hi], name, "span mismatch for {name}");
            }
        }
    }

    #[test]
    fn pragmas_are_collected_per_line() {
        let src = "let a = 1; // dqa-lint: allow(wall-clock, lock-order)\n";
        let res = scan(src);
        assert_eq!(
            res.allows.get(&1),
            Some(&vec!["wall-clock".to_string(), "lock-order".to_string()])
        );
    }

    #[test]
    fn raw_identifiers_are_unprefixed() {
        assert_eq!(idents("r#fn r#type"), vec!["fn", "type"]);
    }

    #[test]
    fn numeric_literals_become_placeholders() {
        let toks = scan("let x = 1_000u64 + 0x1f;").toks;
        let nums = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit(LitKind::Num))
            .count();
        assert_eq!(nums, 2);
    }
}
