//! A minimal Rust lexer, sufficient for token-sequence linting.
//!
//! The scanner reduces a source file to identifiers and punctuation with
//! line numbers, stripping everything that could produce false positives:
//! line/block comments (nested), string literals (plain, raw, byte, raw
//! byte), char literals vs. lifetimes, and numeric literals. Comments are
//! inspected for `dqa-lint: allow(<rule>, ...)` pragmas before being
//! dropped.
//!
//! This is intentionally not a full parser: the lint rules match short
//! token sequences (`HashMap`, `thread :: sleep`, `. unwrap (`), and for
//! those a faithful token stream is all that is needed. The workspace's
//! own offline constraint rules out `syn`; this scanner has no
//! dependencies at all.

use std::collections::BTreeMap;

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers are unprefixed).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
}

impl Tok {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }

    /// True when the token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokKind::Punct(p) if *p == c)
    }
}

/// Scanner output: the token stream plus pragma lines.
#[derive(Debug, Default)]
pub struct ScanResult {
    pub toks: Vec<Tok>,
    /// Line → rule names allowed on that line (and the line below it).
    pub allows: BTreeMap<u32, Vec<String>>,
}

/// Tokenize `src`, collecting `dqa-lint: allow(...)` pragmas from comments.
pub fn scan(src: &str) -> ScanResult {
    let b: Vec<char> = src.chars().collect();
    let mut out = ScanResult::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                record_pragma(&b[start..i], line, &mut out.allows);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                record_pragma(&b[start..i.min(b.len())], start_line, &mut out.allows);
            }
            '"' => i = skip_string(&b, i, &mut line),
            '\'' => i = skip_char_or_lifetime(&b, i, &mut line),
            'r' | 'b' if starts_literal(&b, i) => i = skip_prefixed_literal(&b, i, &mut line),
            'r' if b.get(i + 1) == Some(&'#')
                && b.get(i + 2).is_some_and(|&c| is_ident_start(c)) =>
            {
                // Raw identifier r#ident: emit the bare identifier.
                let mut j = i + 2;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident(b[i + 2..j].iter().collect()),
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident(b[i..j].iter().collect()),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits and suffix chars, no dots (so the
                // `.` of `1.method()` and `0..n` stays a punct; harmless for
                // our patterns since numbers are dropped).
                let mut j = i;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                i = j;
            }
            c => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c),
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"`, `r#...#"`, `b"`, `br"`, `br#...#"`, `b'` start a literal.
fn starts_literal(b: &[char], i: usize) -> bool {
    match b[i] {
        'r' => {
            let mut j = i + 1;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            j > i + 1 && b.get(j) == Some(&'"') || b.get(i + 1) == Some(&'"')
        }
        'b' => match b.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => {
                let mut j = i + 2;
                while b.get(j) == Some(&'#') {
                    j += 1;
                }
                b.get(j) == Some(&'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Skip a literal that starts with an `r`/`b`/`br` prefix at `i`.
fn skip_prefixed_literal(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    let raw = {
        let mut raw = false;
        if b[j] == 'b' {
            j += 1;
        }
        if b.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        }
        raw
    };
    if b.get(j) == Some(&'\'') {
        return skip_char_or_lifetime(b, j, line);
    }
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&'"'));
    j += 1;
    if raw {
        // Ends at `"` followed by `hashes` hashes; no escapes.
        while j < b.len() {
            if b[j] == '\n' {
                *line += 1;
            }
            if b[j] == '"'
                && b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return j + 1 + hashes;
            }
            j += 1;
        }
        j
    } else {
        skip_string(b, j - 1, line)
    }
}

/// Skip a `"..."` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime); skip either.
fn skip_char_or_lifetime(b: &[char], i: usize, line: &mut u32) -> usize {
    match b.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut j = i + 2;
            while j < b.len() {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => return j + 1,
                    c => {
                        if c == '\n' {
                            *line += 1;
                        }
                        j += 1;
                    }
                }
            }
            j
        }
        Some(&c) if b.get(i + 2) == Some(&'\'') && c != '\'' => i + 3, // 'x'
        Some(&c) if c.is_alphabetic() || c == '_' => {
            // Lifetime: consume the quote plus the identifier.
            let mut j = i + 1;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            j
        }
        _ => i + 1,
    }
}

/// Extract `dqa-lint: allow(a, b)` rule names from a comment's text.
fn record_pragma(comment: &[char], line: u32, allows: &mut BTreeMap<u32, Vec<String>>) {
    let text: String = comment.iter().collect();
    let Some(pos) = text.find("dqa-lint:") else {
        return;
    };
    let rest = &text[pos + "dqa-lint:".len()..];
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(end) = args.find(')') else {
        return;
    };
    let entry = allows.entry(line).or_default();
    for rule in args[..end].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            entry.push(rule.to_string());
        }
    }
}

/// Remove attribute tokens and test-only regions from a token stream.
///
/// * Inner attributes (`#![...]`) and outer attributes (`#[...]`) are
///   dropped entirely, so `#[doc = "..."]` or `#[serde(...)]` contents
///   never reach the rule matcher.
/// * An outer attribute marking test code — `#[test]`, `#[cfg(test)]`,
///   `#[cfg(any(test, ...))]`, `#[tokio::test]`-style — additionally
///   removes the item that follows it (to its closing `}` or terminating
///   `;`). `#[cfg(not(test))]` is non-test code and is kept.
pub fn strip_attrs_and_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let inner = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let open = if inner { i + 2 } else { i + 1 };
            if toks.get(open).is_some_and(|t| t.is_punct('[')) {
                let (close, idents) = attr_extent(toks, open);
                let mut j = close + 1;
                if !inner && is_test_attr(&idents) {
                    // Swallow any stacked attributes, then the item body.
                    while toks.get(j).is_some_and(|t| t.is_punct('#'))
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        let (c, _) = attr_extent(toks, j + 1);
                        j = c + 1;
                    }
                    j = skip_item(toks, j);
                }
                i = j;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// From the `[` at `open`, return (index of matching `]`, idents inside).
fn attr_extent(toks: &[Tok], open: usize) -> (usize, Vec<String>) {
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j, idents);
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    (toks.len().saturating_sub(1), idents)
}

fn is_test_attr(idents: &[String]) -> bool {
    if idents.iter().any(|s| s == "not") {
        return false;
    }
    let has_test = idents.iter().any(|s| s == "test");
    has_test
        && (idents.first().is_some_and(|s| s == "cfg")
            || idents.last().is_some_and(|s| s == "test"))
}

/// Skip one item starting at `j`: to its matching `}` if a `{` comes before
/// any top-level `;`, else to the `;`.
fn skip_item(toks: &[Tok], j: usize) -> usize {
    let mut k = j;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct(';') => return k + 1,
            TokKind::Punct('{') => {
                let mut depth = 0usize;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return k;
            }
            _ => k += 1,
        }
    }
    k
}
