//! The dqa-lint rule set: repo-specific determinism/robustness invariants.
//!
//! Every rule is deny-by-default inside its crate scope and can be waived
//! per line with a `// dqa-lint: allow(<rule>)` comment on the offending
//! line or the line directly above it. Test code (`#[cfg(test)]` modules,
//! `#[test]` functions) is exempt from all rules.

use crate::scan::{ScanResult, Tok, TokKind};

/// Which crates a rule applies to, by crate (directory) name.
#[derive(Debug, Clone, Copy)]
pub enum Scope {
    /// Only these crates.
    Only(&'static [&'static str]),
    /// Every workspace crate except these.
    AllExcept(&'static [&'static str]),
}

impl Scope {
    pub fn applies_to(&self, krate: &str) -> bool {
        match self {
            Scope::Only(names) => names.contains(&krate),
            Scope::AllExcept(names) => !names.contains(&krate),
        }
    }
}

/// A banned token sequence. Elements are matched against the stream in
/// order: a multi-char element matches an identifier, a single-char
/// punctuation element matches a punct token (`::` is written `":", ":"`).
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    pub seq: &'static [&'static str],
    /// Index of the element whose line is reported (e.g. `unwrap` in
    /// `. unwrap (`, so chained calls point at the call, not the dot).
    pub report: usize,
    /// Human-readable rendering for the message.
    pub display: &'static str,
}

/// One lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub name: &'static str,
    pub scope: Scope,
    pub patterns: &'static [Pattern],
    pub why: &'static str,
    pub help: &'static str,
}

/// The crates whose state must replay bit-for-bit from a seed: the
/// discrete-event simulator and everything its scheduling decisions read.
const VIRTUAL_TIME_CRATES: &[&str] = &["cluster-sim", "scheduler", "loadsim", "analytical"];

/// The full rule set, in reporting order.
#[rustfmt::skip]
pub const RULES: &[Rule] = &[
    Rule {
        name: "wall-clock",
        scope: Scope::Only(VIRTUAL_TIME_CRATES),
        patterns: &[
            Pattern { seq: &["Instant"], report: 0, display: "std::time::Instant" },
            Pattern { seq: &["SystemTime"], report: 0, display: "std::time::SystemTime" },
            Pattern { seq: &["thread", ":", ":", "sleep"], report: 3, display: "thread::sleep" },
        ],
        why: "virtual-time code read the wall clock",
        help: "derive every timestamp from the engine's virtual clock; wall-clock reads make \
               the simulation non-replayable",
    },
    Rule {
        name: "unordered-state",
        scope: Scope::Only(VIRTUAL_TIME_CRATES),
        patterns: &[
            Pattern { seq: &["HashMap"], report: 0, display: "HashMap" },
            Pattern { seq: &["HashSet"], report: 0, display: "HashSet" },
        ],
        why: "sim/scheduler state uses a hash collection",
        help: "use BTreeMap/BTreeSet or a sorted Vec: hash iteration order varies per process \
               and corrupts seeded reproducibility",
    },
    Rule {
        name: "raw-instant",
        scope: Scope::Only(&["dqa-runtime"]),
        patterns: &[
            Pattern { seq: &["Instant", ":", ":", "now"], report: 3, display: "Instant::now()" },
        ],
        why: "runtime code read the wall clock directly",
        help: "go through crate::clock::now_instant() (the one pragma'd read point) or take a \
               dqa_obs::Clock; a single sanctioned site keeps runtime timing swappable for \
               tests and observable by the metrics layer",
    },
    Rule {
        name: "runtime-panic",
        scope: Scope::Only(&["dqa-runtime"]),
        patterns: &[
            Pattern { seq: &[".", "unwrap", "("], report: 1, display: ".unwrap()" },
            Pattern { seq: &[".", "expect", "("], report: 1, display: ".expect()" },
            Pattern { seq: &["panic", "!"], report: 0, display: "panic!" },
            Pattern { seq: &["unreachable", "!"], report: 0, display: "unreachable!" },
            Pattern { seq: &["todo", "!"], report: 0, display: "todo!" },
            Pattern { seq: &["unimplemented", "!"], report: 0, display: "unimplemented!" },
        ],
        why: "runtime code can abort the node",
        help: "node actors must degrade through the SEND/ISEND/RECV failure-recovery path \
               (typed QaError, board liveness), never panic",
    },
    Rule {
        name: "unbounded-recv",
        scope: Scope::Only(&["dqa-runtime"]),
        patterns: &[
            Pattern { seq: &[".", "recv", "("], report: 1, display: ".recv()" },
        ],
        why: "runtime code blocks forever on a channel",
        help: "use recv_timeout (bounded by the sub-task poll interval) or try_recv so a dead \
               peer is detected by the failure-recovery/deadline path instead of hanging the \
               thread",
    },
    Rule {
        name: "unbounded-channel",
        scope: Scope::Only(&["dqa-runtime"]),
        patterns: &[
            Pattern { seq: &["unbounded"], report: 0, display: "crossbeam_channel::unbounded" },
        ],
        why: "runtime code uses an unbounded channel",
        help: "use bounded(capacity) plus send_timeout so a saturated node exerts backpressure \
               the coordinator can observe (re-queue via the retry path) instead of buffering \
               without limit until memory runs out",
    },
    Rule {
        name: "raw-fs-write",
        scope: Scope::Only(&["dqa-runtime"]),
        patterns: &[
            Pattern { seq: &["fs", ":", ":", "write"], report: 3, display: "fs::write" },
            Pattern { seq: &["File", ":", ":", "create"], report: 3, display: "File::create" },
        ],
        why: "runtime code writes the filesystem directly",
        help: "durable coordinator state must flow through the journal crate's checksummed \
               append-only log (CoordinatorJournal); ad-hoc writes bypass torn-tail recovery \
               and term fencing, so a crash can leave unreplayable state",
    },
    Rule {
        name: "unseeded-rng",
        scope: Scope::AllExcept(&["qa-cli"]),
        patterns: &[
            Pattern { seq: &["thread_rng"], report: 0, display: "rand::thread_rng" },
            Pattern { seq: &["from_entropy"], report: 0, display: "SeedableRng::from_entropy" },
            Pattern { seq: &["rand", ":", ":", "random"], report: 3, display: "rand::random" },
        ],
        why: "entropy-seeded RNG outside the CLI",
        help: "seed every generator from config (e.g. SmallRng::seed_from_u64) so experiment \
               tables reproduce run to run",
    },
];

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// What was matched (e.g. `thread::sleep`).
    pub matched: &'static str,
    /// Why it is banned here.
    pub why: &'static str,
    /// Suggested fix.
    pub help: &'static str,
}

fn matches_at(toks: &[Tok], i: usize, pat: &Pattern) -> bool {
    if i + pat.seq.len() > toks.len() {
        return false;
    }
    pat.seq.iter().enumerate().all(|(k, elem)| {
        let tok = &toks[i + k];
        match &tok.kind {
            TokKind::Ident(s) => s == elem,
            TokKind::Punct(c) => {
                let mut chars = elem.chars();
                chars.next() == Some(*c) && chars.next().is_none() && elem.len() == c.len_utf8()
            }
        }
    })
}

/// Run every in-scope rule over one file's filtered token stream.
pub fn check_file(krate: &str, rel_path: &str, toks: &[Tok], scan: &ScanResult) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in RULES {
        if !rule.scope.applies_to(krate) {
            continue;
        }
        for i in 0..toks.len() {
            for pat in rule.patterns {
                if !matches_at(toks, i, pat) {
                    continue;
                }
                let line = toks[i + pat.report].line;
                if allowed(scan, line, rule.name) {
                    continue;
                }
                out.push(Diagnostic {
                    file: rel_path.to_string(),
                    line,
                    rule: rule.name,
                    matched: pat.display,
                    why: rule.why,
                    help: rule.help,
                });
            }
        }
    }
    out.sort();
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    out
}

/// A pragma on the reported line, or the line above it, waives the rule.
fn allowed(scan: &ScanResult, line: u32, rule: &str) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        scan.allows
            .get(l)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    })
}
