//! The dqa-lint v2 rule set: semantic determinism/robustness invariants.
//!
//! Every rule is deny-by-default inside its crate scope and can be waived
//! with a `// dqa-lint: allow(<rule>)` comment on the offending line, the
//! line directly above it, or — new in v2 — directly above an enclosing
//! item (fn/impl/mod), which waives the rule for the whole item. Test
//! code (`#[cfg(test)]` modules, `#[test]` functions, `#[cfg(loom)]`
//! verification shims) is exempt from all rules.
//!
//! Unlike the v1 token matcher, rules run over the parsed [`crate::ast`]
//! with per-scope symbol resolution ([`crate::sem`]): `Instant` only
//! fires when it (provably or plausibly) *is* `std::time::Instant`, names
//! in strings/comments/attributes never reach the matcher, and the
//! deep rules (`lock-order`, `blocking-under-guard`,
//! `hashmap-iter-order`, `clock-leak`) reason about guard lifetimes,
//! iteration chains and time domains — things no token pattern can see.

use crate::ast::{Attr, File, FnDecl, Item, ItemKind};
use crate::scan::{ScanResult, Tok, TokKind};
use crate::sem::{judge, Ctx, Scope, Verdict};
use crate::tree::{Group, Tree};

/// Which crates a rule applies to, by crate (directory) name.
#[derive(Debug, Clone, Copy)]
pub enum RuleScope {
    /// Only these crates.
    Only(&'static [&'static str]),
    /// Every workspace crate except these.
    AllExcept(&'static [&'static str]),
}

impl RuleScope {
    pub fn applies_to(&self, krate: &str) -> bool {
        match self {
            RuleScope::Only(names) => names.contains(&krate),
            RuleScope::AllExcept(names) => !names.contains(&krate),
        }
    }
}

/// The crates whose state must replay bit-for-bit from a seed: the
/// discrete-event simulator and everything its scheduling decisions read.
pub const VIRTUAL_TIME_CRATES: &[&str] = &["cluster-sim", "scheduler", "loadsim", "analytical"];

/// The crates that host long-lived worker threads talking over channels:
/// the node runtime, the federation broker tier above it, and the
/// elastic re-sharding tier whose migration pacing both backends embed.
/// All must bound every channel, never block forever on a receive, and
/// funnel wall-clock reads through one pragma'd site, or a slow/dead
/// peer turns into an unobservable hang instead of a recoverable
/// timeout.
pub const THREADED_RUNTIME_CRATES: &[&str] = &["dqa-runtime", "federation", "rebalance"];

/// Modules outside the threaded-runtime crates that still must not read
/// the wall clock directly. The causal-tracing tier derives every span
/// timestamp from the recorder's injected [`Clock`]; a raw read there
/// would split span identity between time domains, breaking the
/// bit-identical double-run guarantee the trace gate enforces. Matched
/// as a workspace-relative path suffix, so `raw-instant` covers these
/// files even though their crate as a whole is exempt (dqa-obs hosts
/// the sanctioned `WallClock` impl itself).
pub const RAW_INSTANT_EXTRA_PATHS: &[&str] = &["dqa-obs/src/trace.rs"];

/// All rule names, in documentation order (v1 rules then v2 deep rules).
pub const RULE_NAMES: &[&str] = &[
    "wall-clock",
    "unordered-state",
    "raw-instant",
    "runtime-panic",
    "unbounded-recv",
    "unbounded-channel",
    "raw-fs-write",
    "unseeded-rng",
    "unchecked-decode",
    "lock-order",
    "blocking-under-guard",
    "hashmap-iter-order",
    "clock-leak",
];

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// What was matched (e.g. `thread::sleep`, `gate.state -> board.rows`).
    pub matched: String,
    /// Why it is banned here.
    pub why: &'static str,
    /// Suggested fix.
    pub help: &'static str,
}

/// One lock-acquisition-order edge observed while another guard was held;
/// collected per file, judged workspace-wide (cycle detection) by
/// [`crate::lockgraph`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Label of the lock already held.
    pub held: String,
    /// Label of the lock being acquired.
    pub acquired: String,
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
    /// Whether an allow pragma covers the acquisition site.
    pub allowed: bool,
}

/// A `--fix`-able byte-span rewrite.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edit {
    pub lo: usize,
    pub hi: usize,
    pub replacement: String,
}

/// Everything one file's analysis produced.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    pub diags: Vec<Diagnostic>,
    pub lock_edges: Vec<LockEdge>,
    /// Mechanical rewrites for the diagnostics above (`--fix`).
    pub fixes: Vec<Edit>,
}

// ---------------------------------------------------------------------------
// Rule metadata (scopes + messages).
// ---------------------------------------------------------------------------

struct Meta {
    name: &'static str,
    scope: RuleScope,
    why: &'static str,
    help: &'static str,
}

const WALL_CLOCK: Meta = Meta {
    name: "wall-clock",
    scope: RuleScope::Only(VIRTUAL_TIME_CRATES),
    why: "virtual-time code read the wall clock",
    help: "derive every timestamp from the engine's virtual clock; wall-clock reads make \
           the simulation non-replayable",
};

const UNORDERED_STATE: Meta = Meta {
    name: "unordered-state",
    scope: RuleScope::Only(VIRTUAL_TIME_CRATES),
    why: "sim/scheduler state uses a hash collection",
    help: "use BTreeMap/BTreeSet or a sorted Vec: hash iteration order varies per process \
           and corrupts seeded reproducibility",
};

const RAW_INSTANT: Meta = Meta {
    name: "raw-instant",
    scope: RuleScope::Only(THREADED_RUNTIME_CRATES),
    why: "runtime code read the wall clock directly",
    help: "go through crate::clock::now_instant() (the one pragma'd read point) or take a \
           dqa_obs::Clock; a single sanctioned site keeps runtime timing swappable for \
           tests and observable by the metrics layer",
};

const RUNTIME_PANIC: Meta = Meta {
    name: "runtime-panic",
    scope: RuleScope::Only(&["dqa-runtime"]),
    why: "runtime code can abort the node",
    help: "node actors must degrade through the SEND/ISEND/RECV failure-recovery path \
           (typed QaError, board liveness), never panic",
};

const UNBOUNDED_RECV: Meta = Meta {
    name: "unbounded-recv",
    scope: RuleScope::Only(THREADED_RUNTIME_CRATES),
    why: "runtime code blocks forever on a channel",
    help: "use recv_timeout (bounded by the sub-task poll interval) or try_recv so a dead \
           peer is detected by the failure-recovery/deadline path instead of hanging the \
           thread",
};

const UNBOUNDED_CHANNEL: Meta = Meta {
    name: "unbounded-channel",
    scope: RuleScope::Only(THREADED_RUNTIME_CRATES),
    why: "runtime code uses an unbounded channel",
    help: "use bounded(capacity) plus send_timeout so a saturated node exerts backpressure \
           the coordinator can observe (re-queue via the retry path) instead of buffering \
           without limit until memory runs out",
};

const RAW_FS_WRITE: Meta = Meta {
    name: "raw-fs-write",
    scope: RuleScope::Only(&["dqa-runtime"]),
    why: "runtime code writes the filesystem directly",
    help: "durable coordinator state must flow through the journal crate's checksummed \
           append-only log (CoordinatorJournal); ad-hoc writes bypass torn-tail recovery \
           and term fencing, so a crash can leave unreplayable state",
};

const UNSEEDED_RNG: Meta = Meta {
    name: "unseeded-rng",
    scope: RuleScope::AllExcept(&["qa-cli"]),
    why: "entropy-seeded RNG outside the CLI",
    help: "seed every generator from config (e.g. SmallRng::seed_from_u64) so experiment \
           tables reproduce run to run",
};

const UNCHECKED_DECODE: Meta = Meta {
    name: "unchecked-decode",
    scope: RuleScope::AllExcept(&["ir-engine"]),
    why: "index bytes decoded without checksum verification",
    help: "load index segments through ir_engine::decode_index_auto (or decode_index_v2 / \
           decode_index_quarantining) so CRC-failing shards are detected and quarantined \
           instead of flowing silently into answers; the raw v1 reader skips verification \
           and belongs only inside ir-engine and its codec microbenches",
};

/// Shared with [`crate::lockgraph`], which emits the actual diagnostics.
pub const LOCK_ORDER_WHY: &str = "lock acquired in a cycle of the workspace lock-order graph";
pub const LOCK_ORDER_HELP: &str =
    "two code paths acquire these locks in opposite orders, which can deadlock under \
     contention; impose one global order (acquire in label order), or narrow one \
     guard's scope so the acquisitions never overlap";

const LOCK_ORDER: Meta = Meta {
    name: "lock-order",
    scope: RuleScope::AllExcept(&[]),
    why: LOCK_ORDER_WHY,
    help: LOCK_ORDER_HELP,
};

const BLOCKING_UNDER_GUARD: Meta = Meta {
    name: "blocking-under-guard",
    scope: RuleScope::AllExcept(&[]),
    why: "blocking call while a lock guard is held",
    help: "a blocked holder stalls every other thread contending for the guard (and can \
           deadlock if the wake-up path needs the same lock); drop the guard before \
           blocking, or restructure so the wait happens outside the critical section",
};

const HASHMAP_ITER_ORDER: Meta = Meta {
    name: "hashmap-iter-order",
    scope: RuleScope::AllExcept(&[]),
    why: "iteration over a hash container's nondeterministic order",
    help: "hash iteration order varies per process and run; iterate a BTreeMap/BTreeSet, \
           or collect and sort before the order can feed scheduling, serialization or \
           tie-breaking",
};

const CLOCK_LEAK: Meta = Meta {
    name: "clock-leak",
    scope: RuleScope::AllExcept(&[]),
    why: "wall-clock read in code already parameterized by a virtual Clock",
    help: "code that takes a dqa_obs::Clock must derive *all* its timestamps from it; a \
           raw Instant/SystemTime read next to clock.now() mixes time domains, so the \
           same code diverges between the runtime and the simulator",
};

// ---------------------------------------------------------------------------
// The analysis driver.
// ---------------------------------------------------------------------------

/// Run every in-scope rule over one parsed file.
pub fn check_file(krate: &str, rel_path: &str, file: &File, scan: &ScanResult) -> FileAnalysis {
    let mut ctx = Ctx::default();
    ctx.push(Scope::from_items(&file.items));
    let mut chk = Checker {
        krate,
        rel: rel_path,
        scan,
        ctx,
        out: FileAnalysis::default(),
        item_allow_stack: Vec::new(),
        self_ty: None,
        impl_trait: None,
        hash_fields: collect_hash_fields(file),
    };
    chk.walk_items(&file.items);
    chk.out.diags.sort();
    chk.out
        .diags
        .dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    chk.out
}

/// Struct fields in this file whose declared type is a hash container
/// (`self.<field>` iteration flags hashmap-iter-order).
fn collect_hash_fields(file: &File) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(items: &[Item], out: &mut Vec<String>) {
        for item in items {
            if matches!(
                item.kind,
                ItemKind::Struct | ItemKind::Enum | ItemKind::Union
            ) {
                // Fields live in the item's `{}` group: `name: Type,`.
                if let Some(g) = item.tokens.iter().rev().find_map(Tree::group) {
                    let ts = &g.trees;
                    for i in 0..ts.len() {
                        if ts[i].is_punct(':')
                            && !ts.get(i + 1).is_some_and(|t| t.is_punct(':'))
                            && !ts.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
                        {
                            let field = ts.get(i.wrapping_sub(1)).and_then(Tree::ident);
                            let ty = ts.get(i + 1).and_then(Tree::ident);
                            if let (Some(f), Some(t)) = (field, ty) {
                                if is_hash_name(t) {
                                    out.push(f.to_string());
                                }
                            }
                        }
                    }
                }
            }
            walk(&item.children, out);
        }
    }
    walk(&file.items, &mut out);
    out
}

fn is_hash_name(name: &str) -> bool {
    matches!(name, "HashMap" | "HashSet")
}

/// The ordered twin of a banned hash container path.
fn btree_twin(banned: &str) -> &'static str {
    if banned.ends_with("HashSet") {
        "BTreeSet"
    } else {
        "BTreeMap"
    }
}

struct Checker<'a> {
    krate: &'a str,
    rel: &'a str,
    scan: &'a ScanResult,
    ctx: Ctx,
    out: FileAnalysis,
    /// Rules waived for the whole enclosing item(s) by pragmas above them.
    item_allow_stack: Vec<Vec<String>>,
    /// Enclosing `impl` self type (for lock labels / clock-leak).
    self_ty: Option<String>,
    /// Enclosing `impl`'s trait name.
    impl_trait: Option<String>,
    hash_fields: Vec<String>,
}

impl Checker<'_> {
    fn in_scope(&self, meta: &Meta) -> bool {
        meta.scope.applies_to(self.krate)
            || (meta.name == "raw-instant"
                && RAW_INSTANT_EXTRA_PATHS
                    .iter()
                    .any(|p| self.rel.ends_with(p)))
    }

    /// A pragma on the reported line, the line above it, or one covering
    /// an enclosing item waives the rule.
    fn allowed(&self, line: u32, rule: &str) -> bool {
        let line_hit = [line, line.saturating_sub(1)].iter().any(|l| {
            self.scan
                .allows
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
        });
        line_hit
            || self
                .item_allow_stack
                .iter()
                .any(|rs| rs.iter().any(|r| r == rule))
    }

    fn report(&mut self, meta: &Meta, line: u32, matched: impl Into<String>) -> bool {
        if !self.in_scope(meta) || self.allowed(line, meta.name) {
            return false;
        }
        self.out.diags.push(Diagnostic {
            file: self.rel.to_string(),
            line,
            rule: meta.name,
            matched: matched.into(),
            why: meta.why,
            help: meta.help,
        });
        true
    }

    fn walk_items(&mut self, items: &[Item]) {
        for item in items {
            if item.is_test {
                continue;
            }
            // Item-scoped pragma: `// dqa-lint: allow(x)` on the line
            // above the item (or above its attributes) covers the item.
            let pragma_line = item
                .attrs
                .first()
                .map(|a: &Attr| a.line)
                .unwrap_or(item.line_lo);
            let item_allows = [pragma_line.saturating_sub(1), pragma_line]
                .iter()
                .filter_map(|l| self.scan.allows.get(l))
                .flatten()
                .cloned()
                .collect::<Vec<_>>();
            self.item_allow_stack.push(item_allows);
            self.walk_item(item);
            self.item_allow_stack.pop();
        }
    }

    fn walk_item(&mut self, item: &Item) {
        match &item.kind {
            ItemKind::Use(imports) => self.check_imports(imports),
            ItemKind::Mod => {
                self.ctx.push(Scope::from_items(&item.children));
                self.walk_items(&item.children);
                self.ctx.pop();
            }
            ItemKind::Impl(decl) => {
                let prev_ty = self.self_ty.take();
                let prev_tr = self.impl_trait.take();
                self.self_ty = decl.self_ty.clone();
                self.impl_trait = decl.trait_name.clone();
                self.walk_items(&item.children);
                self.self_ty = prev_ty;
                self.impl_trait = prev_tr;
            }
            ItemKind::Trait => self.walk_items(&item.children),
            ItemKind::Fn(decl) => self.walk_fn(item, decl),
            // Struct fields, const/static/type-alias right-hand sides,
            // macro bodies, unrecognized items: scan for banned mentions
            // and calls, without guard tracking.
            _ => {
                let mut st = BodyState::default();
                self.walk_exprs(&item.tokens, &mut st);
            }
        }
    }

    // -- imports ----------------------------------------------------------

    fn check_imports(&mut self, imports: &[crate::ast::UseImport]) {
        for u in imports {
            let segs: Vec<&str> = u.path.split("::").collect();
            for (meta, banned, display) in [
                (&WALL_CLOCK, "std::time::Instant", "std::time::Instant"),
                (
                    &WALL_CLOCK,
                    "std::time::SystemTime",
                    "std::time::SystemTime",
                ),
                (&UNORDERED_STATE, "std::collections::HashMap", "HashMap"),
                (&UNORDERED_STATE, "std::collections::HashSet", "HashSet"),
                (&UNSEEDED_RNG, "rand::thread_rng", "rand::thread_rng"),
                (
                    &UNBOUNDED_CHANNEL,
                    "crossbeam_channel::unbounded",
                    "crossbeam_channel::unbounded",
                ),
                (
                    &UNCHECKED_DECODE,
                    "ir_engine::persist::decode_index",
                    "persist::decode_index",
                ),
            ] {
                if u.glob {
                    continue;
                }
                if judge(&self.ctx, &segs, banned) != Verdict::Innocent
                    && self.report(meta, u.line, display)
                    && meta.name == "unordered-state"
                {
                    // `use std::collections::HashMap;` — the span covers
                    // the final path segment, so rewriting it to the
                    // BTree twin is purely mechanical.
                    self.out.fixes.push(Edit {
                        lo: u.lo,
                        hi: u.hi,
                        replacement: btree_twin(banned).to_string(),
                    });
                }
            }
        }
    }

    // -- function bodies ---------------------------------------------------

    fn walk_fn(&mut self, _item: &Item, decl: &FnDecl) {
        // Signature: type mentions (params + return type).
        let mut sig_state = BodyState::default();
        if let Some(params) = &decl.params {
            self.walk_exprs(&params.trees, &mut sig_state);
        }
        self.walk_exprs(&decl.ret, &mut sig_state);

        // clock-leak evidence: does this fn live in a virtual-time world?
        let clock_param = decl
            .params
            .as_ref()
            .is_some_and(|p| mentions_clock_type(&p.trees))
            || self.impl_trait.as_deref() == Some("Clock");

        if let Some(body) = &decl.body {
            let mut st = BodyState {
                clock_scope: clock_param,
                ..BodyState::default()
            };
            // Seed known-hash vars from hash-typed params.
            if let Some(params) = &decl.params {
                seed_hash_params(&params.trees, &mut st);
                st.clock_scope |= mentions_clock_recv(&params.trees);
            }
            self.walk_block(&body.trees, &mut st);
            // Wall reads seen before the virtual-clock evidence (e.g. a
            // ManualClock mention later in the body) flush here.
            self.maybe_clock_leak(&mut st);
        }
    }

    /// Walk a `{}` block: statement-aware (let bindings, guard scopes).
    fn walk_block(&mut self, trees: &[Tree], st: &mut BodyState) {
        let guards_before = st.guards.len();
        let vars_before = st.hash_vars.len();
        let mut i = 0usize;
        while i < trees.len() {
            let stmt_end = statement_end(trees, i);
            self.walk_statement(&trees[i..stmt_end], st);
            i = stmt_end.max(i + 1);
            // Skip the `;` itself.
            if trees
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct(';'))
            {
                continue;
            }
        }
        st.guards.truncate(guards_before);
        st.hash_vars.truncate(vars_before);
    }

    /// One statement: classify `let` bindings, then run the expression
    /// walk; a guard bound by `let` survives to the end of the block,
    /// a temporary guard dies with the statement.
    fn walk_statement(&mut self, trees: &[Tree], st: &mut BodyState) {
        let temp_guards_before = st.guards.len();
        let mut bound_guard: Option<String> = None;
        let mut is_let = false;
        let mut name: Option<String> = None;

        if trees.first().is_some_and(|t| t.is_ident("let")) {
            is_let = true;
            let mut j = 1;
            if trees.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            name = trees.get(j).and_then(Tree::ident).map(String::from);
            // `let x: HashMap<..> = ...` / `let x: Vec<_> = ...`.
            if let (Some(n), true) = (&name, trees.get(j + 1).is_some_and(|t| t.is_punct(':'))) {
                if let Some(ty) = trees.get(j + 2).and_then(Tree::ident) {
                    if is_hash_name(ty) && self.ctx.resolve_ident(ty) != crate::sem::Origin::Local {
                        st.hash_vars.push(n.clone());
                    }
                }
            }
            // `let x = HashMap::new()` / `...collect::<HashMap<..>>()`.
            if let Some(n) = &name {
                if rhs_is_hash(&trees[j..]) {
                    st.hash_vars.push(n.clone());
                }
                // Shadowing kills a previous guard/hash binding.
                if !rhs_is_lock(&trees[j..]) {
                    st.guards.retain(|g| g.var.as_deref() != Some(n.as_str()));
                }
            }
        }

        // Expression-level events (mentions, calls, guard acquisitions).
        let acquired_before = st.pending_guard.take();
        let _ = acquired_before;
        self.walk_exprs(trees, st);

        // A `let g = <...>.lock();` statement: name the guard acquired in
        // this statement so it survives the statement.
        if let (true, Some(n)) = (is_let, name) {
            if let Some(g) = st
                .guards
                .iter_mut()
                .rev()
                .find(|g| g.var.is_none() && g.temp)
            {
                g.var = Some(n.clone());
                g.temp = false;
                bound_guard = Some(n);
            }
        }
        let _ = bound_guard;

        // `drop(g)` / `mem::drop(g)` releases the guard named `g` for the
        // rest of the block.
        let mut j = 0usize;
        while j < trees.len() {
            if trees[j].is_ident("drop") {
                if let Some(g) = trees
                    .get(j + 1)
                    .and_then(Tree::group)
                    .filter(|g| g.delim == '(')
                {
                    if g.trees.len() == 1 {
                        if let Some(name) = g.trees[0].ident() {
                            st.guards.retain(|gi| gi.var.as_deref() != Some(name));
                        }
                    }
                }
            }
            j += 1;
        }

        // Temporary (unbound) guards die with the statement.
        st.guards.truncate_temporaries(temp_guards_before);
    }

    /// The linear expression walk: paths, method calls, loops, nested
    /// groups. This is where most rules fire.
    fn walk_exprs(&mut self, trees: &[Tree], st: &mut BodyState) {
        let mut i = 0usize;
        while i < trees.len() {
            match &trees[i] {
                Tree::Leaf(tok) => {
                    if tok.ident() == Some("for") {
                        // `for pat in EXPR { .. }` — find `in`, the
                        // iterated expression, and the body.
                        if let Some(adv) = self.handle_for_loop(&trees[i..], st) {
                            i += adv;
                            continue;
                        }
                    }
                    if tok.is_punct('.') {
                        if let Some(adv) = self.handle_method(trees, i, st) {
                            i += adv;
                            continue;
                        }
                    }
                    if let Some(first) = tok.ident() {
                        if !is_expr_keyword(first) {
                            let adv = self.handle_path(trees, i, st);
                            i += adv;
                            continue;
                        }
                    }
                    i += 1;
                }
                Tree::Group(g) => {
                    if g.delim == '{' {
                        self.walk_block(&g.trees, st);
                    } else {
                        self.walk_exprs(&g.trees, st);
                    }
                    i += 1;
                }
            }
        }
    }

    /// `for pat in EXPR { body }`: returns trees consumed, if parsed.
    fn handle_for_loop(&mut self, trees: &[Tree], st: &mut BodyState) -> Option<usize> {
        let in_pos = trees
            .iter()
            .position(|t| t.is_ident("in"))
            .filter(|&p| p > 0)?;
        let body_pos = trees[in_pos..]
            .iter()
            .position(|t| t.is_group('{'))
            .map(|p| p + in_pos)?;
        let iterated = &trees[in_pos + 1..body_pos];
        // Direct iteration over a hash container (`for x in &map`,
        // `for (k, v) in map.iter()`, …).
        if let Some(line) = self.hash_iteration(iterated, st) {
            self.report(&HASHMAP_ITER_ORDER, line, hash_iter_label(iterated));
        }
        // Walk the iterated expression (it may itself contain calls) and
        // the body.
        self.walk_exprs(iterated, st);
        if let Some(body) = trees[body_pos].group() {
            self.walk_block(&body.trees, st);
        }
        Some(body_pos + 1)
    }

    /// Whether an iterated expression is a hash container or a
    /// non-reordering adapter chain on one; returns the line to report.
    fn hash_iteration(&self, iterated: &[Tree], st: &BodyState) -> Option<u32> {
        // Strip leading `&`/`mut`.
        let mut k = 0usize;
        while iterated
            .get(k)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            k += 1;
        }
        let root = iterated.get(k)?;
        let root_name = root.ident()?;
        let line = root.line();
        let is_hash_root = if root_name == "self" {
            let field = iterated
                .get(k + 2)
                .and_then(Tree::ident)
                .filter(|_| iterated.get(k + 1).is_some_and(|t| t.is_punct('.')));
            field.is_some_and(|f| self.hash_fields.iter().any(|h| h == f))
        } else {
            st.hash_vars.iter().any(|v| v == root_name)
        };
        if !is_hash_root {
            return None;
        }
        // A chain that restores order (sort/collect-into-BTree) is fine;
        // plain iteration and adapters like .iter()/.keys()/.map() are not.
        if chain_restores_order(&iterated[k..]) {
            return None;
        }
        Some(line)
    }

    /// Method-call handling (`.name(args)`): rules that react to method
    /// calls, guard tracking, and receiver-chain labels. `i` indexes the
    /// `.`; returns trees consumed from `i`, if this was a method call.
    fn handle_method(&mut self, trees: &[Tree], i: usize, st: &mut BodyState) -> Option<usize> {
        let name = trees.get(i + 1).and_then(Tree::ident)?;
        let name_line = trees[i + 1].line();
        // Optional turbofish between name and args.
        let mut j = i + 2;
        if trees.get(j).is_some_and(|t| t.is_punct(':'))
            && trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && trees.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            j = skip_angle(trees, j + 2);
        }
        let args = trees
            .get(j)
            .and_then(Tree::group)
            .filter(|g| g.delim == '(');
        let args = args?;
        let n_args = count_args(args);

        match name {
            "unwrap" | "expect" => {
                self.report(&RUNTIME_PANIC, name_line, format!(".{name}()"));
            }
            "recv" => {
                self.report(&UNBOUNDED_RECV, name_line, ".recv()");
                self.blocking_under_guard(st, name_line, ".recv()");
            }
            "recv_timeout" => {
                self.blocking_under_guard(st, name_line, ".recv_timeout()");
            }
            "join" if n_args == 0 => {
                self.blocking_under_guard(st, name_line, ".join()");
            }
            "wait" | "wait_until" | "wait_timeout" | "wait_while" | "wait_timeout_while"
            | "wait_while_until" => {
                // `cv.wait(&mut guard)` *is* the condvar protocol: the
                // guard is meant to be held. Only flag a wait whose
                // arguments do not hand over one of the live guards.
                let hands_over_guard = st.guards.iter().any(|g| {
                    g.var
                        .as_deref()
                        .is_some_and(|v| group_mentions_ident(args, v))
                });
                if !hands_over_guard {
                    self.blocking_under_guard(st, name_line, &format!(".{name}()"));
                }
            }
            "lock" | "read" | "write" if n_args == 0 => {
                // `.write()` with args is io::Write; zero-arg is a lock.
                if !(name == "read" || name == "write") || receiver_is_lockish(trees, i) {
                    self.acquire_guard(trees, i, name_line, st);
                }
            }
            "from_entropy" => {
                self.report(&UNSEEDED_RNG, name_line, "SeedableRng::from_entropy");
            }
            _ => {}
        }

        // Walk the argument group (closures, nested calls).
        self.walk_exprs(&args.trees, st);
        Some(j + 1 - i)
    }

    fn blocking_under_guard(&mut self, st: &BodyState, line: u32, what: &str) {
        if let Some(g) = st.guards.last() {
            let meta = &BLOCKING_UNDER_GUARD;
            if self.in_scope(meta) && !self.allowed(line, meta.name) {
                self.out.diags.push(Diagnostic {
                    file: self.rel.to_string(),
                    line,
                    rule: meta.name,
                    matched: format!("{what} while holding {}", g.label),
                    why: meta.why,
                    help: meta.help,
                });
            }
        }
    }

    /// A lock acquisition at `.lock()`/`.read()`/`.write()`: label the
    /// receiver, record lock-order edges against every held guard, and
    /// push the new guard (temporary until a `let` claims it).
    fn acquire_guard(&mut self, trees: &[Tree], dot: usize, line: u32, st: &mut BodyState) {
        let label = self.lock_label(trees, dot);
        for held in &st.guards {
            let allowed = self.allowed(line, LOCK_ORDER.name) || !self.in_scope(&LOCK_ORDER);
            self.out.lock_edges.push(LockEdge {
                held: held.label.clone(),
                acquired: label.clone(),
                file: self.rel.to_string(),
                line,
                allowed,
            });
        }
        st.guards.push(GuardInfo {
            var: None,
            label,
            temp: true,
        });
        st.pending_guard = Some(());
    }

    /// Build a workspace-unifiable label for the lock receiver ending at
    /// the `.` at `dot`: `crate::Type.field.path` with indexes stripped.
    fn lock_label(&mut self, trees: &[Tree], dot: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut k = dot;
        // Walk backwards over the receiver chain.
        while k > 0 {
            let prev = &trees[k - 1];
            if let Some(id) = prev.ident() {
                if is_expr_keyword(id) {
                    break;
                }
                parts.push(id.to_string());
                k -= 1;
                // A preceding `.` or `::` continues the chain.
                if k >= 1 && trees[k - 1].is_punct('.') {
                    k -= 1;
                    continue;
                }
                if k >= 2 && trees[k - 1].is_punct(':') && trees[k - 2].is_punct(':') {
                    k -= 2;
                    continue;
                }
                break;
            }
            if prev.is_group('[') {
                parts.push("[]".to_string());
                k -= 1;
                continue;
            }
            if prev.is_group('(') {
                // A call result: include it opaquely and stop.
                parts.push("()".to_string());
                k -= 1;
                continue;
            }
            break;
        }
        parts.reverse();
        let owner = self.self_ty.clone().unwrap_or_else(|| "fn".to_string());
        let chain = if parts.first().map(String::as_str) == Some("self") {
            parts[1..].join(".")
        } else {
            parts.join(".")
        };
        let chain = if chain.is_empty() {
            "<expr>".to_string()
        } else {
            chain
        };
        format!("{}::{owner}.{chain}", self.krate)
    }

    /// Path-expression handling starting at an identifier; returns trees
    /// consumed. Fires mention rules, path-call rules, macro rules, and
    /// clock-leak bookkeeping.
    fn handle_path(&mut self, trees: &[Tree], i: usize, st: &mut BodyState) -> usize {
        // Never a path root: field access (`x.Instant` is not a path).
        if i > 0 && trees[i - 1].is_punct('.') {
            return 1;
        }
        let mut segs: Vec<&str> = Vec::new();
        let mut seg_lines: Vec<u32> = Vec::new();
        let mut seg_spans: Vec<(usize, usize)> = Vec::new();
        let mut k = i;
        while let Some(id) = trees.get(k).and_then(Tree::ident) {
            segs.push(id);
            seg_lines.push(trees[k].line());
            seg_spans.push((trees[k].lo(), trees[k].hi()));
            if trees.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && trees.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                if trees.get(k + 3).is_some_and(|t| t.is_punct('<')) {
                    // Turbofish: type arguments scanned separately below.
                    k += 3;
                    let end = skip_angle(trees, k);
                    k = end;
                    break;
                }
                if trees.get(k + 3).and_then(Tree::ident).is_some() {
                    k += 3;
                    continue;
                }
            }
            k += 1;
            break;
        }
        let consumed = (k - i).max(1);
        let is_call = trees.get(k).is_some_and(|t| t.is_group('('));
        let is_macro = trees.get(k).is_some_and(|t| t.is_punct('!'));
        let last_line = *seg_lines.last().unwrap_or(&0);

        if is_macro {
            if let Some(&m) = segs.first() {
                if matches!(m, "panic" | "unreachable" | "todo" | "unimplemented") {
                    self.report(&RUNTIME_PANIC, seg_lines[0], format!("{m}!"));
                }
            }
            return consumed;
        }

        // Type-mention rules: fire on the banned type's own segment.
        let call_hi = trees.get(k).and_then(Tree::group).map(|g| g.hi);
        self.mention_rules(&segs, &seg_lines, &seg_spans, call_hi.filter(|_| is_call));

        // Path-call rules.
        if is_call {
            self.path_call_rules(&segs, &seg_lines, last_line, st);
        }

        // clock-leak: `clock.now()`-style reads handled in method walk via
        // receiver names; `ManualClock` mention marks the scope virtual.
        if segs.iter().any(|s| *s == "ManualClock") {
            st.clock_scope = true;
        }

        consumed
    }

    fn mention_rules(
        &mut self,
        segs: &[&str],
        seg_lines: &[u32],
        seg_spans: &[(usize, usize)],
        call_hi: Option<usize>,
    ) {
        for (meta, banned, display) in [
            (&WALL_CLOCK, "std::time::Instant", "std::time::Instant"),
            (
                &WALL_CLOCK,
                "std::time::SystemTime",
                "std::time::SystemTime",
            ),
            (&UNORDERED_STATE, "std::collections::HashMap", "HashMap"),
            (&UNORDERED_STATE, "std::collections::HashSet", "HashSet"),
            (&UNSEEDED_RNG, "rand::thread_rng", "rand::thread_rng"),
            (
                &UNSEEDED_RNG,
                "SeedableRng::from_entropy",
                "SeedableRng::from_entropy",
            ),
        ] {
            if !self.in_scope(meta) {
                continue;
            }
            let last = banned.split("::").last().unwrap_or(banned);
            let Some(pos) = segs.iter().position(|s| *s == last) else {
                continue;
            };
            if judge(&self.ctx, &segs[..=pos], banned) != Verdict::Innocent
                && self.report(meta, seg_lines[pos], display)
                && meta.name == "unordered-state"
            {
                let twin = btree_twin(banned);
                // `HashMap::with_capacity(n)` has no BTree equivalent:
                // rewrite the whole call to `BTreeMap::new()`.
                if segs.get(pos + 1) == Some(&"with_capacity") {
                    if let Some(hi) = call_hi {
                        self.out.fixes.push(Edit {
                            lo: seg_spans[pos].0,
                            hi,
                            replacement: format!("{twin}::new()"),
                        });
                        continue;
                    }
                }
                self.out.fixes.push(Edit {
                    lo: seg_spans[pos].0,
                    hi: seg_spans[pos].1,
                    replacement: twin.to_string(),
                });
            }
        }
    }

    fn path_call_rules(
        &mut self,
        segs: &[&str],
        seg_lines: &[u32],
        last_line: u32,
        st: &mut BodyState,
    ) {
        let last = *segs.last().unwrap_or(&"");
        match last {
            "sleep" if segs.len() >= 2 => {
                if judge(&self.ctx, segs, "std::thread::sleep") != Verdict::Innocent {
                    self.report(&WALL_CLOCK, last_line, "thread::sleep");
                    if !st.guards.is_empty() {
                        self.blocking_under_guard(st, last_line, "thread::sleep()");
                    }
                }
            }
            "now" if segs.len() >= 2 => {
                if judge(&self.ctx, segs, "std::time::Instant::now") != Verdict::Innocent {
                    self.report(&RAW_INSTANT, last_line, "Instant::now()");
                    st.wall_reads.push((last_line, "Instant::now()"));
                    self.maybe_clock_leak(st);
                }
                if judge(&self.ctx, segs, "std::time::SystemTime::now") != Verdict::Innocent {
                    st.wall_reads.push((last_line, "SystemTime::now()"));
                    self.maybe_clock_leak(st);
                }
            }
            "new" if segs.len() >= 2 && segs[segs.len() - 2] == "WallClock" => {
                st.wall_reads.push((last_line, "WallClock::new()"));
                self.maybe_clock_leak(st);
            }
            "now_instant" => {
                st.wall_reads.push((last_line, "now_instant()"));
                self.maybe_clock_leak(st);
            }
            "unbounded" => {
                if judge(&self.ctx, segs, "crossbeam_channel::unbounded") != Verdict::Innocent {
                    self.report(
                        &UNBOUNDED_CHANNEL,
                        seg_lines[segs.len() - 1],
                        "crossbeam_channel::unbounded",
                    );
                }
            }
            "write" if segs.len() >= 2 => {
                if judge(&self.ctx, segs, "std::fs::write") != Verdict::Innocent {
                    self.report(&RAW_FS_WRITE, last_line, "fs::write");
                }
            }
            "create" if segs.len() >= 2 => {
                if judge(&self.ctx, segs, "std::fs::File::create") != Verdict::Innocent {
                    self.report(&RAW_FS_WRITE, last_line, "File::create");
                }
            }
            "decode_index" => {
                if judge(&self.ctx, segs, "ir_engine::persist::decode_index") != Verdict::Innocent {
                    self.report(&UNCHECKED_DECODE, last_line, "persist::decode_index");
                }
            }
            "random" if segs.len() >= 2 => {
                if judge(&self.ctx, segs, "rand::random") != Verdict::Innocent {
                    self.report(&UNSEEDED_RNG, last_line, "rand::random");
                }
            }
            "thread_rng" => {
                if judge(&self.ctx, segs, "rand::thread_rng") != Verdict::Innocent {
                    self.report(&UNSEEDED_RNG, last_line, "rand::thread_rng");
                }
            }
            "from_entropy" => {
                // A SeedableRng trait method: fires through *any* receiver
                // type (`SmallRng::from_entropy()`), so judge only whether
                // the path is provably ours.
                if !matches!(
                    self.ctx.resolve(segs),
                    crate::sem::Origin::Local | crate::sem::Origin::Internal
                ) {
                    self.report(&UNSEEDED_RNG, last_line, "SeedableRng::from_entropy");
                }
            }
            "drop" if segs.len() == 1 => {
                // `drop(g)` releases a guard mid-block; handled by caller
                // walking args — but we must forget the guard here. The
                // argument group follows this path; peek it in walk_exprs
                // is complex, so mark a pending drop by name resolution in
                // the statement walk instead (conservative: clear nothing).
            }
            _ => {}
        }
    }

    fn maybe_clock_leak(&mut self, st: &mut BodyState) {
        if !st.clock_scope {
            return;
        }
        let reads = std::mem::take(&mut st.wall_reads);
        for (line, what) in reads {
            self.report(&CLOCK_LEAK, line, what);
        }
    }
}

// ---------------------------------------------------------------------------
// Body-walk state and small helpers.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GuardInfo {
    /// The `let` variable holding the guard (None while temporary).
    var: Option<String>,
    label: String,
    /// True until a `let` claims it; temporaries die with the statement.
    temp: bool,
}

trait GuardVec {
    fn truncate_temporaries(&mut self, floor: usize);
}

impl GuardVec for Vec<GuardInfo> {
    fn truncate_temporaries(&mut self, floor: usize) {
        let mut i = self.len();
        while i > floor {
            i -= 1;
            if self[i].temp {
                self.remove(i);
            }
        }
    }
}

#[derive(Debug, Default)]
struct BodyState {
    guards: Vec<GuardInfo>,
    hash_vars: Vec<String>,
    /// True when the enclosing fn is parameterized by a virtual Clock.
    clock_scope: bool,
    /// Wall-clock reads seen so far in this fn (flushed into clock-leak
    /// diagnostics the moment the scope is known to be virtual).
    wall_reads: Vec<(u32, &'static str)>,
    pending_guard: Option<()>,
}

/// Statement boundary: the next `;` at this nesting level, or — for
/// block-shaped statements (`if`/`match`/`for`/… ending in `{}` with no
/// `;`) — one past their final group when a new statement keyword starts.
fn statement_end(trees: &[Tree], start: usize) -> usize {
    let mut i = start;
    while i < trees.len() {
        if trees[i].is_punct(';') {
            return i + 1;
        }
        i += 1;
    }
    trees.len()
}

fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "if"
            | "else"
            | "match"
            | "while"
            | "loop"
            | "for"
            | "in"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "move"
            | "ref"
            | "pub"
            | "use"
            | "mod"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "where"
            | "as"
            | "dyn"
            | "unsafe"
            | "async"
            | "await"
            | "const"
            | "static"
            | "extern"
            | "crate"
    )
}

/// Skip a `<...>` starting at `i` (which indexes `<`); returns the index
/// past the matching `>`.
fn skip_angle(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_minus = false;
    while i < trees.len() {
        if trees[i].is_punct('<') {
            depth += 1;
        } else if trees[i].is_punct('>') && !prev_minus {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        prev_minus = trees[i].is_punct('-');
        i += 1;
    }
    i
}

fn count_args(g: &Group) -> usize {
    if g.trees.is_empty() {
        return 0;
    }
    1 + g.trees.iter().filter(|t| t.is_punct(',')).count()
}

fn group_mentions_ident(g: &Group, name: &str) -> bool {
    g.trees.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.ident() == Some(name),
        Tree::Group(inner) => group_mentions_ident(inner, name),
    })
}

/// Whether a receiver chain ending at the `.` at `dot` looks like a lock
/// (`self.state.read()` yes; `file.read()`… also yes — the heuristic is
/// receiver-based only for read/write: require a known lock-ish name in
/// the chain to curb io false positives).
fn receiver_is_lockish(trees: &[Tree], dot: usize) -> bool {
    let mut k = dot;
    let mut names = Vec::new();
    while k > 0 {
        let prev = &trees[k - 1];
        if let Some(id) = prev.ident() {
            names.push(id.to_lowercase());
            k -= 1;
            if k >= 1 && trees[k - 1].is_punct('.') {
                k -= 1;
                continue;
            }
            break;
        }
        if prev.is_group('[') || prev.is_group('(') {
            k -= 1;
            continue;
        }
        break;
    }
    names.iter().any(|n| {
        n.contains("lock") || n.contains("mutex") || n.contains("rw") || n.contains("guard")
    })
}

/// `let x = <rhs>`: does the right-hand side construct a hash container?
fn rhs_is_hash(trees: &[Tree]) -> bool {
    let eq = trees.iter().position(|t| t.is_punct('='));
    let Some(eq) = eq else { return false };
    let rhs = &trees[eq + 1..];
    // `HashMap::new()`, `HashMap::with_capacity(..)`, `HashMap::from(..)`.
    if rhs.first().and_then(Tree::ident).is_some_and(is_hash_name) {
        return true;
    }
    // `...collect::<HashMap<..>>()` or `HashSet` in a turbofish.
    let mut prev_colon2 = false;
    for w in rhs.windows(2) {
        if w[0].is_punct(':') && w[1].is_punct(':') {
            prev_colon2 = true;
            continue;
        }
        if prev_colon2 {
            if w[1].ident().is_some_and(is_hash_name) {
                return true;
            }
            prev_colon2 = false;
        }
    }
    false
}

/// `let g = <rhs>`: does the right-hand side end in a lock acquisition
/// (possibly via `.unwrap()`/`.expect(..)`)?
fn rhs_is_lock(trees: &[Tree]) -> bool {
    let names: Vec<&str> = trees.iter().filter_map(Tree::ident).collect();
    names
        .iter()
        .rev()
        .take(3)
        .any(|n| matches!(*n, "lock" | "read" | "write" | "try_lock"))
}

/// Whether an adapter chain restores a deterministic order: an explicit
/// sort, or collecting into an ordered container.
fn chain_restores_order(trees: &[Tree]) -> bool {
    let names: Vec<&str> = trees.iter().filter_map(Tree::ident).collect();
    names.iter().any(|n| {
        n.starts_with("sort")
            || matches!(*n, "BTreeMap" | "BTreeSet" | "BinaryHeap")
            || matches!(
                *n,
                "count" | "sum" | "product" | "min" | "max" | "all" | "any" | "len"
            )
    })
}

/// A short human label for a flagged hash iteration.
fn hash_iter_label(iterated: &[Tree]) -> String {
    let mut out = String::new();
    for t in iterated.iter().take(6) {
        match t {
            Tree::Leaf(tok) => match &tok.kind {
                TokKind::Ident(s) => {
                    if !out.is_empty() && !out.ends_with('.') && !out.ends_with('&') {
                        out.push('.');
                    }
                    out.push_str(s);
                }
                TokKind::Punct('&') => out.push('&'),
                _ => {}
            },
            Tree::Group(_) => out.push_str("()"),
        }
    }
    if out.is_empty() {
        "hash iteration".to_string()
    } else {
        format!("iteration over {out}")
    }
}

/// Does a parameter list mention a virtual clock type (`&dyn Clock`,
/// `impl Clock`, `Arc<ManualClock>`, `C: Clock`)?
fn mentions_clock_type(trees: &[Tree]) -> bool {
    let names: Vec<&str> = flat_idents(trees);
    names
        .windows(1)
        .any(|w| matches!(w[0], "Clock" | "ManualClock"))
}

/// Params named like a clock (`clock: …`) also mark the scope virtual.
fn mentions_clock_recv(trees: &[Tree]) -> bool {
    flat_idents(trees).iter().any(|n| *n == "clock")
}

fn flat_idents(trees: &[Tree]) -> Vec<&str> {
    let mut out = Vec::new();
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if let Some(s) = tok.ident() {
                    out.push(s);
                }
            }
            Tree::Group(g) => out.extend(flat_idents(&g.trees)),
        }
    }
    out
}

/// Seed hash-typed fn params (`m: &HashMap<K, V>`) as known-hash vars.
fn seed_hash_params(trees: &[Tree], st: &mut BodyState) {
    let mut i = 0usize;
    while i < trees.len() {
        if trees[i].is_punct(':') && i > 0 {
            if let Some(name) = trees[i - 1].ident() {
                let mut j = i + 1;
                while trees.get(j).is_some_and(|t| {
                    t.is_punct('&')
                        || t.is_ident("mut")
                        || matches!(
                            t,
                            Tree::Leaf(Tok {
                                kind: TokKind::Lifetime,
                                ..
                            })
                        )
                }) {
                    j += 1;
                }
                if trees.get(j).and_then(Tree::ident).is_some_and(is_hash_name) {
                    st.hash_vars.push(name.to_string());
                }
            }
        }
        i += 1;
    }
}
