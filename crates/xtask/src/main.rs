//! Task-runner entry point: `cargo xtask <command>`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--json] [--fix] [--root <workspace-root>]\n\
         \n\
         Commands:\n\
         \x20 lint    run dqa-lint v2, the determinism/robustness static-analysis pass\n\
         \x20         (--fix applies mechanical rewrites, e.g. HashMap -> BTreeMap)\n\
         \n\
         Rules (waive with `// dqa-lint: allow(<rule>)` on the line, above it, or\n\
         above an enclosing item):\n\
         \x20 wall-clock           no Instant/SystemTime/thread::sleep in virtual-time crates\n\
         \x20 unordered-state      no HashMap/HashSet in sim/scheduler state crates\n\
         \x20 raw-instant          no direct Instant::now() in dqa-runtime\n\
         \x20 runtime-panic        no unwrap/expect/panic! in dqa-runtime non-test code\n\
         \x20 unbounded-recv       no bare .recv() in dqa-runtime non-test code\n\
         \x20 unbounded-channel    no crossbeam_channel::unbounded in dqa-runtime\n\
         \x20 raw-fs-write         no ad-hoc fs writes in dqa-runtime (journal only)\n\
         \x20 unseeded-rng         no thread_rng/from_entropy/rand::random outside qa-cli\n\
         \x20 lock-order           no cycles in the workspace lock-acquisition graph\n\
         \x20 blocking-under-guard no blocking call while a lock guard is held\n\
         \x20 hashmap-iter-order   no iteration over hash-container order\n\
         \x20 clock-leak           no wall-clock reads in Clock-parameterized code"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }
    let mut json = false;
    let mut fix = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--fix" => fix = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(|| {
        // When run via `cargo xtask`, the manifest dir is crates/xtask.
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });

    if fix {
        match xtask::run_fix(&root) {
            Ok((files, edits)) => {
                eprintln!("dqa-lint: applied {edits} fix(es) in {files} file(s)");
            }
            Err(e) => {
                eprintln!("dqa-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match xtask::run_lint(&root) {
        Ok((checked, diags)) => {
            if json {
                println!("{}", xtask::render_json(checked, &diags));
            } else if diags.is_empty() {
                println!("dqa-lint: {checked} files checked, no violations");
            } else {
                print!("{}", xtask::render_text(&diags));
                println!("dqa-lint: {} violation(s) in {checked} files", diags.len());
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dqa-lint: {e}");
            ExitCode::from(2)
        }
    }
}
