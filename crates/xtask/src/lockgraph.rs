//! Workspace lock-order graph: cycle detection over the acquisition
//! edges each file's analysis emitted.
//!
//! Every time code acquires lock B while holding lock A, the per-file
//! walk records an `A -> B` edge ([`crate::rules::LockEdge`]). Any cycle
//! in the union of those edges — including a self-loop, i.e. re-acquiring
//! a non-reentrant lock — is a potential deadlock: two threads entering
//! the cycle from different points can each hold what the other needs.
//! This pass runs once over the whole workspace, so an `A -> B` in one
//! crate and a `B -> A` in another still meet.

use crate::rules::{Diagnostic, LockEdge, LOCK_ORDER_HELP, LOCK_ORDER_WHY};
use std::collections::BTreeMap;

/// Turn the workspace's edge set into `lock-order` diagnostics: one per
/// non-waived acquisition site participating in a cycle.
pub fn cycle_diagnostics(edges: &[LockEdge]) -> Vec<Diagnostic> {
    // Index the labels.
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    for e in edges {
        let n = index.len();
        index.entry(e.held.as_str()).or_insert(n);
        let n = index.len();
        index.entry(e.acquired.as_str()).or_insert(n);
    }
    let n = index.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        adj[index[e.held.as_str()]].push(index[e.acquired.as_str()]);
    }

    let scc = tarjan(&adj);
    // SCC sizes, to distinguish a real cycle from a lone node.
    let mut scc_size = vec![0usize; n];
    for &c in &scc {
        scc_size[c] += 1;
    }

    let mut out = Vec::new();
    for e in edges {
        if e.allowed {
            continue;
        }
        let a = index[e.held.as_str()];
        let b = index[e.acquired.as_str()];
        let cyclic = scc[a] == scc[b] && (scc_size[scc[a]] > 1 || a == b);
        if cyclic {
            out.push(Diagnostic {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                matched: format!("{} -> {}", e.held, e.acquired),
                why: LOCK_ORDER_WHY,
                help: LOCK_ORDER_HELP,
            });
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Iterative Tarjan strongly-connected components; returns the component
/// id of each node.
fn tarjan(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS state: (node, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &str, acq: &str, line: u32) -> LockEdge {
        LockEdge {
            held: held.to_string(),
            acquired: acq.to_string(),
            file: "crates/x/src/lib.rs".to_string(),
            line,
            allowed: false,
        }
    }

    #[test]
    fn straight_line_order_is_clean() {
        let edges = vec![edge("a", "b", 1), edge("b", "c", 2), edge("a", "c", 3)];
        assert!(cycle_diagnostics(&edges).is_empty());
    }

    #[test]
    fn two_cycle_is_reported_at_both_sites() {
        let edges = vec![edge("a", "b", 1), edge("b", "a", 9)];
        let diags = cycle_diagnostics(&edges);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == "lock-order"));
        assert_eq!(diags[0].matched, "a -> b");
        assert_eq!(diags[1].matched, "b -> a");
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let edges = vec![edge("a", "a", 4)];
        assert_eq!(cycle_diagnostics(&edges).len(), 1);
    }

    #[test]
    fn allowed_edges_keep_the_graph_but_not_the_diag() {
        let mut e = edge("b", "a", 9);
        e.allowed = true;
        let edges = vec![edge("a", "b", 1), e];
        let diags = cycle_diagnostics(&edges);
        // Only the non-waived half of the cycle is reported.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].matched, "a -> b");
    }
}
