//! A lightweight Rust item parser over token trees.
//!
//! This is deliberately not a full grammar: dqa-lint needs *items* (so
//! test code can be exempted at item scope and `allow` pragmas can cover
//! whole functions), *imports* (so `Instant` can be resolved to
//! `std::time::Instant` — or proven to be something else), and *function
//! bodies as token trees* (walked by the rule visitors with a scope
//! stack). Expression grammar beyond method/path calls is intentionally
//! left to the visitors.
//!
//! The parser is tolerant by construction: anything it does not
//! recognize becomes an [`ItemKind::Other`] item spanning to the next
//! `;` or brace group, and the walk continues. A linter must degrade
//! gracefully on code mid-edit.

use crate::tree::{Group, Tree};

/// One parsed attribute, reduced to the identifiers it contains
/// (`#[cfg(any(test, loom))]` → `["cfg", "any", "test", "loom"]`).
#[derive(Debug, Clone)]
pub struct Attr {
    pub idents: Vec<String>,
    pub line: u32,
}

impl Attr {
    /// Whether this attribute marks test-only code: `#[test]`,
    /// `#[cfg(test)]`, `#[cfg(any(test, ...))]`, `#[tokio::test]`-style.
    /// `#[cfg(not(test))]` is non-test code.
    pub fn is_test(&self) -> bool {
        if self.idents.iter().any(|s| s == "not") {
            return false;
        }
        let has_test = self.idents.iter().any(|s| s == "test" || s == "loom");
        has_test
            && (self.idents.first().is_some_and(|s| s == "cfg")
                || self.idents.last().is_some_and(|s| s == "test"))
    }
}

/// One name introduced by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// Full path as written, `::`-joined (e.g. `std::collections::HashMap`).
    pub path: String,
    /// The name it binds locally (last segment, or the `as` alias).
    pub alias: String,
    /// `use foo::*` — binds everything under `path`.
    pub glob: bool,
    /// Line / byte span of the last path segment (rewritten by `--fix`).
    pub line: u32,
    pub lo: usize,
    pub hi: usize,
}

/// What kind of item a node is.
#[derive(Debug, Clone)]
pub enum ItemKind {
    Use(Vec<UseImport>),
    Mod,
    Fn(FnDecl),
    Struct,
    Enum,
    Union,
    Trait,
    Impl(ImplDecl),
    TypeAlias,
    Const,
    Static,
    ExternCrate,
    MacroDef,
    MacroCall,
    Other,
}

/// An `impl` block's header, as far as the linter needs it.
#[derive(Debug, Clone, Default)]
pub struct ImplDecl {
    /// First identifier of the implementing type (`AdmissionGate` for
    /// `impl AdmissionGate` or `impl Clock for AdmissionGate`).
    pub self_ty: Option<String>,
    /// First identifier of the trait, for trait impls.
    pub trait_name: Option<String>,
}

/// A function signature plus body.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// The parameter-list group.
    pub params: Option<Group>,
    /// Return-type trees between `->` and the body (empty if none).
    pub ret: Vec<Tree>,
    /// The `{ ... }` body (None for trait method declarations).
    pub body: Option<Group>,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    pub attrs: Vec<Attr>,
    pub kind: ItemKind,
    /// The item's declared name, when it has one.
    pub name: Option<String>,
    /// First and last source lines covered by the item.
    pub line_lo: u32,
    pub line_hi: u32,
    /// Whether an attribute marks this item (and its subtree) test-only.
    pub is_test: bool,
    /// Nested items (module bodies, impl/trait members).
    pub children: Vec<Item>,
    /// The item's own header/body trees, excluding parsed children for
    /// mod/impl/trait (kept for struct fields, const exprs, fn bodies via
    /// [`FnDecl`], and [`ItemKind::Other`] fallbacks).
    pub tokens: Vec<Tree>,
}

/// A parsed source file: a flat module tree of items.
#[derive(Debug, Clone, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// Parse a file's token trees into items.
pub fn parse(trees: &[Tree]) -> File {
    File {
        items: parse_items(trees),
    }
}

fn parse_items(trees: &[Tree]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Collect outer attributes; drop inner ones (`#![...]`).
        let mut attrs = Vec::new();
        while i < trees.len() && trees[i].is_punct('#') {
            let inner = trees.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let open = if inner { i + 2 } else { i + 1 };
            let Some(g) = trees.get(open).and_then(Tree::group).filter(|g| g.delim == '[')
            else {
                break;
            };
            if !inner {
                attrs.push(Attr {
                    idents: collect_idents(&g.trees),
                    line: trees[i].line(),
                });
            }
            i = open + 1;
        }
        if i >= trees.len() {
            break;
        }
        let start = i;
        let (item, next) = parse_one(trees, i, attrs);
        items.push(item);
        i = next.max(start + 1);
    }
    items
}

fn collect_idents(trees: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if let Some(s) = tok.ident() {
                    out.push(s.to_string());
                }
            }
            Tree::Group(g) => out.extend(collect_idents(&g.trees)),
        }
    }
    out
}

/// Skip visibility (`pub`, `pub(crate)`, `pub(in path)`) and fn-qualifier
/// keywords, returning the index of the defining keyword.
fn skip_qualifiers(trees: &[Tree], mut i: usize) -> usize {
    loop {
        match trees.get(i).and_then(Tree::ident) {
            Some("pub") => {
                i += 1;
                if trees.get(i).is_some_and(|t| t.is_group('(')) {
                    i += 1;
                }
            }
            Some("default" | "unsafe" | "async") => i += 1,
            // `const fn` / `extern "C" fn` are qualifiers; `const NAME` and
            // `extern crate` are items — only skip when a `fn` follows.
            Some("const" | "extern") => {
                let mut j = i + 1;
                if trees
                    .get(j)
                    .and_then(Tree::leaf)
                    .is_some_and(|t| matches!(t.kind, crate::scan::TokKind::Lit(_)))
                {
                    j += 1; // the ABI string of `extern "C"`
                }
                let further = matches!(
                    trees.get(j).and_then(Tree::ident),
                    Some("fn" | "unsafe" | "async")
                );
                if further {
                    i += 1;
                } else {
                    return i;
                }
            }
            _ => return i,
        }
    }
}

/// Skip a `<...>` generic-parameter list starting at `i` (which indexes
/// `<`); returns the index past the matching `>`. `->` never appears at
/// this token level inside generics except in `Fn() -> T` bounds, whose
/// `>`-half is preceded by `-` and is not counted.
fn skip_generics(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_minus = false;
    while i < trees.len() {
        if trees[i].is_punct('<') {
            depth += 1;
        } else if trees[i].is_punct('>') && !prev_minus {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        prev_minus = trees[i].is_punct('-');
        i += 1;
    }
    i
}

/// Find the next top-level `;` or `{}` group from `i`; returns the index
/// one past it (the legacy "skip one item" rule).
fn skip_to_item_end(trees: &[Tree], mut i: usize) -> usize {
    while i < trees.len() {
        if trees[i].is_punct(';') {
            return i + 1;
        }
        if trees[i].is_group('{') {
            return i + 1;
        }
        i += 1;
    }
    i
}

fn line_range(trees: &[Tree]) -> (u32, u32) {
    let lo = trees.first().map_or(0, Tree::line);
    let hi = trees
        .iter()
        .map(|t| match t {
            Tree::Group(g) => g.close_line,
            Tree::Leaf(t) => t.line,
        })
        .max()
        .unwrap_or(lo);
    (lo, hi)
}

fn parse_one(trees: &[Tree], i: usize, attrs: Vec<Attr>) -> (Item, usize) {
    let is_test = attrs.iter().any(Attr::is_test);
    let kw_at = skip_qualifiers(trees, i);
    let kw = trees.get(kw_at).and_then(Tree::ident).unwrap_or("");
    let mk = |kind, name: Option<String>, end: usize, children: Vec<Item>| {
        let slice = &trees[i..end.min(trees.len())];
        let (line_lo, line_hi) = line_range(slice);
        (
            Item {
                attrs,
                kind,
                name,
                line_lo,
                line_hi,
                is_test,
                children,
                tokens: slice.to_vec(),
            },
            end,
        )
    };

    match kw {
        "use" => {
            // A use declaration ends at its `;` — the `{...}` of a use
            // tree is part of the path, not an item body.
            let semi = trees[kw_at..]
                .iter()
                .position(|t| t.is_punct(';'))
                .map(|p| p + kw_at)
                .unwrap_or(trees.len());
            let imports = parse_use(&trees[kw_at + 1..semi]);
            mk(
                ItemKind::Use(imports),
                None,
                (semi + 1).min(trees.len()),
                Vec::new(),
            )
        }
        "mod" => {
            let name = trees.get(kw_at + 1).and_then(Tree::ident).map(String::from);
            let end = skip_to_item_end(trees, kw_at);
            let children = trees[..end]
                .iter()
                .rev()
                .find_map(Tree::group)
                .filter(|g| g.delim == '{')
                .map(|g| parse_items(&g.trees))
                .unwrap_or_default();
            mk(ItemKind::Mod, name, end, children)
        }
        "fn" => {
            let name = trees.get(kw_at + 1).and_then(Tree::ident).map(String::from);
            let mut j = kw_at + 2;
            if trees.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_generics(trees, j);
            }
            let params = trees
                .get(j)
                .and_then(Tree::group)
                .filter(|g| g.delim == '(')
                .cloned();
            if params.is_some() {
                j += 1;
            }
            // Return type: trees between `->` and the body/`;`/`where`.
            let mut ret = Vec::new();
            if trees.get(j).is_some_and(|t| t.is_punct('-'))
                && trees.get(j + 1).is_some_and(|t| t.is_punct('>'))
            {
                j += 2;
                while j < trees.len()
                    && !trees[j].is_group('{')
                    && !trees[j].is_punct(';')
                    && trees[j].ident() != Some("where")
                {
                    ret.push(trees[j].clone());
                    j += 1;
                }
            }
            let end = skip_to_item_end(trees, j);
            let body = trees[j..end]
                .iter()
                .rev()
                .find_map(Tree::group)
                .filter(|g| g.delim == '{')
                .cloned();
            mk(ItemKind::Fn(FnDecl { params, ret, body }), name, end, Vec::new())
        }
        "struct" | "enum" | "union" => {
            let name = trees.get(kw_at + 1).and_then(Tree::ident).map(String::from);
            let kind = match kw {
                "struct" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                _ => ItemKind::Union,
            };
            // Tuple structs end at `;` *after* their `(..)`; braced ones at
            // the `{}` group.
            let mut j = kw_at + 1;
            if trees.get(j + 1).is_some_and(|t| t.is_punct('<')) {
                j = skip_generics(trees, j + 1);
            }
            let mut end = skip_to_item_end(trees, j);
            // A tuple struct's `(..)` group is not the item end; continue to
            // the `;`.
            if end > 0
                && trees.get(end - 1).is_some_and(|t| t.is_group('('))
            {
                end = skip_to_item_end(trees, end);
            }
            mk(kind, name, end, Vec::new())
        }
        "trait" => {
            let name = trees.get(kw_at + 1).and_then(Tree::ident).map(String::from);
            let end = skip_to_item_end(trees, kw_at);
            let children = trees[..end]
                .iter()
                .rev()
                .find_map(Tree::group)
                .filter(|g| g.delim == '{')
                .map(|g| parse_items(&g.trees))
                .unwrap_or_default();
            mk(ItemKind::Trait, name, end, children)
        }
        "impl" => {
            let mut j = kw_at + 1;
            if trees.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_generics(trees, j);
            }
            // Header trees up to the body group or a `where` clause.
            let mut header = Vec::new();
            let mut k = j;
            while k < trees.len() && !trees[k].is_group('{') {
                header.push(&trees[k]);
                k += 1;
            }
            let for_pos = header.iter().position(|t| t.is_ident("for"));
            let ty_first_ident = |ts: &[&Tree]| {
                ts.iter()
                    .filter(|t| !t.is_punct('&') && !t.is_punct('\''))
                    .find_map(|t| t.ident())
                    .filter(|s| !matches!(*s, "dyn" | "mut" | "where"))
                    .map(String::from)
                    .or_else(|| {
                        ts.iter()
                            .find_map(|t| t.ident())
                            .map(String::from)
                    })
            };
            let decl = match for_pos {
                Some(p) => ImplDecl {
                    trait_name: ty_first_ident(&header[..p]),
                    self_ty: ty_first_ident(&header[p + 1..]),
                },
                None => ImplDecl {
                    trait_name: None,
                    self_ty: ty_first_ident(&header),
                },
            };
            let end = skip_to_item_end(trees, kw_at);
            let children = trees[..end]
                .iter()
                .rev()
                .find_map(Tree::group)
                .filter(|g| g.delim == '{')
                .map(|g| parse_items(&g.trees))
                .unwrap_or_default();
            let name = decl.self_ty.clone();
            mk(ItemKind::Impl(decl), name, end, children)
        }
        "type" => {
            let name = trees.get(kw_at + 1).and_then(Tree::ident).map(String::from);
            mk(ItemKind::TypeAlias, name, skip_to_item_end(trees, kw_at), Vec::new())
        }
        "const" | "static" => {
            let mut j = kw_at + 1;
            if trees.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = trees.get(j).and_then(Tree::ident).map(String::from);
            let kind = if kw == "const" {
                ItemKind::Const
            } else {
                ItemKind::Static
            };
            mk(kind, name, skip_to_item_end(trees, kw_at), Vec::new())
        }
        "extern" => mk(
            ItemKind::ExternCrate,
            None,
            skip_to_item_end(trees, kw_at),
            Vec::new(),
        ),
        "macro_rules" => {
            let name = trees.get(kw_at + 2).and_then(Tree::ident).map(String::from);
            mk(ItemKind::MacroDef, name, skip_to_item_end(trees, kw_at), Vec::new())
        }
        _ => {
            // A top-level macro call (`name!{...}` / `name!(...);`) or
            // something unrecognized: swallow to the next `;`/brace group.
            let kind = if trees.get(kw_at + 1).is_some_and(|t| t.is_punct('!')) {
                ItemKind::MacroCall
            } else {
                ItemKind::Other
            };
            mk(kind, None, skip_to_item_end(trees, i), Vec::new())
        }
    }
}

/// Flatten one `use` declaration's trees (without the `use` keyword and
/// trailing `;`) into bound names.
fn parse_use(trees: &[Tree]) -> Vec<UseImport> {
    let mut out = Vec::new();
    flatten_use(trees, &[], &mut out);
    out
}

#[derive(Clone)]
struct Seg {
    name: String,
    line: u32,
    lo: usize,
    hi: usize,
}

fn flatten_use(trees: &[Tree], prefix: &[Seg], out: &mut Vec<UseImport>) {
    let mut segs: Vec<Seg> = prefix.to_vec();
    let mut i = 0usize;
    let flush = |segs: &[Seg], alias: Option<&Seg>, glob: bool, out: &mut Vec<UseImport>| {
        if segs.is_empty() {
            return;
        }
        let last = alias.unwrap_or_else(|| segs.last().expect("non-empty"));
        // The span rewritten by --fix is the *path's* last segment, not
        // the alias.
        let path_last = segs.last().expect("non-empty");
        out.push(UseImport {
            path: segs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join("::"),
            alias: last.name.clone(),
            glob,
            line: path_last.line,
            lo: path_last.lo,
            hi: path_last.hi,
        });
    };
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) => {
                if let Some(name) = t.ident() {
                    if name == "as" {
                        let alias = trees.get(i + 1).and_then(Tree::leaf).and_then(|l| {
                            l.ident().map(|s| Seg {
                                name: s.to_string(),
                                line: l.line,
                                lo: l.lo,
                                hi: l.hi,
                            })
                        });
                        flush(&segs, alias.as_ref(), false, out);
                        segs = prefix.to_vec();
                        segs.clear();
                        i += 2;
                        // Skip a following comma.
                        if trees.get(i).is_some_and(|t| t.is_punct(',')) {
                            i += 1;
                            segs = prefix.to_vec();
                        }
                        continue;
                    }
                    if name == "self" && !segs.is_empty() {
                        // `use a::b::{self, C}` — binds `b`.
                        flush(&segs, None, false, out);
                        i += 1;
                        continue;
                    }
                    segs.push(Seg {
                        name: name.to_string(),
                        line: t.line,
                        lo: t.lo,
                        hi: t.hi,
                    });
                    i += 1;
                } else if t.is_punct('*') {
                    flush(&segs, None, true, out);
                    segs = prefix.to_vec();
                    i += 1;
                } else if t.is_punct(',') {
                    if segs.len() > prefix.len() {
                        flush(&segs, None, false, out);
                    }
                    segs = prefix.to_vec();
                    i += 1;
                } else {
                    // `:` of `::` and anything else.
                    i += 1;
                }
            }
            Tree::Group(g) if g.delim == '{' => {
                flatten_use(&g.trees, &segs, out);
                segs = prefix.to_vec();
                i += 1;
            }
            Tree::Group(_) => i += 1,
        }
    }
    if segs.len() > prefix.len() {
        flush(&segs, None, false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use crate::tree::build;

    fn file(src: &str) -> File {
        parse(&build(&scan(src).toks))
    }

    #[test]
    fn parses_use_trees() {
        let f = file("use std::collections::{HashMap, BTreeMap as Sorted};\nuse rand::*;\nuse a::b::{self, C};");
        let all: Vec<(String, String, bool)> = f
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use(u) => Some(u.clone()),
                _ => None,
            })
            .flatten()
            .map(|u| (u.alias, u.path, u.glob))
            .collect();
        assert!(all.contains(&("HashMap".into(), "std::collections::HashMap".into(), false)));
        assert!(all.contains(&("Sorted".into(), "std::collections::BTreeMap".into(), false)));
        assert!(all.contains(&("rand".into(), "rand".into(), true)));
        assert!(all.contains(&("b".into(), "a::b".into(), false)));
        assert!(all.contains(&("C".into(), "a::b::C".into(), false)));
    }

    #[test]
    fn fn_bodies_and_names_are_captured() {
        let f = file("pub async fn go<T: Clone>(x: T) -> T { x }");
        assert_eq!(f.items.len(), 1);
        assert_eq!(f.items[0].name.as_deref(), Some("go"));
        let ItemKind::Fn(d) = &f.items[0].kind else {
            panic!("not a fn: {:?}", f.items[0].kind);
        };
        assert!(d.params.is_some());
        assert!(d.body.is_some());
        assert!(!d.ret.is_empty());
    }

    #[test]
    fn cfg_test_mods_are_marked() {
        let f = file("#[cfg(test)]\nmod tests { fn helper() {} }\nfn real() {}");
        assert!(f.items[0].is_test);
        assert_eq!(f.items[0].children.len(), 1);
        assert!(!f.items[1].is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let f = file("#[cfg(not(test))]\nfn real() {}");
        assert!(!f.items[0].is_test);
    }

    #[test]
    fn impl_headers_resolve_self_type_and_trait() {
        let f = file("impl<T> Clock for Wall<T> { fn now(&self) -> f64 { 0.0 } }");
        let ItemKind::Impl(d) = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(d.trait_name.as_deref(), Some("Clock"));
        assert_eq!(d.self_ty.as_deref(), Some("Wall"));
        assert_eq!(f.items[0].children.len(), 1);
        let f2 = file("impl AdmissionGate { fn admit(&self) {} }");
        let ItemKind::Impl(d2) = &f2.items[0].kind else {
            panic!()
        };
        assert_eq!(d2.self_ty.as_deref(), Some("AdmissionGate"));
        assert_eq!(d2.trait_name, None);
    }

    #[test]
    fn tuple_structs_span_to_semicolon() {
        let f = file("pub struct Wrap(pub u32);\nfn after() {}");
        assert_eq!(f.items.len(), 2);
        assert!(matches!(f.items[0].kind, ItemKind::Struct));
        assert!(matches!(f.items[1].kind, ItemKind::Fn(_)));
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail() {
        let f = file("fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }");
        assert_eq!(f.items.len(), 1);
        let ItemKind::Fn(d) = &f.items[0].kind else {
            panic!()
        };
        assert!(d.body.is_some());
    }

    #[test]
    fn stacked_test_attrs_swallow_the_item() {
        let f = file("#[test]\n#[ignore]\nfn t() { panic!(\"x\") }\nfn keep() {}");
        assert!(f.items[0].is_test);
        assert!(!f.items[1].is_test);
    }
}
