//! Token trees: the lexer's flat stream grouped by `()`/`[]`/`{}`.
//!
//! This is the shape the AST layer parses items out of, and the shape the
//! rule visitors walk: a function body is one `{}` group, a call's
//! arguments one `()` group, an attribute's payload one `[]` group. Having
//! delimiters matched once here means every later pass can reason about
//! nesting without counting brackets.

use crate::scan::{Tok, TokKind};

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Tok),
    /// A delimited group and everything inside it.
    Group(Group),
}

/// A delimited group: `( ... )`, `[ ... ]` or `{ ... }`.
#[derive(Debug, Clone)]
pub struct Group {
    /// The opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// Line of the opening delimiter.
    pub line: u32,
    /// Line of the closing delimiter (== `line` when unterminated).
    pub close_line: u32,
    /// Byte span covering the delimiters and everything between them.
    pub lo: usize,
    pub hi: usize,
    pub trees: Vec<Tree>,
}

impl Tree {
    /// The leaf token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is a group.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }

    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        self.leaf().and_then(Tok::ident)
    }

    /// True when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(c))
    }

    /// True when this is a group opened by `delim`.
    pub fn is_group(&self, delim: char) -> bool {
        self.group().is_some_and(|g| g.delim == delim)
    }

    /// The 1-based source line this tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.line,
        }
    }

    /// Byte span start.
    pub fn lo(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.lo,
            Tree::Group(g) => g.lo,
        }
    }

    /// Byte span end.
    pub fn hi(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.hi,
            Tree::Group(g) => g.hi,
        }
    }
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        '{' => '}',
        _ => unreachable!("not an open delimiter"),
    }
}

/// Group a flat token stream into trees. Unbalanced delimiters are
/// tolerated: a stray closer is dropped, an unterminated group closes at
/// end of input — linting must degrade, not die, on half-edited files.
pub fn build(toks: &[Tok]) -> Vec<Tree> {
    let (trees, _) = build_until(toks, 0, None);
    trees
}

fn build_until(toks: &[Tok], mut i: usize, until: Option<char>) -> (Vec<Tree>, usize) {
    let mut out = Vec::new();
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct(c @ ('(' | '[' | '{')) => {
                let open = *c;
                let open_tok = t.clone();
                let (inner, next) = build_until(toks, i + 1, Some(closer(open)));
                // `next` indexes the closer (or toks.len() if unterminated).
                let (hi, close_line) = match toks.get(next) {
                    Some(cl) => (cl.hi, cl.line),
                    None => (
                        inner.last().map_or(open_tok.hi, Tree::hi),
                        inner.last().map_or(open_tok.line, Tree::line),
                    ),
                };
                out.push(Tree::Group(Group {
                    delim: open,
                    line: open_tok.line,
                    close_line,
                    lo: open_tok.lo,
                    hi,
                    trees: inner,
                }));
                i = next.saturating_add(1).min(toks.len().saturating_add(1));
                if next >= toks.len() {
                    break;
                }
            }
            TokKind::Punct(c @ (')' | ']' | '}')) => {
                if until == Some(*c) {
                    return (out, i);
                }
                // Stray closer: drop it.
                i += 1;
            }
            _ => {
                out.push(Tree::Leaf(t.clone()));
                i += 1;
            }
        }
    }
    (out, toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn trees(src: &str) -> Vec<Tree> {
        build(&scan(src).toks)
    }

    #[test]
    fn groups_nest() {
        let ts = trees("fn f(a: u32) { g([1, 2]); }");
        // fn, f, (..), {..}
        assert_eq!(ts.len(), 4);
        assert!(ts[2].is_group('('));
        let body = ts[3].group().unwrap();
        assert_eq!(body.delim, '{');
        // g ( [..] ) ;
        assert!(body.trees.iter().any(|t| t.is_group('(')));
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let _ = trees("fn f( { ) } ] extra");
        let _ = trees("}}}");
        let _ = trees("fn f( unterminated");
    }

    #[test]
    fn spans_cover_groups() {
        let src = "call(a, b)";
        let ts = trees(src);
        let g = ts[1].group().unwrap();
        assert_eq!(&src[g.lo..g.hi], "(a, b)");
    }
}
