//! Per-file symbol context: the "lightweight resolution" half of the AST
//! engine.
//!
//! dqa-lint cannot (and need not) run full name resolution; what kills
//! regex-era false positives is knowing, per scope, (a) what each local
//! name was imported *as* and (b) which names are defined locally. With
//! that, `Instant` in a file that does `use std::time::Instant` resolves
//! to the banned path; `Instant` in a file that defines
//! `struct Instant` — or imports `use crate::virt::Instant` — provably
//! does not, and stays silent where the token matcher used to fire.
//!
//! Resolution is three-valued: [`Origin::Resolved`] (we know the full
//! path), [`Origin::Local`]/[`Origin::Internal`] (provably ours), and
//! [`Origin::Unknown`] (no evidence either way — rules fall back to
//! name matching there, preserving the legacy engine's recall on
//! fixture-style code with no imports at all).

use crate::ast::{Item, ItemKind};
use std::collections::{BTreeMap, BTreeSet};

/// Where a name comes from, as far as the file can tell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Fully resolved to a canonical path (e.g. `std::time::Instant`).
    Resolved(String),
    /// Defined in this file (struct/enum/fn/… with this name in scope).
    Local,
    /// Rooted in `crate`/`self`/`super` — ours, wherever it lands.
    Internal,
    /// No import, no local definition: could be anything (prelude, glob,
    /// macro-expanded).
    Unknown,
}

/// One lexical scope's name bindings.
#[derive(Debug, Default, Clone)]
pub struct Scope {
    /// Alias → full imported path.
    imports: BTreeMap<String, String>,
    /// Prefixes of `use foo::*` globs (resolution evidence only).
    pub globs: Vec<String>,
    /// Names defined by items in this scope.
    locals: BTreeSet<String>,
}

impl Scope {
    /// Build a scope from the items directly inside one module body.
    pub fn from_items(items: &[Item]) -> Scope {
        let mut s = Scope::default();
        for item in items {
            match &item.kind {
                ItemKind::Use(imports) => {
                    for u in imports {
                        if u.glob {
                            s.globs.push(u.path.clone());
                        } else {
                            s.imports.insert(u.alias.clone(), u.path.clone());
                        }
                    }
                }
                ItemKind::Impl(_) => {}
                _ => {
                    if let Some(name) = &item.name {
                        s.locals.insert(name.clone());
                    }
                }
            }
        }
        s
    }
}

/// A stack of scopes, innermost last.
#[derive(Debug, Default, Clone)]
pub struct Ctx {
    stack: Vec<Scope>,
}

/// Canonicalize a path's crate root: `core`/`alloc` types the rules care
/// about all re-export through `std`.
fn canonical(path: &str) -> String {
    for prefix in ["core::", "alloc::"] {
        if let Some(rest) = path.strip_prefix(prefix) {
            return format!("std::{rest}");
        }
    }
    path.to_string()
}

impl Ctx {
    /// Push a scope (entering a module body or fn body).
    pub fn push(&mut self, scope: Scope) {
        self.stack.push(scope);
    }

    /// Pop the innermost scope.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Resolve a path written as segments (`["Instant", "now"]`) to its
    /// origin. Only the first segment needs resolving; the rest rides
    /// along.
    pub fn resolve(&self, segs: &[&str]) -> Origin {
        let Some(&first) = segs.first() else {
            return Origin::Unknown;
        };
        match first {
            "crate" | "self" | "super" => return Origin::Internal,
            "std" | "core" | "alloc" => {
                return Origin::Resolved(canonical(&segs.join("::")));
            }
            _ => {}
        }
        for scope in self.stack.iter().rev() {
            if scope.locals.contains(first) {
                return Origin::Local;
            }
            if let Some(path) = scope.imports.get(first) {
                let mut full = path.clone();
                for s in &segs[1..] {
                    full.push_str("::");
                    full.push_str(s);
                }
                // An import rooted in `crate`/`self`/`super` is internal.
                let root = full.split("::").next().unwrap_or("");
                if matches!(root, "crate" | "self" | "super") {
                    return Origin::Internal;
                }
                return Origin::Resolved(canonical(&full));
            }
        }
        Origin::Unknown
    }

    /// Convenience: resolve a single identifier.
    pub fn resolve_ident(&self, name: &str) -> Origin {
        self.resolve(&[name])
    }
}

/// How a rule should react to a name after resolution: semantically
/// confirmed, name-match fallback, or proven innocent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Resolution proves the banned path.
    Confirmed,
    /// No resolution evidence; the bare name matches (legacy recall).
    NameMatch,
    /// Resolution proves this is *not* the banned item.
    Innocent,
}

/// Judge a written path (as segments) against a banned canonical path.
///
/// `banned` is a full path like `std::time::Instant`. A written path is
/// confirmed when its resolution equals `banned` or a child of it
/// (`std::time::Instant::now` confirms `std::time::Instant`). With an
/// unknown root the judgement falls back to comparing the written
/// trailing segments against the banned tail.
pub fn judge(ctx: &Ctx, segs: &[&str], banned: &str) -> Verdict {
    match ctx.resolve(segs) {
        Origin::Resolved(full) => {
            if full == banned || full.starts_with(&format!("{banned}::")) {
                Verdict::Confirmed
            } else {
                Verdict::Innocent
            }
        }
        Origin::Local | Origin::Internal => Verdict::Innocent,
        Origin::Unknown => {
            // Name fallback: the banned path's last segment must appear in
            // the written path with any written prefix being a suffix of
            // the banned prefix (`time::Instant` matches, `mytime::Instant`
            // does not).
            let banned_segs: Vec<&str> = banned.split("::").collect();
            let Some(pos) = segs.iter().position(|s| Some(s) == banned_segs.last())
            else {
                return Verdict::Innocent;
            };
            let written_prefix = &segs[..pos];
            let banned_prefix = &banned_segs[..banned_segs.len() - 1];
            let ok = written_prefix.len() <= banned_prefix.len()
                && banned_prefix
                    .iter()
                    .rev()
                    .zip(written_prefix.iter().rev())
                    .all(|(a, b)| a == b);
            if ok {
                Verdict::NameMatch
            } else {
                Verdict::Innocent
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::scan::scan;
    use crate::tree::build;

    fn ctx(src: &str) -> Ctx {
        let file = parse(&build(&scan(src).toks));
        let mut c = Ctx::default();
        c.push(Scope::from_items(&file.items));
        c
    }

    #[test]
    fn imports_resolve() {
        let c = ctx("use std::time::Instant;");
        assert_eq!(
            c.resolve(&["Instant"]),
            Origin::Resolved("std::time::Instant".into())
        );
        assert_eq!(
            c.resolve(&["Instant", "now"]),
            Origin::Resolved("std::time::Instant::now".into())
        );
    }

    #[test]
    fn local_definitions_shadow_names() {
        let c = ctx("pub struct Instant { t: f64 }");
        assert_eq!(c.resolve(&["Instant"]), Origin::Local);
        assert_eq!(judge(&c, &["Instant"], "std::time::Instant"), Verdict::Innocent);
    }

    #[test]
    fn internal_imports_are_innocent() {
        let c = ctx("use crate::virt::Instant;");
        assert_eq!(judge(&c, &["Instant"], "std::time::Instant"), Verdict::Innocent);
    }

    #[test]
    fn unknown_names_fall_back_to_name_matching() {
        let c = ctx("fn unrelated() {}");
        assert_eq!(judge(&c, &["Instant"], "std::time::Instant"), Verdict::NameMatch);
        assert_eq!(
            judge(&c, &["time", "Instant"], "std::time::Instant"),
            Verdict::NameMatch
        );
        assert_eq!(
            judge(&c, &["mytime", "Instant"], "std::time::Instant"),
            Verdict::Innocent
        );
    }

    #[test]
    fn core_canonicalizes_to_std() {
        let c = ctx("use core::time::Duration;");
        assert_eq!(
            c.resolve(&["Duration"]),
            Origin::Resolved("std::time::Duration".into())
        );
    }

    #[test]
    fn aliased_import_keeps_origin() {
        let c = ctx("use std::collections::HashMap as Map;");
        assert_eq!(
            c.resolve(&["Map"]),
            Origin::Resolved("std::collections::HashMap".into())
        );
        // The alias is what's in scope; the bare name is unknown here.
        assert_eq!(c.resolve(&["HashMap"]), Origin::Unknown);
    }
}
