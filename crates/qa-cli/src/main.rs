//! `dqa` — command-line frontend for the distributed Q/A system.
//!
//! ```text
//! dqa generate --seed 7 --out corpus.json          # synthesize a corpus
//! dqa index --corpus corpus.json --out index.bin   # build the sharded index
//! dqa ask --corpus corpus.json --index index.bin "Where is …?"
//! dqa ask --corpus corpus.json --index index.bin --cluster 4 "Where is …?"
//! dqa ask --corpus corpus.json --cluster 4 --journal wal/ "Where is …?"
//! dqa recover --journal wal/ --corpus corpus.json  # crash-restart resume
//! dqa simulate --nodes 8 --strategy dqa            # high-load DES run
//! dqa model --net-mbps 1000 --disk-mbps 100        # analytical model point
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency budget has
//! no CLI crate); see [`args`] for the tiny flag parser.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        // Admission-control rejection is back-pressure, not breakage:
        // pass the retry hint on and exit EX_TEMPFAIL so callers can
        // tell "come back later" from a real failure.
        Err(commands::CmdError::Rejected { retry_after }) => {
            eprintln!(
                "dqa: rejected by admission control; retry after {:.1} s",
                retry_after.as_secs_f64()
            );
            ExitCode::from(commands::EXIT_REJECTED)
        }
        Err(commands::CmdError::Fatal(e)) => {
            eprintln!("dqa: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
