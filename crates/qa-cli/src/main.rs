//! `dqa` — command-line frontend for the distributed Q/A system.
//!
//! ```text
//! dqa generate --seed 7 --out corpus.json          # synthesize a corpus
//! dqa index --corpus corpus.json --out index.bin   # build the sharded index
//! dqa ask --corpus corpus.json --index index.bin "Where is …?"
//! dqa ask --corpus corpus.json --index index.bin --cluster 4 "Where is …?"
//! dqa simulate --nodes 8 --strategy dqa            # high-load DES run
//! dqa model --net-mbps 1000 --disk-mbps 100        # analytical model point
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency budget has
//! no CLI crate); see [`args`] for the tiny flag parser.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dqa: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
