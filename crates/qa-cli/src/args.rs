//! A minimal `--flag value` argument parser.
//!
//! Supports `--key value`, `--switch` (boolean) and positional arguments,
//! with typed accessors that report friendly errors. No external crate:
//! the workspace's dependency budget is documented in DESIGN.md.

use std::collections::HashMap;

/// Parsed arguments: flags plus positionals, in order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

/// Parse `argv`. `switch_names` lists flags that take no value.
pub fn parse(argv: &[String], switch_names: &[&str]) -> Result<Args, String> {
    let mut out = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(name) = a.strip_prefix("--") {
            if switch_names.contains(&name) {
                out.switches.push(name.to_string());
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                if out.flags.insert(name.to_string(), value.clone()).is_some() {
                    return Err(format!("--{name} given twice"));
                }
                i += 2;
            }
        } else {
            out.positional.push(a.clone());
            i += 1;
        }
    }
    Ok(out)
}

impl Args {
    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// A numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_switches_positionals() {
        let a = parse(&v(&["--seed", "7", "ask", "--json", "what?"]), &["json"]).unwrap();
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.switch("json"));
        assert_eq!(a.positional(), &["ask", "what?"]);
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = parse(&v(&["--nodes", "12"]), &[]).unwrap();
        assert_eq!(a.num::<usize>("nodes", 4).unwrap(), 12);
        assert_eq!(a.num::<usize>("missing", 4).unwrap(), 4);
        assert!(a.num::<usize>("nodes", 0).is_ok());
        let bad = parse(&v(&["--nodes", "twelve"]), &[]).unwrap();
        assert!(bad.num::<usize>("nodes", 4).is_err());
    }

    #[test]
    fn missing_value_and_duplicates_error() {
        assert!(parse(&v(&["--seed"]), &[]).is_err());
        assert!(parse(&v(&["--seed", "1", "--seed", "2"]), &[]).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = parse(&v(&[]), &[]).unwrap();
        let e = a.require("corpus").unwrap_err();
        assert!(e.contains("--corpus"));
    }
}
