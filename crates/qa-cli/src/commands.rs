//! Subcommand implementations.

use crate::args::{parse, Args};
use analytical::{InterQuestionModel, IntraQuestionModel};
use cluster_sim::experiments::load_balancing_summary;
use cluster_sim::workload::{BalancingStrategy, QaSimulation, SimConfig};
use corpus::{Corpus, CorpusConfig, CorpusSnapshot, QuestionGenerator};
use dqa_obs::{
    critical_path, metric_key, names, to_chrome_json, validate_chrome_json, validate_nesting,
    validate_prometheus, CausalSpan, MetricsRegistry, Snapshot,
};
use dqa_runtime::{Admission, Cluster, ClusterConfig, CoordinatorJournal, IntegrityConfig};
use faults::FaultSchedule;
use federation::{FederatedAdmission, FederationBroker, FederationConfig, FederationPolicy};
use ir_engine::{
    decode_index_auto, encode_index_v2, DocumentStore, ParagraphRetriever, RetrievalConfig,
    ShardedIndex,
};
use nlp::NamedEntityRecognizer;
use qa_pipeline::{PipelineConfig, QaPipeline};
use qa_types::params::MBPS;
use qa_types::{NodeId, OverloadPolicy, Question, QuestionId, SystemParams, Trec9Profile};
use rebalance::ElasticConfig;
use std::sync::Arc;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  dqa generate [--seed N] [--size small|trec] --out corpus.json
  dqa index --corpus corpus.json --out index.bin
  dqa ask --corpus corpus.json [--index index.bin] [--cluster N] [--sample N]
          [--journal DIR] [--metrics-out FILE [--metrics-format prom|json]]
          [--shards N [--quorum Q] [--hedge-after-ms X]]
          [--elastic [--standby N]] [--trace-out FILE] [overload knobs] [question …]
  dqa export --corpus corpus.json --questions N --topics topics.txt --answers key.txt
  dqa simulate [--nodes N] [--strategy dns|inter|dqa|sid|gradient] [--seed N] [--compare]
               [--metrics-out FILE [--metrics-format prom|json]]
               [--waterfall Q [--format text|json]] [overload knobs]
  dqa trace [--nodes N] [--strategy dns|inter|dqa|sid|gradient] [--seed N]
            [--question Q] [--out trace.json] [overload knobs]
  dqa recover --journal DIR [--corpus corpus.json [--index index.bin] [--cluster N]]
              [--metrics-out FILE [--metrics-format prom|json]]
  dqa rebalance --corpus corpus.json [--index index.bin] [--cluster N] [--standby N]
                [--drain NODE] [--join NODE] [--sample N]
                [--metrics-out FILE [--metrics-format prom|json]] [overload knobs]
  dqa scrub --corpus corpus.json [--index index.bin] [--cluster N] [--sample N]
            [--flip SUB[,SUB…]] [--torn SUB[,SUB…]] [--corrupt-seed N]
            [--scrub-quantum N] [--read-sample N]
            [--metrics-out FILE [--metrics-format prom|json]] [overload knobs]
  dqa report metrics.json
  dqa model [--net-mbps N] [--disk-mbps N] [--nodes N]

overload knobs (admission control / load shedding; default fully permissive):
  [--max-in-flight N] [--admission-queue N] [--max-per-node N]
  [--deadline-secs X] [--breaker-load X]

exit codes: 0 ok, 1 error, 75 rejected by admission control (retry later)";

/// How a command failed — split so `main` can pick the exit code.
#[derive(Debug)]
pub enum CmdError {
    /// Usage or runtime failure: exit 1 and print the usage text.
    Fatal(String),
    /// Admission control refused the question. The command line was
    /// fine and the cluster is healthy, just full — exit
    /// [`EXIT_REJECTED`] with the policy's back-off hint instead of
    /// pretending this was an error.
    Rejected {
        /// Client back-off hint from the overload policy.
        retry_after: Duration,
    },
}

impl From<String> for CmdError {
    fn from(message: String) -> Self {
        CmdError::Fatal(message)
    }
}

/// Exit code for [`CmdError::Rejected`]: sysexits' `EX_TEMPFAIL`, so
/// scripts can tell "try again later" apart from hard failure (1).
pub const EXIT_REJECTED: u8 = 75;

/// Dispatch a command line.
pub fn dispatch(argv: &[String]) -> Result<(), CmdError> {
    let Some(cmd) = argv.first() else {
        return Err("no command given".to_string().into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => generate(rest).map_err(CmdError::from),
        "index" => index(rest).map_err(CmdError::from),
        "ask" => ask(rest),
        "export" => export(rest).map_err(CmdError::from),
        "simulate" => simulate(rest).map_err(CmdError::from),
        "recover" => recover(rest).map_err(CmdError::from),
        "rebalance" => rebalance(rest).map_err(CmdError::from),
        "scrub" => scrub(rest).map_err(CmdError::from),
        "trace" => trace(rest).map_err(CmdError::from),
        "report" => report(rest).map_err(CmdError::from),
        "model" => model(rest).map_err(CmdError::from),
        other => Err(format!("unknown command {other:?}").into()),
    }
}

/// A numeric flag that is `None` when absent (instead of defaulted).
fn opt_num<T: std::str::FromStr>(a: &Args, name: &str) -> Result<Option<T>, String> {
    match a.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

/// Build an [`OverloadPolicy`] from the shared overload knobs; flags left
/// unset keep the permissive default.
fn overload_policy(a: &Args) -> Result<OverloadPolicy, String> {
    let base = OverloadPolicy::default();
    Ok(OverloadPolicy {
        max_in_flight: opt_num::<usize>(a, "max-in-flight")?,
        admission_queue: opt_num::<usize>(a, "admission-queue")?.unwrap_or(base.admission_queue),
        max_per_node: opt_num::<usize>(a, "max-per-node")?,
        deadline_secs: opt_num::<f64>(a, "deadline-secs")?,
        breaker_load: opt_num::<f64>(a, "breaker-load")?,
        ..base
    })
}

/// Write a metrics snapshot where `--metrics-out` points, in the format
/// `--metrics-format` selects (`json` by default, or `prom` for the
/// Prometheus text exposition). A no-op when the flag is absent.
fn write_metrics(a: &Args, snap: &Snapshot) -> Result<(), String> {
    let Some(path) = a.get("metrics-out") else {
        return Ok(());
    };
    let body = match a.get("metrics-format").unwrap_or("json") {
        "json" => snap.to_json(),
        "prom" => {
            let text = snap.to_prometheus();
            validate_prometheus(&text).map_err(|e| format!("internal: bad exposition: {e}"))?;
            text
        }
        other => return Err(format!("--metrics-format must be prom|json, got {other:?}")),
    };
    std::fs::write(path, body).map_err(|e| format!("write {path}: {e}"))?;
    Ok(())
}

fn load_corpus(path: &str) -> Result<Corpus, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snapshot: CorpusSnapshot =
        serde_json::from_str(&data).map_err(|e| format!("parse {path}: {e}"))?;
    Corpus::from_snapshot(snapshot).map_err(|e| e.to_string())
}

fn generate(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let seed: u64 = a.num("seed", 42u64)?;
    let out = a.require("out")?;
    let cfg = match a.get("size").unwrap_or("trec") {
        "small" => CorpusConfig::small(seed),
        "trec" => CorpusConfig::trec_like(seed),
        other => return Err(format!("--size must be small|trec, got {other:?}")),
    };
    let corpus = Corpus::generate(cfg).map_err(|e| e.to_string())?;
    let stats = corpus.stats();
    let json = serde_json::to_string(&corpus.snapshot()).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} documents, {} paragraphs, {:.1} MB text, {} planted answers",
        stats.documents,
        stats.paragraphs,
        stats.bytes as f64 / 1e6,
        stats.plants
    );
    Ok(())
}

fn index(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let corpus = load_corpus(a.require("corpus")?)?;
    let out = a.require("out")?;
    let idx = ShardedIndex::build(&corpus.documents, corpus.config.sub_collections);
    // DQAIDX2: per-shard and per-term-block CRCs, so every later load can
    // verify what it reads. (`load_index` still accepts v1 files.)
    let bytes = encode_index_v2(&idx);
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} shards, {} documents, {} bytes (DQAIDX2, checksummed)",
        idx.shard_count(),
        idx.doc_count(),
        bytes.len()
    );
    Ok(())
}

/// Load the sharded index `--index` points at, or rebuild it from the
/// corpus when the flag is absent. Untrusted bytes go through the
/// version-dispatching verifying reader: a checksummed `DQAIDX2` file is
/// CRC-verified shard by shard, and a legacy `DQAIDX1` file still loads.
fn load_index(a: &Args, corpus: &Corpus) -> Result<ShardedIndex, String> {
    match a.get("index") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
            decode_index_auto(&bytes).map_err(|e| e.to_string())
        }
        None => Ok(ShardedIndex::build(
            &corpus.documents,
            corpus.config.sub_collections,
        )),
    }
}

fn ask(argv: &[String]) -> Result<(), CmdError> {
    let a = parse(argv, &["json", "elastic"])?;
    let corpus = load_corpus(a.require("corpus")?)?;
    let idx = load_index(&a, &corpus)?;
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(Arc::new(idx), store, RetrievalConfig::default());

    // Question list: positionals, plus generated samples.
    let mut questions: Vec<(Question, Option<String>)> = a
        .positional()
        .iter()
        .enumerate()
        .map(|(i, text)| {
            (
                Question::new(QuestionId::new(9000 + i as u32), text.clone()),
                None,
            )
        })
        .collect();
    let samples: usize = a.num("sample", 0usize)?;
    if samples > 0 {
        for gq in QuestionGenerator::new(&corpus, 1).generate(samples) {
            questions.push((gq.question, Some(gq.expected_answer)));
        }
    }
    if questions.is_empty() {
        return Err(CmdError::Fatal(
            "no questions: pass them as arguments or use --sample N".into(),
        ));
    }

    // `--shards N` switches to the federated broker tier: the corpus is
    // partitioned across N coordinator shards and every question is
    // scatter-gathered with hedging and partial-result merge.
    let shards: usize = a.num("shards", 0usize)?;
    if shards > 0 {
        return ask_federated(&a, &corpus, &questions, shards);
    }

    let cluster_nodes: usize = a.num("cluster", 0usize)?;
    if a.get("metrics-out").is_some() && cluster_nodes == 0 {
        return Err(CmdError::Fatal(
            "--metrics-out needs --cluster N: only the cluster runtime is instrumented".into(),
        ));
    }
    if a.get("trace-out").is_some() && cluster_nodes == 0 {
        return Err(CmdError::Fatal(
            "--trace-out needs --cluster N: only the cluster runtime records causal spans".into(),
        ));
    }
    // `--elastic` runs the cluster under elastic membership: an ownership
    // map routes PR chunks to sub-collection owners and `--standby N`
    // warm spares boot suspended, ready for `dqa rebalance --join`.
    let elastic = if a.switch("elastic") {
        if cluster_nodes == 0 {
            return Err(CmdError::Fatal(
                "--elastic needs --cluster N: only the cluster runtime rebalances".into(),
            ));
        }
        let standby: usize = a.num("standby", 0usize)?;
        if standby >= cluster_nodes {
            return Err(CmdError::Fatal(format!(
                "--standby {standby} must leave at least one active node of {cluster_nodes}"
            )));
        }
        Some(ElasticConfig::with_standby(standby))
    } else {
        None
    };
    // Durable question journal: every admission, scheduling decision,
    // chunk grant and answer is logged so `dqa recover --journal DIR`
    // can resume after a coordinator crash.
    let journal = match a.get("journal") {
        None => None,
        Some(dir) => {
            if cluster_nodes == 0 {
                return Err(CmdError::Fatal(
                    "--journal needs --cluster N: only the cluster runtime journals".into(),
                ));
            }
            let (handle, recovery) =
                CoordinatorJournal::open(dir).map_err(|e| format!("open journal {dir}: {e}"))?;
            if recovery.state.gate_occupancy() > 0 {
                eprintln!(
                    "dqa: journal at {dir} holds {} unresumed in-flight question(s); \
                     consider `dqa recover --journal {dir} …` first",
                    recovery.state.gate_occupancy()
                );
            }
            Some(handle)
        }
    };
    // One registry across every per-question cluster, so the exported
    // snapshot aggregates the whole invocation.
    let registry = MetricsRegistry::new();
    let overload = overload_policy(&a)?;
    let mut all_spans: Vec<CausalSpan> = Vec::new();
    let mut answer = |q: &Question| -> Result<(qa_types::RankedAnswers, String), CmdError> {
        if cluster_nodes > 0 {
            let cluster = Cluster::start(
                retriever.clone(),
                NamedEntityRecognizer::standard(),
                ClusterConfig {
                    nodes: cluster_nodes,
                    overload,
                    metrics: Some(registry.clone()),
                    journal: journal.clone(),
                    elastic: elastic.clone(),
                    ..ClusterConfig::default()
                },
            );
            // Through the admission gate, not around it: a saturated
            // cluster answers with a back-off hint, not a bare error.
            let admission = cluster.submit(q);
            all_spans.extend(cluster.tracer().spans());
            cluster.shutdown();
            match admission {
                Admission::Answered(out) => {
                    let note = format!("PR×{} AP×{}", out.pr_nodes.len(), out.ap_nodes.len());
                    Ok((out.answers, note))
                }
                Admission::Rejected { retry_after } => Err(CmdError::Rejected { retry_after }),
                Admission::Failed(e) => Err(CmdError::Fatal(e.to_string())),
            }
        } else {
            let pipeline = QaPipeline::new(
                retriever.clone(),
                NamedEntityRecognizer::standard(),
                PipelineConfig::default(),
            );
            let out = pipeline.answer(q).map_err(|e| e.to_string())?;
            let note = format!(
                "{} retrieved / {} accepted",
                out.paragraphs_retrieved, out.paragraphs_accepted
            );
            Ok((out.answers, note))
        }
    };

    for (q, truth) in &questions {
        let (answers, note) = match answer(q) {
            Ok(v) => v,
            Err(CmdError::Rejected { retry_after }) => {
                println!("{}  {}", q.id, q.text);
                println!(
                    "  -> rejected by admission control; retry after {:.1} s",
                    retry_after.as_secs_f64()
                );
                // The rejection counter is part of the story: export it.
                write_metrics(&a, &registry.snapshot())?;
                return Err(CmdError::Rejected { retry_after });
            }
            Err(e) => return Err(e),
        };
        if a.switch("json") {
            let record = serde_json::json!({
                "question": q.text,
                "answers": answers.answers,
                "truth": truth,
            });
            println!("{record}");
        } else {
            println!("{}  {}", q.id, q.text);
            match answers.best() {
                Some(best) => println!("  -> {}   ({note})", best.candidate),
                None => println!("  -> no answer   ({note})"),
            }
            if let Some(t) = truth {
                println!("  truth: {t}");
            }
        }
    }
    if let Some(path) = a.get("trace-out") {
        write_trace(path, &all_spans)?;
    }
    write_metrics(&a, &registry.snapshot())?;
    Ok(())
}

/// Write `spans` as Perfetto/chrome-tracing JSON at `path`, validating
/// the export before it lands on disk.
fn write_trace(path: &str, spans: &[CausalSpan]) -> Result<(), String> {
    let json = to_chrome_json(spans);
    validate_chrome_json(&json).map_err(|e| format!("internal: bad trace export: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "wrote {} span(s) to {path} (load in Perfetto / chrome://tracing)",
        spans.len()
    );
    Ok(())
}

/// The `ask --shards N` path: scatter-gather every question across a
/// federation of coordinator shards and print the merged, coverage-
/// annotated answers. Metrics land in the broker's registry
/// (`dqa_shard_*`, hedge/merge/quorum counters) for `--metrics-out`.
fn ask_federated(
    a: &Args,
    corpus: &Corpus,
    questions: &[(Question, Option<String>)],
    shards: usize,
) -> Result<(), CmdError> {
    if a.get("journal").is_some() {
        return Err(CmdError::Fatal(
            "--journal is not supported with --shards: shard clusters manage durability per shard"
                .into(),
        ));
    }
    let mut policy = FederationPolicy::for_shards(shards);
    if let Some(q) = opt_num::<usize>(a, "quorum")? {
        policy = policy.with_quorum(q);
    }
    if let Some(ms) = opt_num::<f64>(a, "hedge-after-ms")? {
        policy = policy.with_hedge_after(ms / 1000.0);
    }
    let registry = MetricsRegistry::new();
    let mut cfg = FederationConfig::new(shards);
    cfg.nodes_per_shard = a.num("cluster", 2usize)?.max(1);
    cfg.policy = policy;
    cfg.overload = overload_policy(a)?;
    cfg.metrics = Some(registry.clone());
    // `--elastic` puts every shard cluster under elastic membership.
    if a.switch("elastic") {
        let standby: usize = a.num("standby", 0usize)?;
        if standby >= cfg.nodes_per_shard {
            return Err(CmdError::Fatal(format!(
                "--standby {standby} must leave at least one active node of {} per shard",
                cfg.nodes_per_shard
            )));
        }
        cfg.elastic = Some(ElasticConfig::with_standby(standby));
    }
    let broker = FederationBroker::start(&corpus.documents, corpus.config.sub_collections, cfg);
    let mut result = Ok(());
    for (q, truth) in questions {
        match broker.ask(q) {
            FederatedAdmission::Answered(ans) => {
                let responders = ans.shards.iter().filter(|s| s.status.responded()).count();
                let hedged = ans.shards.iter().filter(|s| s.hedged).count();
                if a.switch("json") {
                    let record = serde_json::json!({
                        "question": q.text,
                        "answers": ans.answers.answers,
                        "coverage": ans.coverage.fraction(),
                        "quorum_met": ans.quorum_met,
                        "shards": ans.shards,
                        "truth": truth,
                    });
                    println!("{record}");
                } else {
                    println!("{}  {}", q.id, q.text);
                    match ans.answers.best() {
                        Some(best) => println!("  -> {}", best.candidate),
                        None => println!("  -> no answer"),
                    }
                    println!(
                        "  federation: {responders}/{} shard(s), coverage {:.0} %, quorum {}, \
                         {hedged} hedged, {:.2} s",
                        ans.shards.len(),
                        100.0 * ans.coverage.fraction(),
                        if ans.quorum_met { "met" } else { "SHORT" },
                        ans.latency_secs,
                    );
                    if let Some(t) = truth {
                        println!("  truth: {t}");
                    }
                }
            }
            FederatedAdmission::Rejected { retry_after } => {
                println!("{}  {}", q.id, q.text);
                println!(
                    "  -> rejected by every shard's admission control; retry after {:.1} s",
                    retry_after.as_secs_f64()
                );
                result = Err(CmdError::Rejected { retry_after });
                break;
            }
        }
    }
    // Export the broker's scatter/gather/hedge/merge spans plus every
    // shard's internal question trees (distinct traces under derived
    // sub-seeds) as one Perfetto file.
    if let Some(path) = a.get("trace-out") {
        let mut spans = broker.tracer().spans();
        for i in 0..broker.shard_count() {
            if let Some(t) = broker.shard_tracer(i) {
                spans.extend(t.spans());
            }
        }
        write_trace(path, &spans)?;
    }
    broker.shutdown();
    write_metrics(a, &registry.snapshot())?;
    result
}

/// Export a generated question set in TREC topic + answer-key format.
fn export(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let corpus = load_corpus(a.require("corpus")?)?;
    let n: usize = a.num("questions", 50usize)?;
    let seed: u64 = a.num("seed", 1u64)?;
    let questions = QuestionGenerator::new(&corpus, seed).generate(n);
    let topics = a.require("topics")?;
    std::fs::write(topics, corpus::trec::write_topics(&questions))
        .map_err(|e| format!("write {topics}: {e}"))?;
    let answers = a.require("answers")?;
    std::fs::write(answers, corpus::trec::write_answer_key(&questions))
        .map_err(|e| format!("write {answers}: {e}"))?;
    println!(
        "wrote {} topics to {topics} and the answer key to {answers}",
        questions.len()
    );
    Ok(())
}

fn parse_strategy(name: &str) -> Result<BalancingStrategy, String> {
    Ok(match name {
        "dns" => BalancingStrategy::Dns,
        "inter" => BalancingStrategy::Inter,
        "dqa" => BalancingStrategy::Dqa,
        "sid" => BalancingStrategy::SenderDiffusion,
        "gradient" => BalancingStrategy::Gradient,
        other => return Err(format!("unknown strategy {other:?}")),
    })
}

fn simulate(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &["compare"])?;
    let nodes: usize = a.num("nodes", 8usize)?;
    let seed: u64 = a.num("seed", 2001u64)?;
    if a.switch("compare") {
        if a.get("metrics-out").is_some() {
            return Err("--metrics-out is not supported with --compare".into());
        }
        let s = load_balancing_summary(nodes, &[seed, seed + 1, seed + 2]);
        println!("{nodes}-node high-load comparison (mean of 3 seeds)");
        for (name, i) in [("DNS", 0), ("INTER", 1), ("DQA", 2)] {
            println!(
                "  {name:<7} {:>6.2} q/min   {:>7.1} s mean response",
                s.throughput[i], s.response_time[i]
            );
        }
        return Ok(());
    }
    let strategy = parse_strategy(a.get("strategy").unwrap_or("dqa"))?;
    let overload = overload_policy(&a)?;
    let governed = overload.limits_admission() || overload.deadline_secs.is_some();
    let cfg = SimConfig {
        overload,
        ..SimConfig::paper_high_load(nodes, strategy, seed)
    };
    let report = QaSimulation::new(cfg).run();
    println!(
        "{} questions on {} nodes ({strategy:?}): {:.2} q/min, mean {:.1} s, p95 {:.1} s, \
         migrations qa/pr/ap = {}/{}/{}",
        report.questions.len(),
        nodes,
        report.throughput_per_minute(),
        report.mean_response_time(),
        report.response_time_percentile(0.95),
        report.migrations.qa,
        report.migrations.pr,
        report.migrations.ap,
    );
    if governed {
        let counts = report.outcome_counts();
        println!(
            "  overload: {} answered / {} degraded / {} rejected (shed rate {:.2}), \
             admitted p50 {:.1} s, p99 {:.1} s",
            counts.answered,
            counts.degraded,
            counts.rejected,
            counts.shed_rate(),
            report.admitted_response_percentile(0.50),
            report.admitted_response_percentile(0.99),
        );
    }
    if let Some(q) = opt_num::<usize>(&a, "waterfall")? {
        match a.get("format").unwrap_or("text") {
            "text" => {
                let lines = report.waterfall(q, 48);
                if lines.is_empty() {
                    println!("  question {q}: no phase timeline (rejected or out of range)");
                } else {
                    println!("  question {q} phase timeline:");
                    for line in &lines {
                        println!("    {line}");
                    }
                }
            }
            // Machine-readable waterfall: the causal-span tree itself,
            // one JSON object on stdout.
            "json" => {
                let spans = report.causal_spans(q, seed);
                let items: Vec<serde_json::Value> = spans.iter().map(span_json).collect();
                println!(
                    "{}",
                    serde_json::json!({ "question": q, "seed": seed, "spans": items })
                );
            }
            other => return Err(format!("--format must be text|json, got {other:?}")),
        }
    }
    write_metrics(&a, &report.metrics)?;
    Ok(())
}

/// One causal span as a JSON object — the `simulate --waterfall
/// --format json` shape (ids in zero-padded hex, times in seconds).
fn span_json(s: &CausalSpan) -> serde_json::Value {
    serde_json::json!({
        "trace": format!("{:016x}", s.trace),
        "id": format!("{:016x}", s.id),
        "parent": s.parent.map(|p| format!("{p:016x}")),
        "name": s.name,
        "node": s.node,
        "start": s.start,
        "end": s.end,
        "queue_wait": s.queue_wait,
        "causes": s.causes.labels(),
    })
}

/// Causal tracing over the virtual-time simulator: run a seeded DES,
/// render question `--question`'s critical-path attribution (the
/// per-question Table 8/9) and optionally export the whole run as
/// Perfetto/chrome-tracing JSON. The simulation always runs twice and
/// the two exports are compared byte-for-byte — the determinism the
/// `trace_gate` latency budget builds on.
fn trace(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let nodes: usize = a.num("nodes", 8usize)?;
    let seed: u64 = a.num("seed", 2001u64)?;
    let q: usize = a.num("question", 0usize)?;
    let strategy = parse_strategy(a.get("strategy").unwrap_or("dqa"))?;
    let build = || -> Result<SimConfig, String> {
        Ok(SimConfig {
            overload: overload_policy(&a)?,
            ..SimConfig::paper_high_load(nodes, strategy, seed)
        })
    };
    let report = QaSimulation::new(build()?).run();
    let json = report.chrome_trace(seed);
    validate_chrome_json(&json).map_err(|e| format!("internal: bad trace export: {e}"))?;
    // Double-run identity: virtual-time spans must not depend on wall
    // time, iteration order or any other ambient state.
    let rerun = QaSimulation::new(build()?).run().chrome_trace(seed);
    if rerun != json {
        return Err("internal: trace export is not bit-identical across seeded reruns".into());
    }
    let spans = report.all_causal_spans(seed);
    validate_nesting(&spans).map_err(|e| format!("internal: {e}"))?;
    let question_spans = report.causal_spans(q, seed);
    if question_spans.is_empty() {
        println!("question {q}: no trace (rejected or out of range)");
    } else if let Some(cp) = critical_path(&question_spans) {
        print!("{}", cp.render());
        let residual = (cp.total() - cp.attributed()).abs();
        println!(
            "queue-wait share {:.1} %, attribution residual {:.3e} s",
            100.0 * cp.queue_total() / cp.total().max(f64::MIN_POSITIVE),
            residual
        );
    }
    if let Some(path) = a.get("out") {
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "wrote {} span(s) across {} question(s) to {path} (verified bit-identical twice)",
            spans.len(),
            report.questions.len()
        );
    }
    Ok(())
}

/// Crash-restart recovery: replay a coordinator journal, promote past
/// the dead incarnation's term (fencing its surviving handles), and
/// resume every in-flight question on a fresh cluster.
fn recover(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let dir = a.require("journal")?;
    let (handle, recovery) =
        CoordinatorJournal::open(dir).map_err(|e| format!("open journal {dir}: {e}"))?;
    let stats = &recovery.stats;
    let torn = if stats.truncated_bytes > 0 {
        format!(" (torn tail: {} byte(s) truncated)", stats.truncated_bytes)
    } else {
        String::new()
    };
    println!(
        "replayed {} record(s) from {} segment(s), recovered term {}{torn}",
        stats.records,
        stats.segments,
        recovery.state.term(),
    );
    let answered = recovery.state.answered().count();
    let in_flight = recovery.state.gate_occupancy();
    println!("journal holds {answered} answered and {in_flight} in-flight question(s)");
    let term = handle.promote().map_err(|e| format!("promote: {e}"))?;
    println!("promoted to term {term}; the crashed incarnation's handles are fenced");
    if in_flight == 0 {
        println!("nothing to resume");
        return Ok(());
    }

    let corpus = load_corpus(a.require("corpus")?)?;
    let idx = load_index(&a, &corpus)?;
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(Arc::new(idx), store, RetrievalConfig::default());
    let nodes: usize = a.num("cluster", 4usize)?;
    let registry = MetricsRegistry::new();
    let cluster = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes,
            overload: overload_policy(&a)?,
            metrics: Some(registry.clone()),
            journal: Some(handle),
            ..ClusterConfig::default()
        },
    );
    let resumed = cluster.resume(&recovery);
    for (q, res) in &resumed {
        println!("{}  {}", q.id, q.text);
        match res {
            Ok(out) => {
                let coverage = if out.coverage.is_complete() {
                    "full coverage"
                } else {
                    "degraded"
                };
                match out.answers.best() {
                    Some(best) => println!("  -> resumed: {}   ({coverage})", best.candidate),
                    None => println!("  -> resumed: no answer   ({coverage})"),
                }
            }
            Err(e) => println!("  -> resume failed: {e}"),
        }
    }
    cluster.shutdown();
    let snap = registry.snapshot();
    println!(
        "resumed {} question(s) ({} record(s) replayed, {} appended this run)",
        snap.counter(names::RESUMED_QUESTIONS_TOTAL),
        snap.counter(names::REPLAYED_RECORDS_TOTAL),
        snap.counter(names::JOURNAL_RECORDS_TOTAL),
    );
    write_metrics(&a, &snap)?;
    Ok(())
}

/// Elastic-membership round trip: boot a cluster under an ownership map,
/// optionally `--drain` a node (live migration of its sub-collections)
/// and `--join` one (fair-share migration onto it), answering `--sample`
/// questions before and after each membership change to show foreground
/// traffic survives re-sharding. Prints the ownership table and the
/// `dqa_rebalance_*` counters; `--metrics-out` exports them.
fn rebalance(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let corpus = load_corpus(a.require("corpus")?)?;
    let idx = load_index(&a, &corpus)?;
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(Arc::new(idx), store, RetrievalConfig::default());
    let nodes: usize = a.num("cluster", 4usize)?;
    let standby: usize = a.num("standby", 0usize)?;
    if standby >= nodes {
        return Err(format!(
            "--standby {standby} must leave at least one active node of {nodes}"
        ));
    }
    let drain_node = opt_num::<u32>(&a, "drain")?;
    let join_node = opt_num::<u32>(&a, "join")?;
    for (flag, v) in [("drain", drain_node), ("join", join_node)] {
        if let Some(n) = v {
            if n as usize >= nodes {
                return Err(format!("--{flag} {n}: node out of range (cluster {nodes})"));
            }
        }
    }
    let samples: usize = a.num("sample", 2usize)?;
    let registry = MetricsRegistry::new();
    let cluster = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes,
            overload: overload_policy(&a)?,
            metrics: Some(registry.clone()),
            elastic: Some(ElasticConfig::with_standby(standby)),
            ..ClusterConfig::default()
        },
    );

    let print_ownership = |cluster: &Cluster| {
        let owners = cluster.ownership();
        let mut by_node: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for (sub, node) in &owners {
            by_node.entry(*node).or_default().push(*sub);
        }
        for (node, subs) in &by_node {
            let list: Vec<String> = subs.iter().map(|s| s.to_string()).collect();
            println!("  node {node}: sub-collection(s) {}", list.join(", "));
        }
        if let Some((epoch, converged)) = cluster.rebalance_status() {
            println!(
                "  epoch {epoch}, {}",
                if converged {
                    "converged (every sub-collection live-owned)"
                } else {
                    "NOT converged"
                }
            );
        }
    };
    let ask_wave = |cluster: &Cluster, seed: u64, label: &str| -> Result<(), String> {
        if samples == 0 {
            return Ok(());
        }
        let qs = QuestionGenerator::new(&corpus, seed).generate(samples);
        let mut complete = 0usize;
        for gq in &qs {
            let out = cluster.ask(&gq.question).map_err(|e| e.to_string())?;
            if out.coverage.is_complete() {
                complete += 1;
            }
        }
        println!(
            "  {label}: {complete}/{} question(s) at full coverage",
            qs.len()
        );
        Ok(())
    };

    println!("ownership at boot ({nodes} node(s), {standby} standby):");
    print_ownership(&cluster);
    ask_wave(&cluster, 21, "before")?;
    if let Some(n) = drain_node {
        let moved = cluster.drain(NodeId::new(n));
        println!("drained node {n}: {moved} sub-collection(s) re-homed live");
        print_ownership(&cluster);
        ask_wave(&cluster, 22, "after drain")?;
    }
    if let Some(n) = join_node {
        let moved = cluster.join(NodeId::new(n));
        println!("joined node {n}: {moved} sub-collection(s) migrated onto it");
        print_ownership(&cluster);
        ask_wave(&cluster, 23, "after join")?;
    }
    cluster.shutdown();

    let snap = registry.snapshot();
    let reason =
        |r: &str| snap.counter(&metric_key(names::REBALANCE_PLANS_TOTAL, &[("reason", r)]));
    println!(
        "rebalance: {} transfer(s) across plans drain/join/loss/skew = {}/{}/{}/{}, \
         {} throttled step(s)",
        snap.counter(names::REBALANCE_MIGRATED_TOTAL),
        reason("drain"),
        reason("join"),
        reason("permanent-loss"),
        reason("load-skew"),
        snap.counter_family(names::REBALANCE_THROTTLED_TOTAL),
    );
    if let Some(h) = snap.histograms.get(names::REBALANCE_HEAL_SECONDS) {
        if h.count > 0 {
            println!(
                "  heal latency: {} event(s), mean {:.3} s, max bucket ≤ p95 {:.3} s",
                h.count,
                h.mean(),
                h.quantile(0.95)
            );
        }
    }
    write_metrics(&a, &snap)?;
    Ok(())
}

/// Parse a comma-separated `--flag 1,3,5` sub-collection list.
fn sub_list(a: &Args, name: &str) -> Result<Vec<u32>, String> {
    match a.get(name) {
        None => Ok(Vec::new()),
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("--{name}: cannot parse {s:?} as a sub-collection id"))
            })
            .collect(),
    }
}

fn scrub(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let corpus = load_corpus(a.require("corpus")?)?;
    let idx = load_index(&a, &corpus)?;
    let shards = idx.shard_count() as u32;
    let store = Arc::new(DocumentStore::new(corpus.documents.clone()));
    let retriever = ParagraphRetriever::new(Arc::new(idx), store, RetrievalConfig::default());
    let nodes: usize = a.num("cluster", 3usize)?;
    let samples: usize = a.num("sample", 2usize)?;

    // Corruption knobs: seeded bit flips / torn writes against the named
    // sub-collections' segment regions. With no list given, flip one bit
    // in sub-collection 1 so the verb demonstrates the full
    // detect→quarantine→repair cycle out of the box.
    let mut flips = sub_list(&a, "flip")?;
    let torn = sub_list(&a, "torn")?;
    if flips.is_empty() && torn.is_empty() {
        flips.push(1.min(shards.saturating_sub(1)));
    }
    for &s in flips.iter().chain(torn.iter()) {
        if s >= shards {
            return Err(format!(
                "sub-collection {s} out of range (index has {shards})"
            ));
        }
    }
    let mut faults = FaultSchedule::seeded(a.num("corrupt-seed", 13u64)?);
    for &s in &flips {
        faults = faults.bit_flip_index(s, 0.0);
    }
    for &s in &torn {
        faults = faults.torn_write_index(s, 0.0);
    }

    let icfg = IntegrityConfig {
        scrub_quantum: a.num("scrub-quantum", IntegrityConfig::default().scrub_quantum)?,
        // Exhaustive read verification by default: the CLI demo must never
        // race the scrubber and silently read damaged bytes.
        read_sample_blocks: a.num("read-sample", usize::MAX)?,
        ..IntegrityConfig::default()
    };
    let registry = MetricsRegistry::new();
    let cluster = Cluster::start(
        retriever,
        NamedEntityRecognizer::standard(),
        ClusterConfig {
            nodes,
            faults,
            integrity: Some(icfg),
            overload: overload_policy(&a)?,
            metrics: Some(registry.clone()),
            ..ClusterConfig::default()
        },
    );

    let ask_wave = |seed: u64, label: &str| -> Result<(), String> {
        if samples == 0 {
            return Ok(());
        }
        let qs = QuestionGenerator::new(&corpus, seed).generate(samples);
        let mut complete = 0usize;
        for gq in &qs {
            let out = cluster.ask(&gq.question).map_err(|e| e.to_string())?;
            if out.coverage.is_complete() {
                complete += 1;
            }
        }
        println!(
            "  {label}: {complete}/{} question(s) at full coverage",
            qs.len()
        );
        Ok(())
    };

    let damaged = cluster.inject_scheduled_corruption();
    println!(
        "injected {damaged} corruption(s): bit-flip {flips:?}, torn-write {torn:?} \
         (seed {})",
        cluster_seed(&a)?
    );
    ask_wave(31, "under corruption")?;
    let q = cluster.quarantined_subs();
    if q.is_empty() {
        println!("  nothing quarantined yet (scrub will detect)");
    } else {
        let list: Vec<String> = q.iter().map(|s| s.to_string()).collect();
        println!("  quarantined sub-collection(s): {}", list.join(", "));
    }

    let report = cluster.scrub();
    println!(
        "scrub: {} region(s) verified clean, {} detected, repaired {} from replica + {} \
         rebuilt, {} throttled step(s)",
        report.verified,
        report.detected.len(),
        report.repaired_replica.len(),
        report.repaired_rebuild.len(),
        report.throttled
    );
    let still = cluster.quarantined_subs();
    if still.is_empty() {
        println!("  quarantine clear: every region checksum-clean");
    } else {
        let list: Vec<String> = still.iter().map(|s| s.to_string()).collect();
        println!("  STILL quarantined: {}", list.join(", "));
    }
    ask_wave(32, "after repair")?;
    cluster.shutdown();

    let snap = registry.snapshot();
    println!(
        "integrity: {} checksum failure(s), {} repair(s), {} degraded question(s)",
        snap.counter_family(names::INTEGRITY_CHECKSUM_FAILURES_TOTAL),
        snap.counter_family(names::INTEGRITY_REPAIRS_TOTAL),
        snap.counter(names::INTEGRITY_DEGRADED_TOTAL),
    );
    write_metrics(&a, &snap)?;
    Ok(())
}

/// The corruption decision seed `scrub` ran under (echoed for reproduction).
fn cluster_seed(a: &Args) -> Result<u64, String> {
    a.num("corrupt-seed", 13u64)
}

/// Render Table 8/9-style breakdowns from a metrics snapshot written by
/// `ask`/`simulate --metrics-out FILE` (JSON format).
fn report(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let path = match a.positional() {
        [p] => p.as_str(),
        _ => return Err("usage: dqa report <metrics.json>".into()),
    };
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let snap = Snapshot::from_json(&data)?;

    println!("per-module latency (Table 8 layout):");
    println!(
        "  {:<6} {:>7} {:>9} {:>9} {:>9}",
        "module", "count", "mean s", "p50 s", "p95 s"
    );
    for module in ["QP", "PR", "PO", "AP"] {
        let key = metric_key(names::MODULE_SECONDS, &[("module", module)]);
        let Some(h) = snap.histograms.get(&key) else {
            continue;
        };
        println!(
            "  {:<6} {:>7} {:>9.3} {:>9.3} {:>9.3}",
            module,
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.95)
        );
    }
    if let Some(h) = snap.histograms.get(names::QUESTION_SECONDS) {
        println!(
            "  {:<6} {:>7} {:>9.3} {:>9.3} {:>9.3}",
            "e2e",
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.95)
        );
    }

    let overhead: Vec<(&str, f64)> = ["kw_send", "par_recv", "par_send", "ans_recv", "ans_sort"]
        .into_iter()
        .filter_map(|part| {
            snap.histograms
                .get(&metric_key(names::OVERHEAD_SECONDS, &[("part", part)]))
                .map(|h| (part, h.sum))
        })
        .collect();
    let total: f64 = overhead.iter().map(|(_, s)| s).sum();
    if total > 0.0 {
        println!("distribution overhead (Table 9 layout, share of overhead time):");
        for (part, sum) in &overhead {
            println!("  {part:<9} {sum:>9.3} s  {:>5.1} %", 100.0 * sum / total);
        }
    }

    let outcome = |o: &str| snap.counter(&metric_key(names::QUESTIONS_TOTAL, &[("outcome", o)]));
    println!(
        "outcomes: {} answered / {} degraded / {} rejected / {} failed",
        outcome("answered"),
        outcome("degraded"),
        outcome("rejected"),
        outcome("failed")
    );
    let kind = |k: &str| snap.counter(&metric_key(names::MIGRATIONS_TOTAL, &[("kind", k)]));
    println!(
        "migrations qa/pr/ap = {}/{}/{}, speculations {}, sheds {}, backpressure {}, \
         worker failures {}, breaker trips {}",
        kind("qa"),
        kind("pr"),
        kind("ap"),
        snap.counter(names::SPECULATIONS_TOTAL),
        snap.counter_family(names::SHEDS_TOTAL),
        snap.counter(names::BACKPRESSURE_TOTAL),
        snap.counter(names::WORKER_FAILURES_TOTAL),
        snap.counter(names::BREAKER_TRIPS_TOTAL),
    );
    let failovers = snap.counter(names::FAILOVERS_TOTAL);
    let fenced = snap.counter(names::FENCED_GRANTS_TOTAL);
    let journaled = snap.counter(names::JOURNAL_RECORDS_TOTAL);
    let replayed = snap.counter(names::REPLAYED_RECORDS_TOTAL);
    let resumed = snap.counter(names::RESUMED_QUESTIONS_TOTAL);
    if failovers + fenced + journaled + replayed + resumed > 0 {
        println!(
            "coordinator: {failovers} failover(s) to term {}, {journaled} journal record(s), \
             {replayed} replayed, {resumed} question(s) resumed, {fenced} fenced grant(s)",
            snap.gauges.get(names::LEADER_TERM).copied().unwrap_or(0.0),
        );
        if let Some(h) = snap.histograms.get(names::RECOVERY_SECONDS) {
            println!(
                "  recovery latency: {} event(s), mean {:.3} s, p95 {:.3} s",
                h.count,
                h.mean(),
                h.quantile(0.95)
            );
        }
    }
    let merges = snap.counter(names::MERGES_TOTAL);
    let hedges = snap.counter(names::HEDGES_TOTAL);
    let shard_traffic = snap
        .counters
        .keys()
        .filter(|k| k.starts_with(names::SHARD_REQUESTS_TOTAL))
        .count();
    if merges + hedges + shard_traffic as u64 > 0 {
        println!(
            "federation: {merges} merged answer(s) ({} quorum shortfall(s)), \
             {hedges} hedge(s) ({} won)",
            snap.counter(names::QUORUM_SHORTFALLS_TOTAL),
            snap.counter(names::HEDGE_WINS_TOTAL),
        );
        let mut by_shard: std::collections::BTreeMap<String, Vec<String>> = Default::default();
        for (k, v) in &snap.counters {
            if !k.starts_with(names::SHARD_REQUESTS_TOTAL) {
                continue;
            }
            let (Some(shard), Some(status)) = (label_value(k, "shard"), label_value(k, "status"))
            else {
                continue;
            };
            by_shard
                .entry(shard.to_string())
                .or_default()
                .push(format!("{status} {v}"));
        }
        for (shard, statuses) in &by_shard {
            let lat = snap
                .histograms
                .get(&metric_key(names::SHARD_SECONDS, &[("shard", shard)]));
            match lat {
                Some(h) => println!(
                    "  shard {shard}: {}  (mean {:.3} s, p95 {:.3} s)",
                    statuses.join(", "),
                    h.mean(),
                    h.quantile(0.95)
                ),
                None => println!("  shard {shard}: {}", statuses.join(", ")),
            }
        }
    }
    let plans = snap.counter_family(names::REBALANCE_PLANS_TOTAL);
    let migrated = snap.counter(names::REBALANCE_MIGRATED_TOTAL);
    if plans + migrated > 0 {
        println!(
            "rebalance: {plans} plan(s), {migrated} transfer(s), {} throttled step(s), \
             ownership epoch {}, converged {}",
            snap.counter_family(names::REBALANCE_THROTTLED_TOTAL),
            snap.gauges
                .get(names::REBALANCE_OWNERSHIP_EPOCH)
                .copied()
                .unwrap_or(0.0),
            snap.gauges
                .get(names::REBALANCE_CONVERGED)
                .copied()
                .unwrap_or(1.0),
        );
        if let Some(h) = snap.histograms.get(names::REBALANCE_HEAL_SECONDS) {
            if h.count > 0 {
                println!(
                    "  heal latency: {} event(s), mean {:.3} s, p95 {:.3} s",
                    h.count,
                    h.mean(),
                    h.quantile(0.95)
                );
            }
        }
    }
    let dropped = snap.counter(names::TRACE_DROPPED_TOTAL);
    if dropped > 0 {
        println!(
            "WARNING: flight-recorder ring overflowed — {dropped} trace event(s)/span(s) \
             dropped ({}); waterfalls and critical paths may be incomplete. \
             Raise the trace capacity to retain full traces.",
            names::TRACE_DROPPED_TOTAL
        );
    }
    Ok(())
}

/// Extract one label's value from a flat metric key like
/// `dqa_shard_requests_total{shard="1",status="answered"}`.
fn label_value<'a>(key: &'a str, label: &str) -> Option<&'a str> {
    let pat = format!("{label}=\"");
    let start = key.find(&pat)? + pat.len();
    let end = key[start..].find('"')?;
    Some(&key[start..start + end])
}

fn model(argv: &[String]) -> Result<(), String> {
    let a = parse(argv, &[])?;
    let net: f64 = a.num("net-mbps", 100.0f64)?;
    let disk: f64 = a.num("disk-mbps", 100.0f64)?;
    let nodes: usize = a.num("nodes", 0usize)?;
    let params = SystemParams::trec9()
        .with_net_bandwidth(net * MBPS)
        .with_disk_bandwidth(disk * MBPS);
    let intra = IntraQuestionModel::new(params, Trec9Profile::complex());
    let inter = InterQuestionModel::new(params, Trec9Profile::average());
    let (n_max, s_max) = intra.practical_limit();
    println!("analytical model at net {net} Mbps, disk {disk} Mbps:");
    println!("  intra-question: N_max = {n_max}, speedup there = {s_max:.2}");
    if nodes > 0 {
        println!(
            "  at {nodes} nodes: question speedup {:.2} (T = {:.1} s), system efficiency {:.2}",
            intra.speedup(nodes),
            intra.t_n(nodes),
            inter.efficiency(nodes)
        );
    }
    println!(
        "  inter-question: efficiency {:.2} at 100 nodes, {:.2} at 1000 nodes",
        inter.efficiency(100),
        inter.efficiency(1000)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(parts: &[&str]) -> Result<(), CmdError> {
        let argv: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("dqa-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_index_ask_round_trip() {
        let corpus_path = tmp("c1.json");
        let index_path = tmp("c1.idx");
        run(&[
            "generate",
            "--seed",
            "5",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&["index", "--corpus", &corpus_path, "--out", &index_path]).unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--index",
            &index_path,
            "--sample",
            "2",
        ])
        .unwrap();
    }

    #[test]
    fn export_writes_parsable_trec_files() {
        let corpus_path = tmp("c3.json");
        let topics = tmp("c3-topics.txt");
        let answers = tmp("c3-answers.txt");
        run(&[
            "generate",
            "--seed",
            "8",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "export",
            "--corpus",
            &corpus_path,
            "--questions",
            "5",
            "--topics",
            &topics,
            "--answers",
            &answers,
        ])
        .unwrap();
        let parsed =
            corpus::trec::parse_topics(&std::fs::read_to_string(&topics).unwrap()).unwrap();
        assert_eq!(parsed.len(), 5);
        let key =
            corpus::trec::parse_answer_key(&std::fs::read_to_string(&answers).unwrap()).unwrap();
        assert_eq!(key.len(), 5);
    }

    #[test]
    fn simulate_and_model_run() {
        run(&[
            "simulate",
            "--nodes",
            "4",
            "--strategy",
            "dqa",
            "--seed",
            "3",
        ])
        .unwrap();
        run(&[
            "model",
            "--net-mbps",
            "1000",
            "--disk-mbps",
            "100",
            "--nodes",
            "8",
        ])
        .unwrap();
    }

    #[test]
    fn simulate_accepts_overload_knobs() {
        run(&[
            "simulate",
            "--nodes",
            "4",
            "--strategy",
            "dqa",
            "--seed",
            "3",
            "--max-in-flight",
            "3",
            "--admission-queue",
            "2",
            "--deadline-secs",
            "300",
        ])
        .unwrap();
        assert!(
            run(&["simulate", "--max-in-flight", "lots"]).is_err(),
            "non-numeric overload knob must be rejected"
        );
    }

    #[test]
    fn overload_policy_parses_all_knobs() {
        let argv: Vec<String> = [
            "--max-in-flight",
            "5",
            "--admission-queue",
            "7",
            "--max-per-node",
            "2",
            "--deadline-secs",
            "1.5",
            "--breaker-load",
            "6.0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let a = parse(&argv, &[]).unwrap();
        let p = overload_policy(&a).unwrap();
        assert_eq!(p.max_in_flight, Some(5));
        assert_eq!(p.admission_queue, 7);
        assert_eq!(p.max_per_node, Some(2));
        assert_eq!(p.deadline_secs, Some(1.5));
        assert_eq!(p.breaker_load, Some(6.0));
        // No knobs → the permissive default.
        let none = parse(&[], &[]).unwrap();
        assert_eq!(overload_policy(&none).unwrap(), OverloadPolicy::default());
    }

    #[test]
    fn simulate_writes_metrics_and_report_reads_them() {
        let json_path = tmp("m1.json");
        let prom_path = tmp("m1.prom");
        run(&[
            "simulate",
            "--nodes",
            "2",
            "--seed",
            "3",
            "--metrics-out",
            &json_path,
            "--waterfall",
            "0",
        ])
        .unwrap();
        run(&[
            "simulate",
            "--nodes",
            "2",
            "--seed",
            "3",
            "--metrics-out",
            &prom_path,
            "--metrics-format",
            "prom",
        ])
        .unwrap();
        let snap = Snapshot::from_json(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert!(snap.counter_family(names::QUESTIONS_TOTAL) > 0);
        assert!(snap.histograms.contains_key(names::QUESTION_SECONDS));
        validate_prometheus(&std::fs::read_to_string(&prom_path).unwrap()).unwrap();
        run(&["report", &json_path]).unwrap();
    }

    #[test]
    fn ask_with_cluster_exports_metrics() {
        let corpus_path = tmp("c4.json");
        let metrics_path = tmp("c4-metrics.json");
        run(&[
            "generate",
            "--seed",
            "7",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--sample",
            "1",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        let snap = Snapshot::from_json(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(snap.counter_family(names::QUESTIONS_TOTAL), 1);
        assert_eq!(snap.histograms[names::QUESTION_SECONDS].count, 1);
        assert!(
            run(&[
                "ask",
                "--corpus",
                &corpus_path,
                "--sample",
                "1",
                "--metrics-out",
                &metrics_path,
            ])
            .is_err(),
            "pipeline mode must refuse --metrics-out"
        );
    }

    #[test]
    fn ask_with_shards_merges_and_reports_federation_lines() {
        let corpus_path = tmp("c7.json");
        let metrics_path = tmp("c7-metrics.json");
        run(&[
            "generate",
            "--seed",
            "13",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--shards",
            "2",
            "--cluster",
            "1",
            "--quorum",
            "1",
            "--hedge-after-ms",
            "500",
            "--sample",
            "1",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        let snap = Snapshot::from_json(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(snap.counter(names::MERGES_TOTAL), 1);
        assert_eq!(snap.counter(names::QUORUM_SHORTFALLS_TOTAL), 0);
        assert!(
            snap.counters
                .keys()
                .any(|k| k.starts_with(names::SHARD_REQUESTS_TOTAL)),
            "per-shard request counters must be exported"
        );
        // The federation lines render from the same snapshot.
        run(&["report", &metrics_path]).unwrap();
        // Journaling is a per-shard concern; the broker refuses the flag.
        assert!(run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--shards",
            "2",
            "--sample",
            "1",
            "--journal",
            &tmp("c7-journal"),
        ])
        .is_err());
    }

    #[test]
    fn federated_ask_aggregates_rejections_with_retry_hint() {
        let corpus_path = tmp("c8.json");
        run(&[
            "generate",
            "--seed",
            "17",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        // Every shard's per-node cap is 0: all shards reject, and the
        // broker must surface the aggregated retry-after hint instead of
        // failing on the first rejecting shard.
        let err = run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--shards",
            "2",
            "--cluster",
            "1",
            "--sample",
            "1",
            "--max-per-node",
            "0",
        ])
        .unwrap_err();
        match err {
            CmdError::Rejected { retry_after } => assert!(
                retry_after > Duration::ZERO,
                "aggregated rejection must carry a usable retry hint"
            ),
            other => panic!("expected an aggregated admission rejection, got {other:?}"),
        }
    }

    #[test]
    fn ask_rejection_carries_the_retry_hint() {
        let corpus_path = tmp("c5.json");
        run(&[
            "generate",
            "--seed",
            "9",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        // A per-node cap of 0 saturates every node before the first
        // question: admission must bounce it with the policy's back-off
        // hint, through the distinct-exit-code path — not a bare error.
        let err = run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--sample",
            "1",
            "--max-per-node",
            "0",
        ])
        .unwrap_err();
        match err {
            CmdError::Rejected { retry_after } => assert!(
                retry_after > Duration::ZERO,
                "rejection must carry a usable retry hint"
            ),
            other => panic!("expected an admission rejection, got {other:?}"),
        }
    }

    #[test]
    fn ask_journals_and_recover_replays() {
        let corpus_path = tmp("c6.json");
        let jdir = tmp("c6-journal");
        let _ = std::fs::remove_dir_all(&jdir);
        run(&[
            "generate",
            "--seed",
            "11",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--sample",
            "1",
            "--journal",
            &jdir,
        ])
        .unwrap();
        // Everything was answered before the "crash", so recovery
        // replays the journal, promotes past term 1 and finds nothing
        // in flight. (Mid-question crash resume is exercised end to end
        // in tests/coordinator_failover.rs.)
        run(&["recover", "--journal", &jdir, "--corpus", &corpus_path]).unwrap();
        // Pipeline mode has no coordinator and must refuse to journal.
        assert!(run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--sample",
            "1",
            "--journal",
            &jdir,
        ])
        .is_err());
        // A plain file where the journal directory should be cannot be
        // opened (or silently replaced): hard error.
        let not_a_dir = tmp("c6-not-a-dir");
        std::fs::write(&not_a_dir, b"not a journal").unwrap();
        assert!(
            run(&["recover", "--journal", &not_a_dir]).is_err(),
            "an unopenable journal is a hard error"
        );
        let _ = std::fs::remove_dir_all(&jdir);
    }

    #[test]
    fn rebalance_drain_join_round_trip_exports_metrics() {
        let corpus_path = tmp("c9.json");
        let metrics_path = tmp("c9-metrics.json");
        run(&[
            "generate",
            "--seed",
            "19",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "rebalance",
            "--corpus",
            &corpus_path,
            "--cluster",
            "3",
            "--drain",
            "1",
            "--join",
            "1",
            "--sample",
            "1",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        let snap = Snapshot::from_json(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(
            snap.counter(names::REBALANCE_MIGRATED_TOTAL) > 0,
            "drain + join must migrate sub-collections"
        );
        let reason =
            |r: &str| snap.counter(&metric_key(names::REBALANCE_PLANS_TOTAL, &[("reason", r)]));
        assert_eq!(reason("drain"), 1);
        assert_eq!(reason("join"), 1);
        assert_eq!(
            snap.gauges.get(names::REBALANCE_CONVERGED).copied(),
            Some(1.0),
            "the round trip must end converged"
        );
        // The rebalance lines render from the same snapshot.
        run(&["report", &metrics_path]).unwrap();
        // Out-of-range nodes and standby >= cluster are refused.
        assert!(run(&[
            "rebalance",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--drain",
            "7",
        ])
        .is_err());
        assert!(run(&[
            "rebalance",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--standby",
            "2",
        ])
        .is_err());
    }

    #[test]
    fn ask_elastic_answers_through_the_ownership_map() {
        let corpus_path = tmp("c10.json");
        run(&[
            "generate",
            "--seed",
            "23",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--cluster",
            "3",
            "--elastic",
            "--standby",
            "1",
            "--sample",
            "1",
        ])
        .unwrap();
        // Elastic membership is a cluster-runtime feature.
        assert!(run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--elastic",
            "--sample",
            "1"
        ])
        .is_err());
        assert!(run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--elastic",
            "--standby",
            "2",
            "--sample",
            "1",
        ])
        .is_err());
    }

    #[test]
    fn ask_writes_perfetto_trace() {
        let corpus_path = tmp("c11.json");
        let trace_path = tmp("c11-trace.json");
        run(&[
            "generate",
            "--seed",
            "29",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--cluster",
            "2",
            "--sample",
            "1",
            "--trace-out",
            &trace_path,
        ])
        .unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        let events = validate_chrome_json(&json).unwrap();
        assert!(events > 0, "the cluster ask must record spans");
        // Pipeline mode records no spans and must refuse the flag.
        assert!(run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--sample",
            "1",
            "--trace-out",
            &trace_path,
        ])
        .is_err());
    }

    #[test]
    fn federated_elastic_ask_writes_perfetto_trace() {
        let corpus_path = tmp("c12.json");
        let trace_path = tmp("c12-trace.json");
        run(&[
            "generate",
            "--seed",
            "31",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--shards",
            "2",
            "--cluster",
            "2",
            "--elastic",
            "--sample",
            "1",
            "--trace-out",
            &trace_path,
        ])
        .unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        assert!(validate_chrome_json(&json).unwrap() > 0);
        // The combined export holds the broker tree and the shard trees.
        assert!(json.contains("\"federated\""), "broker root span missing");
        assert!(
            json.contains("\"question\""),
            "shard question spans missing"
        );
        // Standby must leave an active node in every shard.
        assert!(run(&[
            "ask",
            "--corpus",
            &corpus_path,
            "--shards",
            "2",
            "--cluster",
            "1",
            "--elastic",
            "--standby",
            "1",
            "--sample",
            "1",
        ])
        .is_err());
    }

    #[test]
    fn trace_command_renders_critical_path_and_exports() {
        let out = tmp("t1-trace.json");
        run(&[
            "trace",
            "--nodes",
            "2",
            "--seed",
            "3",
            "--question",
            "0",
            "--out",
            &out,
        ])
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(validate_chrome_json(&json).unwrap() > 0);
    }

    #[test]
    fn simulate_waterfall_formats() {
        run(&[
            "simulate",
            "--nodes",
            "2",
            "--seed",
            "3",
            "--waterfall",
            "0",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(run(&[
            "simulate",
            "--nodes",
            "2",
            "--seed",
            "3",
            "--waterfall",
            "0",
            "--format",
            "xml",
        ])
        .is_err());
    }

    #[test]
    fn metrics_flag_errors_are_reported() {
        let p = tmp("m2.json");
        assert!(run(&[
            "simulate",
            "--nodes",
            "2",
            "--metrics-out",
            &p,
            "--metrics-format",
            "xml"
        ])
        .is_err());
        assert!(run(&["simulate", "--compare", "--metrics-out", &p]).is_err());
        assert!(run(&["report"]).is_err());
        assert!(run(&["report", "/nonexistent-metrics.json"]).is_err());
        let bad = tmp("m2-bad.json");
        std::fs::write(&bad, "[1,2,3]").unwrap();
        assert!(run(&["report", &bad]).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["generate"]).is_err(), "--out required");
        assert!(run(&["ask", "--corpus", "/nonexistent.json", "q"]).is_err());
        assert!(run(&["simulate", "--strategy", "bogus"]).is_err());
        let corpus_path = tmp("c2.json");
        run(&[
            "generate",
            "--seed",
            "6",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        assert!(
            run(&["ask", "--corpus", &corpus_path]).is_err(),
            "no questions given"
        );
    }

    #[test]
    fn scrub_detects_and_repairs_injected_corruption() {
        let corpus_path = tmp("c10.json");
        let index_path = tmp("c10.idx");
        let metrics_path = tmp("c10-metrics.json");
        run(&[
            "generate",
            "--seed",
            "23",
            "--size",
            "small",
            "--out",
            &corpus_path,
        ])
        .unwrap();
        // `dqa index` now writes DQAIDX2; the verifying loader reads it.
        run(&["index", "--corpus", &corpus_path, "--out", &index_path]).unwrap();
        run(&[
            "scrub",
            "--corpus",
            &corpus_path,
            "--index",
            &index_path,
            "--cluster",
            "2",
            "--flip",
            "0,2",
            "--torn",
            "1",
            "--sample",
            "1",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        let snap = Snapshot::from_json(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert_eq!(
            snap.counter_family(names::INTEGRITY_CHECKSUM_FAILURES_TOTAL),
            3,
            "every injected corruption is detected"
        );
        assert_eq!(
            snap.counter_family(names::INTEGRITY_REPAIRS_TOTAL),
            3,
            "every detection is repaired"
        );
        assert_eq!(
            snap.gauges.get(names::INTEGRITY_QUARANTINED).copied(),
            Some(0.0),
            "the run ends with an empty quarantine"
        );
        // Out-of-range sub-collections are refused.
        assert!(run(&["scrub", "--corpus", &corpus_path, "--flip", "999",]).is_err());
    }
}
