//! Virtual-time mirror of the runtime's scrub-and-repair engine.
//!
//! Where [`crate::workload`] simulates the paper's scheduling experiments,
//! this module simulates the *data-integrity* tier: corruption faults fire
//! at scheduled virtual times against per-sub-collection segment state, a
//! background scrubber walks the shard directory under the same
//! admission-headroom throttle the runtime uses, and question arrivals
//! exercise the read-path sampled check. The point of the mirror is
//! quantitative: time-to-repair, scrub/foreground interference and the
//! detection split (scrub vs read path) in *virtual* seconds, decoupled
//! from wall-clock noise — and bit-identical across runs, which the
//! `integrity_soak` bench asserts by running every scenario twice.
//!
//! Everything is deterministic: arrivals are periodic, detection draws go
//! through the same splitmix64 construction the fault framework uses, and
//! the event loop orders ties by `(time, class, sequence)`.

use faults::{CorruptTarget, FaultEvent, FaultSchedule};
use rebalance::{MigrationThrottle, ThrottleVerdict};
use serde::{Deserialize, Serialize};

/// A piecewise-constant window of modeled foreground load: the admission
/// gate holds `in_flight` questions throughout `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadWindow {
    /// Window start (virtual seconds).
    pub from: f64,
    /// Window end (virtual seconds).
    pub until: f64,
    /// Foreground questions in flight inside the window.
    pub in_flight: usize,
}

/// Configuration of one integrity simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegritySimConfig {
    /// Number of sub-collections (shard regions in the segment).
    pub shards: u32,
    /// Simulation horizon (virtual seconds).
    pub horizon_secs: f64,
    /// Question arrival period (one question every `question_every` virtual
    /// seconds; `0` disables question traffic).
    pub question_every: f64,
    /// Term blocks per shard region in the modeled segment.
    pub blocks_per_shard: usize,
    /// Term blocks the read path spot-checks per shard (`0` disables the
    /// read check; `>= blocks_per_shard` makes it exhaustive).
    pub read_sample_blocks: usize,
    /// Virtual seconds between scrub steps.
    pub scrub_every: f64,
    /// Shard regions verified per scrub step.
    pub scrub_quantum: usize,
    /// Admission-headroom throttle pacing the scrubber (same shape as the
    /// runtime's).
    pub throttle: MigrationThrottle,
    /// Admission-gate capacity the throttle's headroom is measured against.
    pub capacity: usize,
    /// Modeled foreground load, first matching window wins; outside every
    /// window the gate is empty.
    pub load: Vec<LoadWindow>,
    /// Corruption events (index-segment targets fire; everything else is
    /// ignored here) plus the decision seed.
    pub faults: FaultSchedule,
    /// Sub-collections whose *replica* region is also damaged, forcing the
    /// rebuild repair path.
    pub replica_damaged: Vec<u32>,
}

impl Default for IntegritySimConfig {
    fn default() -> Self {
        IntegritySimConfig {
            shards: 8,
            horizon_secs: 120.0,
            question_every: 0.5,
            blocks_per_shard: 32,
            read_sample_blocks: 4,
            scrub_every: 1.0,
            scrub_quantum: 2,
            throttle: MigrationThrottle::default(),
            capacity: 8,
            load: Vec::new(),
            faults: FaultSchedule::seeded(1),
            replica_damaged: Vec::new(),
        }
    }
}

/// Aggregate outcome of one [`run_integrity_sim`] run. Every field is
/// deterministic for a given config; the soak bench diffs two runs'
/// serialized reports byte for byte.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntegritySimReport {
    /// Corruption events that damaged a segment region.
    pub injected: usize,
    /// Corruptions first caught by the background scrubber.
    pub detected_by_scrub: usize,
    /// Corruptions first caught by a question's read-path spot check.
    pub detected_by_read: usize,
    /// Repairs spliced from the replica.
    pub repaired_replica: usize,
    /// Repairs re-encoded from the source of truth.
    pub repaired_rebuild: usize,
    /// Questions that skipped quarantined shards and closed with reduced,
    /// explicitly annotated coverage.
    pub degraded_questions: usize,
    /// Questions that saw a fully healthy segment.
    pub clean_questions: usize,
    /// Questions that read a corrupt, not-yet-quarantined region without
    /// the sampled check catching it — the silent-wrongness exposure the
    /// tier exists to drive to zero. Exhaustive read sampling
    /// (`read_sample_blocks >= blocks_per_shard`) guarantees `0`.
    pub silently_exposed: usize,
    /// Scrub steps that verified at least one region.
    pub scrub_steps: usize,
    /// Scrub steps deferred by the headroom throttle.
    pub throttled_steps: usize,
    /// Mean virtual seconds from corruption to completed repair.
    pub mean_time_to_repair_secs: f64,
    /// Worst-case virtual seconds from corruption to completed repair.
    pub max_time_to_repair_secs: f64,
    /// Corruptions still unrepaired at the horizon.
    pub unrepaired_at_horizon: usize,
}

/// Per-shard segment state in the model.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ShardState {
    Clean,
    /// Damaged, not yet detected. Carries the corruption time.
    Corrupt(f64),
    /// Detected and quarantined; awaiting scrub repair. Carries the
    /// corruption time (for time-to-repair accounting).
    Quarantined(f64),
}

/// Event classes, in tie-break order: corruption lands before the scrub or
/// a question observes the same instant, and scrub runs before questions so
/// a repair completed "at" t serves the question arriving at t.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventClass {
    Corrupt,
    Scrub,
    Question,
}

/// splitmix64 — the same mix the fault framework's judges use, so sampled
/// read-detection draws are stable per (seed, question, shard).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run the integrity DES to its horizon.
pub fn run_integrity_sim(cfg: &IntegritySimConfig) -> IntegritySimReport {
    let mut report = IntegritySimReport::default();
    let n = cfg.shards.max(1);
    let mut shard: Vec<ShardState> = vec![ShardState::Clean; n as usize];
    let mut cursor = 0usize;
    let mut repair_times: Vec<f64> = Vec::new();

    // Build the time-ordered event list up front: corruption fires from
    // the schedule; scrub and question arrivals are periodic.
    let mut events: Vec<(f64, EventClass, u64)> = Vec::new();
    let mut seq = 0u64;
    for ev in &cfg.faults.events {
        let (target, at) = match *ev {
            FaultEvent::BitFlip { target, at } | FaultEvent::TornWrite { target, at } => {
                (target, at)
            }
            _ => continue,
        };
        if let CorruptTarget::IndexSegment { sub } = target {
            if at <= cfg.horizon_secs && sub < n {
                events.push((at, EventClass::Corrupt, u64::from(sub)));
            }
        }
    }
    if cfg.scrub_every > 0.0 {
        let mut t = cfg.scrub_every;
        while t <= cfg.horizon_secs {
            events.push((t, EventClass::Scrub, 0));
            t += cfg.scrub_every;
        }
    }
    if cfg.question_every > 0.0 {
        let mut t = cfg.question_every;
        while t <= cfg.horizon_secs {
            events.push((t, EventClass::Question, seq));
            seq += 1;
            t += cfg.question_every;
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // Decision seed for read-path sampling draws, domain-separated from
    // the judge's corruption decisions.
    let seed = mix(cfg.faults.seed, 0x5c2b_b3ad_0000_0001, 0);
    let in_flight_at = |t: f64| -> usize {
        cfg.load
            .iter()
            .find(|w| t >= w.from && t < w.until)
            .map_or(0, |w| w.in_flight)
    };
    let mut repair = |s: u32, since: f64, now: f64, report: &mut IntegritySimReport| {
        if cfg.replica_damaged.contains(&s) {
            report.repaired_rebuild += 1;
        } else {
            report.repaired_replica += 1;
        }
        repair_times.push(now - since);
    };

    for (t, class, payload) in events {
        match class {
            EventClass::Corrupt => {
                let s = payload as usize;
                // Re-corrupting a damaged region changes nothing the
                // model tracks; keep the earliest corruption time.
                if shard[s] == ShardState::Clean {
                    shard[s] = ShardState::Corrupt(t);
                    report.injected += 1;
                }
            }
            EventClass::Scrub => {
                let verdict = cfg
                    .throttle
                    .grant(in_flight_at(t), Some(cfg.capacity), 0, false);
                if verdict != ThrottleVerdict::Go {
                    report.throttled_steps += 1;
                    continue;
                }
                report.scrub_steps += 1;
                let quantum = cfg.scrub_quantum.max(1).min(n as usize);
                for _ in 0..quantum {
                    let s = cursor % n as usize;
                    cursor += 1;
                    if let ShardState::Corrupt(since) = shard[s] {
                        report.detected_by_scrub += 1;
                        shard[s] = ShardState::Quarantined(since);
                    }
                }
                // Repair everything quarantined, exactly like the runtime's
                // scrub step.
                for (s, st) in shard.iter_mut().enumerate() {
                    if let ShardState::Quarantined(since) = *st {
                        repair(s as u32, since, t, &mut report);
                        *st = ShardState::Clean;
                    }
                }
            }
            EventClass::Question => {
                let qid = payload;
                let mut skipped = 0usize;
                let mut exposed = 0usize;
                for (s, st) in shard.iter_mut().enumerate() {
                    match *st {
                        ShardState::Clean => {}
                        ShardState::Quarantined(_) => skipped += 1,
                        ShardState::Corrupt(since) => {
                            // Sampled read check: drawing `read_sample_blocks`
                            // of `blocks_per_shard` blocks hits the (single)
                            // damaged block with p = sample/blocks; the draw
                            // is a splitmix unit-interval per (question, shard).
                            let blocks = cfg.blocks_per_shard.max(1);
                            let sample = cfg.read_sample_blocks;
                            let hit = if sample >= blocks {
                                true
                            } else if sample == 0 {
                                false
                            } else {
                                let u =
                                    (mix(seed, qid, s as u64) >> 11) as f64 / (1u64 << 53) as f64;
                                u < sample as f64 / blocks as f64
                            };
                            if hit {
                                report.detected_by_read += 1;
                                *st = ShardState::Quarantined(since);
                                skipped += 1;
                            } else {
                                exposed += 1;
                            }
                        }
                    }
                }
                if exposed > 0 {
                    report.silently_exposed += 1;
                } else if skipped > 0 {
                    report.degraded_questions += 1;
                } else {
                    report.clean_questions += 1;
                }
            }
        }
    }

    for st in &shard {
        if !matches!(st, ShardState::Clean) {
            report.unrepaired_at_horizon += 1;
        }
    }
    if !repair_times.is_empty() {
        report.mean_time_to_repair_secs =
            repair_times.iter().sum::<f64>() / repair_times.len() as f64;
        report.max_time_to_repair_secs = repair_times.iter().fold(0.0f64, |a, &b| a.max(b));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_faults() -> IntegritySimConfig {
        IntegritySimConfig {
            faults: FaultSchedule::seeded(11)
                .bit_flip_index(1, 3.0)
                .torn_write_index(4, 20.0)
                .bit_flip_index(6, 45.0),
            ..IntegritySimConfig::default()
        }
    }

    #[test]
    fn double_run_is_bit_identical() {
        let cfg = cfg_with_faults();
        let a = run_integrity_sim(&cfg);
        let b = run_integrity_sim(&cfg);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "serialized reports must match byte for byte"
        );
    }

    #[test]
    fn every_corruption_is_detected_and_repaired() {
        let cfg = cfg_with_faults();
        let r = run_integrity_sim(&cfg);
        assert_eq!(r.injected, 3);
        assert_eq!(r.detected_by_scrub + r.detected_by_read, 3);
        assert_eq!(r.repaired_replica + r.repaired_rebuild, 3);
        assert_eq!(r.unrepaired_at_horizon, 0);
        assert!(r.max_time_to_repair_secs > 0.0);
        assert!(r.mean_time_to_repair_secs <= r.max_time_to_repair_secs);
    }

    #[test]
    fn exhaustive_read_sampling_never_exposes_corruption() {
        let cfg = IntegritySimConfig {
            read_sample_blocks: usize::MAX,
            ..cfg_with_faults()
        };
        let r = run_integrity_sim(&cfg);
        assert_eq!(r.silently_exposed, 0);
        assert!(
            r.degraded_questions > 0,
            "quarantine skips show up as degraded"
        );
        assert!(r.clean_questions > 0);
    }

    #[test]
    fn disabled_read_check_leaves_detection_to_the_scrubber() {
        let cfg = IntegritySimConfig {
            read_sample_blocks: 0,
            ..cfg_with_faults()
        };
        let r = run_integrity_sim(&cfg);
        assert_eq!(r.detected_by_read, 0);
        assert_eq!(r.detected_by_scrub, 3);
        assert!(
            r.silently_exposed > 0,
            "without the read check, questions race the scrubber and lose"
        );
    }

    #[test]
    fn foreground_load_throttles_the_scrubber_and_delays_repair() {
        let busy = IntegritySimConfig {
            // Gate pinned at capacity for the first half of the run.
            load: vec![LoadWindow {
                from: 0.0,
                until: 60.0,
                in_flight: 8,
            }],
            ..cfg_with_faults()
        };
        let idle = cfg_with_faults();
        let r_busy = run_integrity_sim(&busy);
        let r_idle = run_integrity_sim(&idle);
        assert!(r_busy.throttled_steps > 0);
        assert_eq!(r_idle.throttled_steps, 0);
        assert!(
            r_busy.max_time_to_repair_secs >= r_idle.max_time_to_repair_secs,
            "yielding to foreground cannot make repair faster"
        );
    }

    #[test]
    fn replica_damage_forces_rebuild_repairs() {
        let cfg = IntegritySimConfig {
            replica_damaged: vec![1, 4, 6],
            ..cfg_with_faults()
        };
        let r = run_integrity_sim(&cfg);
        assert_eq!(r.repaired_replica, 0);
        assert_eq!(r.repaired_rebuild, 3);
    }
}
