//! The per-question state machine: dispatchers, partitioning, merging.
//!
//! This module turns the paper's Fig. 3 into engine tasks. Each question
//! walks QP → (PR dispatcher) → PR partitions → paragraph merge + PO →
//! (AP dispatcher) → AP partitions → answer merge/sort, with the three
//! scheduling points active according to the selected
//! [`BalancingStrategy`]:
//!
//! * [`BalancingStrategy::Dns`] — round-robin arrival placement only;
//! * [`BalancingStrategy::Inter`] — plus the question dispatcher (migrate
//!   before the task starts);
//! * [`BalancingStrategy::Dqa`] — plus the PR and AP dispatchers, each
//!   running the meta-scheduler: under low load they *partition* the module
//!   across under-loaded nodes, under high load they degenerate to pure
//!   migration to the single best node (the paper's §6 observation that the
//!   system "dynamically detects the current load and selects the
//!   appropriate degree of inter and intra task parallelism").

use crate::demand::QuestionDemand;
use crate::engine::{Advance, Engine, Stage};
use dqa_obs::{
    critical_path, derive_span_id, derive_trace_id, DqaMetrics, Gauge, ManualClock,
    MetricsRegistry, PhaseTimer, Snapshot, Span,
};
use dqa_obs::{CausalSpan, CauseSet, CriticalPath};
use faults::{FaultEvent, FaultSchedule, LinkDecision, LinkJudge, LossJudge};
use loadsim::functions::LoadFunctions;
use qa_types::{
    ModuleProfile, ModuleTimings, NodeId, OverloadCounts, OverloadPolicy, QaModule,
    QuestionOutcome, ResourceVector, ResourceWeights,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rebalance::{
    plan_evacuation, plan_join, plan_skew, ElasticConfig, MigrationPlan, MigrationStep,
    OwnershipMap, RebalanceReason,
};
use scheduler::diffusion::{GradientModel, SenderDiffusion};
use scheduler::dispatcher::QuestionDispatcher;
use scheduler::meta::meta_schedule;
use scheduler::partition::{partition_isend, partition_recv, partition_send, PartitionStrategy};
use scheduler::recovery::ChunkQueue;
use serde::{Deserialize, Serialize};

/// Which load-balancing model runs (§6.1's three contenders plus two
/// classic baselines from the related work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancingStrategy {
    /// Round-robin DNS placement, nothing else.
    Dns,
    /// DNS + question dispatcher.
    Inter,
    /// DNS + question, PR and AP dispatchers (the paper's model).
    Dqa,
    /// DNS + sender-initiated diffusion at arrival (bounded probing).
    SenderDiffusion,
    /// DNS + gradient-model routing at arrival (ring topology, one hop).
    Gradient,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Shared network bandwidth, bytes/s (paper: 100 Mbps Ethernet).
    pub net_bandwidth: f64,
    /// Load-balancing strategy.
    pub strategy: BalancingStrategy,
    /// AP partitioning algorithm (PR always uses receiver-controlled
    /// single-collection chunks, per §4.1.3).
    pub ap_partition: PartitionStrategy,
    /// Question profiles; question `i` uses `profiles[i % len]`.
    pub profiles: Vec<ModuleProfile>,
    /// Number of questions to run.
    pub questions: usize,
    /// Uniform range of inter-arrival gaps (seconds). Ignored in serial
    /// mode.
    pub arrival_spacing: (f64, f64),
    /// Serial mode: submit question `i+1` only when `i` completes (the
    /// low-load intra-question experiments).
    pub serial: bool,
    /// RNG seed (demands + arrival jitter).
    pub seed: u64,
    /// Questions per node beyond which memory thrashing begins (paper: 4).
    pub overload_threshold: u32,
    /// CPU slowdown per excess resident question.
    pub thrash_slope: f64,
    /// Bytes per paragraph on the wire.
    pub paragraph_bytes: f64,
    /// Bytes of one answer set returned by an AP partition.
    pub answer_bytes: f64,
    /// Extra protocol bytes per RECV chunk (request + headers).
    pub per_chunk_net_bytes: f64,
    /// Fixed CPU cost per RECV chunk (local ranking of `N_a` answers).
    pub per_chunk_cpu_secs: f64,
    /// Fixed CPU cost per remote partition (connection + thread setup).
    pub per_partition_cpu_secs: f64,
    /// Question-dispatcher hysteresis in load-function units.
    pub hysteresis: f64,
    /// Closed-loop multiprogramming cap: when set, at most this many
    /// questions are in flight system-wide (the §4.2 concurrency
    /// experiment). `None` = open-loop arrivals.
    pub max_in_flight: Option<usize>,
    /// Minimum accepted-paragraph count per question: demands below it are
    /// resampled. The paper's §6.2 selects 307 questions "complex enough to
    /// justify distribution on all nodes" (≥ 20 paragraphs per AP module);
    /// this reproduces that selection.
    pub min_ap_paragraphs: usize,
    /// Failure injection: (virtual time, node index) pairs. At each time the
    /// node dies permanently — its running sub-tasks are lost and recovered
    /// via the Fig. 5c / Fig. 6b mechanisms, and questions homed there are
    /// re-homed. At least one node must survive.
    pub node_failures: Vec<(f64, u32)>,
    /// Cost-aware PR scheduling (the §1.4 / Cahoon-et-al. extension):
    /// workers pull sub-collections in *decreasing estimated cost* order
    /// (LPT), instead of collection-id order. The estimate is the true
    /// demand blurred by `pr_estimate_cv` multiplicative noise.
    pub pr_cost_aware: bool,
    /// Coefficient of variation of the cost-estimator error.
    pub pr_estimate_cv: f64,
    /// Per-node relative speed (CPU and disk), for heterogeneous clusters.
    /// `None` = homogeneous (all 1.0). The paper's cluster was homogeneous;
    /// heterogeneity stresses the load functions harder.
    pub node_speeds: Option<Vec<f64>>,
    /// Switched network: each node gets a dedicated full-bandwidth link
    /// instead of the paper's shared Ethernet segment, so transfers of
    /// different questions do not contend. An ablation of the network
    /// assumption behind Fig. 8.
    pub switched_network: bool,
    /// Record a virtual-time event trace (Fig. 7's listings, from the DES).
    pub record_trace: bool,
    /// Unified fault schedule (crash+rejoin, stragglers, message
    /// loss/delay/duplication, monitor packet loss). Event times are
    /// virtual seconds; per-message decisions are a pure hash of the
    /// schedule seed, so any schedule replays bit-stably. Legacy
    /// [`SimConfig::node_failures`] entries are merged into the same
    /// timeline as permanent crashes.
    pub faults: FaultSchedule,
    /// Admission control and load shedding, mirroring the thread runtime's
    /// interpretation of the same [`OverloadPolicy`] so both backends
    /// report comparable saturation curves. Where the runtime estimates
    /// phase demand online (EWMA over observed timings), the simulator
    /// consults the sampled [`QuestionDemand`] directly — an oracle
    /// estimator, which is exactly what a calibrated simulator should use.
    /// The default is fully permissive: no existing experiment changes.
    pub overload: OverloadPolicy,
    /// Elastic-membership tier parameters (detector thresholds, migration
    /// throttle, skew trigger). `None` still activates the tier with
    /// [`ElasticConfig::default`] whenever the fault schedule contains
    /// `NodeDecommission`/`NodeJoin`/`RebalanceStall` events — mirroring
    /// how coordinator faults activate the journal model — so existing
    /// schedules replay bit-identically while elastic schedules need no
    /// extra wiring. `Some` forces the tier on (ownership-routed PR
    /// dispatch, skew-triggered rebalancing) even without membership
    /// events.
    pub elastic: Option<ElasticConfig>,
    /// Metrics registry to record into. `None` makes the simulation create
    /// its own enabled registry (its snapshot still lands in
    /// [`SimReport::metrics`]); pass a shared handle to aggregate several
    /// runs — the soak harnesses do — or a
    /// [`MetricsRegistry::disabled`] one to measure instrumentation
    /// overhead. Virtual-time histograms use the same catalogue
    /// ([`dqa_obs::names`]) as the thread runtime, so the two backends
    /// export directly comparable series.
    pub metrics: Option<MetricsRegistry>,
}

impl SimConfig {
    /// The §6.1 high-load configuration: 8 questions per node launched with
    /// 0–2 s spacing, mixed TREC-8/TREC-9 questions, 100 Mbps Ethernet.
    pub fn paper_high_load(nodes: usize, strategy: BalancingStrategy, seed: u64) -> SimConfig {
        use qa_types::{Trec8Profile, Trec9Profile};
        SimConfig {
            nodes,
            net_bandwidth: 100.0 * 125_000.0,
            strategy,
            ap_partition: PartitionStrategy::Recv { chunk_size: 40 },
            profiles: vec![Trec8Profile::profile(), Trec9Profile::average()],
            questions: 8 * nodes,
            arrival_spacing: (0.0, 2.0),
            serial: false,
            seed,
            overload_threshold: 4,
            thrash_slope: 0.1,
            paragraph_bytes: 2048.0,
            answer_bytes: 5.0 * 250.0,
            per_chunk_net_bytes: 4096.0,
            per_chunk_cpu_secs: 0.08,
            per_partition_cpu_secs: 0.05,
            hysteresis: ResourceWeights::QA.load(ResourceVector::new(0.79, 0.21)),
            max_in_flight: None,
            min_ap_paragraphs: 0,
            node_failures: Vec::new(),
            pr_cost_aware: false,
            pr_estimate_cv: 0.3,
            node_speeds: None,
            switched_network: false,
            record_trace: false,
            faults: FaultSchedule::none(),
            overload: OverloadPolicy::default(),
            elastic: None,
            metrics: None,
        }
    }

    /// The §6.2 low-load configuration: complex TREC-9 questions run one at
    /// a time with partitioning over all nodes.
    pub fn paper_low_load(
        nodes: usize,
        ap_partition: PartitionStrategy,
        questions: usize,
        seed: u64,
    ) -> SimConfig {
        use qa_types::Trec9Profile;
        SimConfig {
            questions,
            serial: true,
            arrival_spacing: (0.0, 0.0),
            strategy: BalancingStrategy::Dqa,
            ap_partition,
            profiles: vec![Trec9Profile::complex()],
            min_ap_paragraphs: 880,
            ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, seed)
        }
    }
}

/// Counts of dispatcher "disagreements" (Table 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationCounts {
    /// Question dispatcher overrode the DNS placement.
    pub qa: usize,
    /// PR dispatcher overrode the question dispatcher.
    pub pr: usize,
    /// AP dispatcher overrode the question dispatcher.
    pub ap: usize,
}

/// Analytic distribution-overhead breakdown per question (Table 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// Keyword sending to remote PR partitions.
    pub kw_send: f64,
    /// Paragraph receiving from remote PS outputs.
    pub par_recv: f64,
    /// Paragraph sending to remote AP partitions.
    pub par_send: f64,
    /// Answer receiving from remote AP partitions.
    pub ans_recv: f64,
    /// Final answer sorting.
    pub ans_sort: f64,
}

impl OverheadBreakdown {
    /// Total overhead (last column of Table 9).
    pub fn total(&self) -> f64 {
        self.kw_send + self.par_recv + self.par_send + self.ans_recv + self.ans_sort
    }

    /// Element-wise mean across questions.
    pub fn mean<'a>(items: impl IntoIterator<Item = &'a OverheadBreakdown>) -> OverheadBreakdown {
        let mut sum = OverheadBreakdown::default();
        let mut n = 0usize;
        for o in items {
            sum.kw_send += o.kw_send;
            sum.par_recv += o.par_recv;
            sum.par_send += o.par_send;
            sum.ans_recv += o.ans_recv;
            sum.ans_sort += o.ans_sort;
            n += 1;
        }
        if n == 0 {
            return sum;
        }
        let n = n as f64;
        OverheadBreakdown {
            kw_send: sum.kw_send / n,
            par_recv: sum.par_recv / n,
            par_send: sum.par_send / n,
            ans_recv: sum.ans_recv / n,
            ans_sort: sum.ans_sort / n,
        }
    }
}

/// One virtual-time trace event (Fig. 7-style, from the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Virtual time (seconds).
    pub at: f64,
    /// Question index (submission order).
    pub question: usize,
    /// What happened.
    pub kind: SimEventKind,
}

/// Event kinds of the simulator trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEventKind {
    /// Question placed: DNS target and (possibly migrated) home.
    Submitted {
        /// Round-robin DNS target.
        dns: NodeId,
        /// Final home after the question dispatcher.
        home: NodeId,
    },
    /// A PR worker finished one sub-collection.
    PrChunkDone {
        /// Worker node.
        node: NodeId,
        /// Sub-collection index.
        collection: u32,
    },
    /// Paragraph merge + PO completed on the home node.
    PoMerged {
        /// Home node.
        node: NodeId,
    },
    /// An AP worker finished a batch.
    ApBatchDone {
        /// Worker node.
        node: NodeId,
        /// Paragraphs in the batch.
        paragraphs: u32,
    },
    /// The question completed (answers sorted).
    Completed {
        /// Home node.
        node: NodeId,
    },
    /// The question was refused at admission (queue full, every node at
    /// its resident cap, or its deadline expired while waiting).
    Rejected,
    /// A phase was shed: the remaining deadline budget could not cover its
    /// estimated demand, so the question short-circuited to a degraded
    /// completion.
    Shed {
        /// The phase that was shed.
        module: QaModule,
    },
}

/// Per-question outcome record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionRecord {
    /// Arrival (submission) time.
    pub arrival: f64,
    /// Completion time.
    pub finished: f64,
    /// Wall-clock per module (phase durations).
    pub timings: ModuleTimings,
    /// Analytic distribution overhead.
    pub overhead: OverheadBreakdown,
    /// Node the question ended on.
    pub home: NodeId,
    /// Number of nodes its PR phase used.
    pub pr_nodes: usize,
    /// Number of nodes its AP phase used.
    pub ap_nodes: usize,
    /// How the question left the system. Rejected questions carry zero
    /// timings and a `finished` equal to the rejection instant.
    pub outcome: QuestionOutcome,
}

impl QuestionRecord {
    /// Response time (completion − arrival).
    pub fn response_time(&self) -> f64 {
        self.finished - self.arrival
    }
}

/// Aggregate simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-question records, submission order.
    pub questions: Vec<QuestionRecord>,
    /// Dispatcher disagreement counts (Table 7).
    pub migrations: MigrationCounts,
    /// Time the last question completed.
    pub makespan: f64,
    /// Virtual-time event trace (empty unless `record_trace` was set).
    pub trace: Vec<SimEvent>,
    /// Final snapshot of the run's metrics registry: the same catalogue
    /// the thread runtime exports, recorded in virtual time. Deserializes
    /// as empty from reports written before this field existed.
    #[serde(default)]
    pub metrics: Snapshot,
}

impl SimReport {
    /// System throughput in questions/minute (Table 5).
    pub fn throughput_per_minute(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.questions.len() as f64 / (self.makespan / 60.0)
    }

    /// Mean question response time in seconds (Table 6).
    pub fn mean_response_time(&self) -> f64 {
        if self.questions.is_empty() {
            return 0.0;
        }
        self.questions
            .iter()
            .map(QuestionRecord::response_time)
            .sum::<f64>()
            / self.questions.len() as f64
    }

    /// Mean per-module wall-clock (Table 8 rows).
    pub fn mean_timings(&self) -> ModuleTimings {
        ModuleTimings::mean(self.questions.iter().map(|q| &q.timings))
    }

    /// Response-time percentile (`p` in `[0, 1]`; nearest-rank method).
    /// Interactive services care about the tail, not just Table 6's means.
    pub fn response_time_percentile(&self, p: f64) -> f64 {
        if self.questions.is_empty() {
            return 0.0;
        }
        let mut times: Vec<f64> = self
            .questions
            .iter()
            .map(QuestionRecord::response_time)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[rank - 1]
    }

    /// Mean overhead breakdown (Table 9 rows).
    pub fn mean_overhead(&self) -> OverheadBreakdown {
        OverheadBreakdown::mean(self.questions.iter().map(|q| &q.overhead))
    }

    /// Outcome tally: answered + degraded + rejected always equals the
    /// offered question count (zero silent drops, by construction).
    pub fn outcome_counts(&self) -> OverloadCounts {
        let mut counts = OverloadCounts::default();
        for q in &self.questions {
            counts.record(q.outcome);
        }
        counts
    }

    /// Response-time percentile over *admitted* questions only (answered or
    /// degraded). Rejections bounce at the door in near-zero time and would
    /// otherwise drag the tail estimate down exactly when the system is
    /// most overloaded. Returns 0 when nothing was admitted.
    pub fn admitted_response_percentile(&self, p: f64) -> f64 {
        let mut times: Vec<f64> = self
            .questions
            .iter()
            .filter(|q| q.outcome != QuestionOutcome::Rejected)
            .map(QuestionRecord::response_time)
            .collect();
        if times.is_empty() {
            return 0.0;
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[rank - 1]
    }

    /// Per-phase [`Span`]s of question `q` in virtual time (QP → PR → PO →
    /// AP → SORT laid end to end from the recorded phase durations), the
    /// simulator's side of the shared timeline abstraction — the runtime
    /// derives the same spans from its trace ring. Empty for rejected
    /// questions and out-of-range indices.
    pub fn phase_spans(&self, q: usize) -> Vec<Span> {
        let Some(rec) = self.questions.get(q) else {
            return Vec::new();
        };
        if rec.outcome == QuestionOutcome::Rejected {
            return Vec::new();
        }
        let t = rec.timings;
        let mut at = rec.arrival;
        let mut spans = Vec::new();
        // PS is fused into PR, matching the runtime's observation model.
        for (label, dur) in [
            ("QP", t.qp),
            ("PR", t.pr + t.ps),
            ("PO", t.po),
            ("AP", t.ap),
        ] {
            if dur > 0.0 {
                spans.push(Span::new(label, at, at + dur));
                at += dur;
            }
        }
        if rec.finished > at {
            spans.push(Span::new("SORT", at, rec.finished));
        }
        spans
    }

    /// Fig. 7-style waterfall rendering of question `q`'s phase spans.
    pub fn waterfall(&self, q: usize, width: usize) -> Vec<String> {
        dqa_obs::render_waterfall(&self.phase_spans(q), width)
    }

    /// Causal-span tree of question `q` in virtual time: a `question`
    /// root over `[arrival, finished]` with one child per phase (the
    /// same QP → PR → PO → AP → SORT layout as [`SimReport::phase_spans`]).
    /// Identity comes from [`derive_trace_id`]`(q, seed)` plus the
    /// deterministic ordinal chain, and every timestamp is virtual —
    /// two runs of the same seeded config export bit-identical span
    /// streams. Empty for rejected questions and out-of-range indices.
    pub fn causal_spans(&self, q: usize, seed: u64) -> Vec<CausalSpan> {
        let Some(rec) = self.questions.get(q) else {
            return Vec::new();
        };
        if rec.outcome == QuestionOutcome::Rejected {
            return Vec::new();
        }
        let trace = derive_trace_id(q as u64, seed);
        let mut ordinal = 0u64;
        let mut next = || {
            ordinal += 1;
            derive_span_id(trace, ordinal)
        };
        let root_causes = if rec.outcome == QuestionOutcome::Degraded {
            CauseSet::none().with(CauseSet::DEGRADED)
        } else {
            CauseSet::none()
        };
        let mut root = CausalSpan::new(
            trace,
            None,
            "question",
            Some(rec.home.raw()),
            rec.arrival,
            rec.finished,
            0.0,
            root_causes,
        );
        root.id = next();
        let root_id = root.id;
        let mut spans = vec![root];
        for ph in self.phase_spans(q) {
            // The analytic overhead share of PR (kw_send/par_recv) and AP
            // (par_send/ans_recv) rides at the head of the phase — surface
            // it as queue-wait so the critical path splits coordination
            // from computation the way Table 9 does.
            let queue = match ph.label.as_str() {
                "PR" => (rec.overhead.kw_send + rec.overhead.par_recv).min(ph.end - ph.start),
                "AP" => (rec.overhead.par_send + rec.overhead.ans_recv).min(ph.end - ph.start),
                "SORT" => rec.overhead.ans_sort.min(ph.end - ph.start),
                _ => 0.0,
            };
            let mut s = CausalSpan::new(
                trace,
                Some(root_id),
                &ph.label,
                Some(rec.home.raw()),
                ph.start,
                ph.end,
                queue.max(0.0),
                CauseSet::none(),
            );
            s.id = next();
            spans.push(s);
        }
        spans
    }

    /// Every completed question's causal spans, submission order — the
    /// export surface for `dqa trace` and the double-run identity gate.
    pub fn all_causal_spans(&self, seed: u64) -> Vec<CausalSpan> {
        (0..self.questions.len())
            .flat_map(|q| self.causal_spans(q, seed))
            .collect()
    }

    /// Critical-path attribution for question `q` (`None` if rejected).
    pub fn question_critical_path(&self, q: usize, seed: u64) -> Option<CriticalPath> {
        critical_path(&self.causal_spans(q, seed))
    }

    /// Perfetto/chrome-tracing JSON of the whole run, byte-stable across
    /// seeded reruns.
    pub fn chrome_trace(&self, seed: u64) -> String {
        dqa_obs::to_chrome_json(&self.all_causal_spans(seed))
    }
}

/// Engine task tags.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tag {
    Qp(usize),
    PrPart {
        q: usize,
        node: NodeId,
        collection: u32,
    },
    PoMerge(usize),
    ApPart {
        q: usize,
        node: NodeId,
        paragraphs: u32,
    },
    ApChunk {
        q: usize,
        node: NodeId,
        paragraphs: u32,
    },
    ApSort(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Qp,
    Pr,
    Po,
    Ap,
    Sort,
    Done,
}

struct QState {
    demand: QuestionDemand,
    /// Deadline in virtual time, anchored at the *offer* instant (so time
    /// parked in the admission queue counts against the budget).
    deadline: Option<f64>,
    /// How the question will be recorded; flips to `Degraded` on shed.
    outcome: QuestionOutcome,
    /// Ratio of this question's total demand to the profile mean; load
    /// commitments are scaled by it so dispatchers see *work*, not counts
    /// (the real load monitor measures utilization, which reflects work).
    work_scale: f64,
    arrival: f64,
    home: NodeId,
    phase: Phase,
    phase_start: f64,
    /// Response-time timer over the simulation's virtual clock — the same
    /// [`PhaseTimer`] the runtime drives with wall time.
    timer: PhaseTimer,
    timings: ModuleTimings,
    overhead: OverheadBreakdown,
    // PR state: receiver-controlled queue of collection indices.
    pr_queue: ChunkQueue<usize>,
    pr_outstanding: usize,
    pr_nodes_used: Vec<NodeId>,
    pr_remote_demand: f64,
    pr_total_demand: f64,
    // AP state.
    ap_queue: Option<ChunkQueue<usize>>,
    ap_outstanding: usize,
    ap_nodes_used: Vec<NodeId>,
    /// SEND/ISEND in-flight partitions, kept for Fig. 5c failure recovery.
    /// Ordered map: partition dispatch/recovery order must be seed-stable.
    ap_partitions: std::collections::BTreeMap<NodeId, Vec<usize>>,
}

/// One entry of the unified fault timeline (config events flattened into
/// point actions applied at their virtual time).
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultAction {
    /// Node dies (permanent when no matching `Rejoin` follows).
    Die(NodeId),
    /// Node comes back with reset state.
    Rejoin(NodeId),
    /// Straggler window opens: node runs at the given speed factor.
    Slow(NodeId, f64),
    /// Straggler window closes.
    Unslow(NodeId),
    /// The leader coordinator crashes: admissions stop until a standby's
    /// lease expires and it replays the journal (virtual-time mirror of
    /// the runtime's [`dqa-runtime`] failover path).
    CoordinatorDown,
    /// The crashed ex-leader process returns — as a fenced standby, so
    /// this is a no-op for the workload (modeled for schedule symmetry).
    CoordinatorUp,
    /// The leader is partitioned from the standbys: it keeps serving, but
    /// once the lease lapses a standby promotes and every append the
    /// zombie attempts is fenced.
    PartitionStart,
    /// The partition heals; the ex-leader observes the higher term and
    /// stops appending.
    PartitionEnd,
    /// Operator drain: the node stops taking new placements, its
    /// sub-collections evacuate under the migration throttle, and it
    /// departs once the evacuation plan completes.
    Decommission(NodeId),
    /// A standby or previously drained node enters the pool and receives
    /// its fair share of sub-collections.
    Join(NodeId),
}

/// Virtual-time state of the elastic-membership tier. Allocated only when
/// the run is elastic (config or schedule), so non-elastic runs replay
/// bit-identically to before the tier existed — the same activation
/// pattern as the `journaled` flag.
struct ElasticState {
    /// Tier parameters ([`SimConfig::elastic`] or defaults).
    cfg: ElasticConfig,
    /// Sub-collection universe size (max PR collection count sampled).
    subs: u32,
    /// Which node owns each sub-collection; PR dispatch routes to owners.
    ownership: OwnershipMap,
    /// Nodes mid-drain (or drained): excluded from new placements, not
    /// yet (or no longer) dead.
    draining: Vec<bool>,
    /// Scheduled migration steps `(virtual apply time, step)`, time order.
    /// Applied through the drive loop like promotions and fault actions.
    pending_steps: std::collections::VecDeque<(f64, MigrationStep)>,
    /// Monotone plan-id counter (unique per run, mirrors the runtime's
    /// per-incarnation counter).
    plan_seq: u64,
    /// When the oldest unhealed membership change was detected — the
    /// start of the `dqa_rebalance_heal_seconds` observation.
    heal_start: Option<f64>,
    /// `RebalanceStall` windows from the schedule, sorted by start: the
    /// rebalancer may plan inside one but steps land after it closes.
    stall_windows: Vec<(f64, f64)>,
}

impl ElasticState {
    /// Push `t` past every stall window containing it. Windows are sorted
    /// by start, so one forward pass reaches the fixpoint.
    fn clear_of_stalls(&self, mut t: f64) -> f64 {
        for &(from, until) in &self.stall_windows {
            if t >= from && t < until {
                t = until;
            }
        }
        t
    }

    /// Whether `node` owns any sub-collection this question's PR phase
    /// touches (collections `0..subs`).
    fn owns_any(&self, node: NodeId, subs: u32) -> bool {
        self.ownership.owned_by(node).iter().any(|s| s.raw() < subs)
    }
}

/// Standby lease length in virtual seconds: how long after the last
/// heartbeat a standby waits before promoting itself (mirrors
/// `dqa_runtime::LeaderLease`).
const FAILOVER_LEASE_SECS: f64 = 0.5;

/// Virtual seconds a standby spends folding one journal record during
/// replay. Recovery latency is therefore `lease + records × this`, the
/// same linear shape the runtime recovery-soak measures.
const REPLAY_SECS_PER_RECORD: f64 = 2e-5;

/// The simulation controller.
pub struct QaSimulation {
    cfg: SimConfig,
    engine: Engine<Tag>,
    rng: SmallRng,
    states: Vec<QState>,
    arrivals: Vec<f64>,
    next_arrival: usize,
    resident: Vec<u32>,
    commit: Vec<ResourceVector>,
    migrations: MigrationCounts,
    dispatcher: QuestionDispatcher,
    functions: LoadFunctions,
    records: Vec<Option<QuestionRecord>>,
    completed: usize,
    in_flight: usize,
    dead: Vec<bool>,
    /// Per-node straggler speed factor (1.0 = full speed).
    slow: Vec<f64>,
    /// Unified fault timeline: legacy `node_failures` + `faults.events`,
    /// sorted by time.
    timeline: Vec<(f64, FaultAction)>,
    next_fault: usize,
    /// Per-message link-fault decider (stateless hash of the fault seed).
    link_judge: LinkJudge,
    /// Per-transfer sequence number feeding the link judge.
    net_seq: u64,
    /// Load-monitor packet-loss decider.
    monitor_judge: LossJudge,
    monitor_seq: u64,
    /// `observed[o][n]`: node `o`'s last successfully received load report
    /// from node `n` (only maintained when monitor loss is injected).
    observed: Vec<Vec<ResourceVector>>,
    trace: Vec<SimEvent>,
    /// Bounded virtual admission queue (question indices, offer order).
    /// Mirrors the runtime's [`AdmissionGate`] waiting room: at most
    /// `overload.admission_queue` questions park here; the head is
    /// re-examined whenever an in-flight slot frees.
    admission_wait: std::collections::VecDeque<usize>,
    /// Catalogue instruments bound against the run's registry.
    metrics: DqaMetrics,
    /// Whether the schedule contains coordinator faults: only then is the
    /// question journal modeled (record counting, replay latency, terms).
    journaled: bool,
    /// Coordinator term in force (fencing mirror; starts at 1).
    term: u64,
    /// Leader crashed and no standby has promoted yet: admissions halt.
    leader_down: bool,
    /// Virtual time of the in-force outage (crash or partition start).
    down_at: f64,
    /// When the standby's lease expires and journal replay completes —
    /// the promotion instant.
    pending_promote: Option<f64>,
    /// Partition zombie window: the deposed ex-leader is still serving
    /// and every journal append it attempts is fenced.
    zombie: bool,
    /// Journal records appended so far (drives replay latency).
    journal_records: u64,
    /// Elastic-membership tier, present only on elastic runs.
    elastic: Option<ElasticState>,
    /// The virtual clock feeding every [`PhaseTimer`]: advanced to the
    /// engine's time at each instrumented event.
    clock: ManualClock,
    /// Pre-bound Eq. 1–3 load gauges, one `[QA, PR, AP]` triple per node.
    node_load: Vec<[(ResourceWeights, Gauge); 3]>,
}

impl QaSimulation {
    /// Build the simulation (generates demands and the arrival schedule).
    pub fn new(cfg: SimConfig) -> QaSimulation {
        assert!(cfg.nodes > 0, "at least one node");
        assert!(!cfg.profiles.is_empty(), "at least one profile");
        let registry = cfg.metrics.clone().unwrap_or_else(MetricsRegistry::new);
        let metrics = DqaMetrics::new(&registry);
        let node_load: Vec<[(ResourceWeights, Gauge); 3]> = (0..cfg.nodes)
            .map(|n| {
                [
                    (ResourceWeights::QA, metrics.node_load(n as u32, "QA")),
                    (ResourceWeights::PR, metrics.node_load(n as u32, "PR")),
                    (ResourceWeights::AP, metrics.node_load(n as u32, "AP")),
                ]
            })
            .collect();
        let clock = ManualClock::new();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xd1b5_4a32_d192_ed03);

        let mut arrivals = Vec::with_capacity(cfg.questions);
        let mut t = 0.0;
        for i in 0..cfg.questions {
            if i > 0 && !cfg.serial {
                let (lo, hi) = cfg.arrival_spacing;
                t += if hi > lo { rng.gen_range(lo..hi) } else { lo };
            }
            arrivals.push(t);
        }

        let states = (0..cfg.questions)
            .map(|i| {
                let profile = &cfg.profiles[i % cfg.profiles.len()];
                let mut demand = QuestionDemand::sample(profile, cfg.seed, i as u64);
                // Complex-question selection (§6.2): skip small questions.
                let mut attempt = 1u64;
                while demand.ap_per_paragraph.len() < cfg.min_ap_paragraphs && attempt < 64 {
                    demand = QuestionDemand::sample(
                        profile,
                        cfg.seed,
                        i as u64 + attempt * cfg.questions as u64,
                    );
                    attempt += 1;
                }
                let work_scale =
                    (demand.total() / profile.sequential_total().max(1e-9)).clamp(0.2, 5.0);
                QState {
                    demand,
                    deadline: None,
                    outcome: QuestionOutcome::Answered,
                    work_scale,
                    arrival: arrivals[i],
                    home: NodeId::new((i % cfg.nodes) as u32),
                    phase: Phase::Pending,
                    phase_start: 0.0,
                    timer: PhaseTimer::start(&clock),
                    timings: ModuleTimings::default(),
                    overhead: OverheadBreakdown::default(),
                    pr_queue: ChunkQueue::new(Vec::new()),
                    pr_outstanding: 0,
                    pr_nodes_used: Vec::new(),
                    pr_remote_demand: 0.0,
                    pr_total_demand: 0.0,
                    ap_queue: None,
                    ap_outstanding: 0,
                    ap_nodes_used: Vec::new(),
                    ap_partitions: std::collections::BTreeMap::new(),
                }
            })
            .collect();

        let hysteresis = cfg.hysteresis;
        let mut engine = Engine::new(cfg.nodes, cfg.net_bandwidth);
        if let Some(speeds) = &cfg.node_speeds {
            assert_eq!(speeds.len(), cfg.nodes, "one speed per node");
            for (i, &sp) in speeds.iter().enumerate() {
                let n = NodeId::new(i as u32);
                engine.set_cpu_mult(n, sp.max(1e-3));
                engine.set_disk_mult(n, sp.max(1e-3));
            }
        }
        let journaled = cfg.faults.events.iter().any(|ev| {
            matches!(
                ev,
                FaultEvent::CoordinatorCrash { .. } | FaultEvent::LeaderPartition { .. }
            )
        });
        if journaled {
            metrics.leader_term.set(1.0);
        }
        let elastic_events = cfg.faults.events.iter().any(|ev| {
            matches!(
                ev,
                FaultEvent::NodeDecommission { .. }
                    | FaultEvent::NodeJoin { .. }
                    | FaultEvent::RebalanceStall { .. }
            )
        });
        let elastic = if elastic_events || cfg.elastic.is_some() {
            let ecfg = cfg.elastic.unwrap_or_default();
            // The sub-collection universe is whatever the sampled demands
            // can touch; ownership starts as the paper's static striping.
            let subs = states
                .iter()
                .map(|s: &QState| s.demand.pr_per_collection.len())
                .max()
                .unwrap_or(0) as u32;
            let all: Vec<NodeId> = (0..cfg.nodes).map(|n| NodeId::new(n as u32)).collect();
            let mut stall_windows: Vec<(f64, f64)> = cfg
                .faults
                .events
                .iter()
                .filter_map(|ev| match *ev {
                    FaultEvent::RebalanceStall { from, until } => Some((from, until)),
                    _ => None,
                })
                .collect();
            stall_windows
                .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            metrics.rebalance_converged.set(1.0);
            metrics.ownership_epoch.set(0.0);
            Some(ElasticState {
                cfg: ecfg,
                subs,
                ownership: OwnershipMap::balanced(subs, &all),
                draining: vec![false; cfg.nodes],
                pending_steps: std::collections::VecDeque::new(),
                plan_seq: 0,
                heal_start: None,
                stall_windows,
            })
        } else {
            None
        };
        QaSimulation {
            engine,
            rng,
            states,
            arrivals,
            next_arrival: 0,
            resident: vec![0; cfg.nodes],
            commit: vec![ResourceVector::default(); cfg.nodes],
            migrations: MigrationCounts::default(),
            dispatcher: QuestionDispatcher {
                functions: LoadFunctions::paper(),
                hysteresis,
            },
            functions: LoadFunctions::paper(),
            records: (0..cfg.questions).map(|_| None).collect(),
            completed: 0,
            in_flight: 0,
            dead: vec![false; cfg.nodes],
            slow: vec![1.0; cfg.nodes],
            timeline: {
                let mut t: Vec<(f64, FaultAction)> = cfg
                    .node_failures
                    .iter()
                    .map(|&(at, n)| (at, FaultAction::Die(NodeId::new(n))))
                    .collect();
                for ev in &cfg.faults.events {
                    match *ev {
                        FaultEvent::Crash { node, at, rejoin } => {
                            t.push((at, FaultAction::Die(node)));
                            if let Some(r) = rejoin {
                                t.push((r, FaultAction::Rejoin(node)));
                            }
                        }
                        FaultEvent::Straggler {
                            node,
                            from,
                            until,
                            factor,
                        } => {
                            t.push((from, FaultAction::Slow(node, factor)));
                            t.push((until, FaultAction::Unslow(node)));
                        }
                        FaultEvent::CoordinatorCrash { at, rejoin } => {
                            t.push((at, FaultAction::CoordinatorDown));
                            if let Some(r) = rejoin {
                                t.push((r, FaultAction::CoordinatorUp));
                            }
                        }
                        FaultEvent::LeaderPartition { from, until } => {
                            t.push((from, FaultAction::PartitionStart));
                            t.push((until, FaultAction::PartitionEnd));
                        }
                        FaultEvent::NodeDecommission { node, at } => {
                            t.push((at, FaultAction::Decommission(node)));
                        }
                        FaultEvent::NodeJoin { node, at } => {
                            t.push((at, FaultAction::Join(node)));
                        }
                        // Stall windows pace the migration scheduler, not
                        // the task engine: they were collected into
                        // `ElasticState::stall_windows` above.
                        FaultEvent::RebalanceStall { .. } => {}
                        // Federation faults address the broker tier above
                        // this per-shard simulation: the `federation`
                        // crate's virtual-time mirror consumes them, a
                        // single-coordinator run has no shard to lose.
                        FaultEvent::ShardDown { .. }
                        | FaultEvent::ShardPartition { .. }
                        | FaultEvent::BrokerCrash { .. } => {}
                        // Corruption events damage persisted byte stores;
                        // the integrity DES (crate::integrity) models the
                        // detect→quarantine→scrub→repair cycle in virtual
                        // time. The question-latency engine here treats
                        // storage as abstract demand, so there is nothing
                        // to flip.
                        FaultEvent::BitFlip { .. } | FaultEvent::TornWrite { .. } => {}
                    }
                }
                // Stable sort: same-time actions apply in config order,
                // which is itself deterministic.
                t.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                t
            },
            next_fault: 0,
            link_judge: cfg.faults.link_judge(),
            net_seq: 0,
            monitor_judge: cfg.faults.monitor_judge(),
            monitor_seq: 0,
            observed: if cfg.faults.monitor_loss > 0.0 {
                vec![vec![ResourceVector::default(); cfg.nodes]; cfg.nodes]
            } else {
                Vec::new()
            },
            trace: Vec::new(),
            admission_wait: std::collections::VecDeque::new(),
            journaled,
            term: 1,
            leader_down: false,
            down_at: 0.0,
            pending_promote: None,
            zombie: false,
            journal_records: 0,
            elastic,
            metrics,
            clock,
            node_load,
            cfg,
        }
    }

    /// Sum of all outstanding load commitments (diagnostics: must be zero
    /// when no question is in flight).
    pub fn residual_commit(&self) -> f64 {
        self.commit.iter().map(|v| v.cpu + v.disk).sum()
    }

    /// Test helper: run to completion in place and return the residual
    /// commitment sum (see [`residual_commit`](Self::residual_commit)).
    #[doc(hidden)]
    pub fn run_ref(&mut self) -> f64 {
        self.drive();
        self.residual_commit()
    }

    /// Run to completion and report.
    pub fn run(mut self) -> SimReport {
        self.drive();
        let makespan = self.engine.now();
        SimReport {
            questions: self
                .records
                .into_iter()
                .map(|r| r.expect("all questions completed"))
                .collect(),
            migrations: self.migrations,
            makespan,
            trace: self.trace,
            metrics: self.metrics.registry().snapshot(),
        }
    }

    /// The main event loop: arrivals, failures and task completions.
    fn drive(&mut self) {
        loop {
            let gate_open = self
                .cfg
                .max_in_flight
                .map(|cap| self.in_flight < cap)
                .unwrap_or(true);
            let next_arrival_t = if self.leader_down {
                // No coordinator: arrivals park at the (dead) front door
                // until a standby promotes. Nothing is lost — the journal
                // has every admitted question, and held arrivals resume
                // under the new term.
                None
            } else if self.cfg.serial {
                (self.next_arrival < self.states.len() && self.completed == self.next_arrival)
                    .then(|| self.engine.now())
            } else if !gate_open {
                None
            } else if self.cfg.max_in_flight.is_some() {
                // Closed loop: arrivals are immediate once the gate opens.
                (self.next_arrival < self.states.len()).then(|| self.engine.now())
            } else {
                self.arrivals.get(self.next_arrival).copied()
            };
            let next_failure_t = self.timeline.get(self.next_fault).map(|&(t, _)| t);
            let next_migration_t = self
                .elastic
                .as_ref()
                .and_then(|e| e.pending_steps.front().map(|&(t, _)| t));

            // Standby promotion due? (Fires before arrivals so held
            // questions are admitted under the new term, not the old.)
            if let Some(p) = self.pending_promote {
                if p <= self.engine.now() {
                    self.promote(self.engine.now());
                    continue;
                }
            }

            // Immediate arrival?
            if let Some(t) = next_arrival_t {
                if t <= self.engine.now()
                    && next_failure_t
                        .map(|ft| ft > self.engine.now())
                        .unwrap_or(true)
                {
                    self.submit(self.next_arrival);
                    self.next_arrival += 1;
                    continue;
                }
            }
            // Immediate fault action?
            if let Some(ft) = next_failure_t {
                if ft <= self.engine.now() {
                    let (_, action) = self.timeline[self.next_fault];
                    self.next_fault += 1;
                    match action {
                        FaultAction::Die(node) => {
                            self.fail_node(node);
                            self.elastic_on_loss(node, ft);
                        }
                        FaultAction::Rejoin(node) => {
                            self.revive_node(node);
                            self.elastic_on_rejoin(node, ft);
                        }
                        FaultAction::Slow(node, factor) => self.set_slow(node, factor),
                        FaultAction::Unslow(node) => self.set_slow(node, 1.0),
                        FaultAction::CoordinatorDown => self.coordinator_down(ft),
                        FaultAction::CoordinatorUp => {
                            // The ex-leader rejoins as a fenced standby;
                            // the workload itself is unaffected.
                        }
                        FaultAction::PartitionStart => self.partition_start(ft),
                        FaultAction::PartitionEnd => self.zombie = false,
                        FaultAction::Decommission(node) => self.decommission(node, ft),
                        FaultAction::Join(node) => self.node_join(node, ft),
                    }
                    continue;
                }
            }
            // Migration step due? (After fault actions: a same-instant
            // membership change reshapes the plan the step belongs to.)
            if let Some(mt) = next_migration_t {
                if mt <= self.engine.now() {
                    self.apply_next_migration(mt.max(self.engine.now()));
                    continue;
                }
            }

            let next_ext = [
                next_arrival_t,
                next_failure_t,
                next_migration_t,
                self.pending_promote,
            ]
            .into_iter()
            .flatten()
            .reduce(f64::min);

            match self.engine.advance(next_ext) {
                Advance::TaskDone { tag, at, .. } => self.handle(tag, at),
                Advance::ReachedTime(_) => {
                    // The immediate-arrival/failure branches above fire on
                    // the next iteration.
                }
                Advance::Idle => {
                    if self.next_arrival >= self.states.len() {
                        break;
                    }
                    self.submit(self.next_arrival);
                    self.next_arrival += 1;
                }
            }

            if self.completed == self.states.len() && self.next_arrival >= self.states.len() {
                break;
            }
        }
        // A promotion still pending when the workload drains must fire
        // anyway: the standby's lease expires on the virtual clock whether
        // or not new work arrives, and the failover/recovery metrics must
        // record the event.
        if let Some(p) = self.pending_promote {
            self.promote(p.max(self.engine.now()));
        }
        // Migration steps still pending when the workload drains apply on
        // the virtual clock anyway: healing is a property of the
        // membership protocol, not of question traffic.
        loop {
            let Some(t) = self
                .elastic
                .as_ref()
                .and_then(|e| e.pending_steps.front().map(|&(t, _)| t))
            else {
                break;
            };
            self.apply_next_migration(t.max(self.engine.now()));
        }
        // Anything still parked in the admission queue when the system
        // goes idle is waiting on a slot that will never free; reject it
        // deterministically so every offered question has a record.
        while let Some(q) = self.admission_wait.pop_front() {
            self.reject(q);
        }
    }

    /// The leader coordinator crashes. In-flight sub-tasks keep running —
    /// the standbys tail the journal over the link layer, so the work
    /// already granted is never lost — but no new question can be admitted
    /// until a standby's lease expires and it finishes replaying the
    /// journal (linear in the record count).
    fn coordinator_down(&mut self, at: f64) {
        if self.leader_down {
            return;
        }
        self.leader_down = true;
        self.down_at = at;
        self.pending_promote =
            Some(at + FAILOVER_LEASE_SECS + REPLAY_SECS_PER_RECORD * self.journal_records as f64);
    }

    /// The leader is partitioned from its standbys. Unlike a crash it
    /// keeps serving (arrivals flow), but once the lease lapses a standby
    /// promotes to the next term and the isolated ex-leader becomes a
    /// zombie whose journal appends are fenced.
    fn partition_start(&mut self, at: f64) {
        self.down_at = at;
        self.pending_promote =
            Some(at + FAILOVER_LEASE_SECS + REPLAY_SECS_PER_RECORD * self.journal_records as f64);
    }

    /// A standby's lease expired and its journal replay finished: it is
    /// now the leader for the next term.
    fn promote(&mut self, at: f64) {
        self.pending_promote = None;
        self.term += 1;
        if self.leader_down {
            self.leader_down = false;
        } else {
            // Partition promotion: the deposed ex-leader keeps serving
            // until the partition heals; every append it attempts in the
            // meantime is rejected by the term fence.
            self.zombie = true;
        }
        self.metrics.failovers.inc();
        self.metrics.leader_term.set(self.term as f64);
        self.metrics
            .recovery_seconds
            .observe((at - self.down_at).max(0.0));
        self.metrics.replayed_records.add(self.journal_records);
        self.metrics.resumed_questions.add(self.in_flight as u64);
    }

    /// Account `n` journal appends by the serving coordinator. Inert
    /// unless the schedule contains coordinator faults; a zombie
    /// ex-leader's appends land in `dqa_fenced_grants_total` instead of
    /// the journal.
    fn journal_mark(&mut self, n: u64) {
        if !self.journaled {
            return;
        }
        if self.zombie {
            self.metrics.fenced_grants.add(n);
            return;
        }
        self.journal_records += n;
        self.metrics.journal_records.add(n);
    }

    /// Inject a permanent node failure: kill its tasks, recover their work
    /// (Fig. 5c for sender partitions, Fig. 6b for chunks), re-home its
    /// resident questions.
    fn fail_node(&mut self, node: NodeId) {
        if self.dead[node.index()] {
            return;
        }
        self.dead[node.index()] = true;
        self.metrics.worker_failures.inc();
        assert!(
            self.dead.iter().any(|d| !d),
            "failure injection killed every node"
        );
        // Its committed load is gone with it.
        self.commit[node.index()] = ResourceVector::default();

        let killed = self.engine.kill_where(|tag| match *tag {
            Tag::Qp(q) => self.states[q].home == node,
            Tag::PrPart { node: n, .. }
            | Tag::ApPart { node: n, .. }
            | Tag::ApChunk { node: n, .. } => n == node,
            Tag::PoMerge(q) | Tag::ApSort(q) => self.states[q].home == node,
        });

        // Re-home questions resident on the dead node first, so recovery
        // paths that consult `home` see a live node.
        let resident: Vec<usize> = (0..self.states.len())
            .filter(|&q| {
                self.states[q].home == node
                    && !matches!(self.states[q].phase, Phase::Pending | Phase::Done)
            })
            .collect();
        for q in resident {
            let new_home = self.least_loaded_live();
            self.resident[node.index()] = self.resident[node.index()].saturating_sub(1);
            self.update_thrash(node);
            self.resident[new_home.index()] += 1;
            let c = Self::scaled(Self::question_commit(), self.states[q].work_scale);
            self.add_commit(new_home, c);
            self.update_thrash(new_home);
            self.states[q].home = new_home;
        }

        for tag in killed {
            match tag {
                Tag::Qp(q) => {
                    // Restart QP on the (re-homed) node.
                    let home = self.states[q].home;
                    let qp = self.states[q].demand.qp;
                    self.engine.spawn(vec![Stage::cpu(home, qp)], Tag::Qp(q));
                }
                Tag::PrPart { q, node: n, .. } => {
                    self.states[q].pr_outstanding -= 1;
                    self.states[q].pr_queue.fail(n);
                    self.redispatch_pr(q);
                }
                Tag::PoMerge(q) => {
                    let now = self.engine.now();
                    self.start_po(q, now);
                }
                Tag::ApPart { q, node: n, .. } => {
                    self.states[q].ap_outstanding -= 1;
                    let items = self.states[q].ap_partitions.remove(&n).unwrap_or_default();
                    if !items.is_empty() {
                        // Fig. 5c: build a new task from the unprocessed
                        // partition and reschedule it.
                        let target = self.least_loaded_live();
                        self.spawn_ap_partition(q, target, items);
                    } else if self.states[q].ap_outstanding == 0 {
                        let now = self.engine.now();
                        self.start_sort(q, now);
                    }
                }
                Tag::ApChunk { q, node: n, .. } => {
                    self.states[q].ap_outstanding -= 1;
                    if let Some(queue) = self.states[q].ap_queue.as_mut() {
                        queue.fail(n);
                    }
                    self.redispatch_ap_chunks(q);
                }
                Tag::ApSort(q) => {
                    let now = self.engine.now();
                    self.start_sort(q, now);
                }
            }
        }
    }

    /// A transiently crashed node rejoins with reset state: it becomes
    /// eligible for new placements again. Work it lost was already
    /// recovered at crash time; its pre-crash load commitments stay
    /// zeroed (the runtime's rejoin hygiene, mirrored in virtual time).
    fn revive_node(&mut self, node: NodeId) {
        if !self.dead[node.index()] {
            return;
        }
        self.dead[node.index()] = false;
        self.commit[node.index()] = ResourceVector::default();
        self.resident[node.index()] = 0;
        self.update_thrash(node);
    }

    /// Open or close a straggler window: the node's CPU and disk run at
    /// `factor` of their normal speed until further notice.
    fn set_slow(&mut self, node: NodeId, factor: f64) {
        self.slow[node.index()] = factor.clamp(1e-3, 1.0);
        self.update_thrash(node);
    }

    // ---- elastic membership (virtual-time mirror of `rebalance`) -----

    /// Whether `node` must not receive new placements: dead, or draining
    /// out of the pool under the elastic tier.
    fn is_retired(&self, node: usize) -> bool {
        self.dead[node] || self.elastic.as_ref().is_some_and(|e| e.draining[node])
    }

    /// Operator drain ([`FaultEvent::NodeDecommission`]): the node stops
    /// taking new placements immediately, its sub-collections evacuate
    /// one throttle quantum at a time, and it departs — through the same
    /// recovery paths a crash exercises, so nothing is lost — once the
    /// evacuation plan completes. Without the elastic tier (impossible
    /// via the fault schedule, reachable programmatically) a decommission
    /// degenerates to a permanent crash.
    fn decommission(&mut self, node: NodeId, at: f64) {
        let Some(mut es) = self.elastic.take() else {
            self.fail_node(node);
            return;
        };
        if self.dead[node.index()] || es.draining[node.index()] {
            self.elastic = Some(es);
            return;
        }
        let survivors: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&n| !self.dead[n] && !es.draining[n] && n != node.index())
            .map(|n| NodeId::new(n as u32))
            .collect();
        assert!(!survivors.is_empty(), "decommission would empty the pool");
        es.draining[node.index()] = true;
        es.plan_seq += 1;
        let plan = plan_evacuation(
            &es.ownership,
            node,
            &survivors,
            RebalanceReason::Drain,
            es.plan_seq,
            self.term,
        );
        self.admit_plan(&mut es, plan, at);
        let idle = es.pending_steps.is_empty();
        self.elastic = Some(es);
        if idle {
            // The node owned nothing: it departs without a plan.
            self.finish_rebalance(at);
        }
    }

    /// A standby or previously drained node joins
    /// ([`FaultEvent::NodeJoin`]): it becomes placeable again and
    /// receives its fair share of sub-collections, throttled behind
    /// foreground traffic.
    fn node_join(&mut self, node: NodeId, at: f64) {
        if self.dead[node.index()] {
            self.revive_node(node);
        }
        let Some(mut es) = self.elastic.take() else {
            return;
        };
        es.draining[node.index()] = false;
        // A join cancels any unapplied evacuation off this node.
        es.pending_steps.retain(|(_, s)| s.from != node);
        let live: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&n| !self.dead[n] && !es.draining[n])
            .map(|n| NodeId::new(n as u32))
            .collect();
        es.plan_seq += 1;
        let plan = plan_join(&es.ownership, node, &live, es.plan_seq, self.term);
        self.admit_plan(&mut es, plan, at);
        self.elastic = Some(es);
    }

    /// Permanent loss under the elastic tier: once the detector's lease
    /// floor elapses (the DES knows ground truth, so detection latency is
    /// the configured lease rather than phi accrual over heartbeats), the
    /// dead node's sub-collections evacuate onto the survivors.
    fn elastic_on_loss(&mut self, node: NodeId, at: f64) {
        let Some(mut es) = self.elastic.take() else {
            return;
        };
        // Unapplied steps touching the dead node are void: transfers off
        // it are now the evacuation's job, and transfers onto it would
        // orphan the sub-collection. Anything thereby left behind on a
        // draining donor is re-planned when the queue next drains.
        es.pending_steps
            .retain(|(_, s)| s.from != node && s.to != node);
        if es.ownership.owned_by(node).is_empty() {
            self.elastic = Some(es);
            return;
        }
        let detect = at + es.cfg.detector.lease_secs.max(0.0);
        let survivors: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&n| !self.dead[n] && !es.draining[n])
            .map(|n| NodeId::new(n as u32))
            .collect();
        es.plan_seq += 1;
        let plan = plan_evacuation(
            &es.ownership,
            node,
            &survivors,
            RebalanceReason::PermanentLoss,
            es.plan_seq,
            self.term,
        );
        self.admit_plan(&mut es, plan, detect);
        self.elastic = Some(es);
    }

    /// A transiently crashed node rejoined: under the elastic tier that
    /// is a join — it takes back a fair share (its sub-collections may
    /// have been evacuated while it was down).
    fn elastic_on_rejoin(&mut self, node: NodeId, at: f64) {
        if self.elastic.is_some() {
            self.node_join(node, at);
        }
    }

    /// Record a freshly minted plan and schedule its steps on the virtual
    /// clock: one step per throttle quantum, queued behind any steps
    /// already pending (the concurrency cap), pushed past stall windows.
    /// Empty plans vanish without a trace.
    fn admit_plan(&mut self, es: &mut ElasticState, plan: MigrationPlan, at: f64) {
        if plan.is_empty() {
            return;
        }
        self.metrics.rebalance_plans(&plan.reason.to_string()).inc();
        // The plan record lands in the journal before any step applies.
        self.journal_mark(1);
        self.metrics.rebalance_converged.set(0.0);
        es.heal_start.get_or_insert(at);
        let quantum = es.cfg.throttle.step_secs.max(1e-6);
        if !es.pending_steps.is_empty() {
            self.metrics.rebalance_throttled("saturated").inc();
        }
        let mut t = at.max(es.pending_steps.back().map_or(at, |&(t, _)| t));
        for step in plan.steps {
            t += quantum;
            let clear = es.clear_of_stalls(t);
            if clear > t {
                self.metrics.rebalance_throttled("stalled").inc();
                t = clear;
            }
            es.pending_steps.push_back((t, step));
        }
    }

    /// Apply the head migration step at its scheduled time, or defer it
    /// one quantum when the throttle says foreground questions need the
    /// headroom — migration never competes with question deadlines.
    fn apply_next_migration(&mut self, at: f64) {
        let Some(mut es) = self.elastic.take() else {
            return;
        };
        let Some((t, step)) = es.pending_steps.pop_front() else {
            self.elastic = Some(es);
            return;
        };
        let verdict =
            es.cfg
                .throttle
                .grant(self.in_flight, self.cfg.overload.max_in_flight, 0, false);
        if !verdict.is_go() {
            self.metrics.rebalance_throttled("yielding").inc();
            es.pending_steps
                .push_front((t + es.cfg.throttle.step_secs.max(1e-6), step));
            self.elastic = Some(es);
            return;
        }
        if es.ownership.apply_step(&step) {
            self.metrics.rebalance_migrated.inc();
            self.metrics
                .ownership_epoch
                .set(es.ownership.epoch() as f64);
            // The completed transfer is journaled (step-done record).
            self.journal_mark(1);
        }
        let drained = es.pending_steps.is_empty();
        self.elastic = Some(es);
        if drained {
            self.finish_rebalance(at);
        }
    }

    /// The step queue drained: re-plan anything a mid-plan membership
    /// change orphaned, let fully evacuated drained nodes depart, and
    /// close the heal window once the ownership invariant holds again.
    fn finish_rebalance(&mut self, at: f64) {
        let Some(mut es) = self.elastic.take() else {
            return;
        };
        // 1. A drain whose remaining steps were voided (its target died
        // mid-plan) re-plans against the current survivor set.
        let mut replanned = false;
        for n in 0..self.cfg.nodes {
            let node = NodeId::new(n as u32);
            if !es.draining[n] || self.dead[n] || es.ownership.owned_by(node).is_empty() {
                continue;
            }
            let survivors: Vec<NodeId> = (0..self.cfg.nodes)
                .filter(|&m| !self.dead[m] && !es.draining[m])
                .map(|m| NodeId::new(m as u32))
                .collect();
            if survivors.is_empty() {
                continue;
            }
            es.plan_seq += 1;
            let plan = plan_evacuation(
                &es.ownership,
                node,
                &survivors,
                RebalanceReason::Drain,
                es.plan_seq,
                self.term,
            );
            self.admit_plan(&mut es, plan, at);
            replanned = true;
        }
        if replanned {
            self.elastic = Some(es);
            return;
        }
        // 2. Fully evacuated drained nodes depart for real; their
        // still-running work recovers through the crash paths.
        let departures: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&n| {
                es.draining[n]
                    && !self.dead[n]
                    && es.ownership.owned_by(NodeId::new(n as u32)).is_empty()
            })
            .map(|n| NodeId::new(n as u32))
            .collect();
        self.elastic = Some(es);
        for node in departures {
            self.fail_node(node);
        }
        // 3. Convergence: every sub-collection owned by a live,
        // non-draining node again closes the heal window.
        let converged = {
            let es = self.elastic.as_ref().expect("restored above");
            let mut live = Vec::new();
            for n in 0..self.cfg.nodes {
                if !self.dead[n] && !es.draining[n] {
                    live.push(NodeId::new(n as u32));
                }
            }
            es.ownership.verify_complete(es.subs, &live).is_ok()
        };
        if converged {
            self.metrics.rebalance_converged.set(1.0);
            // Convergence is journaled: a successor replaying the log
            // knows the plan is retired, not resumable.
            self.journal_mark(1);
            if let Some(start) = self.elastic.as_mut().and_then(|e| e.heal_start.take()) {
                self.metrics.heal_seconds.observe((at - start).max(0.0));
            }
        } else {
            self.metrics.rebalance_converged.set(0.0);
        }
    }

    /// Skew trigger: when the whole-task Eq. 1 gauge spread across live
    /// nodes exceeds the configured threshold and no plan is in flight,
    /// move one sub-collection from the hottest node to the coolest.
    /// Evaluated at question completion — the same sampling point as the
    /// load gauges.
    fn maybe_rebalance_skew(&mut self, at: f64) {
        let (threshold, idle) = match &self.elastic {
            Some(es) => (es.cfg.skew_threshold, es.pending_steps.is_empty()),
            None => return,
        };
        let Some(threshold) = threshold else {
            return;
        };
        if !idle {
            return;
        }
        let f = self.functions;
        let loads: Vec<(NodeId, f64)> = self
            .loads()
            .into_iter()
            .map(|(n, v)| (n, f.load_for(QaModule::Qp, v)))
            .collect();
        let Some(mut es) = self.elastic.take() else {
            return;
        };
        if let Some(plan) = plan_skew(&es.ownership, &loads, threshold, es.plan_seq + 1, self.term)
        {
            es.plan_seq += 1;
            self.admit_plan(&mut es, plan, at);
        }
        self.elastic = Some(es);
    }

    /// Test/bench helper: `(ownership epoch, invariant holds)` when the
    /// elastic tier is active.
    #[doc(hidden)]
    pub fn elastic_snapshot(&self) -> Option<(u64, bool)> {
        self.elastic.as_ref().map(|es| {
            let live: Vec<NodeId> = (0..self.cfg.nodes)
                .filter(|&n| !self.dead[n] && !es.draining[n])
                .map(|n| NodeId::new(n as u32))
                .collect();
            (
                es.ownership.epoch(),
                es.ownership.verify_complete(es.subs, &live).is_ok(),
            )
        })
    }

    /// After a PR worker failure: hand recovered collection chunks to live
    /// workers that are currently idle for this question.
    fn redispatch_pr(&mut self, q: usize) {
        let live: Vec<NodeId> = self.states[q]
            .pr_nodes_used
            .iter()
            .copied()
            .filter(|n| !self.dead[n.index()])
            .collect();
        let workers = if live.is_empty() {
            vec![self.states[q].home]
        } else {
            live
        };
        for node in workers {
            if self.states[q].pr_queue.outstanding(node) == 0 {
                if let Some(chunk) = self.states[q].pr_queue.pull(node) {
                    self.spawn_pr_chunk(q, node, chunk);
                }
            }
        }
        if self.states[q].pr_outstanding == 0 && self.states[q].pr_queue.drained() {
            let now = self.engine.now();
            let dt = now - self.states[q].phase_start;
            self.states[q].timings.accumulate(QaModule::Pr, dt);
            self.start_po(q, now);
        }
    }

    /// After an AP worker failure in RECV mode: live workers pull the
    /// recovered chunks.
    fn redispatch_ap_chunks(&mut self, q: usize) {
        let live: Vec<NodeId> = self.states[q]
            .ap_nodes_used
            .iter()
            .copied()
            .filter(|n| !self.dead[n.index()])
            .collect();
        let workers = if live.is_empty() {
            vec![self.states[q].home]
        } else {
            live
        };
        for node in workers {
            let outstanding = self.states[q]
                .ap_queue
                .as_ref()
                .map(|x| x.outstanding(node))
                .unwrap_or(0);
            if outstanding == 0 {
                let chunk = self.states[q].ap_queue.as_mut().and_then(|x| x.pull(node));
                if let Some(chunk) = chunk {
                    let c = Self::scaled(Self::ap_commit(), self.states[q].work_scale);
                    self.add_commit(node, c);
                    self.spawn_ap_chunk(q, node, chunk);
                }
            }
        }
        let drained = self.states[q]
            .ap_queue
            .as_ref()
            .map(|x| x.drained())
            .unwrap_or(true);
        if self.states[q].ap_outstanding == 0 && drained {
            let now = self.engine.now();
            let dt = now - self.states[q].phase_start;
            self.states[q].timings.accumulate(QaModule::Ap, dt);
            self.start_sort(q, now);
        }
    }

    // ---- placement & load bookkeeping -------------------------------

    fn record(&mut self, question: usize, kind: SimEventKind) {
        if self.cfg.record_trace {
            let at = self.engine.now();
            self.trace.push(SimEvent { at, question, kind });
        }
    }

    fn loads(&self) -> Vec<(NodeId, ResourceVector)> {
        (0..self.cfg.nodes)
            .filter(|&n| !self.is_retired(n))
            .map(|n| (NodeId::new(n as u32), self.commit[n]))
            .collect()
    }

    /// Publish the admission-gate gauges (`dqa_in_flight`,
    /// `dqa_admission_waiting`) from the current counters.
    fn publish_gate(&self) {
        self.metrics.in_flight.set(self.in_flight as f64);
        self.metrics
            .admission_waiting
            .set(self.admission_wait.len() as f64);
    }

    /// Publish every node's Eq. 1–3 load values into the `dqa_node_load`
    /// gauges — the simulator's analogue of the runtime's broadcast-monitor
    /// sampling point, evaluated at each admission and completion.
    fn publish_node_loads(&self) {
        for (n, gauges) in self.node_load.iter().enumerate() {
            for (weights, gauge) in gauges {
                gauge.set(weights.load(self.commit[n]));
            }
        }
    }

    /// Record one finished question into the catalogue: response time via
    /// the virtual-clock [`PhaseTimer`], the per-module durations of every
    /// phase that actually ran, the five Table 9 overhead slices, and the
    /// outcome counter.
    fn observe_question(&self, q: usize, at: f64) {
        self.clock.set(at);
        let st = &self.states[q];
        st.timer.stop(&self.clock, &self.metrics.question_seconds);
        let t = st.timings;
        for (hist, dur) in [
            (&self.metrics.qp_seconds, t.qp),
            (&self.metrics.pr_seconds, t.pr + t.ps),
            (&self.metrics.po_seconds, t.po),
            (&self.metrics.ap_seconds, t.ap),
        ] {
            if dur > 0.0 {
                hist.observe(dur);
            }
        }
        let o = st.overhead;
        self.metrics.overhead_kw_send.observe(o.kw_send);
        self.metrics.overhead_par_recv.observe(o.par_recv);
        self.metrics.overhead_par_send.observe(o.par_send);
        self.metrics.overhead_ans_recv.observe(o.ans_recv);
        self.metrics.overhead_ans_sort.observe(o.ans_sort);
        match st.outcome {
            QuestionOutcome::Answered => self.metrics.answered.inc(),
            QuestionOutcome::Degraded => self.metrics.degraded.inc(),
            QuestionOutcome::Rejected => {}
        }
    }

    /// The cluster view as `observer` sees it. Without monitor-loss
    /// injection this is the true [`QaSimulation::loads`]; with it, each
    /// peer's row refreshes only when that broadcast packet survives, so
    /// dispatchers act on stale load values (liveness is unaffected — a
    /// dead node is dropped from every view, mirroring the runtime's
    /// heartbeat-staleness check, which monitor loss does not defeat).
    fn loads_seen_by(&mut self, observer: NodeId) -> Vec<(NodeId, ResourceVector)> {
        if self.cfg.faults.monitor_loss <= 0.0 {
            return self.loads();
        }
        let o = observer.index();
        for n in 0..self.cfg.nodes {
            let msg = self.monitor_seq;
            self.monitor_seq += 1;
            let flow = ((o as u64) << 32) | n as u64;
            if n == o || !self.monitor_judge.lost(flow, msg) {
                self.observed[o][n] = self.commit[n];
            }
        }
        (0..self.cfg.nodes)
            .filter(|&n| !self.is_retired(n))
            .map(|n| (NodeId::new(n as u32), self.observed[o][n]))
            .collect()
    }

    /// The least-loaded live node (whole-task load function).
    fn least_loaded_live(&self) -> NodeId {
        let f = self.functions;
        self.loads()
            .into_iter()
            .min_by(|a, b| {
                f.load_for(QaModule::Qp, a.1)
                    .partial_cmp(&f.load_for(QaModule::Qp, b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .map(|(n, _)| n)
            .expect("at least one live node")
    }

    fn add_commit(&mut self, node: NodeId, v: ResourceVector) {
        let c = &mut self.commit[node.index()];
        c.cpu += v.cpu;
        c.disk += v.disk;
    }

    fn remove_commit(&mut self, node: NodeId, v: ResourceVector) {
        let c = &mut self.commit[node.index()];
        c.cpu = (c.cpu - v.cpu).max(0.0);
        c.disk = (c.disk - v.disk).max(0.0);
        // Snap floating-point residue to zero: an ε-load would otherwise
        // make the meta-scheduler treat an idle node as the most loaded of
        // an all-idle set and exclude it from partitions.
        if c.cpu < 1e-9 {
            c.cpu = 0.0;
        }
        if c.disk < 1e-9 {
            c.disk = 0.0;
        }
    }

    /// A network stage routed per the configured network model: the home
    /// node's switched link, or the shared segment.
    fn net_stage(&self, home: NodeId, bytes: f64) -> Stage {
        if self.cfg.switched_network {
            Stage::net_link(home, bytes)
        } else {
            Stage::net(bytes)
        }
    }

    /// Network stage(s) for one message after link-fault injection. A lost
    /// message is charged the modeled retransmission timeout before the
    /// retry goes out; a delayed one is held back by the configured
    /// latency; a duplicated one doubles the bytes on the wire (chunk-id
    /// dedup at the receiver is free). Flow = destination link, msg = a
    /// global per-transfer sequence number — both deterministic, so any
    /// schedule replays bit-stably. With a clean link this is exactly
    /// [`QaSimulation::net_stage`].
    fn faulty_net_stages(&mut self, home: NodeId, bytes: f64) -> Vec<Stage> {
        if self.cfg.faults.link.is_clean() {
            return vec![self.net_stage(home, bytes)];
        }
        let msg = self.net_seq;
        self.net_seq += 1;
        match self.link_judge.decide(u64::from(home.raw()), msg) {
            LinkDecision::Deliver => vec![self.net_stage(home, bytes)],
            LinkDecision::Drop => vec![
                Stage::delay(self.link_judge.retransmit_secs()),
                self.net_stage(home, bytes),
            ],
            LinkDecision::Delay(d) => vec![Stage::delay(d), self.net_stage(home, bytes)],
            LinkDecision::Duplicate => vec![self.net_stage(home, 2.0 * bytes)],
        }
    }

    fn question_commit() -> ResourceVector {
        ResourceVector::new(ResourceWeights::QA.cpu, ResourceWeights::QA.disk)
    }

    fn pr_commit() -> ResourceVector {
        ResourceVector::new(ResourceWeights::PR.cpu, ResourceWeights::PR.disk)
    }

    fn ap_commit() -> ResourceVector {
        ResourceVector::new(ResourceWeights::AP.cpu, ResourceWeights::AP.disk)
    }

    fn node_speed(&self, node: NodeId) -> f64 {
        self.cfg
            .node_speeds
            .as_ref()
            .and_then(|v| v.get(node.index()).copied())
            .unwrap_or(1.0)
            .max(1e-3)
    }

    fn update_thrash(&mut self, node: NodeId) {
        let count = self.resident[node.index()];
        let excess = count.saturating_sub(self.cfg.overload_threshold) as f64;
        // Piecewise-linear slowdown: each excess resident question costs a
        // fixed fraction of the node's speed (page-stealing), floored at
        // 20 %. Linearity makes total cluster capacity invariant under
        // migrations *between* overloaded nodes, so balancing pays off
        // exactly when it moves work toward under-loaded nodes — the effect
        // the paper's experiments measure.
        // Straggler injection composes multiplicatively with thrashing.
        let speed = self.node_speed(node) * self.slow[node.index()];
        let cpu_mult = speed * (1.0 - self.cfg.thrash_slope * excess).max(0.2);
        let disk_mult = speed * (1.0 - 0.7 * self.cfg.thrash_slope * excess).max(0.2);
        self.engine.set_cpu_mult(node, cpu_mult);
        self.engine.set_disk_mult(node, disk_mult);
    }

    fn scaled(v: ResourceVector, s: f64) -> ResourceVector {
        ResourceVector::new(v.cpu * s, v.disk * s)
    }

    fn host_question(&mut self, q: usize, node: NodeId) {
        self.resident[node.index()] += 1;
        let c = Self::scaled(Self::question_commit(), self.states[q].work_scale);
        self.add_commit(node, c);
        self.update_thrash(node);
        self.states[q].home = node;
    }

    fn unhost_question(&mut self, q: usize) {
        let node = self.states[q].home;
        self.resident[node.index()] = self.resident[node.index()].saturating_sub(1);
        let c = Self::scaled(Self::question_commit(), self.states[q].work_scale);
        self.remove_commit(node, c);
        self.update_thrash(node);
    }

    // ---- phases ------------------------------------------------------

    /// Offer one question: the admission mirror point. The offer either
    /// passes straight into [`QaSimulation::admit`], parks in the bounded
    /// virtual admission queue, or is rejected outright — the same
    /// trichotomy as the runtime's [`AdmissionGate`].
    fn submit(&mut self, q: usize) {
        let now = self.engine.now();
        {
            let st = &mut self.states[q];
            st.arrival = now.max(st.arrival);
            if let Some(d) = self.cfg.overload.deadline_secs {
                st.deadline = Some(st.arrival + d.max(0.0));
            }
        }
        if let Some(cap) = self.cfg.overload.max_in_flight {
            if self.in_flight >= cap {
                // A zero cap can never free a slot, so queueing would
                // strand the question forever: reject immediately.
                if cap > 0 && self.admission_wait.len() < self.cfg.overload.admission_queue {
                    self.admission_wait.push_back(q);
                    self.publish_gate();
                } else {
                    self.reject(q);
                }
                return;
            }
        }
        self.admit(q);
    }

    /// Refuse one offered question: it gets a zero-timing record at the
    /// rejection instant so the outcome accounting stays conservative
    /// (offered == answered + degraded + rejected, no silent drops).
    fn reject(&mut self, q: usize) {
        let at = self.engine.now();
        self.record(q, SimEventKind::Rejected);
        self.metrics.rejected.inc();
        self.publish_gate();
        let st = &mut self.states[q];
        st.phase = Phase::Done;
        st.outcome = QuestionOutcome::Rejected;
        self.records[q] = Some(QuestionRecord {
            arrival: st.arrival,
            finished: at,
            timings: ModuleTimings::default(),
            overhead: OverheadBreakdown::default(),
            home: st.home,
            pr_nodes: 0,
            ap_nodes: 0,
            outcome: QuestionOutcome::Rejected,
        });
        self.completed += 1;
    }

    /// A completion freed an in-flight slot: re-examine the head of the
    /// admission queue. Waiters whose deadline lapsed while parked are
    /// rejected (the runtime's timed condition-variable wait, in virtual
    /// time); the rest are admitted in offer order.
    fn drain_admission(&mut self) {
        let Some(cap) = self.cfg.overload.max_in_flight else {
            return;
        };
        while self.in_flight < cap {
            let Some(q) = self.admission_wait.pop_front() else {
                return;
            };
            let now = self.engine.now();
            if self.states[q].deadline.is_some_and(|d| now >= d) {
                self.reject(q);
                continue;
            }
            self.admit(q);
        }
    }

    fn admit(&mut self, q: usize) {
        let now = self.engine.now();
        // Per-node admission cap, mirrored from the runtime: when every
        // live node already hosts `cap` questions the cluster is saturated
        // and the question bounces rather than queueing on a node.
        if let Some(cap) = self.cfg.overload.max_per_node {
            let saturated = (0..self.cfg.nodes)
                .filter(|&n| !self.is_retired(n))
                .all(|n| self.resident[n] as usize >= cap);
            if saturated {
                self.reject(q);
                return;
            }
        }
        let mut dns_home = self.states[q].home;
        // DNS pointing at a dead (or draining) node: walk the ring to the
        // next placeable one.
        let mut hops = 0;
        while self.is_retired(dns_home.index()) && hops < self.cfg.nodes {
            dns_home = NodeId::new(((dns_home.raw() as usize + 1) % self.cfg.nodes) as u32);
            hops += 1;
        }
        self.states[q].home = dns_home;

        // Scheduling point 1: arrival placement per strategy, driven by the
        // cluster view as the DNS target observes it.
        let view = self.loads_seen_by(dns_home);
        let decision = match self.cfg.strategy {
            BalancingStrategy::Dns => None,
            BalancingStrategy::Inter | BalancingStrategy::Dqa => {
                self.dispatcher.decide(QaModule::Qp, dns_home, &view)
            }
            BalancingStrategy::SenderDiffusion => {
                let f = self.functions;
                SenderDiffusion::default().decide(dns_home, &view, |v| f.load_for(QaModule::Qp, v))
            }
            BalancingStrategy::Gradient => {
                let f = self.functions;
                GradientModel::default().decide(dns_home, &view, |v| f.load_for(QaModule::Qp, v))
            }
        };
        let home = match decision {
            Some(target) => {
                self.migrations.qa += 1;
                self.metrics.migrations_qa.inc();
                target
            }
            None => dns_home,
        };

        self.host_question(q, home);
        self.record(
            q,
            SimEventKind::Submitted {
                dns: dns_home,
                home,
            },
        );
        self.in_flight += 1;
        // Admission + scheduling point 1 are journaled (two records).
        self.journal_mark(2);
        self.clock.set(now);
        self.states[q].timer = PhaseTimer::start(&self.clock);
        self.publish_gate();
        self.publish_node_loads();
        let st = &mut self.states[q];
        st.phase = Phase::Qp;
        st.phase_start = now;
        let qp = st.demand.qp;
        self.engine.spawn(vec![Stage::cpu(home, qp)], Tag::Qp(q));
    }

    fn handle(&mut self, tag: Tag, at: f64) {
        match tag {
            Tag::Qp(q) => {
                let dt = at - self.states[q].phase_start;
                self.states[q].timings.accumulate(QaModule::Qp, dt);
                self.start_pr(q, at);
            }
            Tag::PrPart {
                q,
                node,
                collection,
            } => {
                self.record(q, SimEventKind::PrChunkDone { node, collection });
                // Chunk grant + partial result land in the journal.
                self.journal_mark(2);
                let c = Self::scaled(Self::pr_commit(), self.states[q].work_scale);
                self.remove_commit(node, c);
                self.states[q].pr_queue.complete_one(node);
                self.states[q].pr_outstanding -= 1;
                // Receiver-controlled: pull the next collection.
                if let Some(chunk) = self.states[q].pr_queue.pull(node) {
                    self.spawn_pr_chunk(q, node, chunk);
                } else if self.states[q].pr_outstanding == 0 {
                    let dt = at - self.states[q].phase_start;
                    self.states[q].timings.accumulate(QaModule::Pr, dt);
                    self.start_po(q, at);
                }
            }
            Tag::PoMerge(q) => {
                let home = self.states[q].home;
                self.record(q, SimEventKind::PoMerged { node: home });
                let dt = at - self.states[q].phase_start;
                self.states[q].timings.accumulate(QaModule::Po, dt);
                self.start_ap(q, at);
            }
            Tag::ApPart {
                q,
                node,
                paragraphs,
            } => {
                self.record(q, SimEventKind::ApBatchDone { node, paragraphs });
                self.journal_mark(2);
                let c = Self::scaled(Self::ap_commit(), self.states[q].work_scale);
                self.remove_commit(node, c);
                self.states[q].ap_partitions.remove(&node);
                self.states[q].ap_outstanding -= 1;
                if self.states[q].ap_outstanding == 0 {
                    let dt = at - self.states[q].phase_start;
                    self.states[q].timings.accumulate(QaModule::Ap, dt);
                    self.start_sort(q, at);
                }
            }
            Tag::ApChunk {
                q,
                node,
                paragraphs,
            } => {
                self.record(q, SimEventKind::ApBatchDone { node, paragraphs });
                self.journal_mark(2);
                self.states[q].ap_outstanding -= 1;
                {
                    let queue = self.states[q].ap_queue.as_mut().expect("recv mode");
                    queue.complete_one(node);
                }
                let next = self.states[q]
                    .ap_queue
                    .as_mut()
                    .expect("recv mode")
                    .pull(node);
                match next {
                    Some(chunk) => self.spawn_ap_chunk(q, node, chunk),
                    None => {
                        let c = Self::scaled(Self::ap_commit(), self.states[q].work_scale);
                        self.remove_commit(node, c);
                        if self.states[q].ap_outstanding == 0 {
                            let dt = at - self.states[q].phase_start;
                            self.states[q].timings.accumulate(QaModule::Ap, dt);
                            self.start_sort(q, at);
                        }
                    }
                }
            }
            Tag::ApSort(q) => {
                self.finish(q, at);
            }
        }
    }

    fn module_allocation(&mut self, q: usize, module: QaModule) -> Vec<NodeId> {
        let home = self.states[q].home;
        if self.cfg.strategy != BalancingStrategy::Dqa {
            return vec![home];
        }
        // The dispatcher schedules the *remainder* of this question, so the
        // question's own commitment on its home node must not count against
        // that node (otherwise an otherwise-idle home would be excluded
        // from its own partitions).
        let own = Self::scaled(Self::question_commit(), self.states[q].work_scale);
        let mut loads = self.loads_seen_by(home);
        if let Some(entry) = loads.iter_mut().find(|(n, _)| *n == home) {
            entry.1.cpu = (entry.1.cpu - own.cpu).max(0.0);
            entry.1.disk = (entry.1.disk - own.disk).max(0.0);
        }
        let f = self.functions;
        // Per-node overload breaker (policy mirror): nodes past the
        // saturation threshold are excluded from this partition decision,
        // like the runtime's quarantine-tripped breaker. When everything is
        // saturated, fall back to the home node rather than stalling.
        if let Some(threshold) = self.cfg.overload.breaker_load {
            let before = loads.len();
            loads.retain(|(_, v)| f.load_for(module, *v) <= threshold);
            let tripped = before - loads.len();
            if tripped > 0 {
                self.metrics.breaker_trips.add(tripped as u64);
            }
            if loads.is_empty() {
                return vec![home];
            }
        }
        // Elastic routing: PR chunks go to sub-collection owners. The
        // ownership map is control-plane state — any node *can* serve any
        // chunk — so when no owner is in view the home node serves as the
        // degraded fallback rather than stalling the question.
        if module == QaModule::Pr {
            if let Some(es) = &self.elastic {
                let subs = self.states[q].demand.pr_per_collection.len() as u32;
                loads.retain(|(n, _)| es.owns_any(*n, subs));
                if loads.is_empty() {
                    return vec![home];
                }
            }
        }
        let alloc = meta_schedule(
            &loads,
            |v| f.load_for(module, v),
            |v| f.is_underloaded(module, v),
        )
        .expect("nodes exist");
        let nodes: Vec<NodeId> = alloc.iter().map(|a| a.node).collect();
        let disagrees = nodes.len() != 1 || nodes[0] != home;
        if disagrees {
            match module {
                QaModule::Pr => {
                    self.migrations.pr += 1;
                    self.metrics.migrations_pr.inc();
                }
                QaModule::Ap => {
                    self.migrations.ap += 1;
                    self.metrics.migrations_ap.inc();
                }
                _ => {}
            }
        }
        nodes
    }

    /// Whether the remaining deadline budget can no longer cover the
    /// estimated demand of `module`. The simulator's estimate is the
    /// question's own sampled demand spread over the live pool — the
    /// oracle analogue of the runtime's EWMA estimator. PR carries its
    /// fused PS share, matching the runtime's observation model.
    fn should_shed(&self, q: usize, module: QaModule, now: f64) -> bool {
        let Some(deadline) = self.states[q].deadline else {
            return false;
        };
        let live = self.dead.iter().filter(|&&dead| !dead).count().max(1) as f64;
        let demand = match module {
            QaModule::Pr => self.states[q].demand.pr_total() + self.states[q].demand.ps_total(),
            QaModule::Ap => self.states[q].demand.ap_total(),
            _ => return false,
        };
        let estimate = demand / live;
        (deadline - now) < estimate * self.cfg.overload.shed_headroom.max(0.0)
    }

    /// Shed `module`: skip it (and everything after it except the final
    /// sort) and complete degraded — the virtual-time mirror of the
    /// runtime's coverage-annotated short-circuit.
    fn shed(&mut self, q: usize, module: QaModule, now: f64) {
        self.record(q, SimEventKind::Shed { module });
        match module {
            QaModule::Ap => self.metrics.shed_ap.inc(),
            _ => self.metrics.shed_pr.inc(),
        }
        self.states[q].outcome = QuestionOutcome::Degraded;
        self.start_sort(q, now);
    }

    fn start_pr(&mut self, q: usize, now: f64) {
        // Shedding decision point 1: a question whose budget cannot cover
        // PR returns an empty degraded answer before occupying workers.
        if self.should_shed(q, QaModule::Pr, now) {
            self.shed(q, QaModule::Pr, now);
            return;
        }
        // Scheduling point 2: the PR dispatcher (journaled).
        let nodes = self.module_allocation(q, QaModule::Pr);
        self.journal_mark(1);
        let st = &mut self.states[q];
        st.phase = Phase::Pr;
        st.phase_start = now;
        st.pr_total_demand = st.demand.pr_total().max(1e-12);
        st.pr_nodes_used = nodes.clone();

        let mut order: Vec<usize> = (0..st.demand.pr_per_collection.len()).collect();
        if self.cfg.pr_cost_aware {
            // LPT: sort sub-collections by decreasing *estimated* demand.
            // The estimator's error is modeled as multiplicative noise
            // (deterministic per question/collection).
            let cv = self.cfg.pr_estimate_cv;
            let seed = self.cfg.seed;
            let estimates: Vec<f64> = st
                .demand
                .pr_per_collection
                .iter()
                .enumerate()
                .map(|(c, &d)| {
                    let mut rng =
                        rand::rngs::SmallRng::seed_from_u64(seed ^ (q as u64) << 8 ^ c as u64);
                    let noise: f64 = 1.0 + cv * (rng.gen::<f64>() - 0.5) * 2.0;
                    d * noise.max(0.1)
                })
                .collect();
            order.sort_by(|&a, &b| {
                estimates[b]
                    .partial_cmp(&estimates[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let collections: Vec<Vec<usize>> = order.into_iter().map(|c| vec![c]).collect();
        st.pr_queue = ChunkQueue::new(collections);

        // Keyword propagation overhead (analytic; negligible bytes).
        let remote = nodes.iter().filter(|n| **n != st.home).count();
        st.overhead.kw_send += remote as f64 * 64.0 / self.cfg.net_bandwidth;

        // Each selected node pulls its first collection.
        let mut started = 0;
        for node in nodes {
            let chunk = self.states[q].pr_queue.pull(node);
            match chunk {
                Some(c) => {
                    self.spawn_pr_chunk(q, node, c);
                    started += 1;
                }
                None => break,
            }
        }
        debug_assert!(started > 0, "at least one PR sub-task");
    }

    fn spawn_pr_chunk(&mut self, q: usize, node: NodeId, chunk: Vec<usize>) {
        let home = self.states[q].home;
        let w = ResourceWeights::PR;
        let collection = chunk.first().copied().unwrap_or(0) as u32;
        let mut disk = 0.0;
        let mut cpu = 0.0;
        for c in chunk {
            let d = self.states[q].demand.pr_per_collection[c];
            disk += w.disk * d;
            cpu += w.cpu * d + self.states[q].demand.ps_per_collection[c];
            if node != home {
                self.states[q].pr_remote_demand += d;
            }
        }
        let c = Self::scaled(Self::pr_commit(), self.states[q].work_scale);
        self.add_commit(node, c);
        self.states[q].pr_outstanding += 1;
        self.engine.spawn(
            vec![Stage::disk(node, disk), Stage::cpu(node, cpu)],
            Tag::PrPart {
                q,
                node,
                collection,
            },
        );
    }

    fn start_po(&mut self, q: usize, now: f64) {
        let st = &mut self.states[q];
        st.phase = Phase::Po;
        st.phase_start = now;
        let home = st.home;
        // Paragraphs produced remotely come back over the network.
        let remote_share = st.pr_remote_demand / st.pr_total_demand;
        let profile_paragraphs = st.demand.ap_per_paragraph.len() as f64 * 1.7; // retrieved > accepted
        let bytes = remote_share * profile_paragraphs * self.cfg.paragraph_bytes;
        st.overhead.par_recv += bytes / self.cfg.net_bandwidth;
        let merge_cpu = st.demand.po
            + self.cfg.per_partition_cpu_secs * st.pr_nodes_used.len().saturating_sub(1) as f64;
        let mut stages = self.faulty_net_stages(home, bytes);
        stages.push(Stage::cpu(home, merge_cpu));
        self.engine.spawn(stages, Tag::PoMerge(q));
    }

    fn start_ap(&mut self, q: usize, now: f64) {
        // Shedding decision point 2: AP is the most expensive phase
        // (Table 2); a question that cannot fit it keeps its PR/PO work
        // and completes degraded instead of dispatching doomed batches.
        if self.should_shed(q, QaModule::Ap, now) {
            self.shed(q, QaModule::Ap, now);
            return;
        }
        // Scheduling point 3: the AP dispatcher (journaled).
        let nodes = self.module_allocation(q, QaModule::Ap);
        self.journal_mark(1);
        let st = &mut self.states[q];
        st.phase = Phase::Ap;
        st.phase_start = now;
        st.ap_nodes_used = nodes.clone();

        let n_par = st.demand.ap_per_paragraph.len();
        let items: Vec<usize> = (0..n_par).collect();

        match self.cfg.ap_partition {
            PartitionStrategy::Recv { chunk_size } => {
                let chunks = partition_recv(items, chunk_size);
                self.states[q].ap_queue = Some(ChunkQueue::new(chunks));
                for node in nodes {
                    let c = Self::scaled(Self::ap_commit(), self.states[q].work_scale);
                    self.add_commit(node, c);
                    let chunk = self.states[q]
                        .ap_queue
                        .as_mut()
                        .expect("just set")
                        .pull(node);
                    match chunk {
                        Some(c) => self.spawn_ap_chunk(q, node, c),
                        None => {
                            let c = Self::scaled(Self::ap_commit(), self.states[q].work_scale);
                            self.remove_commit(node, c);
                        }
                    }
                }
                if self.states[q].ap_outstanding == 0 {
                    // No paragraphs at all: straight to sorting.
                    self.states[q].timings.accumulate(QaModule::Ap, 0.0);
                    self.start_sort(q, now);
                }
            }
            strategy => {
                let weights = vec![1.0 / nodes.len() as f64; nodes.len()];
                let parts = match strategy {
                    PartitionStrategy::Send => partition_send(items, &weights),
                    PartitionStrategy::Isend => partition_isend(items, &weights),
                    PartitionStrategy::Recv { .. } => unreachable!("handled above"),
                };
                let mut any = false;
                for (node, part) in nodes.iter().copied().zip(parts) {
                    if part.is_empty() {
                        continue;
                    }
                    any = true;
                    self.spawn_ap_partition(q, node, part);
                }
                if !any {
                    self.states[q].timings.accumulate(QaModule::Ap, 0.0);
                    self.start_sort(q, now);
                }
            }
        }
    }

    fn ap_stage_list(
        &mut self,
        q: usize,
        node: NodeId,
        items: &[usize],
        per_task_cpu: f64,
        per_task_net: f64,
    ) -> Vec<Stage> {
        let home = self.states[q].home;
        let demand: f64 = items
            .iter()
            .map(|&i| self.states[q].demand.ap_per_paragraph[i])
            .sum();
        let mut stages = Vec::with_capacity(3);
        if node != home {
            let bytes = items.len() as f64 * self.cfg.paragraph_bytes + per_task_net;
            self.states[q].overhead.par_send += bytes / self.cfg.net_bandwidth;
            stages.extend(self.faulty_net_stages(home, bytes));
        }
        stages.push(Stage::cpu(node, demand + per_task_cpu));
        if node != home {
            self.states[q].overhead.ans_recv += self.cfg.answer_bytes / self.cfg.net_bandwidth;
            stages.extend(self.faulty_net_stages(home, self.cfg.answer_bytes));
        }
        stages
    }

    fn spawn_ap_partition(&mut self, q: usize, node: NodeId, items: Vec<usize>) {
        let stages = self.ap_stage_list(q, node, &items, self.cfg.per_partition_cpu_secs, 0.0);
        let c = Self::scaled(Self::ap_commit(), self.states[q].work_scale);
        self.add_commit(node, c);
        self.states[q].ap_outstanding += 1;
        let paragraphs = items.len() as u32;
        self.states[q].ap_partitions.insert(node, items);
        self.engine.spawn(
            stages,
            Tag::ApPart {
                q,
                node,
                paragraphs,
            },
        );
    }

    fn spawn_ap_chunk(&mut self, q: usize, node: NodeId, items: Vec<usize>) {
        let stages = self.ap_stage_list(
            q,
            node,
            &items,
            self.cfg.per_chunk_cpu_secs,
            self.cfg.per_chunk_net_bytes,
        );
        self.states[q].ap_outstanding += 1;
        let paragraphs = items.len() as u32;
        self.engine.spawn(
            stages,
            Tag::ApChunk {
                q,
                node,
                paragraphs,
            },
        );
    }

    fn start_sort(&mut self, q: usize, now: f64) {
        let st = &mut self.states[q];
        st.phase = Phase::Sort;
        st.phase_start = now;
        let home = st.home;
        let sort_cpu = 0.002 * st.ap_nodes_used.len() as f64;
        st.overhead.ans_sort += sort_cpu;
        self.engine
            .spawn(vec![Stage::cpu(home, sort_cpu)], Tag::ApSort(q));
    }

    fn finish(&mut self, q: usize, at: f64) {
        let home = self.states[q].home;
        self.record(q, SimEventKind::Completed { node: home });
        self.unhost_question(q);
        let st = &mut self.states[q];
        st.phase = Phase::Done;
        let record = QuestionRecord {
            arrival: st.arrival,
            finished: at,
            timings: st.timings,
            overhead: st.overhead,
            home: st.home,
            pr_nodes: st.pr_nodes_used.len(),
            ap_nodes: st.ap_nodes_used.len(),
            outcome: st.outcome,
        };
        self.records[q] = Some(record);
        // The final answer record closes the question's journal entry.
        self.journal_mark(1);
        self.completed += 1;
        self.in_flight -= 1;
        self.observe_question(q, at);
        self.publish_node_loads();
        self.maybe_rebalance_skew(at);
        // The freed slot may admit (or deadline-reject) queued arrivals.
        self.drain_admission();
        self.publish_gate();
        // Silence unused-field warnings for rng in builds without jitter.
        let _ = &self.rng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::Trec9Profile;

    fn low_load(nodes: usize, strategy: PartitionStrategy, questions: usize) -> SimReport {
        QaSimulation::new(SimConfig::paper_low_load(nodes, strategy, questions, 42)).run()
    }

    #[test]
    fn single_node_serial_matches_profile_total() {
        let r = low_load(1, PartitionStrategy::Recv { chunk_size: 40 }, 5);
        assert_eq!(r.questions.len(), 5);
        let t = r.mean_timings();
        let profile = Trec9Profile::complex();
        // Mean response should be within the lognormal-variance band of the
        // 158 s profile total.
        let ratio = t.total() / profile.sequential_total();
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        // No partitioning on a single node → no remote overhead.
        let o = r.mean_overhead();
        assert!(o.par_send < 1e-9 && o.par_recv < 1e-9, "{o:?}");
    }

    #[test]
    fn partitioning_speeds_up_individual_questions() {
        let q = 6;
        let r1 = low_load(1, PartitionStrategy::Recv { chunk_size: 40 }, q);
        let r4 = low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, q);
        let r8 = low_load(8, PartitionStrategy::Recv { chunk_size: 40 }, q);
        let t1 = r1.mean_response_time();
        let t4 = r4.mean_response_time();
        let t8 = r8.mean_response_time();
        let s4 = t1 / t4;
        let s8 = t1 / t8;
        // Paper Table 10: measured speedups 3.67 (4p) and 5.85 (8p).
        assert!((2.5..=4.0).contains(&s4), "4-node speedup {s4}");
        assert!((4.0..=7.5).contains(&s8), "8-node speedup {s8}");
        assert!(s8 > s4);
    }

    #[test]
    fn pr_limited_by_eight_subcollections() {
        // Table 8: PR time on 12 nodes equals PR time on 8 nodes because
        // there are only 8 sub-collections.
        let r8 = low_load(8, PartitionStrategy::Recv { chunk_size: 40 }, 8);
        let r12 = low_load(12, PartitionStrategy::Recv { chunk_size: 40 }, 8);
        let pr8 = r8.mean_timings().pr;
        let pr12 = r12.mean_timings().pr;
        let ratio = pr12 / pr8;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "PR 8n {pr8:.2} vs 12n {pr12:.2}"
        );
    }

    #[test]
    fn high_load_strategies_rank_dns_inter_dqa() {
        // Average over seeds: a single run is arrival-jitter noisy, exactly
        // like a single benchmark run on real hardware.
        let nodes = 4;
        let mean = |strategy| -> (f64, f64) {
            let mut tp = 0.0;
            let mut rt = 0.0;
            for seed in [7, 8, 9] {
                let r = QaSimulation::new(SimConfig::paper_high_load(nodes, strategy, seed)).run();
                tp += r.throughput_per_minute();
                rt += r.mean_response_time();
            }
            (tp / 3.0, rt / 3.0)
        };
        let (t_dns, l_dns) = mean(BalancingStrategy::Dns);
        let (t_inter, _) = mean(BalancingStrategy::Inter);
        let (t_dqa, l_dqa) = mean(BalancingStrategy::Dqa);
        assert!(
            t_inter > t_dns,
            "INTER {t_inter:.2} q/min should beat DNS {t_dns:.2}"
        );
        assert!(
            t_dqa > t_inter,
            "DQA {t_dqa:.2} q/min should beat INTER {t_inter:.2}"
        );
        // Latency ranks the same way (Table 6).
        assert!(l_dqa < l_dns, "DQA {l_dqa:.1}s vs DNS {l_dns:.1}s");
    }

    #[test]
    fn migrations_counted_only_for_active_dispatchers() {
        let nodes = 4;
        let dns =
            QaSimulation::new(SimConfig::paper_high_load(nodes, BalancingStrategy::Dns, 3)).run();
        assert_eq!(dns.migrations, MigrationCounts::default());
        let inter = QaSimulation::new(SimConfig::paper_high_load(
            nodes,
            BalancingStrategy::Inter,
            3,
        ))
        .run();
        assert!(inter.migrations.qa > 0, "question dispatcher should fire");
        assert_eq!(inter.migrations.pr, 0);
        let dqa =
            QaSimulation::new(SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, 3)).run();
        assert!(dqa.migrations.pr + dqa.migrations.ap > 0);
    }

    #[test]
    fn all_questions_complete_and_are_ordered() {
        let r = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 9)).run();
        assert_eq!(r.questions.len(), 32);
        for q in &r.questions {
            assert!(q.finished >= q.arrival);
            assert!(q.response_time() > 0.0);
            assert!(q.timings.total() > 0.0);
        }
        assert!(r.makespan >= r.questions.iter().map(|q| q.finished).fold(0.0, f64::max) - 1e-9);
    }

    #[test]
    fn commitments_drain_after_serial_run() {
        let cfg = SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 4, 2001);
        let mut sim = QaSimulation::new(cfg);
        // Drive manually: run to completion, then inspect commitments.
        // (run() consumes self, so replicate its loop via run+rebuild.)
        let report = {
            let residual = {
                // run a clone-by-rebuild to completion

                QaSimulation::new(SimConfig::paper_low_load(
                    4,
                    PartitionStrategy::Recv { chunk_size: 40 },
                    4,
                    2001,
                ))
                .run()
            };
            let _ = &mut sim;
            residual
        };
        assert_eq!(report.questions.len(), 4);
        // Direct white-box check: drive `sim` the same way via run_ref.
        let residual = sim.run_ref();
        assert!(residual < 1e-9, "leaked commitments: {residual}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        let b = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_records_the_question_lifecycle_in_virtual_time() {
        let cfg = SimConfig {
            record_trace: true,
            ..SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 2, 226)
        };
        let r = QaSimulation::new(cfg).run();
        assert!(!r.trace.is_empty());
        // Monotone virtual time.
        for w in r.trace.windows(2) {
            assert!(w[0].at <= w[1].at + 1e-9);
        }
        // Each question: submitted once, 8 PR chunks, one PO merge, ≥1 AP
        // batch, completed once.
        for q in 0..2 {
            let ev: Vec<_> = r.trace.iter().filter(|e| e.question == q).collect();
            let count =
                |pred: &dyn Fn(&SimEventKind) -> bool| ev.iter().filter(|e| pred(&e.kind)).count();
            assert_eq!(count(&|k| matches!(k, SimEventKind::Submitted { .. })), 1);
            assert_eq!(count(&|k| matches!(k, SimEventKind::PrChunkDone { .. })), 8);
            assert_eq!(count(&|k| matches!(k, SimEventKind::PoMerged { .. })), 1);
            assert!(count(&|k| matches!(k, SimEventKind::ApBatchDone { .. })) >= 1);
            assert_eq!(count(&|k| matches!(k, SimEventKind::Completed { .. })), 1);
        }
        // Every sub-collection appears exactly once per question.
        let mut colls: Vec<u32> = r
            .trace
            .iter()
            .filter(|e| e.question == 0)
            .filter_map(|e| match e.kind {
                SimEventKind::PrChunkDone { collection, .. } => Some(collection),
                _ => None,
            })
            .collect();
        colls.sort_unstable();
        assert_eq!(colls, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let r = QaSimulation::new(SimConfig::paper_low_load(
            2,
            PartitionStrategy::Recv { chunk_size: 40 },
            1,
            1,
        ))
        .run();
        assert!(r.trace.is_empty());
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let r = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        let p50 = r.response_time_percentile(0.5);
        let p95 = r.response_time_percentile(0.95);
        let p100 = r.response_time_percentile(1.0);
        assert!(p50 <= p95 && p95 <= p100);
        assert!(p50 > 0.0);
        let max = r
            .questions
            .iter()
            .map(QuestionRecord::response_time)
            .fold(f64::MIN, f64::max);
        assert!((p100 - max).abs() < 1e-9);
        assert!(
            r.response_time_percentile(0.0) > 0.0,
            "p0 = min, nearest rank"
        );
    }

    #[test]
    fn heterogeneous_cluster_dqa_exploits_fast_nodes() {
        // Nodes 0-1 run at half speed. DQA's dispatchers must route enough
        // work to the fast nodes to beat DNS by more than it does on the
        // homogeneous cluster.
        let speeds = Some(vec![0.5, 0.5, 1.0, 1.0]);
        let run = |strategy, speeds: Option<Vec<f64>>| {
            let mut tp = 0.0;
            for seed in [61u64, 62, 63] {
                let cfg = SimConfig {
                    node_speeds: speeds.clone(),
                    ..SimConfig::paper_high_load(4, strategy, seed)
                };
                tp += QaSimulation::new(cfg).run().throughput_per_minute();
            }
            tp / 3.0
        };
        let dns = run(BalancingStrategy::Dns, speeds.clone());
        let dqa = run(BalancingStrategy::Dqa, speeds);
        assert!(
            dqa > dns,
            "DQA {dqa:.2} vs DNS {dns:.2} on heterogeneous cluster"
        );
        let dns_h = run(BalancingStrategy::Dns, None);
        let dqa_h = run(BalancingStrategy::Dqa, None);
        let gain_hetero = dqa / dns;
        let gain_homo = dqa_h / dns_h;
        assert!(
            gain_hetero > gain_homo * 0.95,
            "heterogeneity should not shrink DQA's edge: {gain_hetero:.2} vs {gain_homo:.2}"
        );
    }

    #[test]
    fn node_failure_mid_run_recovers_all_questions() {
        let mut cfg =
            SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 6, 77);
        // Kill node 2 early: several questions lose PR/AP sub-tasks.
        cfg.node_failures = vec![(30.0, 2)];
        let r = QaSimulation::new(cfg).run();
        assert_eq!(r.questions.len(), 6, "every question completes");
        for q in &r.questions {
            assert!(q.finished > q.arrival);
            assert_ne!(q.home, NodeId::new(2), "no question ends on the dead node");
        }
    }

    #[test]
    fn failure_slows_but_does_not_stop_high_load_run() {
        let mut cfg = SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 7);
        cfg.node_failures = vec![(60.0, 1)];
        let with_failure = QaSimulation::new(cfg).run();
        let healthy =
            QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 7)).run();
        assert_eq!(with_failure.questions.len(), healthy.questions.len());
        assert!(
            with_failure.makespan > healthy.makespan,
            "losing a quarter of the cluster must cost time: {:.0} vs {:.0}",
            with_failure.makespan,
            healthy.makespan
        );
    }

    #[test]
    fn sender_partition_failure_recovers_via_fig5c() {
        let mut cfg = SimConfig::paper_low_load(4, PartitionStrategy::Isend, 4, 78);
        cfg.node_failures = vec![(50.0, 3)];
        let r = QaSimulation::new(cfg).run();
        assert_eq!(r.questions.len(), 4);
    }

    #[test]
    fn dns_skips_dead_nodes_for_new_arrivals() {
        let mut cfg = SimConfig::paper_high_load(3, BalancingStrategy::Dns, 9);
        cfg.node_failures = vec![(0.5, 0)];
        let r = QaSimulation::new(cfg).run();
        assert_eq!(r.questions.len(), 24);
        for q in r.questions.iter().skip(3) {
            assert_ne!(q.home, NodeId::new(0));
        }
    }

    #[test]
    fn crashed_node_rejoins_and_serves_new_arrivals() {
        // Node 1 dies at t=20 and rejoins at t=200: questions arriving
        // while it is down must avoid it, questions arriving after the
        // rejoin may use it again, and nothing is lost either way.
        let mut cfg =
            SimConfig::paper_low_load(3, PartitionStrategy::Recv { chunk_size: 40 }, 8, 91);
        cfg.faults = FaultSchedule::seeded(91).crash_rejoin(NodeId::new(1), 20.0, 200.0);
        let r = QaSimulation::new(cfg).run();
        assert_eq!(r.questions.len(), 8, "every question completes");
        let during: Vec<_> = r
            .questions
            .iter()
            .filter(|q| q.arrival > 20.0 && q.finished < 200.0)
            .collect();
        for q in &during {
            assert_ne!(q.home, NodeId::new(1), "down node must not host");
        }
        let after: Vec<_> = r.questions.iter().filter(|q| q.arrival >= 200.0).collect();
        assert!(
            during.is_empty() || !after.is_empty(),
            "serial run long enough to straddle the rejoin"
        );
    }

    #[test]
    fn straggler_window_slows_the_run_then_releases() {
        let clean = QaSimulation::new(SimConfig::paper_low_load(
            2,
            PartitionStrategy::Recv { chunk_size: 40 },
            4,
            92,
        ))
        .run();
        let mut cfg =
            SimConfig::paper_low_load(2, PartitionStrategy::Recv { chunk_size: 40 }, 4, 92);
        cfg.faults = FaultSchedule::seeded(92).straggler(NodeId::new(0), 0.0, 1e6, 0.25);
        let slowed = QaSimulation::new(cfg).run();
        assert_eq!(slowed.questions.len(), 4);
        assert!(
            slowed.makespan > clean.makespan,
            "a 4x straggler must cost time: {:.1} vs {:.1}",
            slowed.makespan,
            clean.makespan
        );
    }

    #[test]
    fn link_faults_slow_but_never_lose_questions() {
        let clean = QaSimulation::new(SimConfig::paper_low_load(
            4,
            PartitionStrategy::Recv { chunk_size: 40 },
            4,
            93,
        ))
        .run();
        let mut cfg =
            SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 4, 93);
        cfg.faults = FaultSchedule::seeded(93)
            .message_loss(0.2)
            .message_delay(0.2, 0.5)
            .message_dup(0.1);
        cfg.faults.link.retransmit_secs = 1.0;
        let faulty = QaSimulation::new(cfg).run();
        assert_eq!(faulty.questions.len(), 4, "no question lost to the link");
        assert!(
            faulty.makespan >= clean.makespan,
            "retransmissions and delays cannot make the run faster: {:.2} vs {:.2}",
            faulty.makespan,
            clean.makespan
        );
    }

    #[test]
    fn coordinator_crash_fails_over_and_loses_nothing() {
        let clean = QaSimulation::new(SimConfig::paper_low_load(
            4,
            PartitionStrategy::Recv { chunk_size: 40 },
            6,
            96,
        ))
        .run();
        let build = || {
            let mut cfg =
                SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 6, 96);
            cfg.faults = FaultSchedule::seeded(96).coordinator_crash(20.0);
            QaSimulation::new(cfg)
        };
        let crashed = build().run();
        assert_eq!(crashed.questions.len(), 6, "zero questions lost");
        assert_eq!(
            crashed.metrics.counter("dqa_failovers_total"),
            1,
            "exactly one standby promotion"
        );
        assert!(
            crashed.metrics.counter("dqa_replayed_records_total") > 0,
            "the standby replays a non-empty journal"
        );
        assert_eq!(crashed.metrics.gauges["dqa_leader_term"], 2.0);
        assert!(
            crashed
                .metrics
                .histograms
                .contains_key("dqa_recovery_seconds"),
            "recovery latency lands in the catalogue"
        );
        assert!(
            crashed.makespan >= clean.makespan,
            "held arrivals cannot make the run faster: {:.1} vs {:.1}",
            crashed.makespan,
            clean.makespan
        );
        assert_eq!(crashed, build().run(), "failover replays bit-stably");
    }

    #[test]
    fn leader_partition_fences_the_zombie_and_completes_everything() {
        let build = || {
            let mut cfg =
                SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 6, 97);
            cfg.faults = FaultSchedule::seeded(97).leader_partition(10.0, 400.0);
            QaSimulation::new(cfg)
        };
        let r = build().run();
        assert_eq!(r.questions.len(), 6, "the zombie's answers still count");
        assert_eq!(r.metrics.counter("dqa_failovers_total"), 1);
        assert!(
            r.metrics.counter("dqa_fenced_grants_total") > 0,
            "every append the deposed leader attempts must be fenced"
        );
        assert_eq!(r.metrics.gauges["dqa_leader_term"], 2.0);
        assert_eq!(r, build().run(), "partition schedule replays bit-stably");
    }

    #[test]
    fn monitor_loss_degrades_balancing_but_is_deterministic() {
        let run = |loss: f64| {
            let mut cfg = SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 94);
            cfg.faults = FaultSchedule::seeded(94).monitor_loss(loss);
            QaSimulation::new(cfg).run()
        };
        let lossy = run(0.8);
        assert_eq!(lossy.questions.len(), 32, "stale views lose no questions");
        assert_eq!(lossy, run(0.8), "monitor loss must replay bit-stably");
        // A fully-informed run and a mostly-blind run may place questions
        // differently; both must still complete everything.
        assert_eq!(run(0.0).questions.len(), 32);
    }

    #[test]
    fn every_fault_type_is_inert_at_zero_rate() {
        // A seeded-but-empty schedule must reproduce the unfaulted run
        // bit for bit (guards the fast paths in faulty_net_stages and
        // loads_seen_by).
        let base =
            QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 95)).run();
        let mut cfg = SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 95);
        cfg.faults = FaultSchedule::seeded(12345)
            .message_loss(0.0)
            .message_delay(0.0, 1.0)
            .message_dup(0.0)
            .monitor_loss(0.0);
        assert_eq!(QaSimulation::new(cfg).run(), base);
    }

    #[test]
    fn permissive_policy_answers_everything() {
        let r = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        let counts = r.outcome_counts();
        assert_eq!(counts.answered, r.questions.len());
        assert_eq!(counts.rejected + counts.degraded, 0);
    }

    #[test]
    fn admission_cap_rejects_past_queue_depth_and_conserves() {
        let mut cfg = SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 6);
        cfg.overload = OverloadPolicy::server(2).with_queue(1);
        // Compress arrivals so the burst genuinely contends for 2+1 slots.
        cfg.arrival_spacing = (0.0, 0.1);
        let r = QaSimulation::new(cfg).run();
        let counts = r.outcome_counts();
        assert_eq!(counts.offered(), r.questions.len(), "zero silent drops");
        assert_eq!(counts.offered(), 32);
        assert!(
            counts.rejected > 0,
            "32-question burst must bounce: {counts:?}"
        );
        assert!(counts.answered > 0, "someone gets through: {counts:?}");
        for q in &r.questions {
            if q.outcome == QuestionOutcome::Rejected {
                assert_eq!(q.timings.total(), 0.0, "rejected questions do no work");
                assert_eq!(q.pr_nodes + q.ap_nodes, 0);
            }
        }
    }

    #[test]
    fn admission_control_is_deterministic() {
        let build = || {
            let mut cfg = SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 7);
            cfg.overload = OverloadPolicy::server(3).with_deadline(60.0);
            cfg
        };
        let a = QaSimulation::new(build()).run();
        let b = QaSimulation::new(build()).run();
        assert_eq!(a, b);
    }

    #[test]
    fn tight_deadline_sheds_phases_and_degrades() {
        let mut cfg =
            SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 4, 44);
        // Complex TREC-9 questions need ~158 s of sequential service; a 2 s
        // budget can cover QP but never PR, so every question sheds.
        cfg.overload = OverloadPolicy::default().with_deadline(2.0);
        cfg.record_trace = true;
        let r = QaSimulation::new(cfg).run();
        let counts = r.outcome_counts();
        assert_eq!(counts.degraded, 4, "{counts:?}");
        assert_eq!(counts.rejected, 0, "nothing is rejected, only shed");
        let sheds = r
            .trace
            .iter()
            .filter(|e| matches!(e.kind, SimEventKind::Shed { .. }))
            .count();
        assert_eq!(sheds, 4, "one shed decision per question");
        // Shed questions still finish promptly — that is the whole point.
        for q in &r.questions {
            assert!(q.response_time() < 30.0, "shed question lingered");
        }
    }

    #[test]
    fn saturated_per_node_cap_rejects_everything() {
        let mut cfg = SimConfig::paper_high_load(2, BalancingStrategy::Dns, 8);
        cfg.overload = OverloadPolicy::default().with_per_node_cap(0);
        let r = QaSimulation::new(cfg).run();
        let counts = r.outcome_counts();
        assert_eq!(counts.rejected, r.questions.len());
        assert_eq!(counts.answered + counts.degraded, 0);
    }

    #[test]
    fn admitted_percentile_ignores_rejections() {
        let mut cfg = SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 9);
        cfg.overload = OverloadPolicy::server(2).with_queue(1);
        cfg.arrival_spacing = (0.0, 0.1);
        let r = QaSimulation::new(cfg).run();
        assert!(
            r.outcome_counts().rejected > 0,
            "need rejections to compare"
        );
        let all_p50 = r.response_time_percentile(0.5);
        let admitted_p50 = r.admitted_response_percentile(0.5);
        assert!(
            admitted_p50 >= all_p50,
            "near-instant rejections must not drag the admitted tail: {admitted_p50} < {all_p50}"
        );
        assert!(r.admitted_response_percentile(0.99) >= admitted_p50);
    }

    #[test]
    fn metrics_snapshots_are_bit_identical_across_replays() {
        let a = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        let b = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        // The DES is deterministic and single-threaded, so the whole
        // registry — f64 histogram sums included — must replay bit-stably,
        // down to the serialized form.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        let round = Snapshot::from_json(&a.metrics.to_json()).expect("parses");
        assert_eq!(round, a.metrics);
        dqa_obs::validate_prometheus(&a.metrics.to_prometheus()).expect("valid exposition");
    }

    #[test]
    fn causal_span_exports_are_bit_identical_across_chaos_replays() {
        // The chaos replay matrix: every schedule shape the elastic and
        // fault tiers inject must still export byte-identical span
        // streams on a seeded double run — span identity is derived
        // arithmetic, never allocation or wall-clock order.
        let matrix: Vec<(&str, Box<dyn Fn() -> SimConfig>)> = vec![
            (
                "baseline",
                Box::new(|| SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 31)),
            ),
            (
                "crash",
                Box::new(|| {
                    let mut cfg = SimConfig::paper_low_load(
                        4,
                        PartitionStrategy::Recv { chunk_size: 40 },
                        4,
                        31,
                    );
                    cfg.faults = FaultSchedule::seeded(31).crash(NodeId::new(2), 20.0);
                    cfg
                }),
            ),
            (
                "straggler",
                Box::new(|| {
                    let mut cfg = SimConfig::paper_low_load(
                        4,
                        PartitionStrategy::Recv { chunk_size: 40 },
                        4,
                        31,
                    );
                    cfg.faults =
                        FaultSchedule::seeded(31).straggler(NodeId::new(1), 10.0, 30.0, 4.0);
                    cfg
                }),
            ),
            (
                "drain",
                Box::new(|| {
                    let mut cfg = SimConfig::paper_low_load(
                        4,
                        PartitionStrategy::Recv { chunk_size: 40 },
                        4,
                        31,
                    );
                    cfg.elastic = Some(ElasticConfig::default());
                    cfg.faults = FaultSchedule::seeded(31).decommission(NodeId::new(1), 15.0);
                    cfg
                }),
            ),
        ];
        for (name, build) in matrix {
            let a = QaSimulation::new(build()).run();
            let b = QaSimulation::new(build()).run();
            assert_eq!(
                a.chrome_trace(31),
                b.chrome_trace(31),
                "{name}: span export diverged across a seeded double run"
            );
            let spans = a.all_causal_spans(31);
            assert!(!spans.is_empty(), "{name}: no spans exported");
            dqa_obs::validate_nesting(&spans).unwrap_or_else(|e| panic!("{name}: {e}"));
            dqa_obs::validate_chrome_json(&a.chrome_trace(31))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn critical_path_attributes_the_measured_latency_within_one_percent() {
        let r = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        let mut attributed = 0usize;
        for (q, rec) in r.questions.iter().enumerate() {
            if rec.outcome == QuestionOutcome::Rejected {
                assert!(r.causal_spans(q, 5).is_empty(), "rejected q{q} has spans");
                continue;
            }
            let cp = r.question_critical_path(q, 5).expect("critical path");
            let e2e = rec.finished - rec.arrival;
            assert!(
                (cp.total() - e2e).abs() <= 1e-9 * e2e.max(1.0),
                "q{q}: path total {} vs measured e2e {e2e}",
                cp.total()
            );
            let residual = (cp.total() - cp.attributed()).abs();
            assert!(
                residual <= 0.01 * cp.total().max(f64::MIN_POSITIVE),
                "q{q}: residual {residual} on e2e {e2e}"
            );
            attributed += 1;
        }
        assert!(attributed > 0, "no completed questions to attribute");
    }

    #[test]
    fn metrics_catalogue_agrees_with_the_report() {
        let r = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 5)).run();
        let counts = r.outcome_counts();
        let m = &r.metrics;
        assert_eq!(
            m.counter(r#"dqa_questions_total{outcome="answered"}"#),
            counts.answered as u64
        );
        assert_eq!(
            m.counter(r#"dqa_migrations_total{kind="qa"}"#),
            r.migrations.qa as u64
        );
        assert_eq!(
            m.counter(r#"dqa_migrations_total{kind="pr"}"#),
            r.migrations.pr as u64
        );
        assert_eq!(
            m.counter(r#"dqa_migrations_total{kind="ap"}"#),
            r.migrations.ap as u64
        );
        let h = &m.histograms["dqa_question_seconds"];
        assert_eq!(h.count as usize, r.questions.len());
        let tol = 1e-9 * r.mean_response_time().max(1.0);
        assert!((h.mean() - r.mean_response_time()).abs() < tol);
        // Eq. 1–3 gauges exist for every node/module pair; all-idle at end.
        for n in 0..4u32 {
            for module in ["QA", "PR", "AP"] {
                let key = format!(r#"dqa_node_load{{module="{module}",node="{n}"}}"#);
                assert_eq!(m.gauges[&key], 0.0, "{key} after drain");
            }
        }
        assert_eq!(m.gauges["dqa_in_flight"], 0.0);
    }

    #[test]
    fn shed_and_reject_flow_into_the_catalogue() {
        let mut cfg =
            SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 4, 44);
        cfg.overload = OverloadPolicy::default().with_deadline(2.0);
        let r = QaSimulation::new(cfg).run();
        let shed = r.metrics.counter_family("dqa_sheds_total");
        assert_eq!(shed, 4, "one shed per question");
        assert_eq!(
            r.metrics
                .counter(r#"dqa_questions_total{outcome="degraded"}"#),
            4
        );
        let mut cfg = SimConfig::paper_high_load(2, BalancingStrategy::Dns, 8);
        cfg.overload = OverloadPolicy::default().with_per_node_cap(0);
        let r = QaSimulation::new(cfg).run();
        assert_eq!(
            r.metrics
                .counter(r#"dqa_questions_total{outcome="rejected"}"#),
            r.questions.len() as u64
        );
    }

    #[test]
    fn shared_registry_aggregates_across_runs() {
        let registry = MetricsRegistry::new();
        for seed in [5u64, 6] {
            let cfg = SimConfig {
                metrics: Some(registry.clone()),
                ..SimConfig::paper_high_load(2, BalancingStrategy::Dqa, seed)
            };
            QaSimulation::new(cfg).run();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter_family("dqa_questions_total"), 32, "2 × 16");
    }

    #[test]
    fn phase_spans_render_a_virtual_time_waterfall() {
        let r = QaSimulation::new(SimConfig::paper_low_load(
            4,
            PartitionStrategy::Recv { chunk_size: 40 },
            2,
            226,
        ))
        .run();
        let spans = r.phase_spans(0);
        assert!(spans.len() >= 4, "QP/PR/PO/AP at least: {spans:?}");
        assert_eq!(spans[0].label, "QP");
        for w in spans.windows(2) {
            assert!(w[1].start >= w[0].start, "spans out of order");
        }
        let last = spans.last().expect("nonempty");
        assert!((last.end - r.questions[0].finished).abs() < 1e-6);
        let lines = r.waterfall(0, 40);
        assert_eq!(lines.len(), spans.len());
        assert!(lines[0].contains("QP"));
        assert!(r.phase_spans(99).is_empty(), "out of range is empty");
    }

    #[test]
    fn isend_beats_send_for_ap() {
        let send = low_load(8, PartitionStrategy::Send, 8);
        let isend = low_load(8, PartitionStrategy::Isend, 8);
        assert!(
            isend.mean_timings().ap < send.mean_timings().ap,
            "ISEND {:.2} !< SEND {:.2}",
            isend.mean_timings().ap,
            send.mean_timings().ap
        );
    }

    // ---- elastic membership ------------------------------------------

    #[test]
    fn decommission_evacuates_then_departs_with_nothing_lost() {
        let build = || {
            let mut cfg =
                SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 8, 301);
            cfg.faults = FaultSchedule::seeded(301).decommission(NodeId::new(1), 15.0);
            QaSimulation::new(cfg)
        };
        let r = build().run();
        assert_eq!(r.questions.len(), 8, "zero questions lost to the drain");
        assert_eq!(
            r.metrics
                .counter(r#"dqa_rebalance_plans_total{reason="drain"}"#),
            1,
            "one drain plan minted"
        );
        assert!(
            r.metrics.counter("dqa_rebalance_migrated_total") > 0,
            "the drained node's sub-collections moved"
        );
        assert_eq!(
            r.metrics.gauges["dqa_rebalance_converged"], 1.0,
            "ownership converged after the drain"
        );
        assert!(
            r.metrics.gauges["dqa_rebalance_ownership_epoch"] > 0.0,
            "migrations bumped the epoch"
        );
        // Questions arriving after the drain never land on the victim.
        for q in r.questions.iter().filter(|q| q.arrival > 15.0) {
            assert_ne!(q.home, NodeId::new(1), "drained node must not host");
        }
        assert_eq!(r, build().run(), "decommission replays bit-stably");
    }

    #[test]
    fn node_join_heals_a_drain_and_serves_again() {
        let build = || {
            let mut cfg =
                SimConfig::paper_low_load(3, PartitionStrategy::Recv { chunk_size: 40 }, 9, 302);
            cfg.faults = FaultSchedule::seeded(302)
                .decommission(NodeId::new(2), 10.0)
                .node_join(NodeId::new(2), 120.0);
            QaSimulation::new(cfg)
        };
        let r = build().run();
        assert_eq!(r.questions.len(), 9, "every question completes");
        assert_eq!(
            r.metrics
                .counter(r#"dqa_rebalance_plans_total{reason="join"}"#),
            1,
            "the rejoin mints a join plan"
        );
        assert_eq!(
            r.metrics.gauges["dqa_rebalance_converged"], 1.0,
            "converged again after the round trip"
        );
        assert!(
            r.metrics
                .histograms
                .contains_key("dqa_rebalance_heal_seconds"),
            "heal latency lands in the catalogue"
        );
        assert_eq!(r, build().run(), "drain/join round trip is deterministic");
    }

    #[test]
    fn rebalance_stall_window_defers_healing_but_not_questions() {
        let run_with_stall = |until: f64| {
            let mut cfg =
                SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 6, 303);
            cfg.faults = FaultSchedule::seeded(303)
                .decommission(NodeId::new(1), 5.0)
                .rebalance_stall(5.0, until);
            QaSimulation::new(cfg).run()
        };
        let quick = run_with_stall(5.5);
        let stalled = run_with_stall(400.0);
        assert_eq!(stalled.questions.len(), 6, "foreground unaffected");
        assert_eq!(
            stalled.metrics.gauges["dqa_rebalance_converged"], 1.0,
            "healing completes once the window closes"
        );
        assert!(
            stalled
                .metrics
                .counter("dqa_rebalance_throttled_total{cause=\"stalled\"}")
                > 0,
            "deferred steps are counted"
        );
        let heal = |r: &SimReport| r.metrics.histograms["dqa_rebalance_heal_seconds"].sum;
        assert!(
            heal(&stalled) > heal(&quick),
            "a long stall window must delay convergence: {:.1} !> {:.1}",
            heal(&stalled),
            heal(&quick)
        );
    }

    #[test]
    fn permanent_loss_triggers_evacuation_after_the_lease() {
        let mut cfg =
            SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 8, 304);
        cfg.elastic = Some(ElasticConfig::default());
        cfg.faults = FaultSchedule::seeded(304).crash(NodeId::new(2), 20.0);
        let r = QaSimulation::new(cfg).run();
        assert_eq!(r.questions.len(), 8, "crash recovery still conserves");
        assert_eq!(
            r.metrics
                .counter(r#"dqa_rebalance_plans_total{reason="permanent-loss"}"#),
            1,
            "the detector verdict mints an evacuation plan"
        );
        assert_eq!(
            r.metrics.gauges["dqa_rebalance_converged"], 1.0,
            "survivors own everything after healing"
        );
    }

    #[test]
    fn clean_elastic_run_stays_converged_and_plans_nothing() {
        let mut cfg =
            SimConfig::paper_low_load(4, PartitionStrategy::Recv { chunk_size: 40 }, 4, 305);
        cfg.elastic = Some(ElasticConfig::default());
        let mut sim = QaSimulation::new(cfg);
        assert_eq!(sim.run_ref(), 0.0, "commitments drain");
        let (epoch, ok) = sim.elastic_snapshot().expect("elastic tier active");
        assert_eq!(epoch, 0, "no membership change, no migration");
        assert!(ok, "striped ownership satisfies the invariant");
    }

    #[test]
    fn elastic_schedules_without_elastic_config_activate_the_tier() {
        // The activation mirror of the `journaled` flag: a schedule with
        // membership events needs no explicit ElasticConfig.
        let mut cfg =
            SimConfig::paper_low_load(3, PartitionStrategy::Recv { chunk_size: 40 }, 4, 306);
        cfg.faults = FaultSchedule::seeded(306).decommission(NodeId::new(1), 8.0);
        let r = QaSimulation::new(cfg).run();
        assert!(r.metrics.gauges.contains_key("dqa_rebalance_converged"));
        assert_eq!(r.questions.len(), 4);
    }
}
