//! The processor-sharing event engine.
//!
//! Tasks are sequences of *stages*; each stage demands one resource:
//!
//! * `Cpu(node)` / `Disk(node)` — demand in seconds of dedicated service;
//!   when `k` stages share a server each progresses at `mult/k` (processor
//!   sharing, the behaviour of a time-sliced OS and of a disk serving
//!   interleaved requests);
//! * `Net` — demand in bytes on the shared star-Ethernet segment of
//!   capacity `B_net` bytes/s, fair-shared across active transfers.
//!
//! There is no future-event list for stage completions: rates change
//! whenever the active set changes, so the engine recomputes the next
//! completion after every event — the standard approach for PS queues.
//! Iteration order over tasks is a `BTreeMap`, so runs are deterministic.

use qa_types::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// Task identifier.
pub type TaskId = u64;

/// Which resource a stage occupies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageKind {
    /// A node's CPU; demand in seconds.
    Cpu(NodeId),
    /// A node's disk; demand in seconds.
    Disk(NodeId),
    /// The shared network; demand in bytes.
    Net,
    /// One node's full-duplex link on a *switched* network; demand in
    /// bytes. Transfers on different nodes' links do not contend.
    NetLink(NodeId),
    /// A pure time delay in seconds: occupies no resource and never
    /// contends. Used by fault injection to model retransmission timeouts
    /// after a dropped message and link-level delivery delays.
    Delay,
}

/// One stage of a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Resource occupied.
    pub kind: StageKind,
    /// Remaining demand (seconds for CPU/disk, bytes for the network).
    pub remaining: f64,
}

impl Stage {
    /// CPU stage.
    pub fn cpu(node: NodeId, secs: f64) -> Stage {
        Stage {
            kind: StageKind::Cpu(node),
            remaining: secs.max(0.0),
        }
    }

    /// Disk stage.
    pub fn disk(node: NodeId, secs: f64) -> Stage {
        Stage {
            kind: StageKind::Disk(node),
            remaining: secs.max(0.0),
        }
    }

    /// Network transfer stage (shared segment).
    pub fn net(bytes: f64) -> Stage {
        Stage {
            kind: StageKind::Net,
            remaining: bytes.max(0.0),
        }
    }

    /// Network transfer stage on one node's switched link.
    pub fn net_link(node: NodeId, bytes: f64) -> Stage {
        Stage {
            kind: StageKind::NetLink(node),
            remaining: bytes.max(0.0),
        }
    }

    /// Pure delay stage (fault injection: retransmission timeouts,
    /// delayed deliveries).
    pub fn delay(secs: f64) -> Stage {
        Stage {
            kind: StageKind::Delay,
            remaining: secs.max(0.0),
        }
    }
}

#[derive(Debug, Clone)]
struct Task<T> {
    stages: VecDeque<Stage>,
    tag: T,
}

/// Result of [`Engine::advance`].
#[derive(Debug, Clone, PartialEq)]
pub enum Advance<T> {
    /// A task ran out of stages at `at`.
    TaskDone {
        /// The finished task.
        id: TaskId,
        /// Its tag, returned to the controller.
        tag: T,
        /// Virtual completion time.
        at: f64,
    },
    /// The requested time limit was reached with tasks still running (or
    /// none running).
    ReachedTime(f64),
    /// No active tasks and no time limit: the simulation is idle.
    Idle,
}

/// The simulation engine.
///
/// # Examples
/// ```
/// use cluster_sim::engine::{Advance, Engine, Stage};
/// use qa_types::NodeId;
///
/// let mut engine: Engine<&str> = Engine::new(1, 1e6);
/// engine.spawn(vec![Stage::disk(NodeId::new(0), 1.0), Stage::cpu(NodeId::new(0), 2.0)], "job");
/// match engine.advance(None) {
///     Advance::TaskDone { tag, at, .. } => {
///         assert_eq!(tag, "job");
///         assert!((at - 3.0).abs() < 1e-9);
///     }
///     other => panic!("{other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Engine<T> {
    now: f64,
    tasks: BTreeMap<TaskId, Task<T>>,
    next_id: TaskId,
    cpu_mult: Vec<f64>,
    disk_mult: Vec<f64>,
    net_capacity: f64,
}

impl<T> Engine<T> {
    /// An engine with `nodes` nodes and a shared network of
    /// `net_capacity` bytes/s.
    pub fn new(nodes: usize, net_capacity: f64) -> Self {
        Self {
            now: 0.0,
            tasks: BTreeMap::new(),
            next_id: 0,
            cpu_mult: vec![1.0; nodes],
            disk_mult: vec![1.0; nodes],
            net_capacity: net_capacity.max(1e-9),
        }
    }

    /// Current virtual time (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cpu_mult.len()
    }

    /// Number of live tasks.
    pub fn active_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Set a node's CPU speed multiplier (thrashing model: < 1 when memory
    /// is over-committed).
    pub fn set_cpu_mult(&mut self, node: NodeId, mult: f64) {
        self.cpu_mult[node.index()] = mult.clamp(1e-6, f64::MAX);
    }

    /// Set a node's disk speed multiplier.
    pub fn set_disk_mult(&mut self, node: NodeId, mult: f64) {
        self.disk_mult[node.index()] = mult.clamp(1e-6, f64::MAX);
    }

    /// Spawn a task. Zero-demand stages are allowed (they complete at the
    /// next `advance`). A task with no stages completes immediately on the
    /// next `advance` call.
    pub fn spawn(&mut self, stages: Vec<Stage>, tag: T) -> TaskId {
        let id = self.next_id;
        self.next_id += 1;
        self.tasks.insert(
            id,
            Task {
                stages: stages.into(),
                tag,
            },
        );
        id
    }

    /// Count of active CPU stages on a node (instantaneous load signal).
    pub fn active_cpu_stages(&self, node: NodeId) -> usize {
        self.count_active(StageKind::Cpu(node))
    }

    /// Count of active disk stages on a node.
    pub fn active_disk_stages(&self, node: NodeId) -> usize {
        self.count_active(StageKind::Disk(node))
    }

    fn count_active(&self, kind: StageKind) -> usize {
        self.tasks
            .values()
            .filter(|t| t.stages.front().map(|s| s.kind == kind).unwrap_or(false))
            .count()
    }

    /// Advance virtual time until a task completes or `until` is reached.
    pub fn advance(&mut self, until: Option<f64>) -> Advance<T> {
        loop {
            if self.tasks.is_empty() {
                return match until {
                    Some(t) => {
                        self.now = self.now.max(t);
                        Advance::ReachedTime(self.now)
                    }
                    None => Advance::Idle,
                };
            }

            // Immediate completion: a task whose stage queue is empty or
            // whose head stage has zero demand.
            let mut zero_done: Option<TaskId> = None;
            for (&id, task) in &self.tasks {
                match task.stages.front() {
                    None => {
                        zero_done = Some(id);
                        break;
                    }
                    Some(s) if s.remaining <= 0.0 => {
                        zero_done = Some(id);
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(id) = zero_done {
                let task = self.tasks.get_mut(&id).expect("present");
                if task
                    .stages
                    .front()
                    .map(|s| s.remaining <= 0.0)
                    .unwrap_or(false)
                {
                    task.stages.pop_front();
                }
                if task.stages.is_empty() {
                    let task = self.tasks.remove(&id).expect("present");
                    return Advance::TaskDone {
                        id,
                        tag: task.tag,
                        at: self.now,
                    };
                }
                continue; // head stage consumed; recompute rates
            }

            // Count sharers per resource.
            let mut cpu_count = vec![0usize; self.cpu_mult.len()];
            let mut disk_count = vec![0usize; self.disk_mult.len()];
            let mut link_count = vec![0usize; self.cpu_mult.len()];
            let mut net_count = 0usize;
            for task in self.tasks.values() {
                match task.stages.front().expect("nonempty").kind {
                    StageKind::Cpu(n) => cpu_count[n.index()] += 1,
                    StageKind::Disk(n) => disk_count[n.index()] += 1,
                    StageKind::NetLink(n) => link_count[n.index()] += 1,
                    StageKind::Net => net_count += 1,
                    StageKind::Delay => {}
                }
            }

            let rate = |kind: StageKind| -> f64 {
                match kind {
                    StageKind::Cpu(n) => self.cpu_mult[n.index()] / cpu_count[n.index()] as f64,
                    StageKind::Disk(n) => self.disk_mult[n.index()] / disk_count[n.index()] as f64,
                    StageKind::NetLink(n) => self.net_capacity / link_count[n.index()] as f64,
                    StageKind::Net => self.net_capacity / net_count as f64,
                    StageKind::Delay => 1.0,
                }
            };

            // Next stage completion.
            let mut best: Option<(f64, TaskId)> = None;
            for (&id, task) in &self.tasks {
                let s = task.stages.front().expect("nonempty");
                let dt = s.remaining / rate(s.kind);
                match best {
                    Some((bdt, _)) if bdt <= dt => {}
                    _ => best = Some((dt, id)),
                }
            }
            let (dt, winner) = best.expect("tasks nonempty");

            // Clip to the external time limit.
            if let Some(limit) = until {
                let room = limit - self.now;
                if room < dt {
                    let room = room.max(0.0);
                    for task in self.tasks.values_mut() {
                        let s = task.stages.front_mut().expect("nonempty");
                        let r = rate(s.kind);
                        s.remaining = (s.remaining - r * room).max(0.0);
                    }
                    // Work progressed up to the limit, but re-check for any
                    // stage that hit exactly zero on the next call.
                    self.now = limit;
                    return Advance::ReachedTime(self.now);
                }
            }

            // Advance everyone by dt; pop the winner's stage.
            for task in self.tasks.values_mut() {
                let s = task.stages.front_mut().expect("nonempty");
                let r = rate(s.kind);
                s.remaining = (s.remaining - r * dt).max(0.0);
            }
            self.now += dt;
            let task = self.tasks.get_mut(&winner).expect("present");
            task.stages.pop_front();
            if task.stages.is_empty() {
                let task = self.tasks.remove(&winner).expect("present");
                return Advance::TaskDone {
                    id: winner,
                    tag: task.tag,
                    at: self.now,
                };
            }
            // Winner has more stages: loop (rates changed).
        }
    }

    /// Kill a task (failure injection); returns its tag if it was alive.
    pub fn kill(&mut self, id: TaskId) -> Option<T> {
        self.tasks.remove(&id).map(|t| t.tag)
    }

    /// Kill every task whose tag matches `pred` (node-failure injection);
    /// returns the killed tags in id order.
    pub fn kill_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let ids: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| pred(&t.tag))
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.tasks.remove(&id).map(|t| t.tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn run_all<T: Clone>(e: &mut Engine<T>) -> Vec<(f64, T)> {
        let mut out = Vec::new();
        loop {
            match e.advance(None) {
                Advance::TaskDone { tag, at, .. } => out.push((at, tag)),
                Advance::Idle => return out,
                Advance::ReachedTime(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn single_task_runs_at_full_rate() {
        let mut e = Engine::new(1, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "a");
        let done = run_all(&mut e);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn two_cpu_tasks_share_the_processor() {
        let mut e = Engine::new(1, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "a");
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "b");
        let done = run_all(&mut e);
        // Both finish at t = 10 (each at rate 1/2).
        assert!((done[0].0 - 10.0).abs() < 1e-9);
        assert!((done[1].0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_and_disk_overlap() {
        // A CPU-bound and a disk-bound task on the same node do not contend:
        // both finish at t = 5, which is the §4.2 overlap effect.
        let mut e = Engine::new(1, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "cpu");
        e.spawn(vec![Stage::disk(n(0), 5.0)], "disk");
        let done = run_all(&mut e);
        assert!((done[0].0 - 5.0).abs() < 1e-9);
        assert!((done[1].0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn different_nodes_do_not_contend() {
        let mut e = Engine::new(2, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "a");
        e.spawn(vec![Stage::cpu(n(1), 5.0)], "b");
        let done = run_all(&mut e);
        assert!((done[0].0 - 5.0).abs() < 1e-9);
        assert!((done[1].0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_task_finishes_first_and_frees_capacity() {
        let mut e = Engine::new(1, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 2.0)], "short");
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "long");
        let done = run_all(&mut e);
        assert_eq!(done[0].1, "short");
        assert!((done[0].0 - 4.0).abs() < 1e-9, "2s at rate 1/2");
        // Long task: 5 - 2 = 3 remaining at t=4, then full rate → t=7.
        assert!((done[1].0 - 7.0).abs() < 1e-9, "{}", done[1].0);
    }

    #[test]
    fn switched_links_do_not_contend_across_nodes() {
        let mut e = Engine::new(2, 100.0);
        e.spawn(vec![Stage::net_link(n(0), 100.0)], "a");
        e.spawn(vec![Stage::net_link(n(1), 100.0)], "b");
        let done = run_all(&mut e);
        // Each link runs at full speed: both at t = 1 (shared Net: t = 2).
        assert!((done[0].0 - 1.0).abs() < 1e-9);
        assert!((done[1].0 - 1.0).abs() < 1e-9);
        // Same link does contend.
        let mut e = Engine::new(1, 100.0);
        e.spawn(vec![Stage::net_link(n(0), 100.0)], "a");
        e.spawn(vec![Stage::net_link(n(0), 100.0)], "b");
        let done = run_all(&mut e);
        assert!((done[1].0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn network_is_shared_in_bytes() {
        let mut e = Engine::new(1, 100.0); // 100 bytes/s
        e.spawn(vec![Stage::net(100.0)], "x");
        e.spawn(vec![Stage::net(100.0)], "y");
        let done = run_all(&mut e);
        assert!((done[0].0 - 2.0).abs() < 1e-9);
        assert!((done[1].0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_stage_task_transitions() {
        let mut e = Engine::new(1, 10.0);
        e.spawn(
            vec![
                Stage::disk(n(0), 1.0),
                Stage::cpu(n(0), 2.0),
                Stage::net(10.0),
            ],
            "pipeline",
        );
        let done = run_all(&mut e);
        assert!((done[0].0 - 4.0).abs() < 1e-9, "1 + 2 + 1 = {}", done[0].0);
    }

    #[test]
    fn cpu_multiplier_slows_a_node() {
        let mut e = Engine::new(1, 1e6);
        e.set_cpu_mult(n(0), 0.5);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "slow");
        let done = run_all(&mut e);
        assert!((done[0].0 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn advance_until_pauses_midway() {
        let mut e = Engine::new(1, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "a");
        match e.advance(Some(2.0)) {
            Advance::ReachedTime(t) => assert!((t - 2.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        // Remaining 3 s completes at t = 5.
        match e.advance(None) {
            Advance::TaskDone { at, .. } => assert!((at - 5.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idle_engine_reports_idle_or_jumps_to_time() {
        let mut e: Engine<&str> = Engine::new(1, 1e6);
        assert_eq!(e.advance(None), Advance::Idle);
        assert_eq!(e.advance(Some(7.0)), Advance::ReachedTime(7.0));
        assert_eq!(e.now(), 7.0);
    }

    #[test]
    fn empty_and_zero_stage_tasks_complete_immediately() {
        let mut e = Engine::new(1, 1e6);
        e.spawn(Vec::new(), "empty");
        e.spawn(vec![Stage::cpu(n(0), 0.0)], "zero");
        let done = run_all(&mut e);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|(t, _)| *t == 0.0));
    }

    #[test]
    fn delay_stage_is_pure_time_and_never_contends() {
        let mut e = Engine::new(1, 1e6);
        e.spawn(vec![Stage::delay(3.0)], "a");
        e.spawn(vec![Stage::delay(3.0)], "b");
        e.spawn(vec![Stage::delay(1.0), Stage::cpu(n(0), 1.0)], "c");
        let done = run_all(&mut e);
        // Delays do not share capacity: a and b both end at 3.0; c's delay
        // ends at 1.0 and its CPU stage (uncontended) at 2.0.
        assert_eq!(done[0].1, "c");
        assert!((done[0].0 - 2.0).abs() < 1e-9);
        assert!((done[1].0 - 3.0).abs() < 1e-9);
        assert!((done[2].0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn kill_removes_a_task() {
        let mut e = Engine::new(1, 1e6);
        let a = e.spawn(vec![Stage::cpu(n(0), 5.0)], "a");
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "b");
        assert_eq!(e.kill(a), Some("a"));
        assert_eq!(e.kill(a), None);
        let done = run_all(&mut e);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 5.0).abs() < 1e-9, "b at full rate");
    }

    #[test]
    fn load_observation_counts_head_stages() {
        let mut e = Engine::new(2, 1e6);
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "a");
        e.spawn(vec![Stage::cpu(n(0), 5.0)], "b");
        e.spawn(vec![Stage::disk(n(0), 5.0)], "c");
        e.spawn(vec![Stage::cpu(n(1), 5.0)], "d");
        assert_eq!(e.active_cpu_stages(n(0)), 2);
        assert_eq!(e.active_disk_stages(n(0)), 1);
        assert_eq!(e.active_cpu_stages(n(1)), 1);
        assert_eq!(e.active_disk_stages(n(1)), 0);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two identical tasks: completion order must be stable (by id).
        for _ in 0..5 {
            let mut e = Engine::new(1, 1e6);
            e.spawn(vec![Stage::cpu(n(0), 1.0)], 0u32);
            e.spawn(vec![Stage::cpu(n(0), 1.0)], 1u32);
            let done = run_all(&mut e);
            assert_eq!(done[0].1, 0);
            assert_eq!(done[1].1, 1);
        }
    }
}
