//! Deterministic sampling of question service demands.
//!
//! Each simulated question gets:
//!
//! * a whole-question scale factor (TREC question times vary widely around
//!   the Table 8 means);
//! * per-sub-collection PR demands — lognormal around
//!   `T_PR / sub_collections` with the coefficient of variation observed in
//!   the paper's Q226 trace (0.19–1.52 s per collection);
//! * per-paragraph AP demands — lognormal, then sorted *descending* so that
//!   paragraph rank correlates with processing cost. This reproduces the
//!   paper's observation that "the PO module provides also a good ranking of
//!   the paragraph processing complexity", which is what makes ISEND work.

use qa_types::ModuleProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// All demands of one simulated question, in seconds of dedicated service.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionDemand {
    /// QP demand (CPU, home node).
    pub qp: f64,
    /// Per-sub-collection PR demand (split 20 % CPU / 80 % disk by Table 3).
    pub pr_per_collection: Vec<f64>,
    /// Per-sub-collection PS demand (CPU), proportional to PR share.
    pub ps_per_collection: Vec<f64>,
    /// PO demand (CPU, home node).
    pub po: f64,
    /// Per-paragraph AP demand (CPU), descending — index = paragraph rank.
    pub ap_per_paragraph: Vec<f64>,
    /// Memory footprint of the question in bytes.
    pub memory: u64,
}

impl QuestionDemand {
    /// Sample demands for question `index` of a run seeded with `seed`.
    /// Pure function of `(profile, seed, index)`.
    pub fn sample(profile: &ModuleProfile, seed: u64, index: u64) -> QuestionDemand {
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index));

        // Whole-question scale: lognormal with CV 0.6, mean 1.
        let scale = lognormal_mean1(0.6).sample(&mut rng);

        let k = profile.sub_collections.max(1);
        let pr_mean = profile.times.pr * scale / k as f64;
        let pr_dist = LogNormal::new(
            mu_for(pr_mean, profile.pr_granularity_cv),
            sigma_for(profile.pr_granularity_cv),
        )
        .expect("valid lognormal");
        let pr_per_collection: Vec<f64> = (0..k).map(|_| pr_dist.sample(&mut rng)).collect();
        let pr_total: f64 = pr_per_collection.iter().sum();
        let ps_per_collection: Vec<f64> = pr_per_collection
            .iter()
            .map(|d| profile.times.ps * scale * d / pr_total.max(1e-12))
            .collect();

        // Bigger questions accept more paragraphs (the paper's intra-question
        // experiments select "complex" questions by exactly this property),
        // while the per-paragraph cost stays roughly constant.
        let n_par = ((profile.paragraphs_accepted as f64 * scale).round() as usize).max(40);
        let ap_mean = profile.times.ap / profile.paragraphs_accepted.max(1) as f64;
        let ap_dist = LogNormal::new(
            mu_for(ap_mean, profile.ap_granularity_cv),
            sigma_for(profile.ap_granularity_cv),
        )
        .expect("valid lognormal");
        let mut ap_per_paragraph: Vec<f64> = (0..n_par).map(|_| ap_dist.sample(&mut rng)).collect();
        // Rank order: heaviest paragraphs first (see module docs), then
        // multiplicative noise — PO's relevance ranking predicts processing
        // cost well but not perfectly, which is why RECV still edges out
        // ISEND in Table 11.
        ap_per_paragraph.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let rank_noise = lognormal_mean1(0.75);
        for d in &mut ap_per_paragraph {
            *d *= rank_noise.sample(&mut rng);
        }

        let memory = rng.gen_range(
            profile.question_memory_lo..=profile.question_memory_hi.max(profile.question_memory_lo),
        );

        QuestionDemand {
            qp: profile.times.qp * scale,
            pr_per_collection,
            ps_per_collection,
            po: profile.times.po * scale,
            ap_per_paragraph,
            memory,
        }
    }

    /// Total PR demand.
    pub fn pr_total(&self) -> f64 {
        self.pr_per_collection.iter().sum()
    }

    /// Total PS demand.
    pub fn ps_total(&self) -> f64 {
        self.ps_per_collection.iter().sum()
    }

    /// Total AP demand.
    pub fn ap_total(&self) -> f64 {
        self.ap_per_paragraph.iter().sum()
    }

    /// Total sequential demand (all modules).
    pub fn total(&self) -> f64 {
        self.qp + self.pr_total() + self.ps_total() + self.po + self.ap_total()
    }
}

/// Lognormal `mu` for a target mean and coefficient of variation.
fn mu_for(mean: f64, cv: f64) -> f64 {
    let v = (1.0 + cv * cv).ln();
    mean.max(1e-12).ln() - 0.5 * v
}

/// Lognormal `sigma` for a coefficient of variation.
fn sigma_for(cv: f64) -> f64 {
    (1.0 + cv * cv).ln().sqrt()
}

/// A lognormal with mean 1 and the given CV.
fn lognormal_mean1(cv: f64) -> LogNormal<f64> {
    LogNormal::new(mu_for(1.0, cv), sigma_for(cv)).expect("valid lognormal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::Trec9Profile;

    #[test]
    fn deterministic_given_seed_and_index() {
        let p = Trec9Profile::complex();
        let a = QuestionDemand::sample(&p, 7, 3);
        let b = QuestionDemand::sample(&p, 7, 3);
        assert_eq!(a, b);
        let c = QuestionDemand::sample(&p, 7, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_total_tracks_profile() {
        let p = Trec9Profile::complex();
        let n = 400;
        let mean: f64 = (0..n)
            .map(|i| QuestionDemand::sample(&p, 11, i).total())
            .sum::<f64>()
            / n as f64;
        let expected = p.sequential_total();
        let ratio = mean / expected;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "mean {mean:.1} vs profile {expected:.1}"
        );
    }

    #[test]
    fn pr_collection_times_have_trace_like_spread() {
        // Q226 trace: 0.19 s to 1.52 s per collection, i.e. max/min ≈ 8.
        let p = Trec9Profile::complex();
        let mut high_spread = 0;
        for i in 0..50 {
            let d = QuestionDemand::sample(&p, 13, i);
            let max = d.pr_per_collection.iter().cloned().fold(f64::MIN, f64::max);
            let min = d.pr_per_collection.iter().cloned().fold(f64::MAX, f64::min);
            if max / min > 3.0 {
                high_spread += 1;
            }
        }
        assert!(
            high_spread > 25,
            "only {high_spread}/50 questions show spread"
        );
    }

    #[test]
    fn ap_demands_trend_descending_with_rank() {
        let p = Trec9Profile::complex();
        let d = QuestionDemand::sample(&p, 17, 0);
        assert!(d.ap_per_paragraph.len() >= 40);
        // Imperfect but real correlation: the top quarter of ranks must be
        // substantially heavier on average than the bottom quarter.
        let q = d.ap_per_paragraph.len() / 4;
        let head: f64 = d.ap_per_paragraph[..q].iter().sum::<f64>() / q as f64;
        let tail: f64 = d.ap_per_paragraph[d.ap_per_paragraph.len() - q..]
            .iter()
            .sum::<f64>()
            / q as f64;
        assert!(head > 1.5 * tail, "head {head:.4} vs tail {tail:.4}");
        // And it must NOT be perfectly sorted (the noise is there).
        assert!(
            d.ap_per_paragraph.windows(2).any(|w| w[0] < w[1]),
            "ranking should be imperfect"
        );
    }

    #[test]
    fn memory_in_profile_band() {
        let p = Trec9Profile::complex();
        for i in 0..20 {
            let d = QuestionDemand::sample(&p, 19, i);
            assert!(d.memory >= p.question_memory_lo);
            assert!(d.memory <= p.question_memory_hi);
        }
    }

    #[test]
    fn all_demands_positive() {
        let p = Trec9Profile::complex();
        for i in 0..20 {
            let d = QuestionDemand::sample(&p, 23, i);
            assert!(d.qp > 0.0 && d.po > 0.0);
            assert!(d.pr_per_collection.iter().all(|&x| x > 0.0));
            assert!(d.ps_per_collection.iter().all(|&x| x >= 0.0));
            assert!(d.ap_per_paragraph.iter().all(|&x| x > 0.0));
        }
    }
}
