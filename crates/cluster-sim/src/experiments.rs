//! Experiment drivers that regenerate the paper's empirical tables.

use crate::workload::{BalancingStrategy, QaSimulation, SimConfig, SimReport};
use scheduler::partition::PartitionStrategy;
use serde::{Deserialize, Serialize};

/// One row of the Tables 5–7 comparison: all three strategies at one
/// cluster size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyComparison {
    /// Cluster size.
    pub nodes: usize,
    /// Questions run (8 per node, as in §6.1).
    pub questions: usize,
    /// DNS report.
    pub dns: SimReport,
    /// INTER report.
    pub inter: SimReport,
    /// DQA report.
    pub dqa: SimReport,
}

/// Run the §6.1 high-load comparison at one cluster size.
pub fn load_balancing_experiment(nodes: usize, seed: u64) -> StrategyComparison {
    let run = |strategy| QaSimulation::new(SimConfig::paper_high_load(nodes, strategy, seed)).run();
    StrategyComparison {
        nodes,
        questions: 8 * nodes,
        dns: run(BalancingStrategy::Dns),
        inter: run(BalancingStrategy::Inter),
        dqa: run(BalancingStrategy::Dqa),
    }
}

/// One row of Table 8/9/10: the low-load intra-question run at one size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntraRow {
    /// Cluster size.
    pub nodes: usize,
    /// Full report (module times via `report.mean_timings()`).
    pub report: SimReport,
}

/// Run the §6.2 intra-question experiment over several cluster sizes with
/// RECV partitioning (the paper's choice).
pub fn intra_experiment(node_counts: &[usize], questions: usize, seed: u64) -> Vec<IntraRow> {
    node_counts
        .iter()
        .map(|&nodes| IntraRow {
            nodes,
            report: QaSimulation::new(SimConfig::paper_low_load(
                nodes,
                PartitionStrategy::Recv { chunk_size: 40 },
                questions,
                seed,
            ))
            .run(),
        })
        .collect()
}

/// One point of the Fig. 10 chunk-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkPoint {
    /// RECV chunk size in paragraphs.
    pub chunk_size: usize,
    /// AP-module speedup vs the 1-node run.
    pub ap_speedup: f64,
}

/// Fig. 10: AP speedup under RECV for several chunk sizes at one cluster
/// size.
pub fn chunk_sweep(
    nodes: usize,
    chunk_sizes: &[usize],
    questions: usize,
    seed: u64,
) -> Vec<ChunkPoint> {
    let base = QaSimulation::new(SimConfig::paper_low_load(
        1,
        PartitionStrategy::Recv { chunk_size: 40 },
        questions,
        seed,
    ))
    .run();
    let ap1 = base.mean_timings().ap;
    chunk_sizes
        .iter()
        .map(|&chunk_size| {
            let r = QaSimulation::new(SimConfig::paper_low_load(
                nodes,
                PartitionStrategy::Recv { chunk_size },
                questions,
                seed,
            ))
            .run();
            ChunkPoint {
                chunk_size,
                ap_speedup: ap1 / r.mean_timings().ap.max(1e-9),
            }
        })
        .collect()
}

/// One row of Table 11: AP speedups of the three partitioning strategies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionRow {
    /// Cluster size.
    pub nodes: usize,
    /// SEND AP speedup.
    pub send: f64,
    /// ISEND AP speedup.
    pub isend: f64,
    /// RECV AP speedup (40-paragraph chunks).
    pub recv: f64,
}

/// Table 11: SEND vs ISEND vs RECV for the AP module.
pub fn partition_comparison(
    node_counts: &[usize],
    questions: usize,
    seed: u64,
) -> Vec<PartitionRow> {
    let base = QaSimulation::new(SimConfig::paper_low_load(
        1,
        PartitionStrategy::Recv { chunk_size: 40 },
        questions,
        seed,
    ))
    .run();
    let ap1 = base.mean_timings().ap;
    let speedup = |nodes: usize, strategy: PartitionStrategy| {
        let r =
            QaSimulation::new(SimConfig::paper_low_load(nodes, strategy, questions, seed)).run();
        ap1 / r.mean_timings().ap.max(1e-9)
    };
    node_counts
        .iter()
        .map(|&nodes| PartitionRow {
            nodes,
            send: speedup(nodes, PartitionStrategy::Send),
            isend: speedup(nodes, PartitionStrategy::Isend),
            recv: speedup(nodes, PartitionStrategy::Recv { chunk_size: 40 }),
        })
        .collect()
}

/// One point of the §4.2 concurrency experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyPoint {
    /// Simultaneous questions on the single node.
    pub concurrent: usize,
    /// Throughput relative to one-at-a-time execution.
    pub relative_throughput: f64,
}

/// §4.2: throughput of one node as the number of simultaneous questions
/// grows. The paper observed a peak at 2–3 and collapse beyond 4.
///
/// Runs a closed-loop workload: the multiprogramming level is held at `k`
/// by admitting the next question as soon as one completes.
pub fn concurrency_experiment(max_concurrent: usize, seed: u64) -> Vec<ConcurrencyPoint> {
    use qa_types::Trec9Profile;
    let run = |k: usize| {
        let cfg = SimConfig {
            questions: 18,
            arrival_spacing: (0.0, 0.0),
            serial: false,
            max_in_flight: Some(k),
            strategy: BalancingStrategy::Dns,
            profiles: vec![Trec9Profile::average()],
            ..SimConfig::paper_high_load(1, BalancingStrategy::Dns, seed)
        };
        let r = QaSimulation::new(cfg).run();
        r.questions.len() as f64 / r.makespan
    };
    let sequential = run(1);
    (1..=max_concurrent)
        .map(|k| ConcurrencyPoint {
            concurrent: k,
            relative_throughput: run(k) / sequential,
        })
        .collect()
}

/// Seed-averaged summary of the three strategies at one cluster size.
///
/// A single simulated run is as noisy as a single run on real hardware;
/// the table binaries average a few replications, as one would rerun a
/// benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategySummary {
    /// Cluster size.
    pub nodes: usize,
    /// Mean throughput (q/min): DNS, INTER, DQA.
    pub throughput: [f64; 3],
    /// Mean response time (s): DNS, INTER, DQA.
    pub response_time: [f64; 3],
    /// Mean INTER question-dispatcher migrations.
    pub inter_qa: f64,
    /// Mean DQA migrations at the three points (QA, PR, AP).
    pub dqa_migrations: [f64; 3],
}

/// Run [`load_balancing_experiment`] over several seeds and average.
pub fn load_balancing_summary(nodes: usize, seeds: &[u64]) -> StrategySummary {
    assert!(!seeds.is_empty(), "at least one seed");
    let mut tp = [0.0f64; 3];
    let mut rt = [0.0f64; 3];
    let mut inter_qa = 0.0;
    let mut dqa_m = [0.0f64; 3];
    for &seed in seeds {
        let c = load_balancing_experiment(nodes, seed);
        for (i, r) in [&c.dns, &c.inter, &c.dqa].into_iter().enumerate() {
            tp[i] += r.throughput_per_minute();
            rt[i] += r.mean_response_time();
        }
        inter_qa += c.inter.migrations.qa as f64;
        dqa_m[0] += c.dqa.migrations.qa as f64;
        dqa_m[1] += c.dqa.migrations.pr as f64;
        dqa_m[2] += c.dqa.migrations.ap as f64;
    }
    let n = seeds.len() as f64;
    StrategySummary {
        nodes,
        throughput: tp.map(|x| x / n),
        response_time: rt.map(|x| x / n),
        inter_qa: inter_qa / n,
        dqa_migrations: dqa_m.map(|x| x / n),
    }
}

/// Seed-averaged comparison of all five placement strategies (the paper's
/// three plus the diffusion/gradient baselines of the related work).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineSummary {
    /// Cluster size.
    pub nodes: usize,
    /// Mean throughput (q/min), indexed like [`BASELINE_ORDER`].
    pub throughput: [f64; 5],
    /// Mean response time (s), same order.
    pub response_time: [f64; 5],
}

/// Strategy order of [`BaselineSummary`] arrays.
pub const BASELINE_ORDER: [BalancingStrategy; 5] = [
    BalancingStrategy::Dns,
    BalancingStrategy::SenderDiffusion,
    BalancingStrategy::Gradient,
    BalancingStrategy::Inter,
    BalancingStrategy::Dqa,
];

/// Compare all five strategies at one cluster size, averaged over seeds.
pub fn baseline_comparison(nodes: usize, seeds: &[u64]) -> BaselineSummary {
    assert!(!seeds.is_empty(), "at least one seed");
    let mut tp = [0.0f64; 5];
    let mut rt = [0.0f64; 5];
    for &seed in seeds {
        for (i, &strategy) in BASELINE_ORDER.iter().enumerate() {
            let r = QaSimulation::new(SimConfig::paper_high_load(nodes, strategy, seed)).run();
            tp[i] += r.throughput_per_minute();
            rt[i] += r.mean_response_time();
        }
    }
    let n = seeds.len() as f64;
    BaselineSummary {
        nodes,
        throughput: tp.map(|x| x / n),
        response_time: rt.map(|x| x / n),
    }
}

/// One point of the offered-load ramp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampPoint {
    /// Mean inter-arrival gap in seconds (smaller = higher offered load).
    pub arrival_gap: f64,
    /// Achieved throughput, q/min.
    pub throughput: f64,
    /// Mean response time, s.
    pub response_time: f64,
    /// Mean number of nodes each question's AP phase used — the observable
    /// degree of intra-question parallelism.
    pub mean_ap_nodes: f64,
}

/// The §6 adaptivity claim, made visible: sweep the offered load and watch
/// DQA trade intra-question parallelism (wide AP fan-out when idle) for
/// pure migration (fan-out → 1) as the cluster saturates.
pub fn load_ramp(nodes: usize, gaps: &[f64], seed: u64) -> Vec<RampPoint> {
    gaps.iter()
        .map(|&gap| {
            let cfg = SimConfig {
                arrival_spacing: (0.0, 2.0 * gap),
                ..SimConfig::paper_high_load(nodes, BalancingStrategy::Dqa, seed)
            };
            let r = QaSimulation::new(cfg).run();
            let mean_ap_nodes = r.questions.iter().map(|q| q.ap_nodes as f64).sum::<f64>()
                / r.questions.len().max(1) as f64;
            RampPoint {
                arrival_gap: gap,
                throughput: r.throughput_per_minute(),
                response_time: r.mean_response_time(),
                mean_ap_nodes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_ramp_shows_adaptive_parallelism() {
        // Sparse arrivals (gap 120 s ≈ idle cluster) must fan AP wide;
        // a burst (gap 1 s) must collapse the fan-out toward migration.
        let pts = load_ramp(8, &[120.0, 1.0], 71);
        let idle = &pts[0];
        let busy = &pts[1];
        assert!(
            idle.mean_ap_nodes > busy.mean_ap_nodes + 1.0,
            "idle fan-out {:.1} vs busy {:.1}",
            idle.mean_ap_nodes,
            busy.mean_ap_nodes
        );
        assert!(idle.response_time < busy.response_time);
        assert!(
            busy.throughput > idle.throughput,
            "burst completes more per minute"
        );
    }

    #[test]
    fn dqa_beats_all_baselines() {
        let b = baseline_comparison(8, &[51, 52, 53]);
        let dqa = b.throughput[4];
        for (i, s) in BASELINE_ORDER[..4].iter().enumerate() {
            assert!(
                dqa > b.throughput[i],
                "DQA {dqa:.2} q/min should beat {s:?} {:.2}",
                b.throughput[i]
            );
        }
        // The local baselines must at least not collapse below DNS by much:
        // they are real strategies, not strawmen.
        assert!(b.throughput[1] > 0.8 * b.throughput[0], "{b:?}");
        assert!(b.throughput[2] > 0.8 * b.throughput[0], "{b:?}");
    }

    #[test]
    fn table5_ordering_holds_at_4_nodes() {
        let c = load_balancing_experiment(4, 11);
        let (d, i, q) = (
            c.dns.throughput_per_minute(),
            c.inter.throughput_per_minute(),
            c.dqa.throughput_per_minute(),
        );
        assert!(i > d, "INTER {i:.2} vs DNS {d:.2}");
        assert!(q > i, "DQA {q:.2} vs INTER {i:.2}");
    }

    #[test]
    fn table6_latency_ordering() {
        let c = load_balancing_experiment(4, 13);
        assert!(c.inter.mean_response_time() < c.dns.mean_response_time());
        assert!(c.dqa.mean_response_time() < c.inter.mean_response_time());
    }

    #[test]
    fn table7_migration_counts_shape() {
        let c = load_balancing_experiment(4, 17);
        // INTER migrates at QA only; DQA additionally at PR and AP.
        assert!(c.inter.migrations.qa > 0);
        assert_eq!(c.inter.migrations.pr + c.inter.migrations.ap, 0);
        assert!(c.dqa.migrations.qa > 0);
        assert!(c.dqa.migrations.pr > 0);
        assert!(c.dqa.migrations.ap > 0);
    }

    #[test]
    fn table8_module_times_shrink_with_nodes() {
        let rows = intra_experiment(&[1, 4, 8], 4, 19);
        let t1 = rows[0].report.mean_timings();
        let t4 = rows[1].report.mean_timings();
        let t8 = rows[2].report.mean_timings();
        assert!(t4.pr < t1.pr && t8.pr < t4.pr);
        assert!(t4.ap < t1.ap && t8.ap < t4.ap);
        // QP/PO are not partitioned: same order of magnitude at all sizes.
        assert!((t4.qp / t1.qp) > 0.5 && (t4.qp / t1.qp) < 2.0);
    }

    #[test]
    fn table9_overhead_is_small_fraction() {
        let rows = intra_experiment(&[4, 8], 4, 23);
        for row in rows {
            let o = row.report.mean_overhead().total();
            let t = row.report.mean_response_time();
            assert!(o > 0.0, "partitioned run must show overhead");
            assert!(o / t < 0.05, "overhead {o:.3} vs response {t:.1}");
        }
    }

    #[test]
    fn figure10_peak_is_interior() {
        let pts = chunk_sweep(4, &[5, 40, 200], 3, 29);
        let s5 = pts[0].ap_speedup;
        let s40 = pts[1].ap_speedup;
        let s200 = pts[2].ap_speedup;
        assert!(s40 > s5, "chunk 40 {s40:.2} should beat chunk 5 {s5:.2}");
        assert!(
            s40 > s200,
            "chunk 40 {s40:.2} should beat chunk 200 {s200:.2}"
        );
    }

    #[test]
    fn table11_recv_beats_isend_beats_send() {
        let rows = partition_comparison(&[4, 8], 4, 31);
        for r in rows {
            assert!(r.isend > r.send, "{r:?}");
            assert!(r.recv > r.send, "{r:?}");
            // RECV and ISEND are close; RECV at least matches ISEND - 10 %.
            assert!(r.recv > 0.9 * r.isend, "{r:?}");
        }
    }

    #[test]
    fn section42_concurrency_peak_then_collapse() {
        let pts = concurrency_experiment(6, 37);
        assert!((pts[0].relative_throughput - 1.0).abs() < 1e-9, "{pts:?}");
        // 2 concurrent questions beat sequential execution (I/O overlap).
        assert!(pts[1].relative_throughput > 1.0, "{pts:?}");
        // The peak lies in the 2-4 band, before the memory threshold.
        let peak_k = pts
            .iter()
            .max_by(|a, b| {
                a.relative_throughput
                    .partial_cmp(&b.relative_throughput)
                    .unwrap()
            })
            .unwrap()
            .concurrent;
        assert!((2..=4).contains(&peak_k), "{pts:?}");
        // Beyond the threshold throughput falls back toward (or below)
        // sequential: thrashing eats the overlap gain.
        let peak = pts
            .iter()
            .map(|p| p.relative_throughput)
            .fold(f64::MIN, f64::max);
        assert!(pts[4].relative_throughput < peak, "{pts:?}");
        assert!(
            pts[5].relative_throughput < pts[4].relative_throughput + 0.05,
            "{pts:?}"
        );
        assert!(pts[5].relative_throughput < 1.1, "{pts:?}");
    }
}
