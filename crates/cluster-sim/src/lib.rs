#![warn(missing_docs)]
//! Discrete-event simulation of the distributed Q/A cluster.
//!
//! The paper's empirical section ran on twelve 500 MHz Pentium III machines
//! with 256 MB RAM on 100 Mbps Ethernet — hardware we cannot reproduce, so
//! this crate simulates it. Module service demands are *calibrated from the
//! paper's own measurements* (Tables 2, 3, 8 via
//! [`qa_types::calibration`]); the simulator then reproduces the behaviour
//! the scheduling experiments depend on:
//!
//! * processor-sharing CPU and disk servers per node, so concurrent
//!   questions overlap I/O and computation (the §4.2 observation that 2–3
//!   simultaneous questions *increase* throughput);
//! * a memory model: each question holds 25–40 MB against 256 MB per node,
//!   and over-commitment causes thrashing (the >4-simultaneous-questions
//!   collapse);
//! * a shared star-Ethernet network (all transfers share `B_net`);
//! * the three load-balancing strategies (DNS / INTER / DQA) built on the
//!   real `scheduler` + `loadsim` crates;
//! * SEND / ISEND / RECV partitioning of PR and AP with heterogeneous
//!   sub-task granularities.
//!
//! Layers:
//!
//! * [`demand`] — deterministic sampling of per-question/per-item demands;
//! * [`engine`] — the processor-sharing event engine;
//! * [`workload`] — the per-question state machine wiring dispatchers and
//!   partitioning into engine tasks;
//! * [`experiments`] — drivers that regenerate Tables 5–11 and Fig. 10;
//! * [`integrity`] — a virtual-time mirror of the runtime's data-integrity
//!   tier (corruption → detection → quarantine → scrub-and-repair) for
//!   time-to-repair and scrub-interference measurements.

pub mod demand;
pub mod engine;
pub mod experiments;
pub mod integrity;
pub mod workload;

pub use demand::QuestionDemand;
pub use engine::{Advance, Engine, Stage, StageKind, TaskId};
pub use integrity::{run_integrity_sim, IntegritySimConfig, IntegritySimReport, LoadWindow};
pub use workload::{BalancingStrategy, QaSimulation, SimConfig, SimReport};
