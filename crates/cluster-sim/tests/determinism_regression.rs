//! Determinism regression: the DES must replay bit-for-bit from a seed.
//!
//! These tests guard the invariant `cargo xtask lint` enforces statically
//! (no wall clock, no hash-ordered state, no unseeded RNG in virtual-time
//! crates): running the same configuration twice must produce *identical*
//! `SimReport`s — per-question records, migration counts, makespan and
//! trace — for every paper strategy. A hash-iteration-order or entropy leak
//! anywhere in the sim/scheduler stack shows up here as a diff.

use cluster_sim::{BalancingStrategy, QaSimulation, SimConfig};
use scheduler::PartitionStrategy;

fn run_twice(cfg: SimConfig) -> (cluster_sim::SimReport, cluster_sim::SimReport) {
    let a = QaSimulation::new(cfg.clone()).run();
    let b = QaSimulation::new(cfg).run();
    (a, b)
}

#[test]
fn high_load_replays_identically_for_every_strategy() {
    for strategy in [
        BalancingStrategy::Dns,
        BalancingStrategy::Inter,
        BalancingStrategy::Dqa,
    ] {
        for seed in [7, 1001] {
            let mut cfg = SimConfig::paper_high_load(4, strategy, seed);
            cfg.record_trace = true;
            let (a, b) = run_twice(cfg);
            assert_eq!(
                a, b,
                "strategy {strategy:?} seed {seed}: same-seed replay diverged"
            );
        }
    }
}

#[test]
fn low_load_partitioning_replays_identically() {
    for part in [
        PartitionStrategy::Send,
        PartitionStrategy::Isend,
        PartitionStrategy::Recv { chunk_size: 40 },
    ] {
        let (a, b) = run_twice(SimConfig::paper_low_load(4, part, 6, 42));
        assert_eq!(a, b, "partitioning {part:?}: same-seed replay diverged");
    }
}

#[test]
fn failure_recovery_path_replays_identically() {
    // Node deaths exercise the AP re-partitioning bookkeeping
    // (`ap_partitions`, now a BTreeMap): recovery dispatch order must be
    // seed-stable too.
    let mut cfg = SimConfig::paper_low_load(4, PartitionStrategy::Isend, 6, 99);
    cfg.node_failures = vec![(30.0, 2)];
    let (a, b) = run_twice(cfg);
    assert_eq!(a, b, "failure-recovery replay diverged");
}

#[test]
fn distinct_seeds_actually_differ() {
    // Guards against the degenerate way to pass the tests above: a sim that
    // ignores its seed entirely.
    let a = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 1)).run();
    let b = QaSimulation::new(SimConfig::paper_high_load(4, BalancingStrategy::Dqa, 2)).run();
    assert_ne!(a, b, "different seeds produced identical reports");
}
