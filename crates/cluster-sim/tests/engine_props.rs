//! Property tests of the processor-sharing engine.

use cluster_sim::engine::{Advance, Engine, Stage, StageKind};
use proptest::prelude::*;
use qa_types::NodeId;

/// Strategy: a random task = 1–4 stages over 2 nodes + network.
fn task_strategy() -> impl Strategy<Value = Vec<Stage>> {
    proptest::collection::vec(
        (0u8..3, 0.0f64..5.0).prop_map(|(kind, demand)| match kind {
            0 => Stage::cpu(NodeId::new(0), demand),
            1 => Stage::disk(NodeId::new(1), demand),
            _ => Stage::net(demand * 100.0),
        }),
        1..4,
    )
}

fn run_all(e: &mut Engine<usize>) -> Vec<(f64, usize)> {
    let mut out = Vec::new();
    loop {
        match e.advance(None) {
            Advance::TaskDone { tag, at, .. } => out.push((at, tag)),
            Advance::Idle => return out,
            Advance::ReachedTime(_) => unreachable!("no limit given"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_task_completes_exactly_once(tasks in proptest::collection::vec(task_strategy(), 0..30)) {
        let mut e: Engine<usize> = Engine::new(2, 100.0);
        for (i, stages) in tasks.iter().cloned().enumerate() {
            e.spawn(stages, i);
        }
        let done = run_all(&mut e);
        prop_assert_eq!(done.len(), tasks.len());
        let mut tags: Vec<usize> = done.iter().map(|&(_, t)| t).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..tasks.len()).collect::<Vec<_>>());
        prop_assert_eq!(e.active_tasks(), 0);
    }

    #[test]
    fn completion_times_are_monotone_and_bounded_below(
        tasks in proptest::collection::vec(task_strategy(), 1..20),
    ) {
        let mut e: Engine<usize> = Engine::new(2, 100.0);
        for (i, stages) in tasks.iter().cloned().enumerate() {
            e.spawn(stages, i);
        }
        let done = run_all(&mut e);
        // Event times never go backwards.
        for w in done.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 + 1e-9);
        }
        // A resource can't finish its total demand faster than serially at
        // full rate: makespan >= max per-resource total demand.
        let mut cpu0 = 0.0f64;
        let mut disk1 = 0.0f64;
        let mut net = 0.0f64;
        for t in &tasks {
            for s in t {
                match s.kind {
                    StageKind::Cpu(_) => cpu0 += s.remaining,
                    StageKind::Disk(_) => disk1 += s.remaining,
                    StageKind::Net | StageKind::NetLink(_) => net += s.remaining / 100.0,
                }
            }
        }
        let makespan = done.last().map(|&(t, _)| t).unwrap_or(0.0);
        let bound = cpu0.max(disk1).max(net);
        prop_assert!(makespan >= bound - 1e-6, "makespan {makespan} < bound {bound}");
    }

    #[test]
    fn advance_with_limit_never_overshoots(
        tasks in proptest::collection::vec(task_strategy(), 1..10),
        limit in 0.0f64..10.0,
    ) {
        let mut e: Engine<usize> = Engine::new(2, 100.0);
        for (i, stages) in tasks.iter().cloned().enumerate() {
            e.spawn(stages, i);
        }
        loop {
            match e.advance(Some(limit)) {
                Advance::TaskDone { at, .. } => prop_assert!(at <= limit + 1e-9),
                Advance::ReachedTime(t) => {
                    prop_assert!((t - limit).abs() < 1e-9);
                    break;
                }
                Advance::Idle => break,
            }
        }
        prop_assert!(e.now() <= limit + 1e-9);
    }

    #[test]
    fn deterministic_replay(tasks in proptest::collection::vec(task_strategy(), 0..15)) {
        let run = || {
            let mut e: Engine<usize> = Engine::new(2, 100.0);
            for (i, stages) in tasks.iter().cloned().enumerate() {
                e.spawn(stages, i);
            }
            run_all(&mut e)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.0 - y.0).abs() < 1e-12);
            prop_assert_eq!(x.1, y.1);
        }
    }
}
