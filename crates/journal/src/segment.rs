//! Segmented append-only journal files.
//!
//! A journal is a directory of `segment-NNNNNN.dqaj` files. Frames
//! ([`crate::frame`]) are appended to the highest-numbered segment; when
//! it reaches [`JournalOptions::max_segment_bytes`] a fresh segment is
//! started. On [`Journal::open`] every segment is scanned in order and
//! folded into a [`RecoveredState`]; a torn tail — the only damage a
//! crash can inflict — is legal *only* on the final segment and is
//! truncated away, dropping exactly the torn record. Corruption anywhere
//! else is reported, never silently skipped.

use crate::frame::{self, Decoded};
use crate::record::{Framed, JournalRecord};
use crate::replay::{RecoveredState, ReplayStats};
use serde::Serialize;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File extension for journal segments.
const SEGMENT_EXT: &str = "dqaj";
/// File-name prefix for journal segments.
const SEGMENT_PREFIX: &str = "segment-";

/// Tunables for a [`Journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalOptions {
    /// Rotate to a new segment once the current one reaches this size.
    pub max_segment_bytes: u64,
    /// `Some(n)`: `fsync` after every `n` appends (seeded-fsync testing
    /// hooks sit on this knob). `None`: every append still reaches the OS
    /// via `write(2)` — crash-of-process safe — but is not flushed to the
    /// platter.
    pub fsync_every: Option<u32>,
}

impl Default for JournalOptions {
    fn default() -> JournalOptions {
        JournalOptions {
            max_segment_bytes: 1024 * 1024,
            fsync_every: None,
        }
    }
}

/// Errors surfaced by the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Underlying filesystem error (stringified for `Clone`/`PartialEq`).
    Io(String),
    /// A segment other than the final one is damaged structurally (e.g.
    /// torn short): the journal cannot be trusted.
    Corrupt {
        /// Segment file the damage was found in.
        segment: String,
        /// Byte offset of the damaged frame.
        offset: u64,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// One specific frame is damaged *mid-segment* — a checksum failure,
    /// an impossible declared length, or a tear with checksum-valid
    /// frames still behind it. Distinct from tail truncation: truncating
    /// here would silently drop the valid records after the damage, so
    /// recovery must surface the damaged frame instead.
    CorruptFrame {
        /// Segment file holding the damaged frame.
        segment: String,
        /// Byte offset of the damaged frame.
        offset: u64,
        /// Human-readable diagnosis.
        detail: String,
    },
    /// An append carried a stale (or unknown) term: the writer has been
    /// fenced off by a newer coordinator.
    Fenced {
        /// Term the writer presented.
        attempted: u64,
        /// Term the journal currently requires.
        current: u64,
    },
    /// Record (de)serialization failed.
    Codec(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O error: {msg}"),
            JournalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(f, "journal corrupt in {segment} at byte {offset}: {detail}"),
            JournalError::CorruptFrame {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "journal frame corrupt in {segment} at byte {offset}: {detail}"
            ),
            JournalError::Fenced { attempted, current } => write!(
                f,
                "fenced: append with term {attempted} rejected (journal at term {current})"
            ),
            JournalError::Codec(msg) => write!(f, "journal codec error: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(err: std::io::Error) -> JournalError {
    JournalError::Io(err.to_string())
}

/// What [`Journal::open`] reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Coordinator state folded from every surviving frame.
    pub state: RecoveredState,
    /// How much work the scan did (replayed-record counter feed).
    pub stats: ReplayStats,
}

/// Borrowing twin of [`Framed`] so appends never clone the record. The
/// struct name is irrelevant to the JSON encoding, so frames written
/// through this deserialize as [`Framed`].
#[derive(Serialize)]
struct FramedRef<'a> {
    term: u64,
    record: &'a JournalRecord,
}

/// An open, appendable journal directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    opts: JournalOptions,
    file: File,
    segment_index: u64,
    segment_len: u64,
    term: u64,
    appended: u64,
    since_sync: u32,
}

impl Journal {
    /// Open (or create) the journal in `dir` with default options.
    pub fn open(dir: impl AsRef<Path>) -> Result<(Journal, Recovery), JournalError> {
        Journal::open_with(dir, JournalOptions::default())
    }

    /// Open (or create) the journal in `dir`, scanning every segment,
    /// truncating a torn tail on the final one, and returning the
    /// replayed state alongside the appendable journal.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: JournalOptions,
    ) -> Result<(Journal, Recovery), JournalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(io_err)?;
        let segments = list_segments(&dir)?;
        let mut state = RecoveredState::new();
        let mut stats = ReplayStats::default();
        let mut tail_len = 0u64;
        let last = segments.len().checked_sub(1);
        for (i, (index, path)) in segments.iter().enumerate() {
            let is_last = Some(i) == last;
            let end = scan_segment(path, is_last, &mut state, &mut stats)?;
            stats.segments += 1;
            if is_last {
                tail_len = end;
                let _ = index;
            }
        }
        let (segment_index, path) = match segments.last() {
            Some((index, path)) => (*index, path.clone()),
            None => (0, segment_path(&dir, 0)),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        let term = state.term().max(1);
        Ok((
            Journal {
                dir,
                opts,
                file,
                segment_index,
                segment_len: tail_len,
                term,
                appended: 0,
                since_sync: 0,
            },
            Recovery { state, stats },
        ))
    }

    /// Directory the journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The term this journal currently requires of writers.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Records appended through this handle (not counting replayed ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Append one record under `term`. Rejects any term other than the
    /// journal's current one with [`JournalError::Fenced`] — the fencing
    /// check a zombie ex-leader fails after a standby promoted itself via
    /// [`Journal::advance_term`].
    pub fn append(&mut self, term: u64, record: &JournalRecord) -> Result<(), JournalError> {
        if term != self.term {
            return Err(JournalError::Fenced {
                attempted: term,
                current: self.term,
            });
        }
        let payload = serde_json::to_vec(&FramedRef { term, record })
            .map_err(|e| JournalError::Codec(e.to_string()))?;
        let frame = frame::encode(&payload);
        self.file.write_all(&frame).map_err(io_err)?;
        self.segment_len += frame.len() as u64;
        self.appended += 1;
        if let Some(every) = self.opts.fsync_every {
            self.since_sync += 1;
            if self.since_sync >= every {
                self.file.sync_data().map_err(io_err)?;
                self.since_sync = 0;
            }
        }
        if self.segment_len >= self.opts.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Raise the journal's term to `new_term` (strictly higher) and
    /// durably record the change. Called by a standby on promotion; every
    /// writer still holding the old term is fenced from here on.
    pub fn advance_term(&mut self, new_term: u64) -> Result<u64, JournalError> {
        if new_term <= self.term {
            return Err(JournalError::Fenced {
                attempted: new_term,
                current: self.term,
            });
        }
        self.term = new_term;
        self.append(new_term, &JournalRecord::TermChange { term: new_term })?;
        Ok(new_term)
    }

    /// Force an `fsync` of the current segment.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(io_err)?;
        self.since_sync = 0;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), JournalError> {
        self.file.sync_data().map_err(io_err)?;
        self.segment_index += 1;
        let path = segment_path(&self.dir, self.segment_index);
        self.file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        // Creating the file durably requires syncing its *directory*
        // entry too: `create_new` + `sync_data` on the file alone leaves
        // the name unlinked after a power cut, and replay would then see
        // segment N but not N+1 — an undetectable gap, because a missing
        // final segment looks exactly like a journal that never rotated.
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err)?;
        self.segment_len = 0;
        self.since_sync = 0;
        Ok(())
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:06}.{SEGMENT_EXT}"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(&format!(".{SEGMENT_EXT}")))
        else {
            continue;
        };
        if let Ok(index) = stem.parse::<u64>() {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_by_key(|(index, _)| *index);
    Ok(segments)
}

/// Scan one segment file, folding frames into `state`. Returns the byte
/// offset one past the last valid frame. A torn tail is truncated away
/// when `is_last`, and is corruption otherwise.
fn scan_segment(
    path: &Path,
    is_last: bool,
    state: &mut RecoveredState,
    stats: &mut ReplayStats,
) -> Result<u64, JournalError> {
    let buf = fs::read(path).map_err(io_err)?;
    let segment = path.display().to_string();
    let mut offset = 0u64;
    while (offset as usize) < buf.len() {
        match frame::decode(&buf, offset) {
            Decoded::Frame { payload, next } => {
                let framed: Framed =
                    serde_json::from_slice(payload).map_err(|e| JournalError::Corrupt {
                        segment: segment.clone(),
                        offset,
                        detail: format!("checksum-valid frame with undecodable payload: {e}"),
                    })?;
                state.apply(&framed);
                stats.records += 1;
                offset = next;
            }
            Decoded::Torn => {
                if !is_last {
                    return Err(JournalError::Corrupt {
                        segment,
                        offset,
                        detail: "torn frame in non-final segment".into(),
                    });
                }
                // A tear is only legal as the *tail*: if a checksum-valid
                // frame still decodes past this point, the "tear" is a
                // damaged frame (e.g. a corrupted length field) and
                // truncating would silently drop the valid records
                // behind it.
                if let Some(later) = valid_frame_after(&buf, offset) {
                    return Err(JournalError::CorruptFrame {
                        segment,
                        offset,
                        detail: format!(
                            "unreadable frame followed by a valid frame at byte {later} — \
                             mid-segment corruption, not a torn tail"
                        ),
                    });
                }
                let torn = buf.len() as u64 - offset;
                let file = OpenOptions::new().write(true).open(path).map_err(io_err)?;
                file.set_len(offset).map_err(io_err)?;
                file.sync_data().map_err(io_err)?;
                stats.truncated_bytes += torn;
                break;
            }
            Decoded::Corrupt(detail) => {
                return Err(JournalError::CorruptFrame {
                    segment,
                    offset,
                    detail,
                });
            }
        }
    }
    Ok(offset)
}

/// Scan forward from a torn read for any checksum-valid frame whose
/// payload deserializes: proof the tear is mid-segment damage rather
/// than a crash-truncated tail. A CRC collision on garbage is ~2⁻³²,
/// and the serde check pushes accidental matches further still.
fn valid_frame_after(buf: &[u8], torn_at: u64) -> Option<u64> {
    let mut probe = torn_at as usize + 1;
    while probe + frame::HEADER_LEN <= buf.len() {
        if let Decoded::Frame { payload, .. } = frame::decode(buf, probe as u64) {
            if serde_json::from_slice::<Framed>(payload).is_ok() {
                return Some(probe as u64);
            }
        }
        probe += 1;
    }
    None
}

/// Read every complete frame of one segment file with its start offset.
/// Crash harnesses use the offsets to cut a journal at an exact frame
/// boundary ("a crash is a prefix of the log"). A torn tail simply ends
/// the scan; genuine corruption is an error.
pub fn read_segment(path: impl AsRef<Path>) -> Result<Vec<(u64, Framed)>, JournalError> {
    let path = path.as_ref();
    let buf = fs::read(path).map_err(io_err)?;
    let segment = path.display().to_string();
    let mut frames = Vec::new();
    let mut offset = 0u64;
    while (offset as usize) < buf.len() {
        match frame::decode(&buf, offset) {
            Decoded::Frame { payload, next } => {
                let framed: Framed =
                    serde_json::from_slice(payload).map_err(|e| JournalError::Corrupt {
                        segment: segment.clone(),
                        offset,
                        detail: e.to_string(),
                    })?;
                frames.push((offset, framed));
                offset = next;
            }
            Decoded::Torn => break,
            Decoded::Corrupt(detail) => {
                return Err(JournalError::CorruptFrame {
                    segment,
                    offset,
                    detail,
                });
            }
        }
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{JournalPhase, SchedulingPoint};
    use qa_types::{Question, QuestionId};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dqa-journal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn admit(id: u32) -> JournalRecord {
        JournalRecord::Admitted {
            question: Question::new(QuestionId::new(id), format!("question {id}")),
        }
    }

    #[test]
    fn append_then_open_replays_everything() {
        let dir = tmp("roundtrip");
        {
            let (mut j, rec) = Journal::open(&dir).unwrap();
            assert!(rec.state.is_empty());
            j.append(1, &admit(1)).unwrap();
            j.append(
                1,
                &JournalRecord::Scheduled {
                    question: QuestionId::new(1),
                    point: SchedulingPoint::Qa,
                    nodes: vec![3],
                },
            )
            .unwrap();
            assert_eq!(j.appended(), 2);
        }
        let (j, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.stats.records, 2);
        assert_eq!(rec.stats.truncated_bytes, 0);
        assert_eq!(rec.state.gate_occupancy(), 1);
        let q = rec.state.get(QuestionId::new(1)).unwrap();
        assert_eq!(q.home(), Some(3));
        assert_eq!(j.term(), 1);
    }

    #[test]
    fn rotation_splits_segments_and_open_reads_across_them() {
        let dir = tmp("rotate");
        let opts = JournalOptions {
            max_segment_bytes: 256,
            fsync_every: Some(1),
        };
        {
            let (mut j, _) = Journal::open_with(&dir, opts).unwrap();
            for i in 0..20 {
                j.append(1, &admit(i)).unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "expected rotation, got {segments:?}");
        let (_, rec) = Journal::open_with(&dir, opts).unwrap();
        assert_eq!(rec.stats.records, 20);
        assert_eq!(rec.stats.segments as usize, segments.len());
        assert_eq!(rec.state.gate_occupancy(), 20);
    }

    #[test]
    fn stale_term_is_fenced() {
        let dir = tmp("fence");
        let (mut j, _) = Journal::open(&dir).unwrap();
        j.append(1, &admit(1)).unwrap();
        j.advance_term(2).unwrap();
        let err = j.append(1, &admit(2)).unwrap_err();
        assert_eq!(
            err,
            JournalError::Fenced {
                attempted: 1,
                current: 2
            }
        );
        // Term can only move forward.
        assert!(j.advance_term(2).is_err());
        // The fenced append left no trace.
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.state.gate_occupancy(), 1);
        assert_eq!(rec.state.term(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_dropping_only_last_record() {
        let dir = tmp("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            for i in 0..3 {
                j.append(1, &admit(i)).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        let frames = read_segment(&path).unwrap();
        assert_eq!(frames.len(), 3);
        let last_start = frames[2].0;
        // Cut mid-way through the last frame.
        let cut = last_start + (full.len() as u64 - last_start) / 2;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.stats.records, 2, "torn record dropped, rest kept");
        assert_eq!(rec.stats.truncated_bytes, cut - last_start);
        assert_eq!(fs::metadata(&path).unwrap().len(), last_start);
    }

    #[test]
    fn corruption_in_non_final_segment_is_an_error() {
        let dir = tmp("midcorrupt");
        let opts = JournalOptions {
            max_segment_bytes: 128,
            fsync_every: None,
        };
        {
            let (mut j, _) = Journal::open_with(&dir, opts).unwrap();
            for i in 0..10 {
                j.append(1, &admit(i)).unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1);
        // Flip a payload byte in the first segment.
        let first = &segments[0].1;
        let mut bytes = fs::read(first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(first, &bytes).unwrap();
        match Journal::open_with(&dir, opts) {
            Err(JournalError::CorruptFrame { .. }) => {}
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_length_field_does_not_masquerade_as_torn_tail() {
        let dir = tmp("lenflip");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            for i in 0..3 {
                j.append(1, &admit(i)).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let clean = fs::read(&path).unwrap();
        // Overwrite frame 0's length prefix with a value that is within
        // MAX_PAYLOAD but runs past the end of the file: a naive scan
        // reads this as a torn tail at byte 0 and would truncate away
        // every valid frame behind it.
        let mut bytes = clean.clone();
        bytes[..4].copy_from_slice(&0xFFFFu32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        match Journal::open(&dir) {
            Err(JournalError::CorruptFrame { offset, detail, .. }) => {
                assert_eq!(offset, 0);
                assert!(detail.contains("not a torn tail"), "{detail}");
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        // Crucially, recovery refused rather than destroyed: the file
        // still holds every byte, so a repair tool can salvage frames
        // 1 and 2.
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes.len() as u64);
    }

    #[test]
    fn checksum_failure_mid_final_segment_is_corrupt_frame() {
        let dir = tmp("crcflip");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            for i in 0..3 {
                j.append(1, &admit(i)).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let frames = read_segment(&path).unwrap();
        let second_start = frames[1].0;
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the *middle* frame: checksum fails
        // there while a checksum-valid frame still follows.
        bytes[second_start as usize + frame::HEADER_LEN] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match Journal::open(&dir) {
            Err(JournalError::CorruptFrame { offset, .. }) => {
                assert_eq!(offset, second_start);
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
    }

    #[test]
    fn reopen_resumes_appends_at_recovered_term() {
        let dir = tmp("reopen");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            j.append(1, &admit(1)).unwrap();
            j.advance_term(5).unwrap();
        }
        let (mut j, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.state.term(), 5);
        assert_eq!(j.term(), 5);
        j.append(5, &admit(2)).unwrap();
        assert!(matches!(
            j.append(4, &admit(3)),
            Err(JournalError::Fenced { .. })
        ));
    }
}
