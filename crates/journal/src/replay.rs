//! Deterministic replay: fold journal frames into coordinator state.
//!
//! [`RecoveredState::apply`] is built exclusively from monotone,
//! idempotent operations — set inserts, map overwrites with last-write-
//! wins, and `max` on counters/terms. Replaying a journal twice therefore
//! produces exactly the state of replaying it once (`replay ∘ replay =
//! replay`), which is what lets a promoted standby tail the journal live
//! *and* re-open it after promotion without double-counting anything.

use crate::record::{Framed, JournalPhase, JournalRecord, SchedulingPoint};
use qa_types::{Question, QuestionId};
use std::collections::{BTreeMap, BTreeSet};

/// Bookkeeping from one [`crate::Journal::open`] pass. Kept separate from
/// [`RecoveredState`] so state equality (the idempotence property) is not
/// polluted by how many times frames were read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Frames decoded and applied.
    pub records: u64,
    /// Segment files scanned.
    pub segments: u64,
    /// Torn-tail bytes truncated from the final segment.
    pub truncated_bytes: u64,
}

/// Everything the journal knows about one question.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuestionRecovery {
    question: Option<Question>,
    scheduled: BTreeMap<SchedulingPoint, Vec<u32>>,
    granted: BTreeMap<(JournalPhase, u32), u32>,
    done: BTreeMap<JournalPhase, BTreeSet<u32>>,
    partials: BTreeMap<(JournalPhase, u32), Vec<u8>>,
    retry_spent: BTreeMap<JournalPhase, u32>,
    answer: Option<(Vec<u8>, bool)>,
    abandoned: bool,
}

impl QuestionRecovery {
    /// The admitted question, if its `Admitted` record survived.
    pub fn question(&self) -> Option<&Question> {
        self.question.as_ref()
    }

    /// Nodes chosen at `point` (home first for QA), if journaled.
    pub fn nodes_at(&self, point: SchedulingPoint) -> Option<&[u32]> {
        self.scheduled.get(&point).map(|v| v.as_slice())
    }

    /// The journaled home node (first QA scheduling choice).
    pub fn home(&self) -> Option<u32> {
        self.nodes_at(SchedulingPoint::Qa)
            .and_then(|n| n.first().copied())
    }

    /// Worker the chunk was last granted to.
    pub fn granted_node(&self, phase: JournalPhase, chunk: u32) -> Option<u32> {
        self.granted.get(&(phase, chunk)).copied()
    }

    /// Whether `chunk` of `phase` has a journaled completion.
    pub fn is_done(&self, phase: JournalPhase, chunk: u32) -> bool {
        self.done.get(&phase).is_some_and(|s| s.contains(&chunk))
    }

    /// Completed chunk ids for `phase` in ascending order.
    pub fn chunks_done(&self, phase: JournalPhase) -> Vec<u32> {
        self.done
            .get(&phase)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Journaled partial results for `phase`, ascending by chunk id.
    pub fn partials(&self, phase: JournalPhase) -> impl Iterator<Item = (u32, &[u8])> {
        self.partials
            .iter()
            .filter(move |((p, _), _)| *p == phase)
            .map(|((_, chunk), payload)| (*chunk, payload.as_slice()))
    }

    /// Cumulative retry budget spent in `phase`.
    pub fn retry_spent(&self, phase: JournalPhase) -> u32 {
        self.retry_spent.get(&phase).copied().unwrap_or(0)
    }

    /// Final answer payload and completeness flag, if answered.
    pub fn answer(&self) -> Option<(&[u8], bool)> {
        self.answer.as_ref().map(|(p, c)| (p.as_slice(), *c))
    }

    /// True when the question still occupies an admission slot: admitted,
    /// not answered, not abandoned. These are the questions a successor
    /// coordinator must resume.
    pub fn resumable(&self) -> bool {
        self.question.is_some() && self.answer.is_none() && !self.abandoned
    }
}

/// Everything the journal knows about one migration plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RebalanceRecovery {
    steps: Vec<(u32, u32, u32)>,
    done: BTreeSet<u32>,
    converged: bool,
}

impl RebalanceRecovery {
    /// The planned `(sub, from, to)` transfers, in plan order.
    pub fn steps(&self) -> &[(u32, u32, u32)] {
        &self.steps
    }

    /// Whether the step migrating `sub` has a journaled completion.
    pub fn is_step_done(&self, sub: u32) -> bool {
        self.done.contains(&sub)
    }

    /// Planned steps without a journaled completion, in plan order —
    /// exactly what a successor coordinator must re-apply. Applying a
    /// step that in fact completed (its `RebalanceStepDone` was lost to a
    /// crash) is safe: ownership transfer is idempotent.
    pub fn pending_steps(&self) -> Vec<(u32, u32, u32)> {
        self.steps
            .iter()
            .filter(|(sub, _, _)| !self.done.contains(sub))
            .copied()
            .collect()
    }

    /// Whether the plan's convergence record was journaled.
    pub fn converged(&self) -> bool {
        self.converged
    }
}

/// Coordinator state reconstructed from the journal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    term: u64,
    questions: BTreeMap<QuestionId, QuestionRecovery>,
    rebalances: BTreeMap<u64, RebalanceRecovery>,
    owners: BTreeMap<u32, u32>,
}

impl RecoveredState {
    /// Empty state (no frames applied).
    pub fn new() -> RecoveredState {
        RecoveredState::default()
    }

    /// Fold one frame into the state. Monotone and idempotent: applying
    /// the same frame sequence any number of times yields the same state.
    pub fn apply(&mut self, framed: &Framed) {
        self.term = self.term.max(framed.term);
        let entry = |qs: &mut BTreeMap<QuestionId, QuestionRecovery>, id: QuestionId| {
            qs.entry(id).or_default()
        };
        match &framed.record {
            JournalRecord::Admitted { question } => {
                let rec = entry(&mut self.questions, question.id);
                if rec.question.is_none() {
                    rec.question = Some(question.clone());
                }
            }
            JournalRecord::Scheduled {
                question,
                point,
                nodes,
            } => {
                entry(&mut self.questions, *question)
                    .scheduled
                    .insert(*point, nodes.clone());
            }
            JournalRecord::ChunkGranted {
                question,
                phase,
                chunk,
                node,
            } => {
                entry(&mut self.questions, *question)
                    .granted
                    .insert((*phase, *chunk), *node);
            }
            JournalRecord::PartialResult {
                question,
                phase,
                chunk,
                payload,
            } => {
                let rec = entry(&mut self.questions, *question);
                rec.done.entry(*phase).or_default().insert(*chunk);
                rec.partials.insert((*phase, *chunk), payload.clone());
            }
            JournalRecord::ChunkDone {
                question,
                phase,
                chunk,
            } => {
                entry(&mut self.questions, *question)
                    .done
                    .entry(*phase)
                    .or_default()
                    .insert(*chunk);
            }
            JournalRecord::RetrySpent {
                question,
                phase,
                spent,
            } => {
                let rec = entry(&mut self.questions, *question);
                let slot = rec.retry_spent.entry(*phase).or_insert(0);
                *slot = (*slot).max(*spent);
            }
            JournalRecord::Answered {
                question,
                payload,
                complete,
            } => {
                entry(&mut self.questions, *question).answer = Some((payload.clone(), *complete));
            }
            JournalRecord::Abandoned { question } => {
                entry(&mut self.questions, *question).abandoned = true;
            }
            JournalRecord::TermChange { term } => {
                self.term = self.term.max(*term);
            }
            JournalRecord::RebalancePlanned { plan, steps } => {
                let rec = self.rebalances.entry(*plan).or_default();
                if rec.steps.is_empty() {
                    rec.steps = steps.clone();
                }
            }
            JournalRecord::RebalanceStepDone { plan, sub, to } => {
                self.rebalances.entry(*plan).or_default().done.insert(*sub);
                self.owners.insert(*sub, *to);
            }
            JournalRecord::RebalanceConverged { plan } => {
                self.rebalances.entry(*plan).or_default().converged = true;
            }
        }
    }

    /// Highest term witnessed (0 for an empty journal).
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Everything known about `question`.
    pub fn get(&self, question: QuestionId) -> Option<&QuestionRecovery> {
        self.questions.get(&question)
    }

    /// All questions the journal mentions, in id order.
    pub fn questions(&self) -> impl Iterator<Item = (QuestionId, &QuestionRecovery)> {
        self.questions.iter().map(|(id, rec)| (*id, rec))
    }

    /// Questions that still occupy an admission slot and must be resumed
    /// by a successor coordinator, in id order.
    pub fn in_flight(&self) -> impl Iterator<Item = (QuestionId, &QuestionRecovery)> {
        self.questions().filter(|(_, rec)| rec.resumable())
    }

    /// Questions with a journaled final answer, in id order.
    pub fn answered(&self) -> impl Iterator<Item = (QuestionId, &[u8], bool)> {
        self.questions().filter_map(|(id, rec)| {
            rec.answer()
                .map(|(payload, complete)| (id, payload, complete))
        })
    }

    /// `AdmissionGate` occupancy to restore: the number of resumable
    /// questions.
    pub fn gate_occupancy(&self) -> usize {
        self.in_flight().count()
    }

    /// Everything known about migration plan `plan`.
    pub fn rebalance(&self, plan: u64) -> Option<&RebalanceRecovery> {
        self.rebalances.get(&plan)
    }

    /// Plans with journaled intent but no convergence record, in plan-id
    /// order — the migrations a successor coordinator must finish.
    pub fn unfinished_rebalances(&self) -> impl Iterator<Item = (u64, &RebalanceRecovery)> {
        self.rebalances
            .iter()
            .filter(|(_, rec)| !rec.converged && !rec.steps.is_empty())
            .map(|(id, rec)| (*id, rec))
    }

    /// Journaled ownership overrides: `(sub_collection, owner)` for every
    /// sub-collection a completed migration step re-homed, in sub order.
    /// Sub-collections never migrated keep their initial placement and do
    /// not appear here.
    pub fn rebalanced_owners(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.owners.iter().map(|(s, n)| (*s, *n))
    }

    /// True when no frames have been applied.
    pub fn is_empty(&self) -> bool {
        self.term == 0 && self.questions.is_empty() && self.rebalances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(term: u64, record: JournalRecord) -> Framed {
        Framed { term, record }
    }

    #[test]
    fn lifecycle_folds_to_answered() {
        let q = Question::new(QuestionId::new(1), "what is a lease");
        let log = vec![
            framed(
                1,
                JournalRecord::Admitted {
                    question: q.clone(),
                },
            ),
            framed(
                1,
                JournalRecord::Scheduled {
                    question: q.id,
                    point: SchedulingPoint::Qa,
                    nodes: vec![2],
                },
            ),
            framed(
                1,
                JournalRecord::PartialResult {
                    question: q.id,
                    phase: JournalPhase::Pr,
                    chunk: 0,
                    payload: b"[]".to_vec(),
                },
            ),
            framed(
                1,
                JournalRecord::Answered {
                    question: q.id,
                    payload: b"{}".to_vec(),
                    complete: true,
                },
            ),
        ];
        let mut state = RecoveredState::new();
        for f in &log {
            state.apply(f);
        }
        assert_eq!(state.gate_occupancy(), 0);
        assert_eq!(state.answered().count(), 1);
        let rec = state.get(q.id).unwrap();
        assert_eq!(rec.home(), Some(2));
        assert!(rec.is_done(JournalPhase::Pr, 0));
        assert!(!rec.resumable());
    }

    #[test]
    fn unanswered_question_is_resumable() {
        let q = Question::new(QuestionId::new(4), "who watches the coordinator");
        let mut state = RecoveredState::new();
        state.apply(&framed(
            2,
            JournalRecord::Admitted {
                question: q.clone(),
            },
        ));
        state.apply(&framed(
            2,
            JournalRecord::RetrySpent {
                question: q.id,
                phase: JournalPhase::Ap,
                spent: 3,
            },
        ));
        assert_eq!(state.term(), 2);
        assert_eq!(state.gate_occupancy(), 1);
        let (_, rec) = state.in_flight().next().unwrap();
        assert_eq!(rec.retry_spent(JournalPhase::Ap), 3);
        assert_eq!(rec.retry_spent(JournalPhase::Pr), 0);
    }

    #[test]
    fn apply_is_idempotent_per_frame_sequence() {
        let q = Question::new(QuestionId::new(9), "replay me twice");
        let log = vec![
            framed(
                1,
                JournalRecord::Admitted {
                    question: q.clone(),
                },
            ),
            framed(
                1,
                JournalRecord::ChunkGranted {
                    question: q.id,
                    phase: JournalPhase::Pr,
                    chunk: 1,
                    node: 3,
                },
            ),
            framed(2, JournalRecord::TermChange { term: 2 }),
            framed(2, JournalRecord::Abandoned { question: q.id }),
        ];
        let mut once = RecoveredState::new();
        for f in &log {
            once.apply(f);
        }
        let mut twice = once.clone();
        for f in &log {
            twice.apply(f);
        }
        assert_eq!(once, twice);
    }

    #[test]
    fn rebalance_folds_track_pending_steps_and_convergence() {
        let log = vec![
            framed(
                3,
                JournalRecord::RebalancePlanned {
                    plan: 1,
                    steps: vec![(2, 1, 0), (6, 1, 3)],
                },
            ),
            framed(
                3,
                JournalRecord::RebalanceStepDone {
                    plan: 1,
                    sub: 2,
                    to: 0,
                },
            ),
        ];
        let mut state = RecoveredState::new();
        for f in &log {
            state.apply(f);
        }
        // Crash between the two steps: the successor sees one pending.
        let (id, rec) = state.unfinished_rebalances().next().unwrap();
        assert_eq!(id, 1);
        assert!(rec.is_step_done(2));
        assert_eq!(rec.pending_steps(), vec![(6, 1, 3)]);
        assert_eq!(state.rebalanced_owners().collect::<Vec<_>>(), vec![(2, 0)]);
        // Finishing and converging retires the plan.
        state.apply(&framed(
            3,
            JournalRecord::RebalanceStepDone {
                plan: 1,
                sub: 6,
                to: 3,
            },
        ));
        state.apply(&framed(3, JournalRecord::RebalanceConverged { plan: 1 }));
        assert_eq!(state.unfinished_rebalances().count(), 0);
        assert!(state.rebalance(1).unwrap().converged());
        // Idempotent: replaying the whole sequence changes nothing.
        let snapshot = state.clone();
        for f in &log {
            state.apply(f);
        }
        assert_eq!(state, snapshot);
    }
}
