//! On-disk frame format: `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! `len` counts the payload bytes only; `crc32` covers the payload only.
//! The fixed 8-byte header makes torn-tail detection exact: a partial
//! header, a payload shorter than `len`, or a checksum mismatch each mark
//! the first byte of the frame as the truncation point.

/// Fixed header size: 4-byte length + 4-byte checksum.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single payload; anything larger is corruption, not a
/// record (journal payloads are small JSON documents).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// CRC-32 lookup table for the IEEE 802.3 polynomial (reflected form
/// `0xEDB88320`), generated at compile time so the crate stays
/// dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the same polynomial zlib/Ethernet use, so
/// journals can be checked with standard external tooling.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encode one frame (header + payload) into a fresh buffer.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of decoding the frame starting at `buf[offset..]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete, checksum-valid frame; `next` is the offset one past it.
    Frame {
        /// The payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this frame.
        next: u64,
    },
    /// The buffer ends before the frame does (torn tail at `offset`).
    Torn,
    /// The frame is complete but fails its checksum, or declares an
    /// impossible length. Carries a human-readable detail.
    Corrupt(String),
}

/// Decode the frame starting at byte `offset` of `buf`.
pub fn decode(buf: &[u8], offset: u64) -> Decoded<'_> {
    let start = offset as usize;
    let rest = &buf[start..];
    if rest.len() < HEADER_LEN {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let want = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if len > MAX_PAYLOAD {
        return Decoded::Corrupt(format!("frame length {len} exceeds cap {MAX_PAYLOAD}"));
    }
    let body = &rest[HEADER_LEN..];
    if body.len() < len as usize {
        return Decoded::Torn;
    }
    let payload = &body[..len as usize];
    let got = crc32(payload);
    if got != want {
        return Decoded::Corrupt(format!(
            "checksum mismatch: stored {want:#010x}, computed {got:#010x}"
        ));
    }
    Decoded::Frame {
        payload,
        next: offset + (HEADER_LEN + len as usize) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip() {
        let frame = encode(b"hello");
        match decode(&frame, 0) {
            Decoded::Frame { payload, next } => {
                assert_eq!(payload, b"hello");
                assert_eq!(next, frame.len() as u64);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_torn_not_corrupt() {
        let frame = encode(b"paragraph payload");
        for cut in 0..frame.len() {
            assert_eq!(
                decode(&frame[..cut], 0),
                Decoded::Torn,
                "cut at byte {cut} must read as a torn tail"
            );
        }
    }

    #[test]
    fn bitflip_is_corrupt() {
        let mut frame = encode(b"stable");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(decode(&frame, 0), Decoded::Corrupt(_)));
    }
}
