//! Journal record schema — the coordinator decisions worth surviving.
//!
//! Records are deliberately close to the paper's vocabulary: a question is
//! admitted, scheduled at the three migration scheduling points (QA, PR,
//! AP), granted chunks, collects partial results, and is finally answered.
//! Payloads that the coordinator would otherwise have to recompute
//! (scored paragraphs, ranked answers) are stored as opaque `serde_json`
//! bytes so the journal crate does not depend on the pipeline crates.

use qa_types::{Question, QuestionId};
use serde::{Deserialize, Serialize};

/// The three migration scheduling points of the meta-scheduler (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SchedulingPoint {
    /// Question admission: which node becomes the question's home.
    Qa,
    /// Paragraph Retrieval fan-out: which nodes serve PR chunks.
    Pr,
    /// Answer Processing fan-out: which nodes serve AP batches.
    Ap,
}

/// Distributed phase a chunk belongs to (QP and PO run on the home node
/// and are cheap to recompute; only the fan-out phases journal chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JournalPhase {
    /// Paragraph Retrieval (PS fused in, as in Fig. 3).
    Pr,
    /// Answer Processing.
    Ap,
}

/// One durable coordinator decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A question passed the admission gate. Stores the full question so
    /// a successor coordinator can resume it without the client.
    Admitted {
        /// The admitted question.
        question: Question,
    },
    /// The meta-scheduler chose `nodes` at scheduling point `point`.
    Scheduled {
        /// Which question.
        question: QuestionId,
        /// Which of the three scheduling points.
        point: SchedulingPoint,
        /// Chosen node ids (home first for [`SchedulingPoint::Qa`]).
        nodes: Vec<u32>,
    },
    /// Chunk `chunk` of `phase` was granted to worker `node`.
    ChunkGranted {
        /// Which question.
        question: QuestionId,
        /// Which fan-out phase.
        phase: JournalPhase,
        /// Chunk id within the phase (deterministic 0..n ordering).
        chunk: u32,
        /// Worker node the chunk was sent to.
        node: u32,
    },
    /// First (deduplicated) result for a chunk, with its payload: the
    /// `serde_json` encoding of `Vec<ScoredParagraph>` for PR or
    /// `RankedAnswers` for AP. Implies the chunk is done.
    PartialResult {
        /// Which question.
        question: QuestionId,
        /// Which fan-out phase.
        phase: JournalPhase,
        /// Chunk id within the phase.
        chunk: u32,
        /// Opaque `serde_json` bytes of the phase result.
        payload: Vec<u8>,
    },
    /// A chunk completed without a journaled payload (payload journaling
    /// disabled); replay must recompute it.
    ChunkDone {
        /// Which question.
        question: QuestionId,
        /// Which fan-out phase.
        phase: JournalPhase,
        /// Chunk id within the phase.
        chunk: u32,
    },
    /// Cumulative retry budget spent in `phase` (monotone, so replaying
    /// an old record under a newer one is a no-op).
    RetrySpent {
        /// Which question.
        question: QuestionId,
        /// Which fan-out phase.
        phase: JournalPhase,
        /// Total retries spent so far in this phase.
        spent: u32,
    },
    /// The question finished with an answer: `payload` is the
    /// `serde_json` encoding of the final `RankedAnswers`; `complete` is
    /// false for degraded (partial-coverage) answers.
    Answered {
        /// Which question.
        question: QuestionId,
        /// Opaque `serde_json` bytes of the final ranked answers.
        payload: Vec<u8>,
        /// Whether coverage was complete (false for degraded answers).
        complete: bool,
    },
    /// The question terminated without an answer (coordination error);
    /// it no longer occupies an admission slot.
    Abandoned {
        /// Which question.
        question: QuestionId,
    },
    /// Leadership changed hands: all subsequent frames carry `term`.
    TermChange {
        /// The new (strictly higher) term.
        term: u64,
    },
    /// The rebalancer minted a migration plan: `steps` is the ordered
    /// `(sub, from, to)` ownership transfers. Journaled *before* any step
    /// applies, so a successor knows the full intent.
    RebalancePlanned {
        /// Plan id, unique per coordinator incarnation.
        plan: u64,
        /// Ordered transfers as raw ids: `(sub_collection, from, to)`.
        steps: Vec<(u32, u32, u32)>,
    },
    /// One step of a planned migration was applied: `sub` is now owned by
    /// `to`. Replaying after the fact is a no-op (idempotent fold), which
    /// makes a crash-resumed plan exactly-once.
    RebalanceStepDone {
        /// The plan the step belongs to.
        plan: u64,
        /// The migrated sub-collection.
        sub: u32,
        /// Its new owner.
        to: u32,
    },
    /// Every step of `plan` has applied and the convergence invariant was
    /// re-verified: each sub-collection owned by exactly one live node.
    RebalanceConverged {
        /// The completed plan.
        plan: u64,
    },
}

impl JournalRecord {
    /// The question this record concerns, if any.
    pub fn question(&self) -> Option<QuestionId> {
        match self {
            JournalRecord::Admitted { question } => Some(question.id),
            JournalRecord::Scheduled { question, .. }
            | JournalRecord::ChunkGranted { question, .. }
            | JournalRecord::PartialResult { question, .. }
            | JournalRecord::ChunkDone { question, .. }
            | JournalRecord::RetrySpent { question, .. }
            | JournalRecord::Answered { question, .. }
            | JournalRecord::Abandoned { question } => Some(*question),
            JournalRecord::TermChange { .. }
            | JournalRecord::RebalancePlanned { .. }
            | JournalRecord::RebalanceStepDone { .. }
            | JournalRecord::RebalanceConverged { .. } => None,
        }
    }
}

/// A record stamped with the term of the coordinator that wrote it —
/// exactly what one on-disk frame's payload encodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Framed {
    /// Term of the writing coordinator (fencing token).
    pub term: u64,
    /// The decision itself.
    pub record: JournalRecord,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json() {
        let records = vec![
            JournalRecord::Admitted {
                question: Question::new(QuestionId::new(7), "where is the coordinator"),
            },
            JournalRecord::Scheduled {
                question: QuestionId::new(7),
                point: SchedulingPoint::Pr,
                nodes: vec![0, 3],
            },
            JournalRecord::PartialResult {
                question: QuestionId::new(7),
                phase: JournalPhase::Ap,
                chunk: 2,
                payload: b"[1,2,3]".to_vec(),
            },
            JournalRecord::TermChange { term: 4 },
        ];
        for rec in records {
            let framed = Framed {
                term: 3,
                record: rec,
            };
            let bytes = serde_json::to_vec(&framed).unwrap();
            let back: Framed = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(back, framed);
        }
    }

    #[test]
    fn question_accessor() {
        assert_eq!(
            JournalRecord::Abandoned {
                question: QuestionId::new(9)
            }
            .question(),
            Some(QuestionId::new(9))
        );
        assert_eq!(JournalRecord::TermChange { term: 1 }.question(), None);
    }
}
