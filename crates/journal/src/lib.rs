#![warn(missing_docs)]
//! Durable write-ahead question journal for the coordinator.
//!
//! The paper's meta-scheduler holds all admission and migration state in
//! the coordinating node's memory; if that node dies, every in-flight
//! question dies with it. This crate gives the coordinator a durable spine:
//! every decision that matters for resuming a question — admission, the
//! node choices at the three scheduling points, chunk grants, partial
//! results and final answers — is appended to an on-disk journal *before*
//! (or atomically with) the action it records, so a restarted or promoted
//! coordinator can [`replay`](crate::replay) the journal and *resume*
//! in-flight questions instead of restarting them.
//!
//! Design constraints, in order:
//!
//! 1. **Crash-safe by construction.** Records are length-prefixed and
//!    CRC-32 checksummed; a crash can only ever leave a *torn tail* on the
//!    final segment, which [`Journal::open`] truncates away. A crash is a
//!    prefix of the log — there is no state outside it.
//! 2. **Deterministic replay.** [`replay::RecoveredState::apply`] is
//!    monotone and idempotent (inserts into sets/maps, `max` on terms), so
//!    `replay ∘ replay = replay` — the property the proptests in
//!    `tests/journal_props.rs` pin down.
//! 3. **Fencing.** Every frame carries the writer's *term*. The journal
//!    tracks the highest term it has witnessed and rejects appends from
//!    any older term with [`JournalError::Fenced`]; a zombie ex-leader
//!    cannot smuggle grants past a promoted standby.
//! 4. **No new dependencies.** The CRC-32 (IEEE polynomial) is hand-rolled
//!    in [`frame`]; payloads are `serde_json` like every other wire format
//!    in the workspace.

pub mod frame;
pub mod record;
pub mod replay;
pub mod segment;

pub use frame::crc32;
pub use record::{Framed, JournalPhase, JournalRecord, SchedulingPoint};
pub use replay::{QuestionRecovery, RebalanceRecovery, RecoveredState, ReplayStats};
pub use segment::{read_segment, Journal, JournalError, JournalOptions, Recovery};
