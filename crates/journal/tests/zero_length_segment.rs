//! Regression guard: a zero-length segment file must replay as empty.
//!
//! `Journal::rotate` runs `create_new(segment-N+1)` → dir fsync → first
//! append as three separate steps, so a crash can leave a segment file of
//! exactly zero bytes on disk. That file is a legitimate journal state —
//! the log simply ends at the previous segment — and replay must treat it
//! as empty, never as corruption: erroring here would brick recovery at
//! the precise moment (crash mid-rotation) the journal exists to survive.

use journal::{Journal, JournalError, JournalOptions, JournalRecord};
use qa_types::{Question, QuestionId};
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqa-journal-zls-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn admit(id: u32) -> JournalRecord {
    JournalRecord::Admitted {
        question: Question::new(QuestionId::new(id), format!("question {id}")),
    }
}

/// The crash-mid-rotation shape: real frames in segment 0, a zero-length
/// segment 1 created but never appended to.
#[test]
fn zero_length_final_segment_replays_as_empty() {
    let dir = tmp("final");
    {
        let (mut j, _) = Journal::open(&dir).unwrap();
        for i in 0..3 {
            j.append(1, &admit(i)).unwrap();
        }
    }
    fs::write(dir.join("segment-000001.dqaj"), b"").unwrap();

    let (mut j, rec) = Journal::open(&dir).unwrap();
    assert_eq!(rec.stats.records, 3, "all pre-crash frames replay");
    assert_eq!(rec.stats.segments, 2, "the empty segment is scanned");
    assert_eq!(rec.stats.truncated_bytes, 0, "empty is not torn");
    assert_eq!(rec.state.gate_occupancy(), 3);

    // The journal stays appendable, and the new frame lands in (and
    // replays from) the previously-empty segment.
    j.append(1, &admit(9)).unwrap();
    drop(j);
    let (_, rec) = Journal::open(&dir).unwrap();
    assert_eq!(rec.stats.records, 4);
    assert!(rec.state.get(QuestionId::new(9)).is_some());
}

/// A zero-length segment in the *middle* of the log (possible when the
/// crash hit before the first append and a later open already rotated
/// onward) is likewise empty, not corrupt — torn/corrupt detection only
/// fires on partial frames, which an empty file cannot contain.
#[test]
fn zero_length_middle_segment_replays_as_empty() {
    let dir = tmp("middle");
    let opts = JournalOptions {
        max_segment_bytes: 128,
        fsync_every: None,
    };
    {
        let (mut j, _) = Journal::open_with(&dir, opts).unwrap();
        for i in 0..10 {
            j.append(1, &admit(i)).unwrap();
        }
    }
    // Splice an empty segment between the real ones by renumbering: the
    // highest-numbered real segment moves up one slot.
    let mut segs: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("segment-"))
        .collect();
    segs.sort();
    assert!(segs.len() > 1, "rotation expected, got {segs:?}");
    let last = segs.last().unwrap().clone();
    let idx: u64 = last
        .trim_start_matches("segment-")
        .trim_end_matches(".dqaj")
        .parse()
        .unwrap();
    fs::rename(
        dir.join(&last),
        dir.join(format!("segment-{:06}.dqaj", idx + 1)),
    )
    .unwrap();
    fs::write(dir.join(&last), b"").unwrap();

    match Journal::open_with(&dir, opts) {
        Ok((_, rec)) => {
            assert_eq!(rec.stats.records, 10, "no frame lost to the gap");
            assert_eq!(rec.stats.segments as usize, segs.len() + 1);
        }
        Err(JournalError::Corrupt { segment, .. }) => {
            panic!("zero-length segment misread as corruption in {segment}")
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

/// A journal that is *only* a zero-length segment (crash before any
/// append ever succeeded) opens as empty and accepts its first append.
#[test]
fn journal_of_one_empty_segment_opens_clean() {
    let dir = tmp("only");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("segment-000000.dqaj"), b"").unwrap();
    let (mut j, rec) = Journal::open(&dir).unwrap();
    assert!(rec.state.is_empty());
    assert_eq!(rec.stats.records, 0);
    assert_eq!(rec.stats.segments, 1);
    j.append(1, &admit(0)).unwrap();
    drop(j);
    let (_, rec) = Journal::open(&dir).unwrap();
    assert_eq!(rec.stats.records, 1);
}
