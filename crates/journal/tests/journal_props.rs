//! Property tests for the journal's two safety pillars:
//!
//! 1. **Replay idempotence** — `replay ∘ replay = replay`: folding a frame
//!    sequence into [`RecoveredState`] twice yields the state of folding
//!    it once, and re-opening a journal reproduces the first open's state.
//! 2. **Torn-tail recovery** — truncating the journal at *every* byte
//!    offset inside the last record still opens successfully and drops
//!    exactly that record, nothing more.
//! 3. **Mid-segment corruption detection** — flipping any byte of any
//!    non-tail frame makes `open` fail with `CorruptFrame` (never a
//!    silent truncation of the valid records behind the damage, and
//!    never a successful open over damaged bytes).

use journal::{
    Framed, Journal, JournalError, JournalOptions, JournalPhase, JournalRecord, RecoveredState,
    SchedulingPoint,
};
use proptest::prelude::*;
use qa_types::{Question, QuestionId};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dqa-journal-props-{}-{name}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn phase(ap: bool) -> JournalPhase {
    if ap {
        JournalPhase::Ap
    } else {
        JournalPhase::Pr
    }
}

fn record_strategy() -> impl Strategy<Value = JournalRecord> {
    let q = 0u32..8;
    prop_oneof![
        q.clone().prop_map(|id| JournalRecord::Admitted {
            question: Question::new(QuestionId::new(id), format!("question {id}")),
        }),
        (q.clone(), 0usize..3, prop::collection::vec(0u32..6, 1..4)).prop_map(
            |(id, point, nodes)| JournalRecord::Scheduled {
                question: QuestionId::new(id),
                point: [
                    SchedulingPoint::Qa,
                    SchedulingPoint::Pr,
                    SchedulingPoint::Ap
                ][point],
                nodes,
            }
        ),
        (q.clone(), any::<bool>(), 0u32..4, 0u32..6).prop_map(|(id, ap, chunk, node)| {
            JournalRecord::ChunkGranted {
                question: QuestionId::new(id),
                phase: phase(ap),
                chunk,
                node,
            }
        }),
        (
            q.clone(),
            any::<bool>(),
            0u32..4,
            prop::collection::vec(any::<u8>(), 0..24)
        )
            .prop_map(|(id, ap, chunk, payload)| JournalRecord::PartialResult {
                question: QuestionId::new(id),
                phase: phase(ap),
                chunk,
                payload,
            }),
        (q.clone(), any::<bool>(), 0u32..4).prop_map(|(id, ap, chunk)| {
            JournalRecord::ChunkDone {
                question: QuestionId::new(id),
                phase: phase(ap),
                chunk,
            }
        }),
        (q.clone(), any::<bool>(), 0u32..5).prop_map(|(id, ap, spent)| {
            JournalRecord::RetrySpent {
                question: QuestionId::new(id),
                phase: phase(ap),
                spent,
            }
        }),
        (
            q.clone(),
            prop::collection::vec(any::<u8>(), 0..24),
            any::<bool>()
        )
            .prop_map(|(id, payload, complete)| JournalRecord::Answered {
                question: QuestionId::new(id),
                payload,
                complete,
            }),
        q.prop_map(|id| JournalRecord::Abandoned {
            question: QuestionId::new(id),
        }),
    ]
}

fn fold(records: &[JournalRecord]) -> RecoveredState {
    let mut state = RecoveredState::new();
    for record in records {
        state.apply(&Framed {
            term: 1,
            record: record.clone(),
        });
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// replay ∘ replay = replay, both in memory and across disk re-opens.
    #[test]
    fn replay_is_idempotent(records in prop::collection::vec(record_strategy(), 1..40)) {
        // In memory: applying the sequence twice changes nothing.
        let once = fold(&records);
        let mut twice = once.clone();
        for record in &records {
            twice.apply(&Framed { term: 1, record: record.clone() });
        }
        prop_assert_eq!(&once, &twice);

        // On disk: a second open replays to the identical state.
        let dir = tmp("idem");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            for record in &records {
                j.append(1, record).unwrap();
            }
        }
        let (_, first) = Journal::open(&dir).unwrap();
        let (_, second) = Journal::open(&dir).unwrap();
        prop_assert_eq!(&first.state, &second.state);
        prop_assert_eq!(&first.state, &once);
        prop_assert_eq!(first.stats.records, records.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncating at every byte offset of the last record recovers the
    /// journal minus exactly that record; truncating at the frame
    /// boundary keeps everything.
    #[test]
    fn torn_tail_recovers_at_every_offset(
        records in prop::collection::vec(record_strategy(), 1..12),
    ) {
        let dir = tmp("torn");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            for record in &records {
                j.append(1, record).unwrap();
            }
        }
        let segment = dir.join("segment-000000.dqaj");
        let full = fs::read(&segment).unwrap();
        let frames = journal::read_segment(&segment).unwrap();
        prop_assert_eq!(frames.len(), records.len());
        let last_start = frames.last().map(|(off, _)| *off).unwrap() as usize;
        let want_prefix = fold(&records[..records.len() - 1]);

        let scratch = tmp("torn-scratch");
        fs::create_dir_all(&scratch).unwrap();
        let cut_path = scratch.join("segment-000000.dqaj");
        for cut in last_start..full.len() {
            fs::write(&cut_path, &full[..cut]).unwrap();
            let (_, rec) = Journal::open(&scratch).unwrap();
            prop_assert_eq!(
                rec.stats.records,
                records.len() as u64 - 1,
                "cut at byte {} must drop exactly the torn record",
                cut
            );
            prop_assert_eq!(rec.stats.truncated_bytes, (cut - last_start) as u64);
            prop_assert_eq!(&rec.state, &want_prefix);
        }
        // Cutting exactly at the end is not a tear at all.
        fs::write(&cut_path, &full).unwrap();
        let (_, rec) = Journal::open(&scratch).unwrap();
        prop_assert_eq!(rec.stats.records, records.len() as u64);
        prop_assert_eq!(rec.stats.truncated_bytes, 0u64);
        prop_assert_eq!(&rec.state, &fold(&records));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&scratch);
    }

    /// Replay across segment-rotation boundaries: with a tiny segment cap
    /// the writer rotates mid-sequence (the path the dir-fsync fix in
    /// `Journal::rotate` hardens), and reopening must fold every record in
    /// order across all segments to the same state as one flat replay —
    /// through a *fresh* `Journal::open_with` that discovers the segments
    /// from the directory alone.
    #[test]
    fn replay_crosses_rotation_boundaries(
        records in prop::collection::vec(record_strategy(), 8..40),
        max_segment in 96u64..512,
    ) {
        let dir = tmp("rotate");
        let opts = JournalOptions { max_segment_bytes: max_segment, fsync_every: Some(1) };
        {
            let (mut j, _) = Journal::open_with(&dir, opts).unwrap();
            for record in &records {
                j.append(1, record).unwrap();
            }
        }
        let segment_count = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .is_ok_and(|e| e.file_name().to_string_lossy().ends_with(".dqaj"))
            })
            .count();
        prop_assert!(
            segment_count > 1,
            "cap {} bytes over {} records must rotate",
            max_segment,
            records.len()
        );
        let (_, rec) = Journal::open_with(&dir, opts).unwrap();
        prop_assert_eq!(rec.stats.segments as usize, segment_count);
        prop_assert_eq!(rec.stats.records, records.len() as u64);
        prop_assert_eq!(rec.stats.truncated_bytes, 0u64);
        prop_assert_eq!(&rec.state, &fold(&records));
        // And the reopened journal keeps appending into the *latest*
        // segment rather than resurrecting an earlier one.
        {
            let (mut j, _) = Journal::open_with(&dir, opts).unwrap();
            j.append(1, &JournalRecord::Abandoned { question: QuestionId::new(0) }).unwrap();
        }
        let (_, after) = Journal::open_with(&dir, opts).unwrap();
        prop_assert_eq!(after.stats.records, records.len() as u64 + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flipping one byte anywhere inside a *non-tail* frame must surface
    /// as [`JournalError::CorruptFrame`]: a checksum-valid frame still
    /// sits behind the damage, so neither a successful open nor a
    /// torn-tail truncation is acceptable — both would silently lose or
    /// accept corrupted records.
    #[test]
    fn byte_flip_in_non_tail_frame_is_corrupt_frame(
        records in prop::collection::vec(record_strategy(), 2..12),
        frame_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let dir = tmp("flip");
        {
            let (mut j, _) = Journal::open(&dir).unwrap();
            for record in &records {
                j.append(1, record).unwrap();
            }
        }
        let segment = dir.join("segment-000000.dqaj");
        let clean = fs::read(&segment).unwrap();
        let frames = journal::read_segment(&segment).unwrap();
        prop_assert_eq!(frames.len(), records.len());
        // Pick any frame except the last, then any byte inside it
        // (header and payload alike are fair game).
        let victim = ((frame_frac * (frames.len() - 1) as f64) as usize)
            .min(frames.len() - 2);
        let start = frames[victim].0 as usize;
        let end = frames[victim + 1].0 as usize;
        let pos = start + ((byte_frac * (end - start) as f64) as usize).min(end - start - 1);
        let mut bytes = clean.clone();
        bytes[pos] ^= mask;
        fs::write(&segment, &bytes).unwrap();

        match Journal::open(&dir) {
            Err(JournalError::CorruptFrame { offset, .. }) => {
                prop_assert!(
                    offset <= pos as u64,
                    "damage at byte {} blamed on a later frame (offset {})",
                    pos,
                    offset
                );
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} gave {other:?}, want CorruptFrame"
                )));
            }
            Ok(_) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} opened successfully"
                )));
            }
        }
        // Detection must not destroy evidence: the segment keeps every
        // byte for offline repair.
        prop_assert_eq!(fs::metadata(&segment).unwrap().len(), bytes.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }
}
