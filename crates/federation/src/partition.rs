//! Corpus partitioning across coordinator shards.
//!
//! The unit of partitioning is the *sub-collection* — the paper's own
//! granularity for distributing TREC data (§2) — assigned round-robin so
//! any shard count balances within one sub-collection. Documents keep
//! their global [`DocId`](qa_types::DocId)s and sub-collection ids, so
//! answers merged across shards still point into the one logical corpus
//! and per-shard indexes stay addressable by the unchanged
//! `SubCollectionId`s (missing sub-collections simply index empty).

use qa_types::Document;

/// Split `documents` into `shards` disjoint partitions by sub-collection
/// (`sub_collection % shards`). Every document lands in exactly one
/// partition; ids are preserved verbatim.
pub fn partition_documents(documents: &[Document], shards: usize) -> Vec<Vec<Document>> {
    let shards = shards.max(1);
    let mut parts: Vec<Vec<Document>> = (0..shards).map(|_| Vec::new()).collect();
    for d in documents {
        let owner = d.sub_collection.index() % shards;
        parts[owner].push(d.clone());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::{DocId, SubCollectionId};

    fn doc(id: u32, sc: u32) -> Document {
        Document {
            id: DocId::new(id),
            sub_collection: SubCollectionId::new(sc),
            title: format!("t{id}"),
            paragraphs: vec![format!("body {id}")],
        }
    }

    #[test]
    fn partitions_are_disjoint_and_conserving() {
        let docs: Vec<Document> = (0..12).map(|i| doc(i, i % 4)).collect();
        let parts = partition_documents(&docs, 2);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, docs.len(), "no document lost or duplicated");
        // Sub-collections 0 and 2 land on shard 0; 1 and 3 on shard 1.
        assert!(parts[0].iter().all(|d| d.sub_collection.index() % 2 == 0));
        assert!(parts[1].iter().all(|d| d.sub_collection.index() % 2 == 1));
    }

    #[test]
    fn ids_survive_partitioning() {
        let docs: Vec<Document> = (0..6).map(|i| doc(i, i)).collect();
        let parts = partition_documents(&docs, 3);
        for p in &parts {
            for d in p {
                assert_eq!(docs[d.id.index()].sub_collection, d.sub_collection);
            }
        }
    }

    #[test]
    fn one_shard_degenerates_to_the_whole_corpus() {
        let docs: Vec<Document> = (0..5).map(|i| doc(i, i % 2)).collect();
        let parts = partition_documents(&docs, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), docs.len());
    }
}
