//! The broker tier's single sanctioned wall-clock source.
//!
//! Like `dqa-runtime`, this crate is covered by the `raw-instant` dqa-lint
//! rule: every `Instant` is constructed through [`now_instant`], so the
//! wall-time/virtual-time boundary stays auditable — the DES mirror in
//! [`crate::sim`] must never read wall time, and the thread-backed broker
//! reads it *here*.

use std::time::Instant;

/// The one place in `federation` allowed to read the wall clock.
///
/// Holding, comparing and adding to `Instant` values remains legal
/// everywhere; only *construction* is funnelled through this function.
pub fn now_instant() -> Instant {
    // dqa-lint: allow(raw-instant)
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_instant_is_monotone() {
        let a = now_instant();
        let b = now_instant();
        assert!(b >= a);
    }
}
