//! The thread-backed federation broker.
//!
//! [`FederationBroker::start`] partitions a corpus across `shards`
//! coordinator shards (each a full [`Cluster`] reusing the existing
//! admission/journal/failover machinery), optionally pairs every shard
//! with a replica over the same partition, and scatter-gathers every
//! question:
//!
//! 1. **Scatter** — the question is offered to every shard's primary over
//!    a bounded request queue, with a per-shard deadline derived from the
//!    question deadline ([`FederationPolicy::shard_deadline`]).
//! 2. **Hedge** — a shard slower than `max(hedge_after, EWMA tail)` gets
//!    one budgeted hedged retry against its replica; whichever reply
//!    lands first wins, the loser is discarded (first-result-wins dedup,
//!    like the coordinator's chunk speculation).
//! 3. **Breaker** — consecutive shard failures, or a saturated
//!    `dqa_node_load` gauge in the shard's own registry, open a per-shard
//!    circuit breaker: primary traffic routes to the replica (or the
//!    shard sits questions out) for a cooldown.
//! 4. **Merge** — whatever responded is merged deterministically
//!    ([`RankedAnswers::merge`]) into a Coverage-annotated federation
//!    answer. A responding quorum short of `policy.quorum` is *counted*,
//!    never errored; zero responders with at least one admission
//!    rejection aggregates a max-over-shards retry-after hint; zero
//!    responders otherwise yields an empty answer with zero coverage.
//!    A question is never dropped silently and never returns an error.
//!
//! Federation faults ([`faults::FaultEvent::ShardDown`] /
//! `ShardPartition` / `BrokerCrash`) are applied broker-side from the
//! same [`FaultSchedule`] vocabulary the lower tiers use, mapped to wall
//! time by `fault_time_scale` exactly as the runtime chaos driver maps
//! node faults.

use crate::breaker::ShardBreaker;
use crate::clock;
use crate::estimator::LatencyEstimator;
use crate::partition::partition_documents;
use crate::windows::FaultWindows;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use dqa_obs::{
    names, splitmix64, CausalSpan, CauseSet, Clock, DqaMetrics, MetricsRegistry, TraceRecorder,
    WallClock, DEFAULT_FLIGHT_RECORDER_CAPACITY,
};
use dqa_runtime::{Admission, Cluster, ClusterConfig};
use faults::FaultSchedule;
use ir_engine::{DocumentStore, ParagraphRetriever, RetrievalConfig, ShardedIndex};
use nlp::NamedEntityRecognizer;
use qa_types::{
    Coverage, Document, FederationPolicy, OverloadPolicy, Question, QuestionOutcome, RankedAnswers,
    ShardReport, ShardStatus,
};
use rebalance::ElasticConfig;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle broker worker waits on its queue before re-checking
/// the shutdown flag.
const WORKER_POLL: Duration = Duration::from_millis(25);

/// Broker configuration.
#[derive(Debug)]
pub struct FederationConfig {
    /// Coordinator shards the corpus is partitioned across.
    pub shards: usize,
    /// Worker nodes inside each shard cluster.
    pub nodes_per_shard: usize,
    /// Pair every shard with a replica cluster over the same partition
    /// (the hedge target and breaker bypass).
    pub replicated: bool,
    /// Scatter-gather policy (quorum, hedging, breakers, deadlines).
    pub policy: FederationPolicy,
    /// Admission policy applied inside every shard cluster.
    pub overload: OverloadPolicy,
    /// Registry for the broker's own federation metrics (`dqa_shard_*`,
    /// hedge/merge/quorum counters). Each shard cluster records into its
    /// own private registry — that separation is what lets the breaker
    /// read a single shard's load gauges.
    pub metrics: Option<MetricsRegistry>,
    /// Fault schedule; only the federation-tier events are consumed here.
    pub faults: FaultSchedule,
    /// Seconds of wall clock per virtual schedule second (the same
    /// mapping the runtime chaos driver uses).
    pub fault_time_scale: f64,
    /// Broker worker threads per shard target (primary and replica
    /// each get their own pool) — the shard's concurrent-question lane
    /// count as seen from the broker.
    pub workers_per_shard: usize,
    /// Bound of each shard target's request queue.
    pub queue_per_shard: usize,
    /// Identity seed for causal-span trace ids. The broker's own spans
    /// (scatter, per-shard gather, hedges, merge) use it directly; each
    /// shard cluster gets a deterministically derived sub-seed so its
    /// internal question trees stay distinct traces.
    pub trace_seed: u64,
    /// Run every shard cluster under elastic membership (ownership-map
    /// chunk routing, optional warm standbys) — [`ClusterConfig::elastic`]
    /// applied per shard.
    pub elastic: Option<ElasticConfig>,
}

impl FederationConfig {
    /// Defaults for `shards` shards: 2 nodes per shard, replicated,
    /// majority quorum, permissive admission.
    pub fn new(shards: usize) -> FederationConfig {
        FederationConfig {
            shards: shards.max(1),
            nodes_per_shard: 2,
            replicated: true,
            policy: FederationPolicy::for_shards(shards.max(1)),
            overload: OverloadPolicy::default(),
            metrics: None,
            faults: FaultSchedule::none(),
            fault_time_scale: 1.0,
            workers_per_shard: 2,
            queue_per_shard: 16,
            trace_seed: 0,
            elastic: None,
        }
    }
}

/// The merged result of one scatter-gathered question.
#[derive(Debug)]
pub struct FederatedAnswer {
    /// Deterministically merged global ranking.
    pub answers: RankedAnswers,
    /// Shard-level coverage composed with the responders' own coverage
    /// ([`Coverage::and`]): any lost shard or shed phase shows up here.
    pub coverage: Coverage,
    /// Whether at least `policy.quorum` shards responded.
    pub quorum_met: bool,
    /// Exactly one report per shard — the conservation ledger.
    pub shards: Vec<ShardReport>,
    /// Broker-observed end-to-end latency, seconds.
    pub latency_secs: f64,
}

/// Outcome of offering one question to the broker. Mirrors the shard
/// clusters' [`Admission`] contract one tier up: a question is either
/// answered (possibly with degraded coverage) or rejected with a
/// retry-after hint — never errored, never silently dropped.
#[derive(Debug)]
pub enum FederatedAdmission {
    /// Merged (possibly partial) federation answer.
    Answered(Box<FederatedAnswer>),
    /// Every shard refused admission (or the broker itself is down); the
    /// hint aggregates the shard hints (max over shards), so a client
    /// backing off by it clears the *slowest* gate, not just the first.
    Rejected {
        /// Aggregated client back-off hint.
        retry_after: Duration,
    },
}

impl FederatedAdmission {
    /// Three-way outcome classification (for ledgers and reports).
    pub fn outcome(&self) -> QuestionOutcome {
        match self {
            FederatedAdmission::Answered(a) if a.coverage.is_complete() => {
                QuestionOutcome::Answered
            }
            FederatedAdmission::Answered(_) => QuestionOutcome::Degraded,
            FederatedAdmission::Rejected { .. } => QuestionOutcome::Rejected,
        }
    }

    /// The merged answer, when one was produced.
    pub fn answer(&self) -> Option<&FederatedAnswer> {
        match self {
            FederatedAdmission::Answered(a) => Some(a),
            FederatedAdmission::Rejected { .. } => None,
        }
    }
}

/// Which cluster of a shard served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Primary,
    Replica,
}

struct ShardRequest {
    question: Question,
    reply: Sender<ShardReply>,
    origin: Origin,
}

struct ShardReply {
    origin: Origin,
    admission: Admission,
}

/// One shard target (a cluster plus its broker-side worker pool).
struct ShardHandle {
    cluster: Arc<Cluster>,
    tx: Option<Sender<ShardRequest>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardHandle {
    fn start(
        cluster: Arc<Cluster>,
        workers: usize,
        queue: usize,
        shutdown: Arc<AtomicBool>,
        shard: u32,
        role: &str,
    ) -> ShardHandle {
        let (tx, rx) = bounded::<ShardRequest>(queue.max(1));
        let mut pool = Vec::with_capacity(workers.max(1));
        for w in 0..workers.max(1) {
            let cluster = Arc::clone(&cluster);
            let rx = rx.clone();
            let shutdown = Arc::clone(&shutdown);
            if let Ok(h) = std::thread::Builder::new()
                .name(format!("fed-shard-{shard}-{role}-{w}"))
                .spawn(move || run_worker(cluster, rx, shutdown))
            {
                pool.push(h);
            }
        }
        ShardHandle {
            cluster,
            tx: Some(tx),
            workers: pool,
        }
    }

    fn sender(&self) -> Option<&Sender<ShardRequest>> {
        self.tx.as_ref()
    }

    fn stop(&mut self) {
        // Dropping the sender disconnects the queue; workers drain and
        // exit on Disconnected (or on the shutdown flag at the next poll).
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn run_worker(cluster: Arc<Cluster>, rx: Receiver<ShardRequest>, shutdown: Arc<AtomicBool>) {
    loop {
        match rx.recv_timeout(WORKER_POLL) {
            Ok(req) => {
                let reply = ShardReply {
                    origin: req.origin,
                    admission: cluster.submit(&req.question),
                };
                // The gatherer may have moved on (deadline passed, or the
                // other lane won the hedge) — a dead reply channel is the
                // expected dedup path, not an error.
                let _ = req.reply.send_timeout(reply, WORKER_POLL);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

struct Shard {
    id: u32,
    primary: ShardHandle,
    replica: Option<ShardHandle>,
    breaker: ShardBreaker,
    estimator: LatencyEstimator,
}

/// Tracer-clock timestamps of one shard gather, collected inside
/// `gather_one` and turned into causal spans once the scatter's root
/// span id is known.
struct GatherTiming {
    /// Tracer seconds when the gather began.
    started: f64,
    /// Tracer seconds when the reply (or the timeout) landed.
    finished: f64,
    /// Tracer seconds the hedged retry was issued, when one was.
    hedged_at: Option<f64>,
}

struct GatherOutcome {
    report: ShardReport,
    answer: Option<(RankedAnswers, Coverage)>,
    retry_after: Option<Duration>,
    timing: GatherTiming,
}

/// A running federation: shard clusters, worker pools, breakers and the
/// broker-level metric surface.
pub struct FederationBroker {
    cfg: FederationConfig,
    shards: Vec<Shard>,
    metrics: DqaMetrics,
    windows: FaultWindows,
    shutdown: Arc<AtomicBool>,
    started: std::time::Instant,
    tracer: Arc<TraceRecorder>,
}

impl FederationBroker {
    /// Partition `documents` (indexed over `sub_collections`
    /// sub-collections) across `cfg.shards` shard clusters and start the
    /// broker tier over them.
    pub fn start(
        documents: &[Document],
        sub_collections: usize,
        cfg: FederationConfig,
    ) -> FederationBroker {
        let registry = cfg.metrics.clone().unwrap_or_else(MetricsRegistry::new);
        let metrics = DqaMetrics::new(&registry);
        let shutdown = Arc::new(AtomicBool::new(false));
        let parts = partition_documents(documents, cfg.shards);
        let mut shards = Vec::with_capacity(parts.len());
        for (i, part) in parts.iter().enumerate() {
            let index = Arc::new(ShardedIndex::build(part, sub_collections));
            let store = Arc::new(DocumentStore::new(part.clone()));
            let start_cluster = |role_salt: u64| {
                let retriever = ParagraphRetriever::new(
                    Arc::clone(&index),
                    Arc::clone(&store),
                    RetrievalConfig::default(),
                );
                let shard_cfg = ClusterConfig {
                    nodes: cfg.nodes_per_shard.max(1),
                    overload: cfg.overload,
                    metrics: Some(MetricsRegistry::new()),
                    // Distinct per-target sub-seed: the shard's internal
                    // question trees must not collide with the broker's
                    // (or each other's) traces.
                    trace_seed: cfg.trace_seed ^ splitmix64(((i as u64) << 1) | role_salt),
                    elastic: cfg.elastic.clone(),
                    ..ClusterConfig::default()
                };
                Arc::new(Cluster::start(
                    retriever,
                    NamedEntityRecognizer::standard(),
                    shard_cfg,
                ))
            };
            let primary = ShardHandle::start(
                start_cluster(0),
                cfg.workers_per_shard,
                cfg.queue_per_shard,
                Arc::clone(&shutdown),
                i as u32,
                "p",
            );
            let replica = cfg.replicated.then(|| {
                ShardHandle::start(
                    start_cluster(1),
                    cfg.workers_per_shard,
                    cfg.queue_per_shard,
                    Arc::clone(&shutdown),
                    i as u32,
                    "r",
                )
            });
            shards.push(Shard {
                id: i as u32,
                primary,
                replica,
                breaker: ShardBreaker::new(
                    cfg.policy.breaker_failures,
                    cfg.policy.breaker_cooldown_secs,
                ),
                estimator: LatencyEstimator::new(),
            });
        }
        let windows = FaultWindows::from_schedule(&cfg.faults);
        let tracer = Arc::new(TraceRecorder::new(
            Arc::new(WallClock::new()) as Arc<dyn Clock>,
            cfg.trace_seed,
            DEFAULT_FLIGHT_RECORDER_CAPACITY,
            registry.counter(names::TRACE_DROPPED_TOTAL, &[]),
        ));
        FederationBroker {
            cfg,
            shards,
            metrics,
            windows,
            shutdown,
            started: clock::now_instant(),
            tracer,
        }
    }

    /// The broker's causal-span recorder: one `federated` root per
    /// scatter-gathered question, with per-shard gather spans, hedge
    /// spans and the merge step as children.
    pub fn tracer(&self) -> &Arc<TraceRecorder> {
        &self.tracer
    }

    /// A shard's primary-cluster span recorder (its internal question
    /// trees, under the shard's derived sub-seed).
    pub fn shard_tracer(&self, shard: usize) -> Option<&Arc<TraceRecorder>> {
        self.shards.get(shard).map(|s| s.primary.cluster.tracer())
    }

    /// The broker-level metrics registry (federation counters and
    /// `dqa_shard_*` families).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.metrics.registry()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A shard's primary-cluster registry (its node-level gauges and
    /// question counters), for reports and tests.
    pub fn shard_registry(&self, shard: usize) -> Option<&MetricsRegistry> {
        self.shards.get(shard).map(|s| s.primary.cluster.metrics())
    }

    /// Wall seconds since the broker started.
    fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Virtual schedule time corresponding to now (the inverse of the
    /// chaos driver's `virtual × scale → wall` mapping).
    fn virtual_now(&self) -> f64 {
        let scale = self.cfg.fault_time_scale.max(1e-9);
        self.elapsed_secs() / scale
    }

    /// Scatter one question to every shard, hedge stragglers, and merge
    /// whatever responded. See the module docs for the full contract.
    pub fn ask(&self, question: &Question) -> FederatedAdmission {
        let scatter_start = clock::now_instant();
        let enqueued_secs = self.tracer.now();
        let mut broker_paused = false;
        // Broker-tier faults: a transient crash holds the question until
        // rejoin (the client sees latency, not loss); a permanent crash
        // refuses it with a retry hint.
        if let Some(rejoin) = self.windows.broker_down(self.virtual_now()) {
            if rejoin.is_finite() {
                let wake = rejoin * self.cfg.fault_time_scale.max(1e-9);
                let pause = wake - self.elapsed_secs();
                if pause > 0.0 {
                    broker_paused = true;
                    std::thread::sleep(Duration::from_secs_f64(pause));
                }
            } else {
                return FederatedAdmission::Rejected {
                    retry_after: Duration::from_secs_f64(
                        self.cfg.overload.retry_after_secs.max(0.0),
                    ),
                };
            }
        }
        let admitted_secs = self.tracer.now();
        let deadline_secs = self
            .cfg
            .policy
            .shard_deadline(self.cfg.overload.deadline_secs);
        let budget = AtomicUsize::new(self.cfg.policy.hedge_budget);
        let budget = &budget;
        let outcomes: Vec<GatherOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|sh| scope.spawn(move || self.gather_one(sh, question, deadline_secs, budget)))
                .collect();
            handles
                .into_iter()
                .zip(self.shards.iter())
                .map(|(h, sh)| {
                    h.join().unwrap_or_else(|_| GatherOutcome {
                        report: ShardReport {
                            shard: sh.id,
                            status: ShardStatus::Failed,
                            latency_secs: 0.0,
                            hedged: false,
                            hedge_won: false,
                        },
                        answer: None,
                        retry_after: None,
                        timing: GatherTiming {
                            started: admitted_secs,
                            finished: self.tracer.now(),
                            hedged_at: None,
                        },
                    })
                })
                .collect()
        });
        let gather_done_secs = self.tracer.now();
        // Draft the per-shard spans before `merge` consumes the outcomes;
        // they are parented (and emitted) only once the question resolves
        // to an answer, so rejected scatters leave no partial trees.
        let trace = self.tracer.trace_id(u64::from(question.id.raw()));
        let mut drafts: Vec<(CausalSpan, Option<CausalSpan>)> = Vec::new();
        for o in &outcomes {
            let t = &o.timing;
            if t.finished <= t.started {
                continue;
            }
            let mut causes = CauseSet::none();
            if o.report.hedged {
                causes = causes.with(CauseSet::HEDGED);
            }
            if matches!(o.report.status, ShardStatus::Degraded) {
                causes = causes.with(CauseSet::DEGRADED);
            }
            let shard_span = CausalSpan::new(
                trace,
                None,
                "shard",
                Some(o.report.shard),
                t.started,
                t.finished,
                0.0,
                causes,
            );
            let hedge_span = t.hedged_at.map(|h| {
                CausalSpan::new(
                    trace,
                    None,
                    "hedge",
                    Some(o.report.shard),
                    h.min(t.finished),
                    t.finished,
                    0.0,
                    CauseSet::none().with(CauseSet::HEDGED),
                )
            });
            drafts.push((shard_span, hedge_span));
        }
        let latency_secs = scatter_start.elapsed().as_secs_f64();
        let verdict = self.merge(outcomes, latency_secs);
        if let FederatedAdmission::Answered(answer) = &verdict {
            let merge_end_secs = self.tracer.now();
            let mut causes = CauseSet::none();
            if broker_paused {
                causes = causes.with(CauseSet::THROTTLED);
            }
            if !answer.coverage.is_complete() {
                causes = causes.with(CauseSet::DEGRADED);
            }
            let root = self.tracer.emit(CausalSpan::new(
                trace,
                None,
                "federated",
                None,
                enqueued_secs,
                merge_end_secs,
                (admitted_secs - enqueued_secs).max(0.0),
                causes,
            ));
            for (mut shard_span, hedge_span) in drafts {
                shard_span.parent = Some(root);
                let sid = self.tracer.emit(shard_span);
                if let Some(mut h) = hedge_span {
                    h.parent = Some(sid);
                    self.tracer.emit(h);
                }
            }
            self.tracer.emit(CausalSpan::new(
                trace,
                Some(root),
                "merge",
                None,
                gather_done_secs,
                merge_end_secs,
                0.0,
                CauseSet::none(),
            ));
        }
        verdict
    }

    /// Offer many questions concurrently, one scatter each; results come
    /// back in input order (the burst-demo surface).
    pub fn ask_many(&self, questions: &[Question]) -> Vec<FederatedAdmission> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = questions
                .iter()
                .map(|q| scope.spawn(move || self.ask(q)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(a) => a,
                    Err(_) => FederatedAdmission::Rejected {
                        retry_after: Duration::ZERO,
                    },
                })
                .collect()
        })
    }

    fn gather_one(
        &self,
        sh: &Shard,
        question: &Question,
        deadline_secs: f64,
        budget: &AtomicUsize,
    ) -> GatherOutcome {
        let gather_started = self.tracer.now();
        let mut report = ShardReport {
            shard: sh.id,
            status: ShardStatus::Down,
            latency_secs: 0.0,
            hedged: false,
            hedge_won: false,
        };
        let fail = |status: ShardStatus, report: ShardReport, hedged_at: Option<f64>| {
            let mut report = report;
            report.status = status;
            self.metrics
                .shard_requests(report.shard, status.label())
                .inc();
            GatherOutcome {
                report,
                answer: None,
                retry_after: None,
                timing: GatherTiming {
                    started: gather_started,
                    finished: self.tracer.now(),
                    hedged_at,
                },
            }
        };
        // Injected shard loss/partition takes the whole member (primary
        // and replica) off the air for the window.
        if self.windows.shard_down(sh.id, self.virtual_now()) {
            return fail(ShardStatus::Down, report, None);
        }
        // Load-gauge breaker feed: the shard's own registry is the source,
        // so one saturated shard never shadows another.
        self.feed_breaker_from_load(sh);
        let now = self.elapsed_secs();
        let breaker_open = sh.breaker.is_open(now);
        self.metrics
            .shard_breaker_open(sh.id)
            .set(if breaker_open { 1.0 } else { 0.0 });
        let target = if breaker_open {
            if sh.replica.is_none() {
                return fail(ShardStatus::BreakerOpen, report, None);
            }
            Origin::Replica
        } else {
            Origin::Primary
        };
        let handle = match target {
            Origin::Primary => &sh.primary,
            Origin::Replica => match &sh.replica {
                Some(r) => r,
                None => return fail(ShardStatus::BreakerOpen, report, None),
            },
        };
        let Some(tx) = handle.sender() else {
            return fail(ShardStatus::Down, report, None);
        };
        let (reply_tx, reply_rx) = bounded::<ShardReply>(2);
        let start = clock::now_instant();
        let req = ShardRequest {
            question: question.clone(),
            reply: reply_tx.clone(),
            origin: target,
        };
        if tx
            .send_timeout(req, Duration::from_secs_f64(deadline_secs))
            .is_err()
        {
            sh.breaker.record_failure(self.elapsed_secs());
            return fail(ShardStatus::TimedOut, report, None);
        }
        // First wait: up to the hedge trigger (capped by the deadline).
        let hedge_at = sh
            .estimator
            .hedge_trigger(self.cfg.policy.hedge_after_secs)
            .min(deadline_secs);
        let first_wait = (hedge_at - start.elapsed().as_secs_f64()).max(0.0);
        let mut reply = match reply_rx.recv_timeout(Duration::from_secs_f64(first_wait)) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        };
        let mut hedged_at: Option<f64> = None;
        if reply.is_none() && target == Origin::Primary {
            // Straggling primary: hedge to the replica, budget permitting.
            if let Some(rep) = &sh.replica {
                let replica_up = rep.sender().is_some();
                let hedge_allowed = replica_up
                    && budget
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
                        .is_ok();
                if hedge_allowed {
                    report.hedged = true;
                    hedged_at = Some(self.tracer.now());
                    self.metrics.hedges.inc();
                    if let Some(rtx) = rep.sender() {
                        let hreq = ShardRequest {
                            question: question.clone(),
                            reply: reply_tx.clone(),
                            origin: Origin::Replica,
                        };
                        let _ = rtx.send_timeout(hreq, WORKER_POLL);
                    }
                }
            }
            let remaining = (deadline_secs - start.elapsed().as_secs_f64()).max(0.0);
            reply = reply_rx
                .recv_timeout(Duration::from_secs_f64(remaining))
                .ok();
        } else if reply.is_none() {
            // Replica-only path (breaker bypass): just wait out the rest.
            let remaining = (deadline_secs - start.elapsed().as_secs_f64()).max(0.0);
            reply = reply_rx
                .recv_timeout(Duration::from_secs_f64(remaining))
                .ok();
        }
        drop(reply_tx);
        let Some(reply) = reply else {
            sh.breaker.record_failure(self.elapsed_secs());
            return fail(ShardStatus::TimedOut, report, hedged_at);
        };
        report.latency_secs = start.elapsed().as_secs_f64();
        report.hedge_won = report.hedged && reply.origin == Origin::Replica;
        if report.hedge_won {
            self.metrics.hedge_wins.inc();
        }
        match reply.admission {
            Admission::Answered(a) => {
                report.status = if a.coverage.is_complete() {
                    ShardStatus::Answered
                } else {
                    ShardStatus::Degraded
                };
                sh.estimator.observe(report.latency_secs);
                sh.breaker.record_success();
                self.metrics
                    .shard_requests(sh.id, report.status.label())
                    .inc();
                self.metrics
                    .shard_seconds(sh.id)
                    .observe(report.latency_secs);
                GatherOutcome {
                    report,
                    answer: Some((a.answers, a.coverage)),
                    retry_after: None,
                    timing: GatherTiming {
                        started: gather_started,
                        finished: self.tracer.now(),
                        hedged_at,
                    },
                }
            }
            Admission::Rejected { retry_after } => {
                report.status = ShardStatus::Rejected;
                self.metrics
                    .shard_requests(sh.id, report.status.label())
                    .inc();
                GatherOutcome {
                    report,
                    answer: None,
                    retry_after: Some(retry_after),
                    timing: GatherTiming {
                        started: gather_started,
                        finished: self.tracer.now(),
                        hedged_at,
                    },
                }
            }
            Admission::Failed(_) => {
                sh.breaker.record_failure(self.elapsed_secs());
                fail(ShardStatus::Failed, report, hedged_at)
            }
        }
    }

    fn feed_breaker_from_load(&self, sh: &Shard) {
        let Some(limit) = self.cfg.policy.breaker_load else {
            return;
        };
        let snap = sh.primary.cluster.metrics().snapshot();
        let worst = snap
            .gauges
            .iter()
            .filter(|(k, _)| k.starts_with(names::NODE_LOAD))
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        if worst.is_finite() && worst > limit {
            sh.breaker.force_open(self.elapsed_secs());
            self.metrics.breaker_trips.inc();
        }
    }

    fn merge(&self, outcomes: Vec<GatherOutcome>, latency_secs: f64) -> FederatedAdmission {
        let total = outcomes.len() as u32;
        let mut reports = Vec::with_capacity(outcomes.len());
        let mut parts = Vec::new();
        let mut inner = Vec::new();
        let mut retry: Option<Duration> = None;
        for o in outcomes {
            reports.push(o.report);
            if let Some((answers, coverage)) = o.answer {
                parts.push(answers);
                inner.push(coverage);
            }
            if let Some(r) = o.retry_after {
                retry = Some(match retry {
                    Some(prev) => prev.max(r),
                    None => r,
                });
            }
        }
        let responders = inner.len();
        if let (0, Some(retry_after)) = (responders, retry) {
            // Aggregated-rejection contract: no shard produced answers
            // and at least one refused admission, so surface the
            // max-over-shards hint instead of failing on the first
            // rejecting shard.
            self.metrics.rejected.inc();
            return FederatedAdmission::Rejected { retry_after };
        }
        self.metrics.merges.inc();
        let quorum_met = responders >= self.cfg.policy.quorum.max(1);
        if !quorum_met {
            self.metrics.quorum_shortfalls.inc();
        }
        let mut coverage = Coverage {
            completed: responders as u32,
            total,
        };
        for c in inner {
            coverage = coverage.and(c);
        }
        let answers = RankedAnswers::merge(parts, self.cfg.policy.keep_answers);
        let answer = FederatedAnswer {
            answers,
            coverage,
            quorum_met,
            shards: reports,
            latency_secs,
        };
        if answer.coverage.is_complete() {
            self.metrics.answered.inc();
        } else {
            self.metrics.degraded.inc();
        }
        self.metrics.question_seconds.observe(latency_secs);
        FederatedAdmission::Answered(Box::new(answer))
    }

    /// Stop the worker pools and shut every shard cluster down.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for sh in &mut self.shards {
            sh.primary.stop();
            if let Some(r) = &mut sh.replica {
                r.stop();
            }
        }
        // Shard clusters drain and join their node threads on drop.
        self.shards.clear();
    }
}

impl Drop for FederationBroker {
    fn drop(&mut self) {
        self.halt();
    }
}
