//! Federated coordinator tier: scatter-gather over corpus shards with
//! hedged retries and partial-result merge.
//!
//! The paper's coordinator scales a *single* corpus across nodes; this
//! crate adds the tier above it for corpora too large for one coordinator
//! cluster. A [`FederationBroker`] partitions documents by sub-collection
//! across ≥ 2 coordinator shards ([`partition_documents`]), scatters every
//! question to all of them, and deterministically merges what comes back:
//!
//! * **Deadlines** — each shard request gets a deadline derived from the
//!   question deadline ([`FederationPolicy::shard_deadline`]), so one
//!   straggler cannot burn the whole question budget.
//! * **Hedging** — a shard running past its EWMA-tracked tail latency
//!   ([`LatencyEstimator`]) gets a bounded, deduplicated hedge retry on
//!   its replica; first result wins.
//! * **Breakers** — consecutive failures or a saturated `dqa_node_load`
//!   gauge open a per-shard [`ShardBreaker`], diverting primary traffic
//!   to the replica for a cooldown.
//! * **Merge** — responders ≥ quorum yield a merged, Coverage-annotated
//!   answer; fewer responders still merge (flagged as a quorum
//!   shortfall); zero responders with admission rejections aggregate a
//!   max-over-shards retry-after. An admitted question is *never* an
//!   error and *never* silently dropped.
//!
//! The same decisions run in virtual time in [`sim`], so chaos soaks can
//! replay shard loss, partitions, and broker crashes bit-stably and
//! assert conservation across double runs.

#![warn(missing_docs)]

pub mod breaker;
pub mod broker;
pub mod clock;
pub mod estimator;
pub mod partition;
pub mod sim;
pub mod windows;

pub use breaker::ShardBreaker;
pub use broker::{FederatedAdmission, FederatedAnswer, FederationBroker, FederationConfig};
pub use estimator::LatencyEstimator;
pub use partition::partition_documents;
pub use qa_types::{FederationPolicy, ShardReport, ShardStatus};
pub use sim::{
    run_fed_sim, run_retry_gate_sim, FedQuestionRecord, FedSimConfig, FedSimReport, GateSimReport,
};
pub use windows::{FaultWindows, WindowOverlap};
