//! Virtual-time mirror of the federation broker.
//!
//! The runtime broker in [`crate::broker`] demonstrates the federation
//! tier with real threads; this module reproduces its *decisions* in
//! pure virtual time so chaos soaks can replay them bit-stably:
//!
//! * each shard is a full [`QaSimulation`] over a seed salted per shard
//!   (and per replica), whose per-question response times stand in for
//!   shard service latency;
//! * hedging uses the same [`LatencyEstimator`] the runtime uses, fed
//!   with virtual seconds: a primary slower than the hedge trigger pays
//!   `trigger + replica_latency` and the faster of the two lanes wins;
//! * federation faults come from the same [`FaultWindows`] compilation of
//!   the schedule, evaluated at each question's virtual arrival instant;
//! * the merge applies the broker's exact quorum/rejection rules:
//!   responders merge into a Coverage-annotated record, zero responders
//!   with an admission rejection aggregate a retry-after, zero responders
//!   otherwise merge an empty answer — never an error, never a drop.
//!
//! Deliberate simplifications versus the runtime (documented so the soak
//! asserts the right things): circuit breakers are not simulated (their
//! inputs — wall-clock failure streaks — have no virtual analog here),
//! and responder coverage is composed at shard granularity only.
//!
//! Everything is a pure function of the config, so running a config twice
//! yields `PartialEq`-identical — and therefore digest-identical —
//! reports; [`FedSimReport::digest`] folds every `(question, shard,
//! status, latency-bits)` tuple into one u64 for cheap cross-run
//! comparison.

use crate::estimator::LatencyEstimator;
use crate::windows::FaultWindows;
use cluster_sim::{BalancingStrategy, QaSimulation, SimConfig};
use faults::FaultSchedule;
use qa_types::{
    Coverage, FederationPolicy, OverloadCounts, OverloadPolicy, QuestionOutcome, ShardReport,
    ShardStatus,
};
use serde::{Deserialize, Serialize};

/// Configuration of one federation DES run.
#[derive(Debug, Clone)]
pub struct FedSimConfig {
    /// Coordinator shards.
    pub shards: usize,
    /// Nodes inside each shard simulation.
    pub nodes_per_shard: usize,
    /// Load-balancing strategy inside each shard.
    pub strategy: BalancingStrategy,
    /// Questions offered to the broker.
    pub questions: usize,
    /// Deterministic gap between broker arrivals, virtual seconds.
    pub arrival_spacing_secs: f64,
    /// Master seed; shard and replica simulations are salted from it.
    pub seed: u64,
    /// Scatter-gather policy (quorum, hedge trigger/budget, deadlines).
    pub policy: FederationPolicy,
    /// Admission policy inside each shard simulation.
    pub overload: OverloadPolicy,
    /// Fault schedule; federation-tier events are consumed here, the
    /// rest by the shard simulations' own chaos timeline.
    pub faults: FaultSchedule,
    /// Whether shards have hedge-target replicas.
    pub replicated: bool,
}

impl FedSimConfig {
    /// Defaults mirroring [`crate::broker::FederationConfig::new`].
    pub fn new(shards: usize, questions: usize, seed: u64) -> FedSimConfig {
        FedSimConfig {
            shards: shards.max(1),
            nodes_per_shard: 2,
            strategy: BalancingStrategy::Dqa,
            questions,
            arrival_spacing_secs: 2.0,
            seed,
            policy: FederationPolicy::for_shards(shards.max(1)),
            overload: OverloadPolicy::default(),
            faults: FaultSchedule::none(),
            replicated: true,
        }
    }
}

/// One broker-level question in the mirror.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedQuestionRecord {
    /// Virtual arrival at the broker (after any broker-crash hold).
    pub arrival: f64,
    /// Virtual completion (arrival + slowest responding shard).
    pub finished: f64,
    /// One report per shard (empty when the broker itself was down).
    pub shards: Vec<ShardReport>,
    /// Shards that contributed answers.
    pub responders: usize,
    /// Whether the responders met the policy quorum.
    pub quorum_met: bool,
    /// Shard-granularity federation coverage.
    pub coverage: Coverage,
    /// Three-way outcome (merged-full / merged-partial / rejected).
    pub outcome: QuestionOutcome,
}

impl FedQuestionRecord {
    /// Broker-observed response time.
    pub fn response_time(&self) -> f64 {
        self.finished - self.arrival
    }
}

/// Aggregate mirror output. `PartialEq` + [`FedSimReport::digest`] give
/// double-run bit-identity checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedSimReport {
    /// Per-question records in arrival order.
    pub questions: Vec<FedQuestionRecord>,
    /// Hedged shard retries issued.
    pub hedges: usize,
    /// Hedges whose replica lane won.
    pub hedge_wins: usize,
    /// Questions that produced a merged answer (even an empty one).
    pub merges: usize,
    /// Questions refused with an aggregated retry-after.
    pub rejected: usize,
    /// Merges below the policy quorum.
    pub quorum_shortfalls: usize,
    /// Virtual completion of the last question.
    pub makespan: f64,
    /// splitmix64 fold of every (question, shard, status, latency) tuple.
    pub digest: u64,
}

impl FedSimReport {
    /// Conservation ledger: every offered question left exactly one way.
    pub fn conserved(&self) -> bool {
        self.merges + self.rejected == self.questions.len()
    }

    /// Outcome tally over the broker-level records.
    pub fn outcome_counts(&self) -> OverloadCounts {
        let mut counts = OverloadCounts::default();
        for q in &self.questions {
            counts.record(q.outcome);
        }
        counts
    }

    /// Response-time percentile over merged (non-rejected) questions,
    /// nearest-rank; 0 when nothing merged.
    pub fn merged_response_percentile(&self, p: f64) -> f64 {
        let mut times: Vec<f64> = self
            .questions
            .iter()
            .filter(|q| q.outcome != QuestionOutcome::Rejected)
            .map(FedQuestionRecord::response_time)
            .collect();
        if times.is_empty() {
            return 0.0;
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * times.len() as f64).ceil() as usize).clamp(1, times.len());
        times[rank - 1]
    }
}

const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

const fn outcome_code(o: QuestionOutcome) -> u64 {
    match o {
        QuestionOutcome::Answered => 0,
        QuestionOutcome::Degraded => 1,
        QuestionOutcome::Rejected => 2,
    }
}

/// Run one shard simulation and harvest `(latency, outcome)` per question.
fn shard_service(cfg: &FedSimConfig, seed: u64) -> Vec<(f64, QuestionOutcome)> {
    let mut sc = SimConfig::paper_high_load(cfg.nodes_per_shard.max(1), cfg.strategy, seed);
    sc.questions = cfg.questions;
    sc.overload = cfg.overload;
    sc.record_trace = false;
    QaSimulation::new(sc)
        .run()
        .questions
        .iter()
        .map(|q| (q.response_time().max(0.0), q.outcome))
        .collect()
}

/// Run the federation mirror. Pure function of `cfg`: identical configs
/// produce `PartialEq`-identical reports (the double-run soak property).
pub fn run_fed_sim(cfg: &FedSimConfig) -> FedSimReport {
    let shards = cfg.shards.max(1);
    let primaries: Vec<Vec<(f64, QuestionOutcome)>> = (0..shards)
        .map(|s| shard_service(cfg, mix(cfg.seed, s as u64 + 1)))
        .collect();
    let replicas: Vec<Vec<(f64, QuestionOutcome)>> = if cfg.replicated {
        (0..shards)
            .map(|s| shard_service(cfg, mix(cfg.seed ^ 0x5eed_5eed, s as u64 + 1)))
            .collect()
    } else {
        Vec::new()
    };
    let estimators: Vec<LatencyEstimator> = (0..shards).map(|_| LatencyEstimator::new()).collect();
    let windows = FaultWindows::from_schedule(&cfg.faults);
    let deadline = cfg.policy.shard_deadline(cfg.overload.deadline_secs);
    let quorum = cfg.policy.quorum.max(1);
    let retry_latency = cfg.overload.retry_after_secs.max(0.0);

    let mut report = FedSimReport {
        questions: Vec::with_capacity(cfg.questions),
        hedges: 0,
        hedge_wins: 0,
        merges: 0,
        rejected: 0,
        quorum_shortfalls: 0,
        makespan: 0.0,
        digest: splitmix64(cfg.seed),
    };

    for q in 0..cfg.questions {
        let mut arrival = q as f64 * cfg.arrival_spacing_secs.max(0.0);
        if let Some(rejoin) = windows.broker_down(arrival) {
            if rejoin.is_finite() {
                // Transient broker crash: arrivals in the window are held
                // and re-offered at rejoin — delayed, never lost.
                arrival = rejoin;
            } else {
                // Permanent crash: refused with a retry hint, and still
                // accounted in the ledger.
                report.rejected += 1;
                report.questions.push(FedQuestionRecord {
                    arrival,
                    finished: arrival,
                    shards: Vec::new(),
                    responders: 0,
                    quorum_met: false,
                    coverage: Coverage {
                        completed: 0,
                        total: shards as u32,
                    },
                    outcome: QuestionOutcome::Rejected,
                });
                continue;
            }
        }
        let mut budget = cfg.policy.hedge_budget;
        let mut reports: Vec<ShardReport> = Vec::with_capacity(shards);
        for s in 0..shards {
            if windows.shard_down(s as u32, arrival) {
                reports.push(ShardReport {
                    shard: s as u32,
                    status: ShardStatus::Down,
                    latency_secs: 0.0,
                    hedged: false,
                    hedge_won: false,
                });
                continue;
            }
            let (plat, pout) = primaries[s][q];
            if pout == QuestionOutcome::Rejected {
                reports.push(ShardReport {
                    shard: s as u32,
                    status: ShardStatus::Rejected,
                    latency_secs: retry_latency,
                    hedged: false,
                    hedge_won: false,
                });
                continue;
            }
            let hedge_at = estimators[s]
                .hedge_trigger(cfg.policy.hedge_after_secs)
                .min(deadline);
            let mut latency = plat;
            let mut outcome = pout;
            let mut hedged = false;
            let mut hedge_won = false;
            if latency > hedge_at && budget > 0 && cfg.replicated {
                budget -= 1;
                hedged = true;
                report.hedges += 1;
                let (rlat, rout) = replicas[s][q];
                if rout != QuestionOutcome::Rejected {
                    let alt = hedge_at + rlat;
                    if alt < latency {
                        latency = alt;
                        outcome = rout;
                        hedge_won = true;
                        report.hedge_wins += 1;
                    }
                }
            }
            let status = if latency > deadline {
                latency = deadline;
                ShardStatus::TimedOut
            } else {
                estimators[s].observe(latency);
                match outcome {
                    QuestionOutcome::Degraded => ShardStatus::Degraded,
                    _ => ShardStatus::Answered,
                }
            };
            reports.push(ShardReport {
                shard: s as u32,
                status,
                latency_secs: latency,
                hedged,
                hedge_won,
            });
        }
        let responders = reports.iter().filter(|r| r.status.responded()).count();
        let any_reject = reports.iter().any(|r| r.status == ShardStatus::Rejected);
        let slowest = reports
            .iter()
            .filter(|r| r.status.responded())
            .map(|r| r.latency_secs)
            .fold(0.0_f64, f64::max);
        let (outcome, quorum_met) = if responders == 0 && any_reject {
            report.rejected += 1;
            (QuestionOutcome::Rejected, false)
        } else {
            report.merges += 1;
            let quorum_met = responders >= quorum;
            if !quorum_met {
                report.quorum_shortfalls += 1;
            }
            let full =
                responders == shards && reports.iter().all(|r| r.status == ShardStatus::Answered);
            (
                if full {
                    QuestionOutcome::Answered
                } else {
                    QuestionOutcome::Degraded
                },
                quorum_met,
            )
        };
        let finished = arrival + slowest;
        report.makespan = report.makespan.max(finished);
        report.questions.push(FedQuestionRecord {
            arrival,
            finished,
            shards: reports,
            responders,
            quorum_met,
            coverage: Coverage {
                completed: responders as u32,
                total: shards as u32,
            },
            outcome,
        });
    }

    for (q, rec) in report.questions.iter().enumerate() {
        report.digest = mix(report.digest, q as u64);
        report.digest = mix(report.digest, outcome_code(rec.outcome));
        for r in &rec.shards {
            report.digest = mix(report.digest, u64::from(r.shard));
            report.digest = mix(report.digest, r.status.code());
            report.digest = mix(report.digest, r.latency_secs.to_bits());
        }
    }
    report
}

/// Deterministic virtual-time model of a retry-after-honoring client
/// population against a saturated admission gate: `clients` all arrive at
/// t = 0 at a gate with `capacity` concurrent slots and `service_secs`
/// occupancy, and every refused client retries exactly `retry_after_secs`
/// later. The model admits every client in bounded attempts — the
/// no-starvation property the runtime twin asserts with real threads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateSimReport {
    /// Clients eventually admitted (always all of them).
    pub admitted: usize,
    /// Worst-case attempts by any single client.
    pub max_attempts: usize,
    /// Virtual time the last client finished service.
    pub makespan: f64,
}

/// Run the retry-after gate model. See [`GateSimReport`].
pub fn run_retry_gate_sim(
    clients: usize,
    capacity: usize,
    service_secs: f64,
    retry_after_secs: f64,
) -> GateSimReport {
    let service = service_secs.max(0.0);
    let step = retry_after_secs.max(1e-6);
    let mut free_at = vec![0.0_f64; capacity.max(1)];
    let mut max_attempts = 0;
    let mut makespan = 0.0_f64;
    for _ in 0..clients {
        let mut t = 0.0;
        let mut attempts = 1;
        loop {
            if let Some(slot) = free_at.iter_mut().find(|f| **f <= t) {
                *slot = t + service;
                makespan = makespan.max(t + service);
                break;
            }
            t += step;
            attempts += 1;
        }
        max_attempts = max_attempts.max(attempts);
    }
    GateSimReport {
        admitted: clients,
        max_attempts,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_runs_are_bit_identical() {
        let mut cfg = FedSimConfig::new(2, 10, 42);
        cfg.faults = FaultSchedule::seeded(42)
            .shard_down_rejoin(0, 4.0, 9.0)
            .shard_partition(1, 12.0, 14.0);
        let a = run_fed_sim(&cfg);
        let b = run_fed_sim(&cfg);
        assert_eq!(a, b, "seeded replay must be bit-stable");
        assert_eq!(a.digest, b.digest);
        assert!(a.conserved());
    }

    #[test]
    fn different_seeds_change_the_digest() {
        let a = run_fed_sim(&FedSimConfig::new(2, 8, 1));
        let b = run_fed_sim(&FedSimConfig::new(2, 8, 2));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn single_shard_loss_degrades_but_never_drops() {
        let mut cfg = FedSimConfig::new(2, 12, 7);
        cfg.faults = FaultSchedule::seeded(7).shard_down(0, 0.0);
        let r = run_fed_sim(&cfg);
        assert!(r.conserved());
        assert_eq!(r.rejected, 0, "losing one shard must not reject");
        assert_eq!(r.merges, 12);
        for q in &r.questions {
            assert_eq!(q.outcome, QuestionOutcome::Degraded);
            assert!(q.coverage.fraction() < 1.0);
            assert_eq!(q.shards[0].status, ShardStatus::Down);
            assert!(q.shards[1].status.responded());
        }
        // Majority quorum over 2 shards is 2 — every merge falls short.
        assert_eq!(r.quorum_shortfalls, 12);
    }

    #[test]
    fn transient_broker_crash_holds_questions_instead_of_losing_them() {
        let mut cfg = FedSimConfig::new(2, 10, 3);
        // Arrivals are 2 s apart; the broker is dark over [3, 8).
        cfg.faults = FaultSchedule::seeded(3).broker_crash_rejoin(3.0, 8.0);
        let r = run_fed_sim(&cfg);
        assert!(r.conserved());
        assert_eq!(r.rejected, 0);
        for q in &r.questions {
            assert!(
                q.arrival < 3.0 || q.arrival >= 8.0,
                "no question may start inside the outage, got {}",
                q.arrival
            );
        }
    }

    #[test]
    fn permanent_broker_crash_rejects_with_accounting() {
        let mut cfg = FedSimConfig::new(2, 10, 3);
        cfg.faults = FaultSchedule::seeded(3).broker_crash(9.0);
        let r = run_fed_sim(&cfg);
        assert!(r.conserved());
        assert!(r.rejected > 0, "arrivals after t=9 are refused");
        assert!(r.merges > 0, "arrivals before t=9 still merge");
        assert_eq!(r.merges + r.rejected, 10);
    }

    #[test]
    fn aggressive_hedging_fires_and_stays_deterministic() {
        let mut cfg = FedSimConfig::new(2, 8, 11);
        cfg.policy = cfg.policy.with_hedge_after(0.0).with_hedge_budget(2);
        let r = run_fed_sim(&cfg);
        assert!(r.hedges > 0, "zero floor must hedge cold shards");
        assert!(r.hedge_wins <= r.hedges);
        assert_eq!(run_fed_sim(&cfg), r);
    }

    #[test]
    fn healthy_federation_meets_quorum_everywhere() {
        let r = run_fed_sim(&FedSimConfig::new(4, 10, 5));
        assert!(r.conserved());
        assert_eq!(r.rejected, 0);
        assert_eq!(r.quorum_shortfalls, 0);
        for q in &r.questions {
            assert!(q.quorum_met);
            assert_eq!(q.responders, 4);
        }
        assert!(r.merged_response_percentile(0.99) > 0.0);
    }

    #[test]
    fn retry_gate_model_admits_every_client_without_starvation() {
        let r = run_retry_gate_sim(20, 2, 1.0, 0.25);
        assert_eq!(r.admitted, 20);
        // 20 clients through 2 slots of 1 s each ends by t = 10; a client
        // retrying every 0.25 s needs at most 4 attempts per busy second.
        assert!(r.makespan <= 10.0 + 1e-9);
        assert!(
            r.max_attempts <= 1 + (10.0 / 0.25) as usize,
            "attempts stay bounded, got {}",
            r.max_attempts
        );
    }
}
