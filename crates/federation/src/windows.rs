//! Declarative federation-fault windows, shared by both backends.
//!
//! [`FaultWindows`] compiles the broker-tier events of a
//! [`FaultSchedule`] — [`FaultEvent::ShardDown`],
//! [`FaultEvent::ShardPartition`], [`FaultEvent::BrokerCrash`] — into
//! closed-open `[from, until)` intervals that a pure time lookup answers.
//! The runtime queries it with broker-relative virtual time (wall seconds
//! divided by the fault time scale, the inverse of the mapping
//! `ChaosDriver` applies) and the DES mirror with virtual arrival times,
//! so a schedule produces the *same* outage decisions in both.

use faults::{FaultEvent, FaultSchedule};

/// Two windows for the same target intersect. Overlap is almost always a
/// schedule-authoring bug (two events fighting over one shard's fate), and
/// before this check the later window silently won — a mis-simulation that
/// surfaced only as inexplicable coverage numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOverlap {
    /// `Some(shard)` for a shard-window collision, `None` for the broker.
    pub shard: Option<u32>,
    /// The earlier window `[from, until)`.
    pub first: (f64, f64),
    /// The overlapping window `[from, until)`.
    pub second: (f64, f64),
}

impl std::fmt::Display for WindowOverlap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let target = match self.shard {
            Some(s) => format!("shard {s}"),
            None => "the broker".to_string(),
        };
        write!(
            f,
            "overlapping fault windows for {target}: [{}, {}) intersects [{}, {}); \
             split or merge the events — overlap would silently mis-simulate",
            self.second.0, self.second.1, self.first.0, self.first.1
        )
    }
}

impl std::error::Error for WindowOverlap {}

/// Interval-compiled view of a schedule's federation faults.
#[derive(Debug, Clone, Default)]
pub struct FaultWindows {
    /// `(shard, from, until)`; `until` is `f64::INFINITY` for permanent.
    shard: Vec<(u32, f64, f64)>,
    /// Broker outages `(at, rejoin)`; `rejoin` is `INFINITY` for permanent.
    broker: Vec<(f64, f64)>,
}

/// `[a_from, a_until)` and `[b_from, b_until)` intersect (touching
/// endpoints — one window ending exactly where the next starts — are fine).
fn overlaps(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

impl FaultWindows {
    /// Compile `schedule`'s federation events; every other event kind is
    /// left to the tier that consumes it (chaos driver, failover harness).
    ///
    /// # Panics
    ///
    /// On overlapping windows for the same target — a schedule-authoring
    /// bug. Use [`FaultWindows::try_from_schedule`] to validate untrusted
    /// schedules without panicking.
    pub fn from_schedule(schedule: &FaultSchedule) -> FaultWindows {
        match Self::try_from_schedule(schedule) {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    /// Compile `schedule`'s federation events, rejecting overlapping
    /// windows for the same target instead of letting one silently win.
    pub fn try_from_schedule(schedule: &FaultSchedule) -> Result<FaultWindows, WindowOverlap> {
        let mut w = FaultWindows::default();
        for ev in &schedule.events {
            match *ev {
                FaultEvent::ShardDown { shard, at, rejoin } => {
                    w.push_shard(shard, at, rejoin.unwrap_or(f64::INFINITY))?;
                }
                FaultEvent::ShardPartition { shard, from, until } => {
                    w.push_shard(shard, from, until)?;
                }
                FaultEvent::BrokerCrash { at, rejoin } => {
                    let win = (at, rejoin.unwrap_or(f64::INFINITY));
                    if let Some(&prior) = w.broker.iter().find(|&&p| overlaps(p, win)) {
                        return Err(WindowOverlap {
                            shard: None,
                            first: prior,
                            second: win,
                        });
                    }
                    w.broker.push(win);
                }
                _ => {}
            }
        }
        Ok(w)
    }

    fn push_shard(&mut self, shard: u32, from: f64, until: f64) -> Result<(), WindowOverlap> {
        if let Some(&(_, pf, pu)) = self
            .shard
            .iter()
            .find(|&&(s, pf, pu)| s == shard && overlaps((pf, pu), (from, until)))
        {
            return Err(WindowOverlap {
                shard: Some(shard),
                first: (pf, pu),
                second: (from, until),
            });
        }
        self.shard.push((shard, from, until));
        Ok(())
    }

    /// Whether `shard` is unreachable (down or partitioned) at `now`.
    pub fn shard_down(&self, shard: u32, now: f64) -> bool {
        self.shard
            .iter()
            .any(|&(s, from, until)| s == shard && now >= from && now < until)
    }

    /// When the broker is down at `now`, the rejoin time
    /// (`f64::INFINITY` for a permanent crash); `None` when it is up.
    pub fn broker_down(&self, now: f64) -> Option<f64> {
        self.broker
            .iter()
            .filter(|&&(at, rejoin)| now >= at && now < rejoin)
            .map(|&(_, rejoin)| rejoin)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// True when the schedule carries any federation-tier event.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty() && self.broker.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_windows_cover_down_and_partition() {
        let s = FaultSchedule::seeded(7)
            .shard_down_rejoin(1, 5.0, 10.0)
            .shard_partition(2, 3.0, 4.0)
            .shard_down(0, 20.0);
        let w = FaultWindows::from_schedule(&s);
        assert!(!w.is_empty());
        assert!(!w.shard_down(1, 4.9));
        assert!(w.shard_down(1, 5.0));
        assert!(w.shard_down(1, 9.9));
        assert!(!w.shard_down(1, 10.0), "rejoined");
        assert!(w.shard_down(2, 3.5));
        assert!(!w.shard_down(2, 4.5));
        assert!(w.shard_down(0, 1e9), "permanent loss never rejoins");
        assert!(!w.shard_down(3, 5.0), "unlisted shard untouched");
    }

    #[test]
    fn broker_windows_report_rejoin() {
        let s = FaultSchedule::seeded(7).broker_crash_rejoin(2.0, 6.0);
        let w = FaultWindows::from_schedule(&s);
        assert_eq!(w.broker_down(1.0), None);
        assert_eq!(w.broker_down(3.0), Some(6.0));
        assert_eq!(w.broker_down(6.0), None);
        let p = FaultWindows::from_schedule(&FaultSchedule::seeded(1).broker_crash(4.0));
        assert_eq!(p.broker_down(5.0), Some(f64::INFINITY));
    }

    #[test]
    fn non_federation_events_are_ignored() {
        use qa_types::NodeId;
        let s = FaultSchedule::seeded(3).crash(NodeId::new(0), 1.0);
        let w = FaultWindows::from_schedule(&s);
        assert!(w.is_empty());
    }

    #[test]
    fn overlapping_shard_windows_are_rejected_with_a_clear_error() {
        // Same shard, intersecting windows: the old code silently unioned
        // them; now the schedule is rejected at compile time.
        let s = FaultSchedule::seeded(1)
            .shard_down_rejoin(1, 5.0, 10.0)
            .shard_partition(1, 8.0, 12.0);
        let err = FaultWindows::try_from_schedule(&s).unwrap_err();
        assert_eq!(err.shard, Some(1));
        assert_eq!(err.first, (5.0, 10.0));
        assert_eq!(err.second, (8.0, 12.0));
        let msg = err.to_string();
        assert!(msg.contains("shard 1"), "error names the target: {msg}");
        assert!(msg.contains("overlapping"), "error names the crime: {msg}");
        // A permanent crash overlaps everything after it.
        let s = FaultSchedule::seeded(1)
            .shard_down(0, 4.0)
            .shard_partition(0, 100.0, 200.0);
        assert!(FaultWindows::try_from_schedule(&s).is_err());
    }

    #[test]
    fn same_window_on_different_targets_is_fine() {
        let s = FaultSchedule::seeded(1)
            .shard_down_rejoin(0, 5.0, 10.0)
            .shard_down_rejoin(1, 5.0, 10.0)
            .broker_crash_rejoin(5.0, 10.0);
        assert!(FaultWindows::try_from_schedule(&s).is_ok());
    }

    #[test]
    fn touching_windows_do_not_overlap() {
        // Back-to-back outages sharing an endpoint are legitimate.
        let s = FaultSchedule::seeded(1)
            .shard_down_rejoin(0, 2.0, 4.0)
            .shard_partition(0, 4.0, 6.0)
            .broker_crash_rejoin(1.0, 2.0)
            .broker_crash_rejoin(2.0, 3.0);
        assert!(FaultWindows::try_from_schedule(&s).is_ok());
    }

    #[test]
    fn overlapping_broker_windows_are_rejected() {
        let s = FaultSchedule::seeded(1)
            .broker_crash_rejoin(2.0, 6.0)
            .broker_crash(5.0);
        let err = FaultWindows::try_from_schedule(&s).unwrap_err();
        assert_eq!(err.shard, None);
        assert!(err.to_string().contains("the broker"));
    }
}
