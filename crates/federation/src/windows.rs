//! Declarative federation-fault windows, shared by both backends.
//!
//! [`FaultWindows`] compiles the broker-tier events of a
//! [`FaultSchedule`] — [`FaultEvent::ShardDown`],
//! [`FaultEvent::ShardPartition`], [`FaultEvent::BrokerCrash`] — into
//! closed-open `[from, until)` intervals that a pure time lookup answers.
//! The runtime queries it with broker-relative virtual time (wall seconds
//! divided by the fault time scale, the inverse of the mapping
//! `ChaosDriver` applies) and the DES mirror with virtual arrival times,
//! so a schedule produces the *same* outage decisions in both.

use faults::{FaultEvent, FaultSchedule};

/// Interval-compiled view of a schedule's federation faults.
#[derive(Debug, Clone, Default)]
pub struct FaultWindows {
    /// `(shard, from, until)`; `until` is `f64::INFINITY` for permanent.
    shard: Vec<(u32, f64, f64)>,
    /// Broker outages `(at, rejoin)`; `rejoin` is `INFINITY` for permanent.
    broker: Vec<(f64, f64)>,
}

impl FaultWindows {
    /// Compile `schedule`'s federation events; every other event kind is
    /// left to the tier that consumes it (chaos driver, failover harness).
    pub fn from_schedule(schedule: &FaultSchedule) -> FaultWindows {
        let mut w = FaultWindows::default();
        for ev in &schedule.events {
            match *ev {
                FaultEvent::ShardDown { shard, at, rejoin } => {
                    w.shard.push((shard, at, rejoin.unwrap_or(f64::INFINITY)));
                }
                FaultEvent::ShardPartition { shard, from, until } => {
                    w.shard.push((shard, from, until));
                }
                FaultEvent::BrokerCrash { at, rejoin } => {
                    w.broker.push((at, rejoin.unwrap_or(f64::INFINITY)));
                }
                _ => {}
            }
        }
        w
    }

    /// Whether `shard` is unreachable (down or partitioned) at `now`.
    pub fn shard_down(&self, shard: u32, now: f64) -> bool {
        self.shard
            .iter()
            .any(|&(s, from, until)| s == shard && now >= from && now < until)
    }

    /// When the broker is down at `now`, the rejoin time
    /// (`f64::INFINITY` for a permanent crash); `None` when it is up.
    pub fn broker_down(&self, now: f64) -> Option<f64> {
        self.broker
            .iter()
            .filter(|&&(at, rejoin)| now >= at && now < rejoin)
            .map(|&(_, rejoin)| rejoin)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// True when the schedule carries any federation-tier event.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty() && self.broker.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_windows_cover_down_and_partition() {
        let s = FaultSchedule::seeded(7)
            .shard_down_rejoin(1, 5.0, 10.0)
            .shard_partition(2, 3.0, 4.0)
            .shard_down(0, 20.0);
        let w = FaultWindows::from_schedule(&s);
        assert!(!w.is_empty());
        assert!(!w.shard_down(1, 4.9));
        assert!(w.shard_down(1, 5.0));
        assert!(w.shard_down(1, 9.9));
        assert!(!w.shard_down(1, 10.0), "rejoined");
        assert!(w.shard_down(2, 3.5));
        assert!(!w.shard_down(2, 4.5));
        assert!(w.shard_down(0, 1e9), "permanent loss never rejoins");
        assert!(!w.shard_down(3, 5.0), "unlisted shard untouched");
    }

    #[test]
    fn broker_windows_report_rejoin() {
        let s = FaultSchedule::seeded(7).broker_crash_rejoin(2.0, 6.0);
        let w = FaultWindows::from_schedule(&s);
        assert_eq!(w.broker_down(1.0), None);
        assert_eq!(w.broker_down(3.0), Some(6.0));
        assert_eq!(w.broker_down(6.0), None);
        let p = FaultWindows::from_schedule(&FaultSchedule::seeded(1).broker_crash(4.0));
        assert_eq!(p.broker_down(5.0), Some(f64::INFINITY));
    }

    #[test]
    fn non_federation_events_are_ignored() {
        use qa_types::NodeId;
        let s = FaultSchedule::seeded(3).crash(NodeId::new(0), 1.0);
        let w = FaultWindows::from_schedule(&s);
        assert!(w.is_empty());
    }
}
