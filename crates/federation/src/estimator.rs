//! Per-shard latency estimation for the hedge trigger.
//!
//! The broker hedges a shard request when the primary is slower than the
//! shard's estimated tail latency. The estimate is Jacobson/Karels-style:
//! an exponentially weighted mean plus a multiple of the mean absolute
//! deviation — the same smoothed-mean-plus-k·deviation shape TCP uses for
//! its retransmission timer, and the cheapest online stand-in for a p99.
//! One implementation serves both backends: the runtime feeds it observed
//! wall seconds, the DES mirror feeds it virtual seconds, and in both the
//! update sequence is deterministic given the sample sequence.

use std::sync::Mutex;

/// Smoothing gain for the mean (1/8, Jacobson's alpha).
const GAIN_MEAN: f64 = 0.125;
/// Smoothing gain for the deviation (1/4, Jacobson's beta).
const GAIN_DEV: f64 = 0.25;
/// Deviation multiplier: mean + 4·dev approximates the upper tail.
const TAIL_K: f64 = 4.0;
/// Samples required before the estimate is trusted over the floor.
const WARMUP: u64 = 3;

#[derive(Debug, Default, Clone, Copy)]
struct State {
    mean: f64,
    dev: f64,
    samples: u64,
}

/// EWMA tail-latency estimator for one shard.
#[derive(Debug, Default)]
pub struct LatencyEstimator {
    state: Mutex<State>,
}

impl LatencyEstimator {
    /// A cold estimator (trusts the configured floor until warmed up).
    pub fn new() -> LatencyEstimator {
        LatencyEstimator::default()
    }

    /// Record one observed shard response time, seconds.
    pub fn observe(&self, sample_secs: f64) {
        let s = sample_secs.max(0.0);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.samples == 0 {
            st.mean = s;
            st.dev = s / 2.0;
        } else {
            let err = s - st.mean;
            st.mean += GAIN_MEAN * err;
            st.dev += GAIN_DEV * (err.abs() - st.dev);
        }
        st.samples += 1;
    }

    /// The current tail estimate (mean + 4·dev), `None` until warmed up.
    pub fn tail_secs(&self) -> Option<f64> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (st.samples >= WARMUP).then(|| st.mean + TAIL_K * st.dev)
    }

    /// The hedge trigger: the tail estimate, never below `floor_secs`.
    pub fn hedge_trigger(&self, floor_secs: f64) -> f64 {
        match self.tail_secs() {
            Some(t) => t.max(floor_secs),
            None => floor_secs,
        }
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_estimator_returns_the_floor() {
        let e = LatencyEstimator::new();
        assert_eq!(e.tail_secs(), None);
        assert!((e.hedge_trigger(0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn warmed_estimator_tracks_the_tail_above_the_mean() {
        let e = LatencyEstimator::new();
        for _ in 0..10 {
            e.observe(0.1);
        }
        let t = e.tail_secs().expect("warmed");
        assert!(t >= 0.1, "tail at least the steady mean, got {t}");
        // A stable stream keeps the trigger near the mean, so a 10x
        // straggler clearly exceeds it.
        assert!(t < 0.5, "stable stream keeps the tail tight, got {t}");
        assert!(e.hedge_trigger(0.0) > 0.0);
    }

    #[test]
    fn deviation_widens_the_trigger_under_jitter() {
        let steady = LatencyEstimator::new();
        let jittery = LatencyEstimator::new();
        for i in 0..20 {
            steady.observe(0.1);
            jittery.observe(if i % 2 == 0 { 0.02 } else { 0.18 });
        }
        let s = steady.tail_secs().expect("warmed");
        let j = jittery.tail_secs().expect("warmed");
        assert!(j > s, "jitter must widen the tail: {j} <= {s}");
    }

    #[test]
    fn update_sequence_is_deterministic() {
        let a = LatencyEstimator::new();
        let b = LatencyEstimator::new();
        for i in 0..32 {
            let s = 0.05 + (i % 7) as f64 * 0.01;
            a.observe(s);
            b.observe(s);
        }
        assert_eq!(a.tail_secs(), b.tail_secs());
    }
}
