//! Per-shard circuit breaker.
//!
//! A shard that keeps timing out (or whose own load gauges report
//! saturation — the `dqa_node_load` feed) stops receiving primary traffic
//! for a cooldown window: the broker routes to the replica when there is
//! one and otherwise lets the shard sit the question out, degrading the
//! merged answer's coverage instead of burning the whole question deadline
//! against a dead member. Time is plain `f64` seconds relative to an
//! origin the caller chooses, so the same breaker runs on broker-relative
//! wall seconds in the runtime and on virtual seconds in the DES mirror.

use std::sync::Mutex;

#[derive(Debug, Default, Clone, Copy)]
struct State {
    consecutive: u32,
    open_until: Option<f64>,
    trips: u64,
}

/// Consecutive-failure + load-feed circuit breaker for one shard.
#[derive(Debug)]
pub struct ShardBreaker {
    threshold: u32,
    cooldown_secs: f64,
    state: Mutex<State>,
}

impl ShardBreaker {
    /// A closed breaker opening after `threshold` consecutive failures
    /// for `cooldown_secs` at a time.
    pub fn new(threshold: u32, cooldown_secs: f64) -> ShardBreaker {
        ShardBreaker {
            threshold: threshold.max(1),
            cooldown_secs: cooldown_secs.max(0.0),
            state: Mutex::new(State::default()),
        }
    }

    /// A successful shard response closes the failure streak.
    pub fn record_success(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.consecutive = 0;
    }

    /// Record a shard failure (timeout or hard error) at `now` seconds.
    /// Returns true when this failure tripped the breaker open.
    pub fn record_failure(&self, now: f64) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.consecutive += 1;
        if st.consecutive >= self.threshold {
            st.consecutive = 0;
            st.open_until = Some(now + self.cooldown_secs);
            st.trips += 1;
            true
        } else {
            false
        }
    }

    /// Open immediately (the load-gauge feed), extending any open window.
    pub fn force_open(&self, now: f64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let until = now + self.cooldown_secs;
        st.open_until = Some(match st.open_until {
            Some(u) if u > until => u,
            _ => until,
        });
        st.trips += 1;
    }

    /// Whether the breaker is open at `now` seconds.
    pub fn is_open(&self, now: f64) -> bool {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        matches!(st.open_until, Some(u) if now < u)
    }

    /// Times the breaker has opened.
    pub fn trips(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_cools_down() {
        let b = ShardBreaker::new(3, 1.0);
        assert!(!b.record_failure(0.0));
        assert!(!b.record_failure(0.1));
        assert!(!b.is_open(0.15));
        assert!(b.record_failure(0.2), "third failure trips");
        assert!(b.is_open(0.5));
        assert!(!b.is_open(1.3), "cooldown elapsed");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let b = ShardBreaker::new(2, 1.0);
        assert!(!b.record_failure(0.0));
        b.record_success();
        assert!(!b.record_failure(0.1), "streak restarted");
        assert!(b.record_failure(0.2));
    }

    #[test]
    fn force_open_extends_but_never_shortens() {
        let b = ShardBreaker::new(10, 2.0);
        b.force_open(0.0); // open until 2.0
        b.force_open(0.5); // until 2.5
        assert!(b.is_open(2.2));
        b.force_open(0.1); // would be 2.1 — keeps 2.5
        assert!(b.is_open(2.4));
        assert!(!b.is_open(2.6));
        assert_eq!(b.trips(), 3);
    }
}
