//! The overload-robustness layer: admission gate, phase-demand estimator
//! and the [`Admission`] result type of the concurrent front-end.
//!
//! Admission is a counting gate in front of the coordinator, configured by
//! [`OverloadPolicy`]: up to `max_in_flight` questions run concurrently,
//! up to `admission_queue` more wait for a slot, and everything past that
//! is *rejected immediately* with a retry hint — the queue is bounded by
//! construction, so a traffic burst can only ever hold
//! `max_in_flight + admission_queue` questions inside the cluster.
//!
//! The [`PhaseEstimator`] feeds deadline-aware shedding: it tracks an
//! exponentially weighted moving average of observed per-phase wall time
//! and, before each phase, the coordinator compares the remaining deadline
//! budget against the estimate. A phase that cannot fit is shed — the
//! question short-circuits to a Coverage-annotated degraded answer instead
//! of occupying nodes it cannot profit from. Until a module has its own
//! observations, its estimate is apportioned from the total-question EWMA
//! using the paper's per-module demand fractions (Table 2 — the same
//! `T_module` terms the Eqs. 1–3 load functions weigh).

use crate::cluster::DistributedAnswer;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{Condvar, Mutex};
use qa_types::{ModuleProfile, ModuleTimings, OverloadPolicy, QaError, QaModule, QuestionOutcome};
use std::time::{Duration, Instant};

/// Outcome of offering one question to the concurrent front-end
/// ([`crate::Cluster::submit`] / [`crate::Cluster::ask_many`]).
#[derive(Debug)]
pub enum Admission {
    /// Admitted and completed. The answer's [`qa_types::Coverage`] tells a
    /// full completion apart from a degraded (shed or fault-hit) one.
    Answered(Box<DistributedAnswer>),
    /// Refused at admission: queue full, every node at its resident cap,
    /// the deadline expired while waiting for a slot, or the cluster is
    /// shutting down. The question never occupied a node.
    Rejected {
        /// Client back-off hint from the policy.
        retry_after: Duration,
    },
    /// Admitted but failed with an infrastructure error (e.g. every node
    /// dead). Never happens on a healthy cluster.
    Failed(QaError),
}

impl Admission {
    /// Classify into the three-way outcome the overload accounting uses;
    /// `None` for infrastructure failures (which the soak harness treats
    /// as hard violations, not shed load).
    pub fn outcome(&self) -> Option<QuestionOutcome> {
        match self {
            Admission::Answered(a) if a.coverage.is_complete() => Some(QuestionOutcome::Answered),
            Admission::Answered(_) => Some(QuestionOutcome::Degraded),
            Admission::Rejected { .. } => Some(QuestionOutcome::Rejected),
            Admission::Failed(_) => None,
        }
    }

    /// The answer, when one was produced.
    pub fn answer(&self) -> Option<&DistributedAnswer> {
        match self {
            Admission::Answered(a) => Some(a),
            _ => None,
        }
    }
}

/// What the gate decided for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// A slot is held; the caller runs the question and must
    /// [`AdmissionGate::release`] afterwards.
    Admitted,
    /// Queue full (or the wait deadline expired before a slot freed).
    Rejected,
    /// The cluster is draining; nothing new is admitted.
    ShuttingDown,
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: usize,
    waiting: usize,
    peak_waiting: usize,
}

/// Counting admission gate: bounded waiting room in front of a bounded
/// set of in-flight slots. All waiting is deadline-capped and every
/// waiter is woken deterministically by [`AdmissionGate::drain`].
#[derive(Debug)]
pub struct AdmissionGate {
    max_in_flight: Option<usize>,
    queue_depth: usize,
    state: Mutex<GateState>,
    cv: Condvar,
    draining: AtomicBool,
}

impl AdmissionGate {
    /// A gate enforcing `policy`'s in-flight cap and queue depth.
    pub fn new(policy: &OverloadPolicy) -> AdmissionGate {
        AdmissionGate {
            max_in_flight: policy.max_in_flight,
            queue_depth: policy.admission_queue,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// Try to take an in-flight slot, waiting in the bounded queue until
    /// `wait_until` (forever if `None`) when the cluster is at capacity.
    pub fn admit(&self, wait_until: Option<Instant>) -> GateDecision {
        let mut s = self.state.lock();
        if self.draining.load(Ordering::Acquire) {
            return GateDecision::ShuttingDown;
        }
        let Some(cap) = self.max_in_flight else {
            s.in_flight += 1;
            return GateDecision::Admitted;
        };
        if s.in_flight < cap {
            s.in_flight += 1;
            return GateDecision::Admitted;
        }
        if s.waiting >= self.queue_depth {
            return GateDecision::Rejected;
        }
        s.waiting += 1;
        s.peak_waiting = s.peak_waiting.max(s.waiting);
        loop {
            let timed_out = match wait_until {
                Some(d) => self.cv.wait_until(&mut s, d).timed_out(),
                None => {
                    self.cv.wait(&mut s);
                    false
                }
            };
            if self.draining.load(Ordering::Acquire) {
                s.waiting -= 1;
                return GateDecision::ShuttingDown;
            }
            if s.in_flight < cap {
                s.waiting -= 1;
                s.in_flight += 1;
                return GateDecision::Admitted;
            }
            if timed_out {
                s.waiting -= 1;
                return GateDecision::Rejected;
            }
        }
    }

    /// Return an in-flight slot and wake queued arrivals.
    pub fn release(&self) {
        let mut s = self.state.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        drop(s);
        self.cv.notify_all();
    }

    /// Stop admitting: every queued arrival wakes and reports
    /// [`GateDecision::ShuttingDown`]; subsequent arrivals are refused at
    /// the door. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// Whether [`AdmissionGate::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Currently admitted questions.
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// Currently queued arrivals.
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    /// High-water mark of the waiting queue — by construction never above
    /// the configured depth (the proptest invariant).
    pub fn peak_waiting(&self) -> usize {
        self.state.lock().peak_waiting
    }
}

/// EWMA weight for new phase observations.
const EWMA_ALPHA: f64 = 0.3;

#[derive(Debug, Default, Clone, Copy)]
struct EwmaState {
    per_module: [Option<f64>; 5],
    total: Option<f64>,
}

fn module_slot(m: QaModule) -> usize {
    match m {
        QaModule::Qp => 0,
        QaModule::Pr => 1,
        QaModule::Ps => 2,
        QaModule::Po => 3,
        QaModule::Ap => 4,
    }
}

fn blend(prev: Option<f64>, obs: f64) -> Option<f64> {
    Some(match prev {
        Some(p) => (1.0 - EWMA_ALPHA) * p + EWMA_ALPHA * obs,
        None => obs,
    })
}

/// Online per-phase demand estimator for deadline-aware shedding.
///
/// Observations come from completed questions' [`ModuleTimings`]; the
/// calibration [`ModuleProfile`] supplies relative per-module demand
/// fractions for modules that have not been observed yet (e.g. a phase
/// that every prior question shed). With no observations at all the
/// estimator abstains and nothing is shed — the first question always
/// runs, calibrating the rest.
#[derive(Debug)]
pub struct PhaseEstimator {
    profile: ModuleProfile,
    state: Mutex<EwmaState>,
}

impl PhaseEstimator {
    /// An estimator apportioning cold-start estimates from `profile`.
    pub fn new(profile: ModuleProfile) -> PhaseEstimator {
        PhaseEstimator {
            profile,
            state: Mutex::new(EwmaState::default()),
        }
    }

    /// Fold one completed question's wall-clock phase times in. In the
    /// thread runtime PS runs fused into the PR phase, so `pr + ps` is
    /// observed as PR and the PS slot stays profile-apportioned.
    pub fn observe(&self, timings: &ModuleTimings) {
        let mut s = self.state.lock();
        s.per_module[module_slot(QaModule::Qp)] =
            blend(s.per_module[module_slot(QaModule::Qp)], timings.qp);
        s.per_module[module_slot(QaModule::Pr)] = blend(
            s.per_module[module_slot(QaModule::Pr)],
            timings.pr + timings.ps,
        );
        s.per_module[module_slot(QaModule::Po)] =
            blend(s.per_module[module_slot(QaModule::Po)], timings.po);
        s.per_module[module_slot(QaModule::Ap)] =
            blend(s.per_module[module_slot(QaModule::Ap)], timings.ap);
        s.total = blend(s.total, timings.total());
    }

    /// The profile's share of total demand for one module (PR includes the
    /// fused PS share).
    fn fraction(&self, m: QaModule) -> f64 {
        let t = self.profile.times.total();
        if t <= 0.0 {
            return 0.0;
        }
        let share = match m {
            QaModule::Pr => self.profile.times.pr + self.profile.times.ps,
            other => self.profile.times.get(other),
        };
        share / t
    }

    /// Estimated wall seconds for one phase, or `None` before any
    /// observation exists to scale from.
    pub fn phase_estimate(&self, m: QaModule) -> Option<f64> {
        let s = self.state.lock();
        if let Some(e) = s.per_module[module_slot(m)] {
            return Some(e);
        }
        s.total.map(|t| t * self.fraction(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qa_types::Trec9Profile;
    use std::sync::Arc;

    #[test]
    fn gate_without_cap_admits_everything() {
        let gate = AdmissionGate::new(&OverloadPolicy::unlimited());
        for _ in 0..100 {
            assert_eq!(gate.admit(None), GateDecision::Admitted);
        }
        assert_eq!(gate.in_flight(), 100);
        assert_eq!(gate.peak_waiting(), 0);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let policy = OverloadPolicy::server(1).with_queue(0);
        let gate = AdmissionGate::new(&policy);
        assert_eq!(gate.admit(None), GateDecision::Admitted);
        let start = Instant::now();
        assert_eq!(gate.admit(None), GateDecision::Rejected);
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "zero-depth queue must reject without waiting"
        );
        gate.release();
        assert_eq!(gate.admit(None), GateDecision::Admitted);
    }

    #[test]
    fn queued_arrival_gets_the_freed_slot() {
        let policy = OverloadPolicy::server(1);
        let gate = Arc::new(AdmissionGate::new(&policy));
        assert_eq!(gate.admit(None), GateDecision::Admitted);
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.admit(None));
        while gate.waiting() == 0 {
            std::thread::yield_now();
        }
        gate.release();
        assert_eq!(waiter.join().unwrap(), GateDecision::Admitted);
        assert_eq!(gate.in_flight(), 1);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn wait_deadline_turns_into_rejection() {
        let policy = OverloadPolicy::server(1);
        let gate = AdmissionGate::new(&policy);
        assert_eq!(gate.admit(None), GateDecision::Admitted);
        let until = Some(Instant::now() + Duration::from_millis(20));
        assert_eq!(gate.admit(until), GateDecision::Rejected);
        assert_eq!(gate.waiting(), 0, "timed-out waiter left the queue");
    }

    #[test]
    fn drain_wakes_queued_arrivals_deterministically() {
        let policy = OverloadPolicy::server(1);
        let gate = Arc::new(AdmissionGate::new(&policy));
        assert_eq!(gate.admit(None), GateDecision::Admitted);
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.admit(None));
        while gate.waiting() == 0 {
            std::thread::yield_now();
        }
        gate.drain();
        assert_eq!(waiter.join().unwrap(), GateDecision::ShuttingDown);
        assert_eq!(gate.admit(None), GateDecision::ShuttingDown);
    }

    #[test]
    fn estimator_abstains_cold_then_tracks_observations() {
        let est = PhaseEstimator::new(Trec9Profile::average());
        assert_eq!(est.phase_estimate(QaModule::Pr), None, "cold start");
        let t = ModuleTimings {
            qp: 0.010,
            pr: 0.040,
            ps: 0.010,
            po: 0.001,
            ap: 0.100,
            overhead: 0.0,
        };
        est.observe(&t);
        let pr = est.phase_estimate(QaModule::Pr).unwrap();
        assert!((pr - 0.050).abs() < 1e-9, "PR estimate fuses PS: {pr}");
        let ap = est.phase_estimate(QaModule::Ap).unwrap();
        assert!((ap - 0.100).abs() < 1e-9);
        // PS never observed directly → apportioned from the total EWMA by
        // the paper's demand fractions.
        let ps = est.phase_estimate(QaModule::Ps).unwrap();
        assert!(ps > 0.0);
    }

    #[test]
    fn estimator_ewma_converges_toward_recent_observations() {
        let est = PhaseEstimator::new(Trec9Profile::average());
        let slow = ModuleTimings {
            ap: 1.0,
            ..ModuleTimings::default()
        };
        est.observe(&slow);
        let fast = ModuleTimings {
            ap: 0.1,
            ..ModuleTimings::default()
        };
        for _ in 0..30 {
            est.observe(&fast);
        }
        let ap = est.phase_estimate(QaModule::Ap).unwrap();
        assert!(ap < 0.11, "EWMA should have converged near 0.1, got {ap}");
    }
}

/// Model-checking tests over the *real* [`AdmissionGate`] — not a
/// miniature. Compiled only under `--features loom`, where the
/// [`crate::sync`] seam routes every lock, condvar and atomic through the
/// `dqa-verify` shims; `dqa_verify::model` then explores every
/// interleaving of the closure exhaustively. Run via the CI
/// `verify-concurrency` job: `cargo test -p dqa-runtime --features loom`.
#[cfg(all(test, feature = "loom"))]
mod loom_tests {
    use super::*;
    use dqa_verify::thread;
    use std::sync::Arc;

    /// One in-flight slot, one queue seat: the smallest policy where
    /// hand-off, shutdown wakeup and queue-bound rejection all occur.
    fn tight_policy() -> OverloadPolicy {
        OverloadPolicy {
            admission_queue: 1,
            max_in_flight: Some(1),
            ..OverloadPolicy::unlimited()
        }
    }

    #[test]
    fn slot_handoff_explores_to_completion() {
        let report = dqa_verify::Builder::default().check(|| {
            let gate = Arc::new(AdmissionGate::new(&tight_policy()));
            assert_eq!(gate.admit(None), GateDecision::Admitted);
            let waiter = {
                let gate = Arc::clone(&gate);
                thread::spawn(move || gate.admit(None))
            };
            gate.release();
            assert_eq!(waiter.join().unwrap(), GateDecision::Admitted);
            gate.release();
            assert_eq!(gate.in_flight(), 0);
        });
        assert!(report.executions > 1, "exploration degenerated to one path");
    }

    #[test]
    fn drain_wakes_queued_waiters_in_every_interleaving() {
        dqa_verify::Builder::default().check(|| {
            let gate = Arc::new(AdmissionGate::new(&tight_policy()));
            assert_eq!(gate.admit(None), GateDecision::Admitted);
            let waiter = {
                let gate = Arc::clone(&gate);
                thread::spawn(move || gate.admit(None))
            };
            gate.drain();
            assert_eq!(waiter.join().unwrap(), GateDecision::ShuttingDown);
        });
    }

    #[test]
    fn queue_never_exceeds_its_depth_under_any_interleaving() {
        dqa_verify::Builder::default().check(|| {
            let gate = Arc::new(AdmissionGate::new(&tight_policy()));
            assert_eq!(gate.admit(None), GateDecision::Admitted);
            let contenders: Vec<_> = (0..2)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    thread::spawn(move || {
                        let decision = gate.admit(None);
                        if decision == GateDecision::Admitted {
                            gate.release();
                        }
                        decision
                    })
                })
                .collect();
            gate.release();
            for c in contenders {
                assert_ne!(c.join().unwrap(), GateDecision::ShuttingDown);
            }
            // The proptest invariant, now checked exhaustively.
            assert!(gate.peak_waiting() <= 1, "queue overshot its bound");
            assert_eq!(gate.in_flight(), 0);
        });
    }

    /// The seeded mutant the ISSUE calls for: hand the slot back without
    /// the notify (what a buggy `release` would do). The explorer must
    /// find the interleaving where the queued waiter sleeps forever.
    #[test]
    fn dropped_notify_mutant_is_reported_as_lost_wakeup() {
        let failure = dqa_verify::Builder::default()
            .try_check(|| {
                let gate = Arc::new(AdmissionGate::new(&tight_policy()));
                assert_eq!(gate.admit(None), GateDecision::Admitted);
                let waiter = {
                    let gate = Arc::clone(&gate);
                    thread::spawn(move || gate.admit(None))
                };
                gate.state.lock().in_flight = 0;
                assert_eq!(waiter.join().unwrap(), GateDecision::Admitted);
            })
            .expect_err("a release without notify must be detected");
        assert!(
            failure.message.contains("deadlock"),
            "expected a lost-wakeup report, got: {failure}"
        );
    }
}
