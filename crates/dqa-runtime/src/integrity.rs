//! Data-integrity runtime: the self-verifying segment store, quarantine
//! bookkeeping and scrub-and-repair engine behind [`crate::Cluster`].
//!
//! The store holds the coordinator's persisted `DQAIDX2` image (the bytes a
//! real deployment would have on disk) plus the federation replica's copy of
//! the same segment. Corruption faults damage those bytes in place; nothing
//! in the hot path trusts them again until a checksum passes:
//!
//! * **Detection** — the scrubber walks shard regions with
//!   [`ir_engine::verify_shard`]; question admission spot-checks the shards
//!   it is about to read with [`ir_engine::verify_shard_sampled`]. Either
//!   failure quarantines the sub-collection.
//! * **Quarantine** — quarantined sub-collections are skipped by
//!   [`crate::Cluster::ask`]; answers close with explicitly reduced
//!   [`qa_types::Coverage`] and a `quarantined` cause tag, never with bytes
//!   that failed a checksum.
//! * **Repair** — the damaged shard region is spliced back from the
//!   replica's copy when the replica's checksums hold, else rebuilt from
//!   the in-memory index (the corpus-derived source of truth). `DQAIDX2`
//!   encoding is deterministic, so both sources produce byte-identical
//!   regions and the splice is exact.
//!
//! Scrubbing is paced by the same admission-headroom throttle that gates
//! live re-sharding ([`rebalance::MigrationThrottle`]): under foreground
//! pressure the scrubber yields rather than competing with questions.

use std::collections::BTreeMap;
use std::sync::Arc;

use faults::{CorruptTarget, CorruptionJudge, FaultEvent};
use ir_engine::{
    encode_index_v2, shard_regions, verify_shard, verify_shard_sampled, IntegrityError,
    ShardedIndex,
};
use rebalance::MigrationThrottle;

/// Tuning knobs for the integrity layer. All fields have workable defaults;
/// construct with `IntegrityConfig::default()` and override as needed.
#[derive(Debug, Clone)]
pub struct IntegrityConfig {
    /// Admission-headroom pacing for the background scrubber — the same
    /// shape that gates re-sharding migration steps.
    pub throttle: MigrationThrottle,
    /// Shard regions verified per scrub step.
    pub scrub_quantum: usize,
    /// Term blocks spot-checked per shard on the question read path
    /// (`0` disables read-path sampling).
    pub read_sample_blocks: usize,
    /// Seed for the sampled-verification block draw; XORed with the
    /// question id on the read path so different questions probe
    /// different blocks.
    pub verify_seed: u64,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            throttle: MigrationThrottle::default(),
            scrub_quantum: 2,
            read_sample_blocks: 4,
            verify_seed: 0xd1a6_05e6_1717_0001,
        }
    }
}

/// Where a repaired shard region came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSource {
    /// Spliced from the federation replica's checksum-clean copy.
    Replica,
    /// Re-encoded from the in-memory index (source-of-truth rebuild).
    Rebuild,
}

impl RepairSource {
    /// Metric label value for `dqa_integrity_repairs_total`.
    pub fn as_str(self) -> &'static str {
        match self {
            RepairSource::Replica => "replica",
            RepairSource::Rebuild => "rebuild",
        }
    }
}

/// What one scrub step (or full scrub cycle) did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Shard regions whose checksums were verified clean this step.
    pub verified: usize,
    /// Sub-collections newly quarantined by this step's verification.
    pub detected: Vec<u32>,
    /// Sub-collections repaired by splicing the replica's region.
    pub repaired_replica: Vec<u32>,
    /// Sub-collections repaired by re-encoding from the in-memory index.
    pub repaired_rebuild: Vec<u32>,
    /// Steps the throttle deferred in favor of foreground traffic.
    pub throttled: usize,
}

impl ScrubReport {
    /// Fold another step's report into this one.
    pub fn absorb(&mut self, other: ScrubReport) {
        self.verified += other.verified;
        self.detected.extend(other.detected);
        self.repaired_replica.extend(other.repaired_replica);
        self.repaired_rebuild.extend(other.repaired_rebuild);
        self.throttled += other.throttled;
    }

    /// Total repairs from either source.
    pub fn repaired(&self) -> usize {
        self.repaired_replica.len() + self.repaired_rebuild.len()
    }
}

/// The persisted segment image, its replica, and quarantine state.
///
/// Both images are full `DQAIDX2` encodings of the same index. Because the
/// encoding is deterministic they are byte-identical when healthy, and the
/// per-shard directory gives every sub-collection a fixed `(offset, len)`
/// region in both — which is what makes region splicing a sound repair.
pub struct IntegrityStore {
    segment: Vec<u8>,
    replica: Vec<u8>,
    quarantined: BTreeMap<u32, String>,
    cursor: usize,
}

impl IntegrityStore {
    /// Encode `index` into the primary segment image and its replica.
    pub fn new(index: &ShardedIndex) -> IntegrityStore {
        let segment = encode_index_v2(index);
        let replica = segment.clone();
        IntegrityStore {
            segment,
            replica,
            quarantined: BTreeMap::new(),
            cursor: 0,
        }
    }

    /// The primary segment image (what the read path would load).
    pub fn segment(&self) -> &[u8] {
        &self.segment
    }

    /// Sub-collection ids in directory order.
    pub fn shard_ids(&self) -> Vec<u32> {
        shard_regions(&self.segment)
            .map(|r| r.iter().map(|&(sub, _, _)| sub).collect())
            .unwrap_or_default()
    }

    fn region(data: &[u8], sub: u32) -> Option<(usize, usize)> {
        shard_regions(data)
            .ok()?
            .iter()
            .find(|&&(s, _, _)| s == sub)
            .map(|&(_, off, len)| (off, len))
    }

    fn damage(data: &mut [u8], judge: &CorruptionJudge, sub: u32, torn: bool) -> Option<usize> {
        let (off, len) = Self::region(data, sub)?;
        let target = CorruptTarget::IndexSegment { sub };
        let region = &mut data[off..off + len];
        if torn {
            // A torn write leaves the region's suffix stale/zeroed. The
            // region keeps its length so the directory stays valid — the
            // damage is to content, not layout.
            let point = judge.tear_point(target, region.len());
            for b in &mut region[point..] {
                *b = 0;
            }
            Some(off + point)
        } else {
            judge.flip(target, region).map(|p| off + p)
        }
    }

    /// Damage `sub`'s region in the primary image. Returns the absolute
    /// byte offset of the damage, or `None` when the region is missing.
    pub fn corrupt(&mut self, judge: &CorruptionJudge, sub: u32, torn: bool) -> Option<usize> {
        Self::damage(&mut self.segment, judge, sub, torn)
    }

    /// Damage `sub`'s region in the replica image (models a fault domain
    /// that takes out both copies, forcing a rebuild repair).
    pub fn corrupt_replica(
        &mut self,
        judge: &CorruptionJudge,
        sub: u32,
        torn: bool,
    ) -> Option<usize> {
        Self::damage(&mut self.replica, judge, sub, torn)
    }

    /// Full checksum verification of one shard region in the primary image.
    pub fn verify(&self, sub: u32) -> Result<(), IntegrityError> {
        verify_shard(&self.segment, sub)
    }

    /// Sampled (read-path) verification of one shard region.
    pub fn verify_sampled(
        &self,
        sub: u32,
        seed: u64,
        max_blocks: usize,
    ) -> Result<(), IntegrityError> {
        verify_shard_sampled(&self.segment, sub, seed, max_blocks)
    }

    /// Mark `sub` quarantined with a human-readable reason. Returns `true`
    /// when this is a new quarantine (not already recorded).
    pub fn quarantine(&mut self, sub: u32, why: String) -> bool {
        self.quarantined.insert(sub, why).is_none()
    }

    /// Whether `sub` is currently quarantined.
    pub fn is_quarantined(&self, sub: u32) -> bool {
        self.quarantined.contains_key(&sub)
    }

    /// Currently quarantined sub-collections, ascending.
    pub fn quarantined_subs(&self) -> Vec<u32> {
        self.quarantined.keys().copied().collect()
    }

    /// The next `quantum` sub-collections under the scrub cursor,
    /// advancing it with wraparound.
    pub fn scrub_targets(&mut self, quantum: usize) -> Vec<u32> {
        let ids = self.shard_ids();
        if ids.is_empty() || quantum == 0 {
            return Vec::new();
        }
        let take = quantum.min(ids.len());
        let picked = (0..take)
            .map(|i| ids[(self.cursor + i) % ids.len()])
            .collect();
        self.cursor = (self.cursor + take) % ids.len();
        picked
    }

    /// Fraction of the shard directory the cursor has covered this pass.
    pub fn scrub_progress(&self) -> f64 {
        let n = self.shard_ids().len();
        if n == 0 {
            return 1.0;
        }
        self.cursor as f64 / n as f64
    }

    /// Repair a quarantined sub-collection and lift the quarantine.
    ///
    /// Prefers splicing the replica's region when the replica's checksums
    /// hold; falls back to re-encoding from `index`. Either way the healed
    /// region is re-verified before the quarantine lifts, and the replica
    /// is healed too when it was the damaged copy. Returns `None` if `sub`
    /// was not quarantined or the region cannot be restored.
    pub fn repair(&mut self, sub: u32, index: &ShardedIndex) -> Option<RepairSource> {
        if !self.quarantined.contains_key(&sub) {
            return None;
        }
        let (off, len) = Self::region(&self.segment, sub)?;
        let source = if verify_shard(&self.replica, sub).is_ok() {
            self.segment[off..off + len].copy_from_slice(&self.replica[off..off + len]);
            RepairSource::Replica
        } else {
            let rebuilt = encode_index_v2(index);
            let (roff, rlen) = Self::region(&rebuilt, sub)?;
            if rlen != len {
                return None;
            }
            self.segment[off..off + len].copy_from_slice(&rebuilt[roff..roff + rlen]);
            self.replica[off..off + len].copy_from_slice(&rebuilt[roff..roff + rlen]);
            RepairSource::Rebuild
        };
        if verify_shard(&self.segment, sub).is_err() {
            return None;
        }
        self.quarantined.remove(&sub);
        Some(source)
    }
}

/// Config + store + the source-of-truth index: everything the cluster's
/// integrity hooks need behind one mutex.
pub struct IntegrityRuntime {
    /// Tuning knobs (scrub pacing, read sampling, seeds).
    pub cfg: IntegrityConfig,
    /// Segment images and quarantine state.
    pub store: IntegrityStore,
    index: Arc<ShardedIndex>,
}

impl IntegrityRuntime {
    /// Build the runtime around the retriever's index.
    pub fn new(cfg: IntegrityConfig, index: Arc<ShardedIndex>) -> IntegrityRuntime {
        let store = IntegrityStore::new(&index);
        IntegrityRuntime { cfg, store, index }
    }

    /// Apply one scheduled corruption fault. Returns `true` when the event
    /// targeted an index segment and damaged bytes (journal and message
    /// targets are consumed by their own subsystems).
    pub fn inject(&mut self, event: &FaultEvent, judge: &CorruptionJudge) -> bool {
        let (target, torn) = match *event {
            FaultEvent::BitFlip { target, .. } => (target, false),
            FaultEvent::TornWrite { target, .. } => (target, true),
            _ => return false,
        };
        match target {
            CorruptTarget::IndexSegment { sub } => self.store.corrupt(judge, sub, torn).is_some(),
            _ => false,
        }
    }

    /// Read-path spot check: sample-verify each shard a question is about
    /// to touch, quarantining on failure. Returns the sub-collections
    /// *newly* quarantined by this check (already-quarantined shards are
    /// skipped upstream and not re-checked).
    pub fn read_check(&mut self, subs: &[u32], question_seed: u64) -> Vec<u32> {
        let max = self.cfg.read_sample_blocks;
        if max == 0 {
            return Vec::new();
        }
        let seed = self.cfg.verify_seed ^ question_seed;
        let mut fresh = Vec::new();
        for &sub in subs {
            if self.store.is_quarantined(sub) {
                continue;
            }
            if let Err(e) = self.store.verify_sampled(sub, seed, max) {
                self.store.quarantine(sub, e.to_string());
                fresh.push(sub);
            }
        }
        fresh
    }

    /// One unthrottled scrub step: verify the next quantum of shard
    /// regions, then repair everything quarantined. (The caller applies
    /// the throttle verdict and metric accounting.)
    pub fn scrub_quantum(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for sub in self.store.scrub_targets(self.cfg.scrub_quantum) {
            if self.store.is_quarantined(sub) {
                continue;
            }
            match self.store.verify(sub) {
                Ok(()) => report.verified += 1,
                Err(e) => {
                    self.store.quarantine(sub, e.to_string());
                    report.detected.push(sub);
                }
            }
        }
        for sub in self.store.quarantined_subs() {
            match self.store.repair(sub, &self.index) {
                Some(RepairSource::Replica) => report.repaired_replica.push(sub),
                Some(RepairSource::Rebuild) => report.repaired_rebuild.push(sub),
                None => {}
            }
        }
        report
    }

    /// Number of steps in one full pass over the shard directory.
    pub fn steps_per_pass(&self) -> usize {
        let n = self.store.shard_ids().len();
        let q = self.cfg.scrub_quantum.max(1);
        n.div_ceil(q).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig};
    use faults::FaultSchedule;

    fn index() -> Arc<ShardedIndex> {
        let c = Corpus::generate(CorpusConfig::small(77)).unwrap();
        Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections))
    }

    fn judge() -> CorruptionJudge {
        FaultSchedule::seeded(41).corruption_judge()
    }

    #[test]
    fn corruption_is_detected_and_repaired_from_replica() {
        let idx = index();
        let mut store = IntegrityStore::new(&idx);
        let clean = store.segment().to_vec();
        assert!(store.corrupt(&judge(), 1, false).is_some());
        let err = store.verify(1).expect_err("bit flip must fail checksums");
        assert!(store.quarantine(1, err.to_string()));
        assert_eq!(
            store.repair(1, &idx),
            Some(RepairSource::Replica),
            "replica intact, so repair splices it"
        );
        assert!(store.verify(1).is_ok());
        assert_eq!(store.segment(), &clean[..], "repair restores exact bytes");
        assert!(store.quarantined_subs().is_empty());
    }

    #[test]
    fn double_fault_falls_back_to_rebuild() {
        let idx = index();
        let mut store = IntegrityStore::new(&idx);
        let clean = store.segment().to_vec();
        let j = judge();
        assert!(store.corrupt(&j, 2, true).is_some());
        assert!(store.corrupt_replica(&j, 2, true).is_some());
        store.quarantine(2, "torn write".into());
        assert_eq!(
            store.repair(2, &idx),
            Some(RepairSource::Rebuild),
            "replica also damaged, so repair re-encodes from the index"
        );
        assert!(store.verify(2).is_ok());
        assert_eq!(store.segment(), &clean[..]);
    }

    #[test]
    fn torn_write_keeps_region_layout_valid() {
        let idx = index();
        let mut store = IntegrityStore::new(&idx);
        let before = store.segment().len();
        store.corrupt(&judge(), 0, true);
        assert_eq!(store.segment().len(), before, "torn write never resizes");
        // Other shards still verify: the damage is contained to region 0.
        for sub in store.shard_ids() {
            if sub != 0 {
                assert!(store.verify(sub).is_ok(), "shard {sub} should be clean");
            }
        }
        assert!(store.verify(0).is_err());
    }

    #[test]
    fn scrub_cursor_wraps_and_reports_progress() {
        let idx = index();
        let mut store = IntegrityStore::new(&idx);
        let n = store.shard_ids().len();
        assert!(n > 2, "small corpus should still shard into several subs");
        let mut seen = Vec::new();
        // Two full passes: every shard visited twice, in order.
        for _ in 0..(2 * n) {
            seen.extend(store.scrub_targets(1));
        }
        let ids = store.shard_ids();
        assert_eq!(&seen[..n], &ids[..]);
        assert_eq!(&seen[n..], &ids[..]);
        assert_eq!(store.scrub_progress(), 0.0, "cursor wrapped to start");
    }

    #[test]
    fn runtime_scrub_detects_and_repairs_in_one_pass() {
        let idx = index();
        let mut rt = IntegrityRuntime::new(IntegrityConfig::default(), idx);
        let j = judge();
        let victim = rt.store.shard_ids()[0];
        assert!(rt.store.corrupt(&j, victim, false).is_some());
        let mut total = ScrubReport::default();
        for _ in 0..rt.steps_per_pass() {
            total.absorb(rt.scrub_quantum());
        }
        assert_eq!(total.detected, vec![victim]);
        assert_eq!(total.repaired(), 1, "detected shard repaired same pass");
        assert!(rt.store.quarantined_subs().is_empty());
        assert!(rt.store.verify(victim).is_ok());
    }

    #[test]
    fn read_check_quarantines_only_damaged_shards() {
        let idx = index();
        let mut rt = IntegrityRuntime::new(IntegrityConfig::default(), idx);
        // Sampling with a generous budget degenerates to check-all, so a
        // single flipped bit cannot hide from the read path.
        rt.cfg.read_sample_blocks = usize::MAX;
        let j = judge();
        rt.store.corrupt(&j, 3, false);
        let subs = rt.store.shard_ids();
        let fresh = rt.read_check(&subs, 0xfeed);
        assert_eq!(fresh, vec![3]);
        assert!(rt.store.is_quarantined(3));
        // Second check: already quarantined, nothing new.
        assert!(rt.read_check(&subs, 0xfeed).is_empty());
    }

    #[test]
    fn inject_routes_only_index_targets() {
        let idx = index();
        let mut rt = IntegrityRuntime::new(IntegrityConfig::default(), idx);
        let j = judge();
        let flip = FaultEvent::BitFlip {
            target: CorruptTarget::IndexSegment { sub: 1 },
            at: 0.5,
        };
        assert!(rt.inject(&flip, &j));
        assert!(rt.store.verify(1).is_err());
        let journal = FaultEvent::BitFlip {
            target: CorruptTarget::JournalSegment { segment: 0 },
            at: 0.5,
        };
        assert!(
            !rt.inject(&journal, &j),
            "journal targets handled elsewhere"
        );
    }
}
