//! Fault-injecting channel layer.
//!
//! [`FaultyLink`] wraps a node's crossbeam sender and consults the seeded
//! [`LinkJudge`] for every envelope: deliver, drop, duplicate, or delay.
//! Decisions are a pure function of `(seed, destination, sequence number)`,
//! so a given schedule perturbs the same messages on every run.
//!
//! A *dropped* envelope is not retransmitted here — the coordinator's
//! retry/speculation policy recovers it, mirroring how the paper's system
//! leans on TCP errors plus rescheduling rather than link-level heroics. A
//! *duplicated* envelope is sent twice and collapses at the coordinator's
//! first-result-wins chunk dedup. A *delayed* envelope is handed to a
//! short-lived sleeper thread.
//!
//! Node ingress queues are *bounded*: every send carries a timeout, and a
//! send that cannot enqueue within it fails with
//! [`SendTimeoutError::Timeout`] so the coordinator re-queues the chunk
//! (backpressure feeding the retry machinery) instead of blocking behind a
//! saturated node.

use crate::message::Envelope;
use crossbeam_channel::{SendTimeoutError, Sender};
use faults::{LinkDecision, LinkJudge};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A sender to one node, optionally perturbed by a [`LinkJudge`].
#[derive(Debug)]
pub struct FaultyLink {
    inner: Sender<Envelope>,
    judge: Option<LinkJudge>,
    flow: u64,
    seq: AtomicU64,
}

impl FaultyLink {
    /// A transparent link: every send goes straight through.
    pub fn clean(inner: Sender<Envelope>) -> FaultyLink {
        FaultyLink {
            inner,
            judge: None,
            flow: 0,
            seq: AtomicU64::new(0),
        }
    }

    /// A link perturbed by `judge`; `flow` identifies the destination in
    /// the judge's decision hash.
    pub fn faulty(inner: Sender<Envelope>, judge: LinkJudge, flow: u64) -> FaultyLink {
        FaultyLink {
            inner,
            judge: Some(judge),
            flow,
            seq: AtomicU64::new(0),
        }
    }

    /// Depth of the destination's bounded ingress queue right now
    /// (feeds the `dqa_queue_depth` gauge).
    pub fn queue_len(&self) -> usize {
        self.inner.len()
    }

    /// Send an envelope through the (possibly faulty) link, waiting at most
    /// `timeout` for room in the destination's bounded ingress queue.
    /// `Ok(())` means the link accepted the message — which, under fault
    /// injection, may still mean it was silently lost, exactly like a real
    /// network. `Err(Timeout)` is backpressure from a saturated node (the
    /// caller re-queues the chunk); `Err(Disconnected)` means the node is
    /// shut down.
    pub fn send(
        &self,
        envelope: Envelope,
        timeout: Duration,
    ) -> Result<(), SendTimeoutError<Envelope>> {
        let Some(judge) = self.judge else {
            return self.inner.send_timeout(envelope, timeout);
        };
        let msg = self.seq.fetch_add(1, Ordering::Relaxed);
        match judge.decide(self.flow, msg) {
            LinkDecision::Deliver => self.inner.send_timeout(envelope, timeout),
            LinkDecision::Drop => Ok(()),
            LinkDecision::Duplicate => {
                let copy = envelope.clone();
                self.inner.send_timeout(envelope, timeout)?;
                // The twin is best-effort; dedup absorbs it either way, and
                // a full queue simply swallows the duplicate.
                let _ = self.inner.try_send(copy);
                Ok(())
            }
            LinkDecision::Delay(secs) => {
                let tx = self.inner.clone();
                let dur = Duration::from_secs_f64(secs.max(0.0));
                let spawned = std::thread::Builder::new()
                    .name("dqa-link-delay".into())
                    .spawn(move || {
                        std::thread::sleep(dur);
                        let _ = tx.send_timeout(envelope, timeout);
                    });
                // No thread for the sleeper → the message is effectively
                // lost in transit; the retry policy recovers it.
                let _ = spawned;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{SubTask, SubTaskResult};
    use crossbeam_channel::{bounded, unbounded};
    use faults::FaultSchedule;
    use qa_types::{QuestionId, SubCollectionId};

    const T: Duration = Duration::from_millis(50);

    fn envelope(reply: Sender<SubTaskResult>, chunk: u32) -> Envelope {
        Envelope {
            task: SubTask::PrShard {
                question: QuestionId::new(1),
                keywords: vec![],
                shard: SubCollectionId::new(0),
                chunk,
            },
            reply,
        }
    }

    #[test]
    fn clean_link_delivers_everything() {
        let (tx, rx) = unbounded();
        let (reply, _keep) = unbounded();
        let link = FaultyLink::clean(tx);
        for i in 0..10 {
            link.send(envelope(reply.clone(), i), T).unwrap();
        }
        assert_eq!(rx.len(), 10);
    }

    #[test]
    fn full_loss_delivers_nothing_but_reports_ok() {
        let (tx, rx) = unbounded();
        let (reply, _keep) = unbounded();
        let judge = FaultSchedule::seeded(3).message_loss(1.0).link_judge();
        let link = FaultyLink::faulty(tx, judge, 0);
        for i in 0..10 {
            link.send(envelope(reply.clone(), i), T).unwrap();
        }
        assert_eq!(rx.len(), 0, "every message lost");
    }

    #[test]
    fn full_duplication_doubles_delivery() {
        let (tx, rx) = unbounded();
        let (reply, _keep) = unbounded();
        let judge = FaultSchedule::seeded(3).message_dup(1.0).link_judge();
        let link = FaultyLink::faulty(tx, judge, 0);
        for i in 0..5 {
            link.send(envelope(reply.clone(), i), T).unwrap();
        }
        assert_eq!(rx.len(), 10, "every message delivered twice");
    }

    #[test]
    fn delayed_messages_arrive_late_but_arrive() {
        let (tx, rx) = unbounded();
        let (reply, _keep) = unbounded();
        let judge = FaultSchedule::seeded(3)
            .message_delay(1.0, 0.01)
            .link_judge();
        let link = FaultyLink::faulty(tx, judge, 0);
        link.send(envelope(reply, 0), T).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(2));
        assert!(got.is_ok(), "delayed message never arrived");
    }

    #[test]
    fn closed_channel_is_an_error_on_delivery() {
        let (tx, rx) = unbounded();
        let (reply, _keep) = unbounded();
        drop(rx);
        let link = FaultyLink::clean(tx);
        assert!(matches!(
            link.send(envelope(reply, 0), T),
            Err(SendTimeoutError::Disconnected(_))
        ));
    }

    #[test]
    fn full_bounded_queue_times_out_instead_of_blocking() {
        let (tx, rx) = bounded(1);
        let (reply, _keep) = unbounded();
        let link = FaultyLink::clean(tx);
        link.send(envelope(reply.clone(), 0), T).unwrap();
        let started = std::time::Instant::now();
        let out = link.send(envelope(reply.clone(), 1), Duration::from_millis(20));
        assert!(matches!(out, Err(SendTimeoutError::Timeout(_))));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "send must give up after the timeout, not block"
        );
        // Draining the queue makes room again.
        rx.recv().unwrap();
        link.send(envelope(reply, 2), T).unwrap();
    }
}
