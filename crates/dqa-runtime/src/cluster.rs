//! The cluster facade and the per-question coordinator.

use crate::board::{LoadBoard, QuarantinePolicy};
use crate::chaos::ChaosDriver;
use crate::clock::now_instant;
use crate::failover::CoordinatorJournal;
use crate::integrity::{IntegrityConfig, IntegrityRuntime, ScrubReport};
use crate::links::FaultyLink;
use crate::message::{Envelope, SubTask, SubTaskResult};
use crate::monitor::BroadcastMonitors;
use crate::node::{run_node, NodeContext};
use crate::overload::{Admission, AdmissionGate, GateDecision, PhaseEstimator};
use crate::sync::Mutex;
use crate::trace::{seal_question_spans, TraceKind, TraceLog, DEFAULT_FLIGHT_RECORDER_CAPACITY};
use crossbeam_channel::{bounded, RecvTimeoutError, SendTimeoutError, Sender};
use dqa_obs::{
    names, CausalSpan, CauseSet, Clock, DqaMetrics, Gauge, MetricsRegistry, TraceRecorder,
    WallClock,
};
use faults::{FaultEvent, FaultSchedule, RetryPolicy};
use ir_engine::ParagraphRetriever;
use journal::{
    JournalError, JournalPhase, JournalRecord, QuestionRecovery, RecoveredState, Recovery,
    SchedulingPoint,
};
use loadsim::functions::LoadFunctions;
use nlp::{NamedEntityRecognizer, QuestionProcessor};
use qa_pipeline::answer::ApItem;
use qa_pipeline::ordering::order_paragraphs;
use qa_pipeline::scoring::ScoredParagraph;
use qa_pipeline::PipelineConfig;
use qa_types::{
    Coverage, ModuleTimings, NodeId, OverloadPolicy, ProcessedQuestion, QaError, QaModule,
    Question, RankedAnswers, SubCollectionId, Trec9Profile,
};
use rebalance::{
    plan_evacuation, plan_join, plan_skew, ElasticConfig, FailureDetector, MigrationPlan,
    MigrationStep, NodeHealth, OwnershipMap, RebalanceReason, ThrottleVerdict,
};
use scheduler::meta::meta_schedule;
use scheduler::partition::{partition_isend, partition_recv, partition_send, PartitionStrategy};
use scheduler::recovery::{ChunkOutcome, ChunkQueue};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Pipeline knobs (answer length, PO threshold, …).
    pub pipeline: PipelineConfig,
    /// AP partitioning algorithm.
    pub ap_partition: PartitionStrategy,
    /// Worker heartbeat / idle-poll interval.
    pub heartbeat_every: Duration,
    /// Coordinator sub-task poll timeout before it checks worker liveness
    /// (the failure-detection latency).
    pub subtask_poll: Duration,
    /// Heartbeat staleness window after which peers consider a node dead.
    pub staleness: Duration,
    /// Load-monitor broadcast interval (§3.1). Dispatch decisions read the
    /// observing node's broadcast view when it is warm, falling back to the
    /// shared board before the first packets land.
    pub monitor_interval: Duration,
    /// Service threads per node. The paper's nodes run up to 4 questions'
    /// worth of sub-tasks concurrently (§4.2); two service threads let a
    /// node overlap a disk-bound PR chunk with a CPU-bound AP batch.
    pub workers_per_node: usize,
    /// Fault schedule the cluster runs under (crashes/rejoins/stragglers
    /// via the chaos driver, link faults on every envelope, monitor packet
    /// loss). [`FaultSchedule::none`] — the default — is fully inert.
    pub faults: FaultSchedule,
    /// Wall-clock seconds per schedule second (`0.001` runs a schedule
    /// authored in simulator seconds at millisecond scale).
    pub fault_time_scale: f64,
    /// Per-question deadline. Past it, coordinators abandon outstanding
    /// chunks and return a degraded, coverage-annotated answer instead of
    /// blocking. `None` (default) waits indefinitely, the pre-fault-
    /// framework behavior.
    pub deadline: Option<Duration>,
    /// Bounded retry budget per phase: every recovered (re-queued or
    /// speculated) chunk spends one unit; an exhausted budget degrades the
    /// answer instead of retrying forever.
    pub retry: RetryPolicy,
    /// Speculative re-execution trigger: after this many consecutive empty
    /// poll rounds, a straggler's oldest chunk is cloned onto an idle
    /// worker (first result wins). `None` (default) disables speculation.
    pub speculate_after: Option<u32>,
    /// Flap circuit-breaker handed to the [`LoadBoard`].
    pub quarantine: QuarantinePolicy,
    /// Admission control and load shedding (see [`OverloadPolicy`]). The
    /// default is fully permissive, preserving the pre-overload behavior.
    pub overload: OverloadPolicy,
    /// Capacity of each node's bounded ingress queue. Past it, senders
    /// block up to [`ClusterConfig::send_timeout`] and then re-queue the
    /// chunk (backpressure instead of unbounded growth).
    pub node_queue: usize,
    /// How long a coordinator waits for room in a node's ingress queue
    /// before treating the send as failed and recovering the chunk.
    pub send_timeout: Duration,
    /// Metrics registry the cluster records into. `None` (default) makes
    /// the cluster create its own enabled registry; pass a shared one to
    /// aggregate across clusters, or [`MetricsRegistry::disabled`] to
    /// turn every instrument into a no-op (the overhead baseline).
    pub metrics: Option<MetricsRegistry>,
    /// Capacity of the bounded trace flight recorder. Oldest events are
    /// evicted past it, counted in `dqa_trace_dropped_total`.
    pub trace_capacity: usize,
    /// Identity seed for causal-span trace ids
    /// ([`dqa_obs::derive_trace_id`]). A federation broker and its shard
    /// clusters must share it so their span streams stitch into one
    /// trace per question; the value never influences execution.
    pub trace_seed: u64,
    /// Durable question journal the coordinator appends its decisions to
    /// (admission, the three scheduling points, chunk grants, partial
    /// results, final answers). `None` (default) disables journaling; with
    /// a journal, a successor coordinator can replay it and
    /// [`Cluster::resume`] every in-flight question. All journal file I/O
    /// lives in the `journal` crate — the `raw-fs-write` lint rule keeps
    /// ad-hoc writes out of this one.
    pub journal: Option<CoordinatorJournal>,
    /// Elastic membership: ownership-mapped sub-collections, a lease/phi
    /// failure detector, and operator [`Cluster::drain`]/[`Cluster::join`]
    /// verbs backed by throttled, journal-fenced migration plans. The last
    /// [`ElasticConfig::standby_nodes`] of `nodes` start suspended (warm
    /// spares owning nothing) until a `join` pulls them in. `None`
    /// (default) disables the tier; every pre-elastic behavior — routing,
    /// recovery, journaling — is unchanged.
    pub elastic: Option<ElasticConfig>,
    /// Data-integrity tier: a checksummed `DQAIDX2` segment image of the
    /// index plus a replica copy, corruption fault injection against it,
    /// read-path spot checks, quarantine of checksum-failing
    /// sub-collections (questions skip them and close coverage-annotated),
    /// and a throttled [`Cluster::scrub`]/[`Cluster::scrub_step`] engine
    /// that detects and repairs damage in the background. `None` (default)
    /// disables the tier entirely.
    pub integrity: Option<IntegrityConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            pipeline: PipelineConfig::default(),
            ap_partition: PartitionStrategy::Recv { chunk_size: 40 },
            heartbeat_every: Duration::from_millis(5),
            subtask_poll: Duration::from_millis(20),
            staleness: Duration::from_millis(200),
            monitor_interval: Duration::from_millis(5),
            workers_per_node: 2,
            faults: FaultSchedule::none(),
            fault_time_scale: 1.0,
            deadline: None,
            retry: RetryPolicy::default(),
            speculate_after: None,
            quarantine: QuarantinePolicy::default(),
            overload: OverloadPolicy::default(),
            node_queue: 256,
            send_timeout: Duration::from_millis(100),
            metrics: None,
            trace_capacity: DEFAULT_FLIGHT_RECORDER_CAPACITY,
            trace_seed: 0,
            journal: None,
            elastic: None,
            integrity: None,
        }
    }
}

/// Output of a distributed question execution.
#[derive(Debug, Clone)]
pub struct DistributedAnswer {
    /// QP output.
    pub processed: ProcessedQuestion,
    /// Final merged answers.
    pub answers: RankedAnswers,
    /// Wall-clock per phase.
    pub timings: ModuleTimings,
    /// Node chosen as the question's home.
    pub home: NodeId,
    /// Distinct nodes that served PR chunks.
    pub pr_nodes: Vec<NodeId>,
    /// Distinct nodes that served AP batches.
    pub ap_nodes: Vec<NodeId>,
    /// Paragraphs accepted by PO.
    pub paragraphs_accepted: usize,
    /// Chunk coverage of the answer: complete on a clean run; below 1.0
    /// when the coordinator degraded gracefully (deadline or retry budget
    /// exhausted) instead of failing the question.
    pub coverage: Coverage,
}

/// Trace-id namespace for migration-plan span trees (XORed with the
/// plan id so they never collide with question traces).
const MIGRATION_TRACE_NS: u64 = 0x4d49_4752_0000_0000; // "MIGR"
/// Trace-id namespace for journal-replay span trees (XORed with the
/// successor's term).
const REPLAY_TRACE_NS: u64 = 0x5250_4c59_0000_0000; // "RPLY"

/// A running cluster of worker threads.
pub struct Cluster {
    cfg: ClusterConfig,
    board: Arc<LoadBoard>,
    trace: TraceLog,
    tracer: Arc<TraceRecorder>,
    links: Vec<FaultyLink>,
    workers: Vec<JoinHandle<()>>,
    qp: QuestionProcessor,
    functions: LoadFunctions,
    rr: AtomicUsize,
    shards: usize,
    monitors: BroadcastMonitors,
    chaos: Option<ChaosDriver>,
    gate: AdmissionGate,
    estimator: PhaseEstimator,
    metrics: DqaMetrics,
    queue_depth: Vec<Gauge>,
    elastic: Option<Mutex<ElasticRuntime>>,
    integrity: Option<Mutex<IntegrityRuntime>>,
}

/// Mutable state of the elastic-membership tier: who owns which
/// sub-collection, what the failure detector believes, and the plan
/// sequence counter. One mutex guards it all — rebalancing is a
/// control-plane rarity, never on the per-question hot path (readers take
/// the lock once per PR scheduling decision, holders never block on I/O).
struct ElasticRuntime {
    cfg: ElasticConfig,
    ownership: OwnershipMap,
    detector: FailureDetector,
    plan_seq: u64,
    /// Wall anchor for the detector's f64 timeline.
    epoch: Instant,
    /// Set when convergence is first broken, cleared (into the
    /// `dqa_rebalance_heal_seconds` histogram) when it is restored.
    heal_started: Option<Instant>,
}

impl ElasticRuntime {
    fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

impl Cluster {
    /// Start `cfg.nodes` worker threads over a built retriever + NER.
    pub fn start(
        retriever: ParagraphRetriever,
        ner: NamedEntityRecognizer,
        cfg: ClusterConfig,
    ) -> Cluster {
        assert!(cfg.nodes > 0, "at least one node");
        let board = Arc::new(LoadBoard::with_policy(
            cfg.nodes,
            cfg.staleness.as_secs_f64(),
            cfg.quarantine,
        ));
        let registry = cfg.metrics.clone().unwrap_or_else(MetricsRegistry::new);
        let metrics = DqaMetrics::new(&registry);
        let queue_depth: Vec<Gauge> = (0..cfg.nodes)
            .map(|i| metrics.queue_depth(i as u32))
            .collect();
        // One wall epoch for the event log and the causal-span recorder,
        // so sealed spans and Fig. 7 listings share a timeline.
        let span_clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let trace = TraceLog::with(
            Arc::clone(&span_clock),
            cfg.trace_capacity,
            registry.counter(names::TRACE_DROPPED_TOTAL, &[]),
        );
        let tracer = Arc::new(TraceRecorder::new(
            span_clock,
            cfg.trace_seed,
            cfg.trace_capacity,
            registry.counter(names::TRACE_DROPPED_TOTAL, &[]),
        ));
        let shards = retriever.index().shard_count();
        let link_judge = (!cfg.faults.link.is_clean()).then(|| cfg.faults.link_judge());
        let mut links = Vec::with_capacity(cfg.nodes);
        let mut workers = Vec::with_capacity(cfg.nodes);
        let workers_per_node = cfg.workers_per_node.max(1);
        let mut spawnless: Vec<NodeId> = Vec::new();
        for i in 0..cfg.nodes {
            // Bounded ingress: a saturated node pushes back through send
            // timeouts instead of hoarding an ever-growing queue.
            let (tx, rx) = bounded::<Envelope>(cfg.node_queue.max(1));
            // Crossbeam channels are MPMC: every service thread of the node
            // consumes from the same queue, so sub-tasks overlap (a
            // disk-bound PR chunk next to a CPU-bound AP batch — the §4.2
            // overlap effect).
            let mut spawned = 0usize;
            for w in 0..workers_per_node {
                let ctx = NodeContext {
                    id: NodeId::new(i as u32),
                    retriever: retriever.clone(),
                    ner: ner.clone(),
                    board: Arc::clone(&board),
                    trace: trace.clone(),
                    heartbeat_every: cfg.heartbeat_every,
                };
                let rx = rx.clone();
                // A node that cannot field all its service threads runs
                // degraded; one that fields none is treated exactly like a
                // failed node (recovery re-routes its work).
                if let Ok(handle) = std::thread::Builder::new()
                    .name(format!("dqa-node-{i}-{w}"))
                    .spawn(move || run_node(ctx, rx))
                {
                    workers.push(handle);
                    spawned += 1;
                }
            }
            if spawned == 0 {
                spawnless.push(NodeId::new(i as u32));
            }
            links.push(match link_judge {
                Some(judge) => FaultyLink::faulty(tx, judge, i as u64),
                None => FaultyLink::clean(tx),
            });
        }
        // Give every node one heartbeat so dispatchers see a full pool,
        // then retire the nodes that never came up.
        for i in 0..cfg.nodes {
            board.heartbeat(NodeId::new(i as u32));
        }
        for n in spawnless {
            board.set_alive(n, false);
        }
        let monitor_judge = (cfg.faults.monitor_loss > 0.0).then(|| cfg.faults.monitor_judge());
        let monitors = BroadcastMonitors::start_instrumented(
            Arc::clone(&board),
            cfg.monitor_interval,
            cfg.staleness.as_secs_f64(),
            monitor_judge,
            &metrics,
        );
        let chaos = (!cfg.faults.events.is_empty())
            .then(|| ChaosDriver::start(Arc::clone(&board), &cfg.faults, cfg.fault_time_scale));
        let gate = AdmissionGate::new(&cfg.overload);
        if let Some(journal) = &cfg.journal {
            metrics.leader_term.set(journal.term() as f64);
        }
        let integrity = cfg
            .integrity
            .clone()
            .map(|icfg| Mutex::new(IntegrityRuntime::new(icfg, Arc::clone(retriever.index()))));
        let elastic = cfg.elastic.clone().map(|ecfg| {
            assert!(
                ecfg.standby_nodes < cfg.nodes,
                "standby_nodes ({}) must leave at least one active node (nodes = {})",
                ecfg.standby_nodes,
                cfg.nodes
            );
            let active = cfg.nodes - ecfg.standby_nodes;
            // Warm spares: threads up, heartbeating threads parked by the
            // board suspension, owning no sub-collections until a `join`.
            for i in active..cfg.nodes {
                board.suspend(NodeId::new(i as u32));
            }
            let owners: Vec<NodeId> = (0..active).map(|i| NodeId::new(i as u32)).collect();
            metrics.rebalance_converged.set(1.0);
            metrics.ownership_epoch.set(0.0);
            Mutex::new(ElasticRuntime {
                detector: FailureDetector::new(cfg.nodes, ecfg.detector, 0.0),
                ownership: OwnershipMap::balanced(shards as u32, &owners),
                cfg: ecfg,
                plan_seq: 0,
                epoch: now_instant(),
                heal_started: None,
            })
        });
        Cluster {
            monitors,
            cfg,
            board,
            trace,
            tracer,
            links,
            workers,
            qp: QuestionProcessor::new(),
            functions: LoadFunctions::paper(),
            rr: AtomicUsize::new(0),
            shards,
            chaos,
            gate,
            estimator: PhaseEstimator::new(Trec9Profile::average()),
            metrics,
            queue_depth,
            elastic,
            integrity,
        }
    }

    /// The metrics registry this cluster records into — the same
    /// catalogue (`dqa_*` names) the simulator backend exports.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.metrics.registry()
    }

    /// The shared trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The causal-span recorder: per-question span trees sealed at
    /// completion (admission wait, phases, chunks), plus migration and
    /// journal-replay spans. Feed its spans to [`dqa_obs::critical_path`]
    /// or [`dqa_obs::to_chrome_json`].
    pub fn tracer(&self) -> &Arc<TraceRecorder> {
        &self.tracer
    }

    /// The shared load board.
    pub fn board(&self) -> &Arc<LoadBoard> {
        &self.board
    }

    /// The broadcast load monitors (per-node cluster views, §3.1).
    pub fn monitors(&self) -> &BroadcastMonitors {
        &self.monitors
    }

    /// Inject a node failure: the node stops serving and its queued work is
    /// recovered by coordinators.
    pub fn kill_node(&self, node: NodeId) {
        self.board.set_alive(node, false);
    }

    /// Inject a transient crash: the node goes silent (queued envelopes
    /// discarded, no heartbeats) but its threads survive, so
    /// [`Cluster::resume_node`] brings it back into the pool.
    pub fn suspend_node(&self, node: NodeId) {
        self.board.suspend(node);
    }

    /// End a transient crash: the node rejoins with reset load counters;
    /// repeated quick rejoins trip the flap quarantine.
    pub fn resume_node(&self, node: NodeId) {
        self.board.resume(node);
    }

    // ---- elastic membership (operator verbs + self-healing) ------------

    /// Operator drain: migrate every sub-collection off `node` (live — the
    /// node keeps serving PR chunks while each transfer is in flight),
    /// then retire it from the pool. Returns the number of ownership
    /// transfers applied. Without a [`ClusterConfig::elastic`] config this
    /// degrades to [`Cluster::suspend_node`].
    pub fn drain(&self, node: NodeId) -> usize {
        let Some(e) = &self.elastic else {
            self.suspend_node(node);
            return 0;
        };
        let plan = {
            let mut es = e.lock();
            es.detector.mark_left(node);
            let survivors = self.live_pool(Some(node));
            if survivors.is_empty() {
                // Nowhere to evacuate to: refuse the drain rather than
                // orphan the collection (the node stays in service).
                return 0;
            }
            es.plan_seq += 1;
            plan_evacuation(
                &es.ownership,
                node,
                &survivors,
                RebalanceReason::Drain,
                es.plan_seq,
                self.term(),
            )
        };
        let applied = self.execute_plan(&plan);
        // Evacuation first, suspension second: the drain is live.
        self.board.suspend(node);
        self.finish_heal();
        applied
    }

    /// Operator join: bring `node` (a warm standby, a previously drained
    /// node, or a recovered crash) into the serving pool and migrate its
    /// fair share of sub-collections onto it. Returns the number of
    /// ownership transfers applied.
    pub fn join(&self, node: NodeId) -> usize {
        self.board.resume(node);
        let Some(e) = &self.elastic else {
            return 0;
        };
        let plan = {
            let mut es = e.lock();
            let at = es.now_secs();
            es.detector.mark_joined(node, at);
            let mut live = self.live_pool(None);
            if !live.contains(&node) {
                live.push(node);
                live.sort();
            }
            es.plan_seq += 1;
            plan_join(&es.ownership, node, &live, es.plan_seq, self.term())
        };
        let applied = self.execute_plan(&plan);
        self.finish_heal();
        applied
    }

    /// One self-healing pass: feed the failure detector from the load
    /// board, evacuate any owner whose loss the detector now presumes
    /// permanent (past the lease floor *and* the phi threshold — transient
    /// stragglers are never migrated), and, when the Eq. 1–3 load gauges
    /// show skew past [`ElasticConfig::skew_threshold`], rebalance.
    /// Call it periodically (the `rebalance_soak` bench and `qa-cli` drive
    /// it between question waves); each call is cheap when healthy.
    /// Returns the number of ownership transfers applied.
    pub fn heal(&self) -> usize {
        let Some(e) = &self.elastic else {
            return 0;
        };
        let plans: Vec<MigrationPlan> = {
            let mut es = e.lock();
            let now = es.now_secs();
            for i in 0..self.cfg.nodes {
                let n = NodeId::new(i as u32);
                if self.board.is_alive(n) {
                    es.detector.observe(n, now);
                }
            }
            let dead: Vec<NodeId> = (0..self.cfg.nodes)
                .map(|i| NodeId::new(i as u32))
                .filter(|n| {
                    es.detector.health(*n, now) == NodeHealth::Dead
                        && !es.ownership.owned_by(*n).is_empty()
                })
                .collect();
            let mut plans = Vec::new();
            for victim in dead {
                let survivors = self.live_pool(Some(victim));
                if survivors.is_empty() {
                    continue;
                }
                es.plan_seq += 1;
                plans.push(plan_evacuation(
                    &es.ownership,
                    victim,
                    &survivors,
                    RebalanceReason::PermanentLoss,
                    es.plan_seq,
                    self.term(),
                ));
            }
            plans
        };
        let mut applied = 0;
        for plan in &plans {
            applied += self.execute_plan(plan);
        }
        // Skew pass against the post-evacuation map: reuse the
        // dispatcher's PR load gauge as the imbalance signal, exactly the
        // quantity Eqs. 1–3 already maintain.
        let skew = {
            let mut es = e.lock();
            match es.cfg.skew_threshold {
                None => None,
                Some(threshold) => {
                    let loads: Vec<(NodeId, f64)> = self
                        .board
                        .live_loads()
                        .into_iter()
                        .map(|(n, v)| (n, self.functions.load_for(QaModule::Pr, &v)))
                        .collect();
                    let plan = plan_skew(
                        &es.ownership,
                        &loads,
                        threshold,
                        es.plan_seq + 1,
                        self.term(),
                    );
                    if plan.is_some() {
                        es.plan_seq += 1;
                    }
                    plan
                }
            }
        };
        if let Some(plan) = skew {
            applied += self.execute_plan(&plan);
        }
        self.finish_heal();
        applied
    }

    /// The detector's three-way verdict for `node` right now (`None`
    /// without an elastic config). Suspect ≠ Dead is the whole point:
    /// only `Dead` ever triggers migration.
    pub fn node_health(&self, node: NodeId) -> Option<NodeHealth> {
        let e = self.elastic.as_ref()?;
        let es = e.lock();
        Some(es.detector.health(node, es.now_secs()))
    }

    /// Elastic-tier status: `(ownership epoch, converged)` where converged
    /// means every sub-collection is owned by exactly one live node.
    /// `None` without an elastic config.
    pub fn rebalance_status(&self) -> Option<(u64, bool)> {
        let e = self.elastic.as_ref()?;
        let es = e.lock();
        let live = self.live_pool(None);
        let ok = es
            .ownership
            .verify_complete(self.shards as u32, &live)
            .is_ok();
        Some((es.ownership.epoch(), ok))
    }

    /// Current sub-collection owners as `(sub, node)` pairs, ascending by
    /// sub-collection (empty without an elastic config) — the `qa-cli
    /// rebalance` listing.
    pub fn ownership(&self) -> Vec<(u32, u32)> {
        let Some(e) = &self.elastic else {
            return Vec::new();
        };
        let es = e.lock();
        (0..self.shards as u32)
            .filter_map(|s| {
                es.ownership
                    .owner(SubCollectionId::new(s))
                    .map(|n| (s, n.raw()))
            })
            .collect()
    }

    // ---- data integrity (corruption, quarantine, scrub-and-repair) ------

    /// Apply one corruption fault event against the integrity store's
    /// segment image. Returns `true` when the event targeted an index
    /// segment and damaged bytes; journal- and message-targeted events are
    /// consumed by their own subsystems and return `false`, as does a
    /// cluster without a [`ClusterConfig::integrity`] config.
    pub fn apply_corruption(&self, event: &FaultEvent) -> bool {
        let Some(integ) = &self.integrity else {
            return false;
        };
        let judge = self.cfg.faults.corruption_judge();
        integ.lock().inject(event, &judge)
    }

    /// Apply every index-segment corruption in the configured fault
    /// schedule (the runtime analog of the simulator firing them at their
    /// scheduled virtual times). Returns the number of segments damaged.
    pub fn inject_scheduled_corruption(&self) -> usize {
        let Some(integ) = &self.integrity else {
            return 0;
        };
        let judge = self.cfg.faults.corruption_judge();
        let mut it = integ.lock();
        self.cfg
            .faults
            .events
            .iter()
            .filter(|e| it.inject(e, &judge))
            .count()
    }

    /// One throttled scrub step: wait (bounded) while the admission gate
    /// sits above the throttle's headroom line — foreground questions keep
    /// their latency budget — then verify the next quantum of shard
    /// regions and repair anything quarantined. Safe to call from a
    /// background cadence loop; each call is cheap.
    pub fn scrub_step(&self) -> ScrubReport {
        let Some(integ) = &self.integrity else {
            return ScrubReport::default();
        };
        let throttle = {
            let it = integ.lock();
            it.cfg.throttle
        };
        let quantum = Duration::from_secs_f64(throttle.step_secs.max(0.0));
        let mut report = ScrubReport::default();
        // Bounded courtesy, same shape as migration pacing: yield to
        // foreground up to 64 quanta, then take the step anyway — the
        // scrubber must keep making progress under a persistently full
        // gate or corruption lingers undetected.
        for _ in 0..64 {
            let verdict = throttle.grant(
                self.gate.in_flight(),
                self.cfg.overload.max_in_flight,
                0,
                false,
            );
            if verdict.is_go() {
                break;
            }
            report.throttled += 1;
            self.metrics.integrity_scrub_throttled.inc();
            std::thread::sleep(quantum);
        }
        let (step, progress, quarantined) = {
            let mut it = integ.lock();
            let step = it.scrub_quantum();
            (
                step,
                it.store.scrub_progress(),
                it.store.quarantined_subs().len(),
            )
        };
        for _ in 0..step.verified {
            self.metrics.integrity_scrubbed.inc();
        }
        for _ in &step.detected {
            self.metrics.integrity_checksum_failures("index").inc();
        }
        for _ in &step.repaired_replica {
            self.metrics.integrity_repairs("replica").inc();
        }
        for _ in &step.repaired_rebuild {
            self.metrics.integrity_repairs("rebuild").inc();
        }
        self.metrics.integrity_scrub_progress.set(progress);
        self.metrics.integrity_quarantined.set(quarantined as f64);
        report.absorb(step);
        report
    }

    /// One full scrub pass over the shard directory (the `dqa scrub`
    /// verb): every region verified, every quarantined sub-collection
    /// repaired, throttled step by step.
    pub fn scrub(&self) -> ScrubReport {
        let Some(integ) = &self.integrity else {
            return ScrubReport::default();
        };
        let steps = integ.lock().steps_per_pass();
        let mut total = ScrubReport::default();
        for _ in 0..steps {
            total.absorb(self.scrub_step());
        }
        total
    }

    /// Sub-collections currently quarantined by checksum failures
    /// (ascending; empty without an integrity config).
    pub fn quarantined_subs(&self) -> Vec<u32> {
        self.integrity
            .as_ref()
            .map(|i| i.lock().store.quarantined_subs())
            .unwrap_or_default()
    }

    /// A copy of the integrity store's primary segment image — what a
    /// bench dumps as a forensic artifact when an invariant fails.
    pub fn integrity_segment(&self) -> Option<Vec<u8>> {
        self.integrity
            .as_ref()
            .map(|i| i.lock().store.segment().to_vec())
    }

    /// The live candidate pool for placements: board-alive nodes, minus an
    /// optional victim. Standbys and drained nodes are board-suspended, so
    /// they fall out here without extra bookkeeping.
    fn live_pool(&self, exclude: Option<NodeId>) -> Vec<NodeId> {
        (0..self.cfg.nodes)
            .map(|i| NodeId::new(i as u32))
            .filter(|n| Some(*n) != exclude && self.board.is_alive(*n))
            .collect()
    }

    /// The journal's fencing term, or 0 when running unjournaled.
    fn term(&self) -> u64 {
        self.cfg.journal.as_ref().map_or(0, |j| j.term())
    }

    /// Apply one migration plan: journal it, then walk its steps under the
    /// throttle — each step waits (bounded) while the admission gate sits
    /// above the headroom line, so in-flight questions keep their
    /// deadlines and healing takes the leftovers. The elastic lock is
    /// taken only for the instant each transfer commits, never across a
    /// sleep: PR scheduling reads the map contention-free while the
    /// migration paces itself. Returns transfers applied.
    fn execute_plan(&self, plan: &MigrationPlan) -> usize {
        let Some(e) = &self.elastic else {
            return 0;
        };
        if plan.is_empty() {
            return 0;
        }
        self.metrics.rebalance_plans(&plan.reason.to_string()).inc();
        self.metrics.rebalance_converged.set(0.0);
        let throttle = {
            let mut es = e.lock();
            es.heal_started.get_or_insert_with(now_instant);
            es.cfg.throttle
        };
        if self.cfg.journal.is_some() {
            self.journal_append(&JournalRecord::RebalancePlanned {
                plan: plan.id,
                steps: plan
                    .steps
                    .iter()
                    .map(|s| (s.sub.raw(), s.from.raw(), s.to.raw()))
                    .collect(),
            });
        }
        let quantum = Duration::from_secs_f64(throttle.step_secs.max(0.0));
        let mut applied = 0;
        let plan_trace = self.tracer.trace_id(MIGRATION_TRACE_NS ^ plan.id);
        let plan_start = self.tracer.now();
        // Children are buffered so the root span (whose id they parent
        // under) can be emitted first with its real end time.
        let mut step_spans: Vec<CausalSpan> = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let step_start = self.tracer.now();
            let mut deferred = false;
            // Bounded courtesy: yield to foreground up to 64 quanta, then
            // take the step anyway — healing must stay live even under a
            // persistently full gate.
            for _ in 0..64 {
                let verdict = throttle.grant(
                    self.gate.in_flight(),
                    self.cfg.overload.max_in_flight,
                    0,
                    false,
                );
                if verdict.is_go() {
                    break;
                }
                deferred = true;
                let cause = match verdict {
                    ThrottleVerdict::Yielding => "yielding",
                    ThrottleVerdict::Saturated => "saturated",
                    _ => "stalled",
                };
                self.metrics.rebalance_throttled(cause).inc();
                std::thread::sleep(quantum);
            }
            let granted = self.tracer.now();
            let (stepped, epoch) = {
                let mut es = e.lock();
                let st = es.ownership.apply_step(step);
                (st, es.ownership.epoch())
            };
            if stepped {
                applied += 1;
                self.metrics.rebalance_migrated.inc();
                self.metrics.ownership_epoch.set(epoch as f64);
                if self.cfg.journal.is_some() {
                    self.journal_append(&JournalRecord::RebalanceStepDone {
                        plan: plan.id,
                        sub: step.sub.raw(),
                        to: step.to.raw(),
                    });
                }
            }
            step_spans.push(CausalSpan::new(
                plan_trace,
                None,
                "migration-step",
                Some(step.to.raw()),
                step_start,
                self.tracer.now(),
                granted - step_start,
                if deferred {
                    CauseSet::THROTTLED
                } else {
                    CauseSet::none()
                },
            ));
            std::thread::sleep(quantum);
        }
        if self.cfg.journal.is_some() {
            self.journal_append(&JournalRecord::RebalanceConverged { plan: plan.id });
        }
        let root = self.tracer.emit(CausalSpan::new(
            plan_trace,
            None,
            "migration",
            None,
            plan_start,
            self.tracer.now(),
            0.0,
            CauseSet::none(),
        ));
        for mut s in step_spans {
            s.parent = Some(root);
            self.tracer.emit(s);
        }
        applied
    }

    /// Re-verify the convergence invariant and settle the heal timer: when
    /// every sub-collection is owned by a live node again, the gauge flips
    /// back to 1 and the outage duration lands in
    /// `dqa_rebalance_heal_seconds`.
    fn finish_heal(&self) {
        let Some(e) = &self.elastic else {
            return;
        };
        let mut es = e.lock();
        let live = self.live_pool(None);
        let ok = es
            .ownership
            .verify_complete(self.shards as u32, &live)
            .is_ok();
        self.metrics
            .rebalance_converged
            .set(if ok { 1.0 } else { 0.0 });
        if ok {
            if let Some(t) = es.heal_started.take() {
                self.metrics.heal_seconds.observe(t.elapsed().as_secs_f64());
            }
        }
    }

    /// Under elastic membership, strip non-owners from a PR worker set —
    /// a node owning no sub-collections (drained, mid-join standby) gets
    /// no PR chunk traffic. Falls back to the home node rather than an
    /// empty set, mirroring every other allocator fallback.
    fn restrict_to_owners(&self, mut nodes: Vec<NodeId>, home: NodeId) -> Vec<NodeId> {
        let Some(e) = &self.elastic else {
            return nodes;
        };
        let es = e.lock();
        nodes.retain(|n| !es.ownership.owned_by(*n).is_empty());
        drop(es);
        if nodes.is_empty() {
            vec![home]
        } else {
            nodes
        }
    }

    /// Answer a question. DNS round-robin picks the initial home; the
    /// question dispatcher may override it; the PR and AP dispatchers pick
    /// the partition node sets.
    pub fn ask(&self, question: &Question) -> Result<DistributedAnswer, QaError> {
        let dns = NodeId::new((self.rr.fetch_add(1, Ordering::Relaxed) % self.cfg.nodes) as u32);
        self.ask_on(dns, question)
    }

    /// Answer a question with an explicit DNS placement (tests/examples).
    pub fn ask_on(
        &self,
        dns_home: NodeId,
        question: &Question,
    ) -> Result<DistributedAnswer, QaError> {
        self.ask_impl(dns_home, question, now_instant(), None)
    }

    /// Offer one question to the concurrent front-end. The call blocks
    /// while the question runs (and, at capacity, while it waits in the
    /// bounded admission queue), but never queues forever: past the queue
    /// depth — or past the policy deadline while waiting — it returns
    /// [`Admission::Rejected`] with a retry hint. Time spent waiting for a
    /// slot counts against the question's deadline budget.
    pub fn submit(&self, question: &Question) -> Admission {
        let enqueued_secs = self.tracer.now();
        let admitted_at = now_instant();
        let retry_after = Duration::from_secs_f64(self.cfg.overload.retry_after_secs.max(0.0));
        let wait_until = self
            .cfg
            .overload
            .deadline_secs
            .map(|s| admitted_at + Duration::from_secs_f64(s.max(0.0)));
        match self.gate.admit(wait_until) {
            GateDecision::Admitted => {}
            GateDecision::Rejected => {
                self.metrics.rejected.inc();
                self.trace
                    .record(question.id, NodeId::new(0), TraceKind::Rejected);
                return Admission::Rejected { retry_after };
            }
            GateDecision::ShuttingDown => {
                self.metrics.rejected.inc();
                self.trace
                    .record(question.id, NodeId::new(0), TraceKind::Rejected);
                return Admission::Rejected {
                    retry_after: Duration::ZERO,
                };
            }
        }
        self.metrics.in_flight.set(self.gate.in_flight() as f64);
        self.metrics
            .admission_waiting
            .set(self.gate.waiting() as f64);
        let admitted_secs = self.tracer.now();
        let dns = NodeId::new((self.rr.fetch_add(1, Ordering::Relaxed) % self.cfg.nodes) as u32);
        let out = self.ask_impl(dns, question, admitted_at, None);
        self.gate.release();
        self.metrics.in_flight.set(self.gate.in_flight() as f64);
        match out {
            Ok(answer) => {
                self.seal_trace(
                    question,
                    enqueued_secs,
                    admitted_secs,
                    CauseSet::none(),
                    &answer,
                );
                Admission::Answered(Box::new(answer))
            }
            Err(QaError::Overloaded { .. }) => {
                self.trace
                    .record(question.id, NodeId::new(0), TraceKind::Rejected);
                Admission::Rejected { retry_after }
            }
            Err(e) => Admission::Failed(e),
        }
    }

    /// Offer many questions concurrently — one submitting thread each, all
    /// funneled through the admission gate. Results come back in input
    /// order. This is the multi-tenant server surface: at most
    /// `max_in_flight` questions run inside, `admission_queue` more wait,
    /// and the rest are rejected with retry hints.
    pub fn ask_many(&self, questions: &[Question]) -> Vec<Admission> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = questions
                .iter()
                .map(|q| scope.spawn(move || self.submit(q)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(a) => a,
                    Err(_) => Admission::Failed(QaError::Protocol("submit thread panicked".into())),
                })
                .collect()
        })
    }

    /// Reject all future admissions (idempotent). Queued `submit` calls
    /// wake and return [`Admission::Rejected`]; new `ask`/`submit` calls
    /// are refused at the door. Lets an `Arc`-shared cluster be drained
    /// deterministically before [`Cluster::shutdown`] takes ownership.
    pub fn begin_shutdown(&self) {
        self.gate.drain();
    }

    /// The admission gate (observability: in-flight, queued, peak-queued).
    pub fn admission(&self) -> &AdmissionGate {
        &self.gate
    }

    /// Resume every in-flight question recovered from a journal replay.
    ///
    /// This is the successor coordinator's first act after
    /// [`CoordinatorJournal::open`] + promotion: each question that was
    /// admitted but not yet answered (or abandoned) at the crash is re-run
    /// with its journaled partial results pre-applied, so completed chunks
    /// are never re-executed and — the pipeline being deterministic — the
    /// resumed answers are byte-identical to a crash-free run. Results come
    /// back in recovered-question order (ascending question id).
    pub fn resume(
        &self,
        recovery: &Recovery,
    ) -> Vec<(Question, Result<DistributedAnswer, QaError>)> {
        // Resuming a replayed journal is the runtime's failover-complete
        // point: a successor incarnation has taken over the crashed
        // coordinator's in-flight work.
        self.metrics.failovers.inc();
        self.metrics.replayed_records.add(recovery.stats.records);
        // Ownership first, questions second: resumed PR scheduling must
        // see the post-crash map, not the boot-time balanced one.
        self.resume_rebalances(&recovery.state);
        let t = now_instant();
        let replay_start = self.tracer.now();
        let mut out = Vec::new();
        for (_, rec) in recovery.state.in_flight() {
            let Some(q) = rec.question() else { continue };
            let q = q.clone();
            let res = self.ask_resumed(&q, rec);
            out.push((q, res));
        }
        self.metrics
            .recovery_seconds
            .observe(t.elapsed().as_secs_f64());
        let replay_trace = self.tracer.trace_id(REPLAY_TRACE_NS ^ self.term());
        self.tracer.emit(CausalSpan::new(
            replay_trace,
            None,
            "replay",
            None,
            replay_start,
            self.tracer.now(),
            0.0,
            CauseSet::RESUMED,
        ));
        out
    }

    /// Fold a replayed journal's rebalance history into the live ownership
    /// map: completed steps are re-applied (idempotently — a transfer the
    /// map already shows is a no-op), then every *unfinished* plan's
    /// pending steps are driven to completion under the successor's term.
    /// This is what makes a crash-interrupted migration exactly-once: no
    /// step re-runs, no step is dropped, and the re-appended records are
    /// absorbed by the same idempotent fold on the next replay.
    fn resume_rebalances(&self, state: &RecoveredState) {
        let Some(e) = &self.elastic else {
            return;
        };
        let pending: Vec<(u64, Vec<(u32, u32, u32)>)> = {
            let mut es = e.lock();
            for (sub, to) in state.rebalanced_owners() {
                es.ownership
                    .set_owner(SubCollectionId::new(sub), NodeId::new(to));
            }
            let pending: Vec<(u64, Vec<(u32, u32, u32)>)> = state
                .unfinished_rebalances()
                .map(|(id, r)| (id, r.pending_steps()))
                .collect();
            // Never mint a future plan id below one the journal has seen.
            for (plan_id, _) in &pending {
                es.plan_seq = es.plan_seq.max(*plan_id);
            }
            self.metrics
                .ownership_epoch
                .set(es.ownership.epoch() as f64);
            pending
        };
        for (plan_id, steps) in pending {
            let plan = MigrationPlan {
                id: plan_id,
                term: self.term(),
                reason: RebalanceReason::PermanentLoss,
                steps: steps
                    .into_iter()
                    .map(|(sub, from, to)| MigrationStep {
                        sub: SubCollectionId::new(sub),
                        from: NodeId::new(from),
                        to: NodeId::new(to),
                    })
                    .collect(),
            };
            self.execute_plan(&plan);
        }
        self.finish_heal();
    }

    /// Resume a single recovered question. Prefers the journaled home node
    /// when it is still alive; otherwise falls back to DNS round-robin, a
    /// Table 7 question migration forced by the crash.
    pub fn ask_resumed(
        &self,
        question: &Question,
        rec: &QuestionRecovery,
    ) -> Result<DistributedAnswer, QaError> {
        self.metrics.resumed_questions.inc();
        let resumed_secs = self.tracer.now();
        let dns = rec
            .home()
            .map(NodeId::new)
            .filter(|n| n.index() < self.cfg.nodes && self.board.is_alive(*n))
            .unwrap_or_else(|| {
                NodeId::new((self.rr.fetch_add(1, Ordering::Relaxed) % self.cfg.nodes) as u32)
            });
        let out = self.ask_impl(dns, question, now_instant(), Some(rec));
        if let Ok(answer) = &out {
            self.seal_trace(
                question,
                resumed_secs,
                resumed_secs,
                CauseSet::RESUMED,
                answer,
            );
        }
        out
    }

    /// Seal a finished question's causal-span tree from its flight-
    /// recorded events (degraded coverage folds into the cause tags).
    fn seal_trace(
        &self,
        question: &Question,
        enqueued_secs: f64,
        admitted_secs: f64,
        extra: CauseSet,
        answer: &DistributedAnswer,
    ) {
        let causes = if answer.coverage.is_complete() {
            extra
        } else {
            extra.with(CauseSet::DEGRADED)
        };
        seal_question_spans(
            &self.tracer,
            question.id,
            &self.trace.for_question(question.id),
            enqueued_secs,
            admitted_secs,
            self.tracer.now(),
            causes,
        );
    }

    /// Run one question and account its outcome in the metrics registry.
    /// Every path through the cluster lands in exactly one
    /// `dqa_questions_total` outcome: `answered` (full coverage),
    /// `degraded` (partial coverage), `rejected` (overload), `failed`.
    fn ask_impl(
        &self,
        dns_home: NodeId,
        question: &Question,
        admitted_at: Instant,
        resume: Option<&QuestionRecovery>,
    ) -> Result<DistributedAnswer, QaError> {
        let result = self.ask_inner(dns_home, question, admitted_at, resume);
        match &result {
            Ok(answer) => {
                self.metrics
                    .question_seconds
                    .observe(admitted_at.elapsed().as_secs_f64());
                if answer.coverage.is_complete() {
                    self.metrics.answered.inc();
                } else {
                    self.metrics.degraded.inc();
                }
                // The final answer is journaled so a successor coordinator
                // knows the question no longer occupies an admission slot
                // (and byte-identity across incarnations can be audited).
                if self.cfg.journal.is_some() {
                    if let Ok(payload) = serde_json::to_vec(&answer.answers) {
                        self.journal_append(&JournalRecord::Answered {
                            question: question.id,
                            payload,
                            complete: answer.coverage.is_complete(),
                        });
                    }
                }
            }
            Err(QaError::Overloaded { .. }) => self.metrics.rejected.inc(),
            Err(_) => {
                self.metrics.failed.inc();
                // Free the question's journaled admission slot: a failed
                // question must not be resumed forever by every successor.
                if self.cfg.journal.is_some() {
                    self.journal_append(&JournalRecord::Abandoned {
                        question: question.id,
                    });
                }
            }
        }
        result
    }

    fn ask_inner(
        &self,
        dns_home: NodeId,
        question: &Question,
        admitted_at: Instant,
        resume: Option<&QuestionRecovery>,
    ) -> Result<DistributedAnswer, QaError> {
        if self.gate.is_draining() {
            return Err(QaError::Overloaded {
                reason: "cluster is shutting down".into(),
                retry_after_ms: 0,
            });
        }
        let mut timings = ModuleTimings::default();

        // Scheduling point 1: the question dispatcher, deciding from the
        // DNS-chosen node's *broadcast view* of the cluster (its own load
        // table, §3.1) when warm; the shared board covers cold start.
        let view = if dns_home.index() < self.monitors.len() {
            self.monitors.view_from(dns_home)
        } else {
            Vec::new()
        };
        let mut loads = if view.len() == self.board.len() {
            view.into_iter()
                .filter(|(n, _)| self.board.is_alive(*n))
                .collect()
        } else {
            self.board.live_loads()
        };
        if loads.is_empty() {
            return Err(QaError::Disconnected("no live nodes".into()));
        }
        // Per-node admission cap: a node already hosting `max_per_node`
        // questions cannot become another question's home; if every live
        // node is saturated the question is rejected, not queued.
        if let Some(cap) = self.cfg.overload.max_per_node {
            loads.retain(|(n, _)| self.board.resident_questions(*n) < cap);
            if loads.is_empty() {
                return Err(QaError::Overloaded {
                    reason: format!("every live node hosts {cap} questions"),
                    retry_after_ms: (self.cfg.overload.retry_after_secs.max(0.0) * 1e3) as u64,
                });
            }
        }
        let dispatcher = scheduler::dispatcher::QuestionDispatcher {
            functions: self.functions,
            hysteresis: 1.0,
        };
        let home = if loads.iter().any(|(n, _)| *n == dns_home) {
            dispatcher
                .decide(QaModule::Qp, dns_home, &loads)
                .unwrap_or(dns_home)
        } else {
            // DNS pointed at a dead node: fall back to the least loaded.
            loads[0].0
        };
        if home != dns_home {
            // The question dispatcher moved the question off its DNS
            // placement — a Table 7 question migration.
            self.metrics.migrations_qa.inc();
        }
        self.board.question_delta(home, 1);
        self.trace
            .record(question.id, home, TraceKind::QuestionStart);
        // Durable admission + scheduling point 1. On resume the records
        // are re-appended under the successor's term; replay idempotence
        // absorbs the duplicates.
        if self.cfg.journal.is_some() {
            self.journal_append(&JournalRecord::Admitted {
                question: question.clone(),
            });
            self.journal_append(&JournalRecord::Scheduled {
                question: question.id,
                point: SchedulingPoint::Qa,
                nodes: vec![home.raw()],
            });
        }

        let deadline = self.effective_deadline(admitted_at);
        let result = self.coordinate(home, question, &mut timings, deadline, resume);
        self.board.question_delta(home, -1);
        if let Ok(answer) = &result {
            self.estimator.observe(&answer.timings);
        }
        result
    }

    /// The earliest of the config deadline (from coordination start) and
    /// the overload-policy deadline (from admission, so queue wait counts).
    fn effective_deadline(&self, admitted_at: Instant) -> Option<Instant> {
        let cfg_deadline = self.cfg.deadline.map(|d| now_instant() + d);
        let policy_deadline = self
            .cfg
            .overload
            .deadline_secs
            .map(|s| admitted_at + Duration::from_secs_f64(s.max(0.0)));
        match (cfg_deadline, policy_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn coordinate(
        &self,
        home: NodeId,
        question: &Question,
        timings: &mut ModuleTimings,
        // The per-question deadline covers the whole Fig. 3 dataflow, not
        // each phase separately; it is anchored at admission so queue wait
        // already counts against it.
        deadline: Option<Instant>,
        resume: Option<&QuestionRecovery>,
    ) -> Result<DistributedAnswer, QaError> {
        // QP (home-local; the coordinator acts for the home node).
        let t = now_instant();
        let processed = self.qp.process(question)?;
        let dt = t.elapsed();
        timings.add_duration(QaModule::Qp, dt);
        self.metrics.qp_seconds.observe(dt.as_secs_f64());

        // Deadline-aware shedding, decision point 1: if the remaining
        // budget cannot cover the estimated PR phase, short-circuit to an
        // empty degraded answer instead of occupying PR workers.
        if self.should_shed(QaModule::Pr, deadline) {
            self.metrics.shed_pr.inc();
            self.trace
                .record(question.id, home, TraceKind::Shed(QaModule::Pr));
            return Ok(DistributedAnswer {
                processed,
                answers: RankedAnswers::default(),
                timings: *timings,
                home,
                pr_nodes: Vec::new(),
                ap_nodes: Vec::new(),
                paragraphs_accepted: 0,
                coverage: Coverage {
                    completed: 0,
                    total: self.shards.max(1) as u32,
                },
            });
        }

        // Scheduling point 2: PR dispatcher → node set for PR chunks,
        // restricted under elastic membership to current sub-collection
        // owners (a drained node must stop receiving PR work the moment
        // its last sub-collection has moved, not when it goes dark).
        let t = now_instant();
        let pr_nodes = self.restrict_to_owners(self.allocate(QaModule::Pr, home), home);
        self.journal_scheduled(question.id, SchedulingPoint::Pr, &pr_nodes);
        // Integrity read path: spot-check the shard regions this question
        // is about to read (sampled CRC verification, seeded per question),
        // then skip everything quarantined. A checksum failure can reduce
        // the answer's coverage but never reach PR — bytes that failed
        // verification are off-limits until scrub-and-repair heals them.
        let mut skipped_subs = 0usize;
        let chunks: Vec<Vec<SubCollectionId>> = if let Some(integ) = &self.integrity {
            let (fresh, quarantined) = {
                let mut it = integ.lock();
                let all: Vec<u32> = (0..self.shards as u32).collect();
                let fresh = it.read_check(&all, u64::from(question.id.raw()));
                (fresh, it.store.quarantined_subs())
            };
            for _ in &fresh {
                self.metrics.integrity_checksum_failures("index").inc();
            }
            if !fresh.is_empty() {
                self.metrics
                    .integrity_quarantined
                    .set(quarantined.len() as f64);
            }
            let chunks: Vec<Vec<SubCollectionId>> = (0..self.shards as u32)
                .filter(|s| !quarantined.contains(s))
                .map(|s| vec![SubCollectionId::new(s)])
                .collect();
            skipped_subs = self.shards - chunks.len();
            chunks
        } else {
            (0..self.shards)
                .map(|s| vec![SubCollectionId::new(s as u32)])
                .collect()
        };
        if skipped_subs > 0 {
            self.metrics.integrity_degraded.inc();
            self.trace
                .record(question.id, home, TraceKind::Quarantined(skipped_subs));
        }
        let (scored, pr_nodes_used, pr_coverage) =
            self.run_pr(&processed, home, pr_nodes, chunks, deadline, resume)?;
        // Quarantine-skipped sub-collections count against coverage: the
        // answer closes explicitly degraded, never silently partial.
        let pr_coverage = if skipped_subs > 0 {
            Coverage {
                completed: pr_coverage.completed,
                total: pr_coverage.total + skipped_subs as u32,
            }
        } else {
            pr_coverage
        };
        let dt = t.elapsed();
        timings.add_duration(QaModule::Pr, dt);
        self.metrics.pr_seconds.observe(dt.as_secs_f64());

        // PO: centralized merge + ordering (Fig. 3).
        let t = now_instant();
        let accepted = order_paragraphs(
            scored,
            self.cfg.pipeline.po_threshold,
            self.cfg.pipeline.max_accepted,
        );
        let paragraphs_accepted = accepted.len();
        self.trace.record(
            question.id,
            home,
            TraceKind::ParagraphsMerged(paragraphs_accepted),
        );
        let dt = t.elapsed();
        timings.add_duration(QaModule::Po, dt);
        self.metrics.po_seconds.observe(dt.as_secs_f64());

        // Scheduling point 3: AP dispatcher → node set for AP batches.
        let t = now_instant();
        let items: Vec<ApItem> = accepted
            .into_iter()
            .map(|s| ApItem {
                paragraph: s.paragraph,
                rank: s.score,
            })
            .collect();
        // Shedding decision point 2: AP is the most expensive phase
        // (Table 2); a question that cannot fit it returns whatever PR/PO
        // produced, coverage-annotated, instead of dispatching batches
        // doomed to blow the deadline.
        if self.should_shed(QaModule::Ap, deadline) {
            self.metrics.shed_ap.inc();
            self.trace
                .record(question.id, home, TraceKind::Shed(QaModule::Ap));
            let ap_total = items.len().max(1) as u32;
            return Ok(DistributedAnswer {
                processed,
                answers: RankedAnswers::default(),
                timings: *timings,
                home,
                pr_nodes: pr_nodes_used,
                ap_nodes: Vec::new(),
                paragraphs_accepted,
                coverage: pr_coverage.and(Coverage {
                    completed: 0,
                    total: ap_total,
                }),
            });
        }
        let ap_nodes = self.allocate(QaModule::Ap, home);
        self.journal_scheduled(question.id, SchedulingPoint::Ap, &ap_nodes);
        let (answers, ap_nodes_used, ap_coverage) =
            self.run_ap(&processed, home, ap_nodes, items, deadline, resume)?;
        let dt = t.elapsed();
        timings.add_duration(QaModule::Ap, dt);
        self.metrics.ap_seconds.observe(dt.as_secs_f64());

        self.trace
            .record(question.id, home, TraceKind::AnswersSorted(answers.len()));

        Ok(DistributedAnswer {
            processed,
            answers,
            timings: *timings,
            home,
            pr_nodes: pr_nodes_used,
            ap_nodes: ap_nodes_used,
            paragraphs_accepted,
            coverage: pr_coverage.and(ap_coverage),
        })
    }

    /// Meta-schedule a module over the live pool.
    ///
    /// The question's own residency on its home node is subtracted first:
    /// the dispatcher is scheduling the *remainder* of this question, so
    /// its own bookkeeping load must not push the home node out of the
    /// partition set.
    fn allocate(&self, module: QaModule, home: NodeId) -> Vec<NodeId> {
        let mut loads = self.board.live_loads();
        if loads.is_empty() {
            return vec![home];
        }
        if let Some(entry) = loads.iter_mut().find(|(n, _)| *n == home) {
            entry.1.cpu = (entry.1.cpu - 0.5).max(0.0);
        }
        let f = self.functions;
        // Per-node overload breaker: a node whose load-function value for
        // this module exceeds the policy threshold is tripped into the
        // flap-quarantine window — dispatchers (this one and every
        // concurrent coordinator) skip it until the window expires, but its
        // worker threads keep draining what they already hold.
        if let Some(threshold) = self.cfg.overload.breaker_load {
            let mut saturated = Vec::new();
            for (n, v) in &loads {
                if f.load_for(module, v) > threshold {
                    self.board
                        .trip_breaker(*n, self.cfg.quarantine.quarantine_secs);
                    self.metrics.breaker_trips.inc();
                    saturated.push(*n);
                }
            }
            loads.retain(|(n, _)| !saturated.contains(n));
            if loads.is_empty() {
                // Everything is saturated: fall back to the home node
                // rather than stalling the question with no workers.
                return vec![home];
            }
        }
        match meta_schedule(
            &loads,
            |v| f.load_for(module, v),
            |v| f.is_underloaded(module, v),
        ) {
            Ok(alloc) => {
                let nodes: Vec<NodeId> = alloc.iter().map(|a| a.node).collect();
                if nodes.iter().any(|n| *n != home) {
                    // Work left the home node — a Table 7 PR/AP migration.
                    match module {
                        QaModule::Ap => self.metrics.migrations_ap.inc(),
                        _ => self.metrics.migrations_pr.inc(),
                    }
                }
                nodes
            }
            Err(_) => vec![home],
        }
    }

    /// Whether the remaining deadline budget can no longer cover the
    /// estimated demand of the next phase. Abstains (never sheds) without
    /// a deadline or before the estimator has any observation to scale
    /// from — the first question always runs and calibrates the rest.
    fn should_shed(&self, module: QaModule, deadline: Option<Instant>) -> bool {
        let Some(d) = deadline else {
            return false;
        };
        let Some(estimate) = self.estimator.phase_estimate(module) else {
            return false;
        };
        let remaining = d.saturating_duration_since(now_instant()).as_secs_f64();
        remaining < estimate * self.cfg.overload.shed_headroom.max(0.0)
    }

    /// Receiver-controlled PR: workers pull one sub-collection at a time.
    ///
    /// The drain loop runs the robustness policy: keyed first-result-wins
    /// completion (absorbing link duplicates and speculative twins), a
    /// bounded retry budget with backoff on recovered chunks, optional
    /// speculative re-execution of straggler chunks, and deadline-driven
    /// graceful degradation — the phase always terminates with a coverage
    /// report, it never spins forever.
    fn run_pr(
        &self,
        processed: &ProcessedQuestion,
        home: NodeId,
        workers: Vec<NodeId>,
        chunks: Vec<Vec<SubCollectionId>>,
        deadline: Option<Instant>,
        resume: Option<&QuestionRecovery>,
    ) -> Result<(Vec<ScoredParagraph>, Vec<NodeId>, Coverage), QaError> {
        let mut queue = ChunkQueue::new(chunks);
        // Bounded ×2: link duplication can double the results in flight.
        let (reply_tx, reply_rx) = bounded::<SubTaskResult>(self.shards.max(1) * 2);
        let mut active: Vec<NodeId> = Vec::new();
        let mut used: Vec<NodeId> = Vec::new();
        let mut scored: Vec<ScoredParagraph> = Vec::new();

        // Resume: chunks whose results the journal preserved are marked
        // complete up front — the same keyed first-result-wins dedup that
        // absorbs duplicates now spans coordinator incarnations, keeping
        // chunk execution exactly-once — and their scored paragraphs are
        // restored instead of recomputed.
        if let Some(rec) = resume {
            for (chunk, payload) in rec.partials(JournalPhase::Pr) {
                if queue.complete_keyed(home, chunk) == ChunkOutcome::Fresh {
                    if let Ok(mut s) = serde_json::from_slice::<Vec<ScoredParagraph>>(payload) {
                        scored.append(&mut s);
                    }
                }
            }
        }

        let send_chunk = |this: &Cluster,
                          node: NodeId,
                          id: u32,
                          chunk: &[SubCollectionId],
                          reply_tx: &Sender<SubTaskResult>|
         -> bool {
            let granted = chunk.iter().all(|shard| {
                let sent = this.links[node.index()].send(
                    Envelope {
                        task: SubTask::PrShard {
                            question: processed.question.id,
                            keywords: processed.keywords.clone(),
                            shard: *shard,
                            chunk: id,
                        },
                        reply: reply_tx.clone(),
                    },
                    this.cfg.send_timeout,
                );
                if let Err(SendTimeoutError::Timeout(_)) = &sent {
                    this.metrics.backpressure.inc();
                    this.trace
                        .record(processed.question.id, node, TraceKind::Backpressure);
                }
                this.queue_depth[node.index()].set(this.links[node.index()].queue_len() as f64);
                sent.is_ok()
            });
            if granted && this.cfg.journal.is_some() {
                this.journal_append(&JournalRecord::ChunkGranted {
                    question: processed.question.id,
                    phase: JournalPhase::Pr,
                    chunk: id,
                    node: node.raw(),
                });
            }
            granted
        };
        let dispatch = |this: &Cluster,
                        queue: &mut ChunkQueue<SubCollectionId>,
                        node: NodeId,
                        reply_tx: &Sender<SubTaskResult>|
         -> bool {
            let Some((id, chunk)) = queue.pull_keyed(node) else {
                return false;
            };
            if !send_chunk(this, node, id, &chunk, reply_tx) {
                queue.fail(node);
                return false;
            }
            true
        };

        // The initial keyword fan-out is the runtime analog of the paper's
        // `kw_send` overhead (Table 9): time spent pushing the question's
        // keywords into every PR worker's ingress queue.
        let t = now_instant();
        for node in workers {
            if dispatch(self, &mut queue, node, &reply_tx) {
                active.push(node);
                used.push(node);
            }
        }
        self.metrics
            .overhead_kw_send
            .observe(t.elapsed().as_secs_f64());
        // A fully journal-restored phase has no chunks left to dispatch,
        // so an empty active set is completion there, not disconnection.
        if active.is_empty() && !queue.drained() {
            return Err(QaError::Disconnected("no PR workers".into()));
        }

        let mut policy = PhasePolicy::new(
            self.cfg.retry,
            self.cfg.speculate_after,
            deadline,
            resume.map_or(0, |r| r.retry_spent(JournalPhase::Pr)),
        );
        // Only a lossy link can make an envelope vanish while its worker
        // stays alive; coordinator-level retransmission exists for exactly
        // that case, and stays off on clean links so fault-free runs are
        // untouched.
        let retransmit = !self.cfg.faults.link.is_clean();
        while !queue.drained() {
            if policy.deadline_passed() {
                self.degrade(&mut queue, home, processed.question.id);
                break;
            }
            match reply_rx.recv_timeout(policy.poll(self.cfg.subtask_poll)) {
                Ok(SubTaskResult::Paragraphs {
                    node,
                    scored: s,
                    chunk,
                    ..
                }) => {
                    policy.progress();
                    if queue.complete_keyed(node, chunk) == ChunkOutcome::Fresh {
                        self.journal_partial(processed.question.id, JournalPhase::Pr, chunk, &s);
                        scored.extend(s);
                    }
                    if !dispatch(self, &mut queue, node, &reply_tx) {
                        active.retain(|n| *n != node);
                    }
                }
                Ok(SubTaskResult::Answers { .. }) => {
                    return Err(QaError::Protocol("AP result on PR reply channel".into()))
                }
                Err(RecvTimeoutError::Timeout) => {
                    let (requeued, pool_alive) =
                        self.reap_failed(&mut queue, &mut active, processed.question.id);
                    if !pool_alive {
                        // Every worker everywhere is gone: degrade rather
                        // than spin on an undrainable queue.
                        self.degrade(&mut queue, home, processed.question.id);
                        break;
                    }
                    let exhausted = policy.spend(requeued);
                    if requeued > 0 {
                        self.journal_retry(
                            processed.question.id,
                            JournalPhase::Pr,
                            policy.spent_total(),
                        );
                    }
                    if exhausted {
                        self.degrade(&mut queue, home, processed.question.id);
                        break;
                    }
                    // Re-dispatch recovered chunks to surviving workers.
                    let survivors = active.clone();
                    for node in survivors {
                        if queue.outstanding(node) == 0 {
                            dispatch(self, &mut queue, node, &reply_tx);
                        }
                    }
                    if policy.should_speculate() {
                        // Idle workers leave `active` when the queue dries
                        // up, so speculation targets come from the live
                        // pool, not just the active set.
                        let live: Vec<NodeId> = self
                            .board
                            .live_loads()
                            .into_iter()
                            .map(|(n, _)| n)
                            .collect();
                        if let Some((node, id, chunk)) =
                            speculate_oldest(&mut queue, &active, &live)
                        {
                            if send_chunk(self, node, id, &chunk, &reply_tx) {
                                if !active.contains(&node) {
                                    active.push(node);
                                }
                                if !used.contains(&node) {
                                    used.push(node);
                                }
                                self.metrics.speculations.inc();
                                self.trace.record(
                                    processed.question.id,
                                    node,
                                    TraceKind::Speculated(id),
                                );
                                if policy.speculated() {
                                    self.degrade(&mut queue, home, processed.question.id);
                                    break;
                                }
                            } else {
                                queue.fail(node);
                            }
                        }
                    }
                    if retransmit && policy.should_retransmit() {
                        // Presume the in-flight envelopes lost, re-queue and
                        // re-send them; first-result-wins dedups any that
                        // were merely slow.
                        let mut recycled = 0;
                        for node in active.clone() {
                            recycled += queue.fail(node);
                        }
                        let exhausted = policy.spend(recycled);
                        if recycled > 0 {
                            self.journal_retry(
                                processed.question.id,
                                JournalPhase::Pr,
                                policy.spent_total(),
                            );
                        }
                        if exhausted {
                            self.degrade(&mut queue, home, processed.question.id);
                            break;
                        }
                        let survivors = active.clone();
                        for node in survivors {
                            if queue.outstanding(node) == 0 {
                                dispatch(self, &mut queue, node, &reply_tx);
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(QaError::Disconnected("PR reply channel closed".into()))
                }
            }
        }
        let coverage = Coverage {
            completed: queue.completed(),
            total: queue.total(),
        };
        Ok((scored, used, coverage))
    }

    /// AP over partitions or pulled chunks, per the configured strategy.
    /// Runs the same robustness policy as [`Cluster::run_pr`].
    fn run_ap(
        &self,
        processed: &ProcessedQuestion,
        home: NodeId,
        workers: Vec<NodeId>,
        items: Vec<ApItem>,
        deadline: Option<Instant>,
        resume: Option<&QuestionRecovery>,
    ) -> Result<(RankedAnswers, Vec<NodeId>, Coverage), QaError> {
        if items.is_empty() {
            return Ok((RankedAnswers::default(), Vec::new(), Coverage::full(0)));
        }
        let chunks: Vec<Vec<ApItem>> = match self.cfg.ap_partition {
            PartitionStrategy::Send => {
                let w = vec![1.0 / workers.len() as f64; workers.len()];
                partition_send(items, &w)
            }
            PartitionStrategy::Isend => {
                let w = vec![1.0 / workers.len() as f64; workers.len()];
                partition_isend(items, &w)
            }
            PartitionStrategy::Recv { chunk_size } => partition_recv(items, chunk_size),
        };

        let mut queue = ChunkQueue::new(chunks);
        let (reply_tx, reply_rx) = bounded::<SubTaskResult>(workers.len().max(1) * 8);
        let mut active: Vec<NodeId> = Vec::new();
        let mut used: Vec<NodeId> = Vec::new();
        let mut partials: Vec<RankedAnswers> = Vec::new();

        // Crash recovery: AP chunks already answered before the crash are
        // marked complete up front and their journaled payloads reused, so
        // a resumed question never re-runs (or double-counts) them.
        if let Some(rec) = resume {
            for (chunk, payload) in rec.partials(JournalPhase::Ap) {
                if queue.complete_keyed(home, chunk) == ChunkOutcome::Fresh {
                    if let Ok(r) = serde_json::from_slice::<RankedAnswers>(payload) {
                        partials.push(r);
                    }
                }
            }
        }

        let send_chunk = |this: &Cluster,
                          node: NodeId,
                          id: u32,
                          chunk: &[ApItem],
                          reply_tx: &Sender<SubTaskResult>|
         -> bool {
            let sent = this.links[node.index()].send(
                Envelope {
                    task: SubTask::ApBatch {
                        question: processed.clone(),
                        items: chunk.to_vec(),
                        config: this.cfg.pipeline,
                        chunk: id,
                    },
                    reply: reply_tx.clone(),
                },
                this.cfg.send_timeout,
            );
            if let Err(SendTimeoutError::Timeout(_)) = &sent {
                this.metrics.backpressure.inc();
                this.trace
                    .record(processed.question.id, node, TraceKind::Backpressure);
            }
            this.queue_depth[node.index()].set(this.links[node.index()].queue_len() as f64);
            let granted = sent.is_ok();
            if granted && this.cfg.journal.is_some() {
                this.journal_append(&JournalRecord::ChunkGranted {
                    question: processed.question.id,
                    phase: JournalPhase::Ap,
                    chunk: id,
                    node: node.raw(),
                });
            }
            granted
        };
        let dispatch = |this: &Cluster,
                        queue: &mut ChunkQueue<ApItem>,
                        node: NodeId,
                        reply_tx: &Sender<SubTaskResult>|
         -> bool {
            let Some((id, chunk)) = queue.pull_keyed(node) else {
                return false;
            };
            if !send_chunk(this, node, id, &chunk, reply_tx) {
                queue.fail(node);
                return false;
            }
            true
        };

        // Initial paragraph fan-out = the `par_send` overhead slice.
        let t = now_instant();
        for node in workers {
            if dispatch(self, &mut queue, node, &reply_tx) {
                active.push(node);
                used.push(node);
            }
        }
        self.metrics
            .overhead_par_send
            .observe(t.elapsed().as_secs_f64());
        // A fully-restored phase (every chunk replayed from the journal)
        // legitimately fans out to nobody; only an undrained queue with no
        // workers is an error.
        if active.is_empty() && !queue.drained() {
            return Err(QaError::Disconnected("no AP workers".into()));
        }

        let mut policy = PhasePolicy::new(
            self.cfg.retry,
            self.cfg.speculate_after,
            deadline,
            resume.map_or(0, |r| r.retry_spent(JournalPhase::Ap)),
        );
        let retransmit = !self.cfg.faults.link.is_clean();
        while !queue.drained() {
            if policy.deadline_passed() {
                self.degrade(&mut queue, home, processed.question.id);
                break;
            }
            match reply_rx.recv_timeout(policy.poll(self.cfg.subtask_poll)) {
                Ok(SubTaskResult::Answers {
                    node,
                    answers,
                    chunk,
                    ..
                }) => {
                    policy.progress();
                    if queue.complete_keyed(node, chunk) == ChunkOutcome::Fresh {
                        self.journal_partial(
                            processed.question.id,
                            JournalPhase::Ap,
                            chunk,
                            &answers,
                        );
                        partials.push(answers);
                    }
                    if !dispatch(self, &mut queue, node, &reply_tx) {
                        active.retain(|n| *n != node);
                    }
                }
                Ok(SubTaskResult::Paragraphs { .. }) => {
                    return Err(QaError::Protocol("PR result on AP reply channel".into()))
                }
                Err(RecvTimeoutError::Timeout) => {
                    let (requeued, pool_alive) =
                        self.reap_failed(&mut queue, &mut active, processed.question.id);
                    if !pool_alive {
                        self.degrade(&mut queue, home, processed.question.id);
                        break;
                    }
                    let exhausted = policy.spend(requeued);
                    if requeued > 0 {
                        self.journal_retry(
                            processed.question.id,
                            JournalPhase::Ap,
                            policy.spent_total(),
                        );
                    }
                    if exhausted {
                        self.degrade(&mut queue, home, processed.question.id);
                        break;
                    }
                    let survivors = active.clone();
                    for node in survivors {
                        if queue.outstanding(node) == 0 {
                            dispatch(self, &mut queue, node, &reply_tx);
                        }
                    }
                    if policy.should_speculate() {
                        let live: Vec<NodeId> = self
                            .board
                            .live_loads()
                            .into_iter()
                            .map(|(n, _)| n)
                            .collect();
                        if let Some((node, id, chunk)) =
                            speculate_oldest(&mut queue, &active, &live)
                        {
                            if send_chunk(self, node, id, &chunk, &reply_tx) {
                                if !active.contains(&node) {
                                    active.push(node);
                                }
                                if !used.contains(&node) {
                                    used.push(node);
                                }
                                self.metrics.speculations.inc();
                                self.trace.record(
                                    processed.question.id,
                                    node,
                                    TraceKind::Speculated(id),
                                );
                                if policy.speculated() {
                                    self.degrade(&mut queue, home, processed.question.id);
                                    break;
                                }
                            } else {
                                queue.fail(node);
                            }
                        }
                    }
                    if retransmit && policy.should_retransmit() {
                        let mut recycled = 0;
                        for node in active.clone() {
                            recycled += queue.fail(node);
                        }
                        let exhausted = policy.spend(recycled);
                        if recycled > 0 {
                            self.journal_retry(
                                processed.question.id,
                                JournalPhase::Ap,
                                policy.spent_total(),
                            );
                        }
                        if exhausted {
                            self.degrade(&mut queue, home, processed.question.id);
                            break;
                        }
                        let survivors = active.clone();
                        for node in survivors {
                            if queue.outstanding(node) == 0 {
                                dispatch(self, &mut queue, node, &reply_tx);
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(QaError::Disconnected("AP reply channel closed".into()))
                }
            }
        }

        // Centralized answer merging + sorting = the `ans_sort` overhead.
        let t = now_instant();
        let merged = RankedAnswers::merge(partials, self.cfg.pipeline.answers_requested);
        self.metrics
            .overhead_ans_sort
            .observe(t.elapsed().as_secs_f64());
        let coverage = Coverage {
            completed: queue.completed(),
            total: queue.total(),
        };
        Ok((merged, used, coverage))
    }

    /// Append one record to the configured journal, if any. Journal I/O
    /// must never fail the question path: a fenced append (this handle's
    /// term was superseded — we are a zombie ex-leader) is counted in
    /// `dqa_fenced_grants_total`, other errors are dropped after the
    /// question's durability guarantee is already forfeit.
    fn journal_append(&self, record: &JournalRecord) {
        let Some(journal) = &self.cfg.journal else {
            return;
        };
        match journal.append(record) {
            Ok(()) => self.metrics.journal_records.inc(),
            Err(JournalError::Fenced { .. }) => self.metrics.fenced_grants.inc(),
            Err(_) => {}
        }
    }

    /// Journal a scheduling-point decision (points 2 and 3; point 1 is
    /// journaled inline with admission).
    fn journal_scheduled(
        &self,
        question: qa_types::QuestionId,
        point: SchedulingPoint,
        nodes: &[NodeId],
    ) {
        if self.cfg.journal.is_some() {
            self.journal_append(&JournalRecord::Scheduled {
                question,
                point,
                nodes: nodes.iter().map(|n| n.raw()).collect(),
            });
        }
    }

    /// Journal a completed chunk's payload so a successor coordinator can
    /// reuse it instead of re-running the chunk (exactly-once semantics).
    fn journal_partial<T: serde::Serialize>(
        &self,
        question: qa_types::QuestionId,
        phase: JournalPhase,
        chunk: u32,
        result: &T,
    ) {
        if self.cfg.journal.is_none() {
            return;
        }
        if let Ok(payload) = serde_json::to_vec(result) {
            self.journal_append(&JournalRecord::PartialResult {
                question,
                phase,
                chunk,
                payload,
            });
        }
    }

    /// Journal the cumulative retry budget spent in `phase`, so a resumed
    /// question keeps (not resets) its pre-crash spend.
    fn journal_retry(&self, question: qa_types::QuestionId, phase: JournalPhase, spent: u32) {
        if self.cfg.journal.is_some() {
            self.journal_append(&JournalRecord::RetrySpent {
                question,
                phase,
                spent,
            });
        }
    }

    /// Detect dead workers among `active`; recover their chunks. Returns
    /// the number of chunks re-queued and whether any worker (current or
    /// recruited from the live pool) remains. A `false` pool flag tells the
    /// caller to degrade — the drain loop must terminate even with every
    /// node dead, never spin forever.
    fn reap_failed<T: Clone>(
        &self,
        queue: &mut ChunkQueue<T>,
        active: &mut Vec<NodeId>,
        question: qa_types::QuestionId,
    ) -> (usize, bool) {
        let mut requeued = 0;
        let mut i = 0;
        while i < active.len() {
            let node = active[i];
            if !self.board.is_alive(node) {
                requeued += queue.fail(node);
                self.metrics.worker_failures.inc();
                self.trace.record(question, node, TraceKind::WorkerFailed);
                active.remove(i);
            } else {
                i += 1;
            }
        }
        if active.is_empty() && !queue.drained() {
            // Try to recruit replacements from the live pool.
            let pool = self.board.live_loads();
            if pool.is_empty() {
                return (requeued, false);
            }
            for (n, _) in pool {
                active.push(n);
            }
        }
        (requeued, true)
    }

    /// Abandon everything still outstanding in `queue` and record the
    /// degradation (graceful degradation: the question completes with
    /// partial coverage instead of erroring or hanging).
    fn degrade<T: Clone>(
        &self,
        queue: &mut ChunkQueue<T>,
        home: NodeId,
        question: qa_types::QuestionId,
    ) {
        let lost = queue.abandon();
        if lost > 0 {
            self.trace
                .record(question, home, TraceKind::Degraded(lost as usize));
        }
    }

    /// Shut the cluster down, joining every worker. Taking `self` by value
    /// proves no `ask`/`submit` borrow is still running; queued admissions
    /// were already woken and rejected by the gate drain (shutdown is
    /// deterministic: reject, never hang or race).
    pub fn shutdown(mut self) {
        self.gate.drain();
        if let Some(chaos) = self.chaos.take() {
            chaos.stop();
        }
        self.links.clear(); // close channels → workers exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.gate.drain();
        self.chaos.take();
        self.links.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Consecutive empty poll rounds before a lossy-link coordinator presumes
/// its in-flight envelopes lost and retransmits them. Deliberately above
/// any sane `speculate_after`, so speculation gets the first try.
const RETRANSMIT_STALLS: u32 = 6;

/// Per-phase robustness bookkeeping shared by the PR and AP drain loops:
/// deadline, retry budget with backoff, and the stall counter that triggers
/// speculation.
struct PhasePolicy {
    retry: RetryPolicy,
    speculate_after: Option<u32>,
    deadline: Option<Instant>,
    spent: u32,
    stall_rounds: u32,
    backoff_attempt: u32,
}

impl PhasePolicy {
    /// `already_spent` seeds the retry budget from a journal replay: a
    /// resumed question keeps the budget it had burned before the crash
    /// rather than getting a fresh allowance.
    fn new(
        retry: RetryPolicy,
        speculate_after: Option<u32>,
        deadline: Option<Instant>,
        already_spent: u32,
    ) -> Self {
        PhasePolicy {
            retry,
            speculate_after,
            deadline,
            spent: already_spent,
            stall_rounds: 0,
            backoff_attempt: 0,
        }
    }

    /// Cumulative retry budget spent (journaled so recovery can restore it).
    fn spent_total(&self) -> u32 {
        self.spent
    }

    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| now_instant() >= d)
    }

    /// The poll timeout, clipped so the loop re-checks a nearby deadline.
    fn poll(&self, base: Duration) -> Duration {
        match self.deadline {
            Some(d) => base.min(d.saturating_duration_since(now_instant())),
            None => base,
        }
    }

    /// A result arrived: the phase is making progress.
    fn progress(&mut self) {
        self.stall_rounds = 0;
    }

    /// A poll round timed out with `requeued` chunks recovered from dead
    /// workers. Charges the budget and applies exponential backoff before
    /// the re-dispatch. Returns true when the retry budget is exhausted.
    fn spend(&mut self, requeued: usize) -> bool {
        self.stall_rounds += 1;
        if requeued > 0 {
            self.spent += requeued as u32;
            let backoff = self.retry.backoff_secs(self.backoff_attempt);
            self.backoff_attempt += 1;
            std::thread::sleep(Duration::from_secs_f64(backoff));
        }
        self.spent > self.retry.budget
    }

    /// Whether the stall counter has reached the speculation trigger.
    fn should_speculate(&self) -> bool {
        self.speculate_after
            .is_some_and(|after| self.stall_rounds >= after)
    }

    /// Whether the stall has persisted long enough that the coordinator
    /// should presume its in-flight envelopes lost and retransmit (only
    /// meaningful on lossy links). Resets the stall counter when it fires.
    fn should_retransmit(&mut self) -> bool {
        if self.stall_rounds >= RETRANSMIT_STALLS {
            self.stall_rounds = 0;
            true
        } else {
            false
        }
    }

    /// A chunk was speculatively re-issued: charge it, restart the stall
    /// counter. Returns true when the retry budget is exhausted.
    fn speculated(&mut self) -> bool {
        self.stall_rounds = 0;
        self.spent += 1;
        self.spent > self.retry.budget
    }
}

/// Clone the oldest chunk of the first busy active worker onto the first
/// idle node of the live pool (speculative re-execution; see
/// [`ChunkQueue::speculate`]).
fn speculate_oldest<T: Clone>(
    queue: &mut ChunkQueue<T>,
    busy: &[NodeId],
    pool: &[NodeId],
) -> Option<(NodeId, u32, Vec<T>)> {
    let from = busy.iter().copied().find(|n| queue.outstanding(*n) > 0)?;
    let to = pool
        .iter()
        .copied()
        .find(|n| *n != from && queue.outstanding(*n) == 0)?;
    let (id, chunk) = queue.speculate(from, to)?;
    Some((to, id, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::{Corpus, CorpusConfig, QuestionGenerator};
    use ir_engine::{DocumentStore, RetrievalConfig, ShardedIndex};

    fn cluster(nodes: usize, strategy: PartitionStrategy) -> (Corpus, Cluster) {
        let c = Corpus::generate(CorpusConfig::small(91)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cfg = ClusterConfig {
            nodes,
            ap_partition: strategy,
            ..ClusterConfig::default()
        };
        let cl = Cluster::start(retriever, NamedEntityRecognizer::standard(), cfg);
        (c, cl)
    }

    #[test]
    fn distributed_answers_match_ground_truth() {
        let (c, cl) = cluster(4, PartitionStrategy::Recv { chunk_size: 8 });
        let qs = QuestionGenerator::new(&c, 1).generate(12);
        let mut correct = 0;
        for gq in &qs {
            let out = cl.ask(&gq.question).expect("distributed answer");
            if out
                .answers
                .answers
                .iter()
                .any(|a| a.candidate == gq.expected_answer)
            {
                correct += 1;
            }
        }
        assert!(correct >= 8, "correct {correct}/12");
        cl.shutdown();
    }

    #[test]
    fn all_partition_strategies_agree_on_answers() {
        let strategies = [
            PartitionStrategy::Send,
            PartitionStrategy::Isend,
            PartitionStrategy::Recv { chunk_size: 8 },
        ];
        let mut results: Vec<Vec<String>> = Vec::new();
        for s in strategies {
            let (c, cl) = cluster(3, s);
            let qs = QuestionGenerator::new(&c, 2).generate(5);
            let mut out = Vec::new();
            for gq in &qs {
                let ans = cl.ask(&gq.question).unwrap();
                out.push(
                    ans.answers
                        .best()
                        .map(|a| a.candidate.clone())
                        .unwrap_or_default(),
                );
            }
            results.push(out);
            cl.shutdown();
        }
        // The partitioning strategy must not change the merged answers
        // (the paper's merging modules exist to guarantee exactly this).
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn distributed_matches_sequential_pipeline() {
        let (c, cl) = cluster(4, PartitionStrategy::Recv { chunk_size: 8 });
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let seq = qa_pipeline::QaPipeline::new(
            ParagraphRetriever::new(index, store, RetrievalConfig::default()),
            NamedEntityRecognizer::standard(),
            PipelineConfig::default(),
        );
        let qs = QuestionGenerator::new(&c, 3).generate(6);
        for gq in &qs {
            let d = cl.ask(&gq.question).unwrap();
            let s = seq.answer(&gq.question).unwrap();
            let d_best = d.answers.best().map(|a| a.candidate.clone());
            let s_best = s.answers.best().map(|a| a.candidate.clone());
            assert_eq!(d_best, s_best, "question {:?}", gq.question.text);
        }
        cl.shutdown();
    }

    #[test]
    fn trace_records_question_lifecycle() {
        let (c, cl) = cluster(4, PartitionStrategy::Recv { chunk_size: 8 });
        let qs = QuestionGenerator::new(&c, 4).generate(1);
        let out = cl.ask(&qs[0].question).unwrap();
        let ev = cl.trace().for_question(qs[0].question.id);
        use crate::trace::TraceKind as K;
        assert!(ev.iter().any(|e| matches!(e.kind, K::QuestionStart)));
        assert!(ev.iter().any(|e| matches!(e.kind, K::PrChunkStart(_))));
        assert!(ev.iter().any(|e| matches!(e.kind, K::PrChunkDone(_))));
        assert!(ev.iter().any(|e| matches!(e.kind, K::ParagraphsMerged(_))));
        assert!(ev.iter().any(|e| matches!(e.kind, K::AnswersSorted(_))));
        // Every sub-collection retrieved exactly once.
        let starts = ev
            .iter()
            .filter(|e| matches!(e.kind, K::PrChunkStart(_)))
            .count();
        assert_eq!(starts, c.config.sub_collections);
        assert!(!out.pr_nodes.is_empty());
        cl.shutdown();
    }

    #[test]
    fn survives_node_failure_mid_stream() {
        let (c, cl) = cluster(4, PartitionStrategy::Recv { chunk_size: 4 });
        let qs = QuestionGenerator::new(&c, 5).generate(6);
        // Kill one node, then keep asking: recovery must re-queue its work.
        let _ = cl.ask(&qs[0].question).unwrap();
        cl.kill_node(NodeId::new(2));
        for gq in &qs[1..] {
            let out = cl.ask(&gq.question).expect("answers despite failure");
            assert!(
                !out.pr_nodes.contains(&NodeId::new(2))
                    || cl
                        .trace()
                        .for_question(gq.question.id)
                        .iter()
                        .any(|e| matches!(e.kind, TraceKind::WorkerFailed)),
                "dead node served work without recovery"
            );
        }
        cl.shutdown();
    }

    #[test]
    fn clean_run_reports_complete_coverage() {
        let (c, cl) = cluster(3, PartitionStrategy::Recv { chunk_size: 8 });
        let qs = QuestionGenerator::new(&c, 21).generate(3);
        for gq in &qs {
            let out = cl.ask(&gq.question).unwrap();
            assert!(out.coverage.is_complete(), "clean run must be complete");
            assert_eq!(out.coverage.fraction(), 1.0);
        }
        cl.shutdown();
    }

    #[test]
    fn expired_deadline_degrades_instead_of_hanging() {
        let (c, cl) = cluster(2, PartitionStrategy::Recv { chunk_size: 8 });
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cl2 = Cluster::start(
            retriever,
            NamedEntityRecognizer::standard(),
            ClusterConfig {
                nodes: 2,
                deadline: Some(Duration::ZERO),
                ..ClusterConfig::default()
            },
        );
        drop(cl);
        let qs = QuestionGenerator::new(&c, 22).generate(1);
        let out = cl2
            .ask(&qs[0].question)
            .expect("deadline degrades, never errors");
        assert!(!out.coverage.is_complete(), "nothing can finish in 0 s");
        assert!(out.coverage.fraction() < 1.0);
        let degraded = cl2
            .trace()
            .for_question(qs[0].question.id)
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Degraded(_)));
        assert!(degraded, "degradation must be traced");
        cl2.shutdown();
    }

    #[test]
    fn all_workers_dead_mid_question_degrades_not_spins() {
        // Satellite check: with every worker dead *after* admission, the
        // drain loop must terminate with a degraded result — not spin on an
        // undrainable queue, not error the whole question.
        let (c, cl) = cluster(2, PartitionStrategy::Recv { chunk_size: 8 });
        let qs = QuestionGenerator::new(&c, 23).generate(1);
        let processed = cl.qp.process(&qs[0].question).unwrap();
        cl.kill_node(NodeId::new(0));
        cl.kill_node(NodeId::new(1));
        // Dispatch still succeeds (channels stay open), so the loop enters
        // with two presumed-live workers that will never answer.
        let chunks: Vec<Vec<SubCollectionId>> = (0..cl.shards)
            .map(|s| vec![SubCollectionId::new(s as u32)])
            .collect();
        let started = Instant::now();
        let (scored, _, coverage) = cl
            .run_pr(
                &processed,
                NodeId::new(0),
                vec![NodeId::new(0), NodeId::new(1)],
                chunks,
                None,
            )
            .expect("degrades, never errors");
        assert!(started.elapsed() < Duration::from_secs(30), "loop spun");
        assert_eq!(coverage.completed, 0);
        assert!(coverage.total > 0);
        assert!(scored.is_empty());
        cl.shutdown();
    }

    #[test]
    fn straggler_chunk_is_speculated_to_an_idle_worker() {
        let (c, _) = cluster(1, PartitionStrategy::Recv { chunk_size: 8 });
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cl = Cluster::start(
            retriever,
            NamedEntityRecognizer::standard(),
            ClusterConfig {
                nodes: 2,
                ap_partition: PartitionStrategy::Recv { chunk_size: 8 },
                // Staleness far above the straggler's pad: reap cannot be
                // the rescuer, only speculation can.
                staleness: Duration::from_secs(30),
                subtask_poll: Duration::from_millis(10),
                speculate_after: Some(1),
                ..ClusterConfig::default()
            },
        );
        // Node 1 crawls: every sub-task is padded ~1 s.
        cl.board().set_slowdown(NodeId::new(1), 0.001);
        let qs = QuestionGenerator::new(&c, 24).generate(1);
        let started = Instant::now();
        let out = cl.ask(&qs[0].question).expect("question completes");
        assert!(
            started.elapsed() < Duration::from_millis(800),
            "speculation should beat the ~1 s straggler pad (took {:?})",
            started.elapsed()
        );
        assert!(out.coverage.is_complete());
        cl.shutdown();
    }

    #[test]
    fn all_nodes_dead_is_an_error() {
        let (c, cl) = cluster(2, PartitionStrategy::Recv { chunk_size: 8 });
        let qs = QuestionGenerator::new(&c, 6).generate(1);
        cl.kill_node(NodeId::new(0));
        cl.kill_node(NodeId::new(1));
        assert!(cl.ask(&qs[0].question).is_err());
        cl.shutdown();
    }

    #[test]
    fn worker_pools_overlap_subtasks_on_one_node() {
        let (c, _) = cluster(1, PartitionStrategy::Recv { chunk_size: 4 });
        // A single node with two service threads still answers correctly
        // (results merge identically regardless of intra-node overlap).
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cl = Cluster::start(
            retriever,
            NamedEntityRecognizer::standard(),
            ClusterConfig {
                nodes: 1,
                workers_per_node: 3,
                ap_partition: PartitionStrategy::Recv { chunk_size: 4 },
                ..ClusterConfig::default()
            },
        );
        let qs = QuestionGenerator::new(&c, 9).generate(4);
        for gq in &qs {
            let out = cl.ask(&gq.question).expect("single node answers");
            assert!(out.pr_nodes.len() == 1);
        }
        cl.shutdown();
    }

    fn cluster_with_policy(nodes: usize, overload: OverloadPolicy) -> (Corpus, Cluster) {
        let c = Corpus::generate(CorpusConfig::small(91)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cfg = ClusterConfig {
            nodes,
            overload,
            ..ClusterConfig::default()
        };
        let cl = Cluster::start(retriever, NamedEntityRecognizer::standard(), cfg);
        (c, cl)
    }

    #[test]
    fn submit_matches_ask_under_permissive_policy() {
        let (c, cl) = cluster(3, PartitionStrategy::Recv { chunk_size: 8 });
        let qs = QuestionGenerator::new(&c, 31).generate(3);
        for gq in &qs {
            let adm = cl.submit(&gq.question);
            assert_eq!(adm.outcome(), Some(qa_types::QuestionOutcome::Answered));
            let ans = adm.answer().expect("answered admission carries answer");
            assert!(ans.coverage.is_complete());
        }
        assert_eq!(cl.admission().in_flight(), 0, "gate slots all released");
        cl.shutdown();
    }

    #[test]
    fn ask_many_conserves_every_outcome_under_server_policy() {
        // 2 in flight + 2 queued; the rest of an 8-question burst must be
        // rejected with a retry hint — never silently dropped, never queued
        // beyond the configured depth.
        let (c, cl) = cluster_with_policy(3, OverloadPolicy::server(2));
        let qs: Vec<Question> = QuestionGenerator::new(&c, 32)
            .generate(8)
            .into_iter()
            .map(|gq| gq.question)
            .collect();
        let admissions = cl.ask_many(&qs);
        assert_eq!(admissions.len(), qs.len(), "one admission per question");
        let mut counts = qa_types::OverloadCounts::default();
        for adm in &admissions {
            let outcome = adm.outcome().expect("no admission may fail outright");
            counts.record(outcome);
            if let Admission::Rejected { retry_after } = adm {
                assert!(*retry_after > Duration::ZERO, "retry hint required");
            }
        }
        assert_eq!(counts.offered(), qs.len(), "conservation of outcomes");
        assert!(
            counts.answered + counts.degraded >= 1,
            "someone got through"
        );
        assert!(
            cl.admission().peak_waiting() <= 2,
            "queue never exceeded its configured depth (peak {})",
            cl.admission().peak_waiting()
        );
        assert_eq!(cl.admission().in_flight(), 0);
        cl.shutdown();
    }

    #[test]
    fn begin_shutdown_rejects_instead_of_racing() {
        // Regression for the shutdown/use race: `shutdown` consumes the
        // cluster, but an `Arc`-shared cluster must be drainable first so
        // concurrent callers get a deterministic rejection, not a hang or a
        // panic on closed channels.
        let (c, cl) = cluster(2, PartitionStrategy::Recv { chunk_size: 8 });
        let cl = Arc::new(cl);
        let qs = QuestionGenerator::new(&c, 33).generate(2);
        cl.begin_shutdown();
        assert!(matches!(
            cl.ask(&qs[0].question),
            Err(QaError::Overloaded { .. })
        ));
        match cl.submit(&qs[1].question) {
            Admission::Rejected { retry_after } => {
                assert_eq!(retry_after, Duration::ZERO, "draining: do not retry here")
            }
            other => panic!("draining cluster must reject, got {other:?}"),
        }
        let cl = Arc::into_inner(cl).expect("sole owner");
        cl.shutdown();
    }

    #[test]
    fn saturated_per_node_cap_rejects_not_queues() {
        let (c, cl) = cluster_with_policy(2, OverloadPolicy::default().with_per_node_cap(0));
        let qs = QuestionGenerator::new(&c, 34).generate(1);
        // Every node "hosts" >= 0 questions, so a cap of 0 saturates the
        // whole pool: the question must bounce immediately with a hint.
        match cl.submit(&qs[0].question) {
            Admission::Rejected { retry_after } => {
                assert!(retry_after > Duration::ZERO)
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        let rejected = cl
            .trace()
            .for_question(qs[0].question.id)
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Rejected));
        assert!(rejected, "rejection must be traced");
        cl.shutdown();
    }

    #[test]
    fn exhausted_deadline_sheds_phases_after_calibration() {
        // First question runs clean (cold estimator abstains) and
        // calibrates the phase estimator; the second, admitted with a
        // microscopic deadline budget, must be shed before PR — returning a
        // coverage-annotated degraded answer instead of occupying workers.
        let (c, cl) = cluster_with_policy(2, OverloadPolicy::default().with_deadline(0.000_1));
        let qs = QuestionGenerator::new(&c, 35).generate(2);
        let first = cl.submit(&qs[0].question);
        assert!(first.answer().is_some(), "cold start must not shed");
        let second = cl.submit(&qs[1].question);
        assert_eq!(second.outcome(), Some(qa_types::QuestionOutcome::Degraded));
        let ans = second.answer().expect("shed still yields an answer");
        assert!(!ans.coverage.is_complete());
        let shed = cl
            .trace()
            .for_question(qs[1].question.id)
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Shed(_)));
        assert!(shed, "shed decision must be traced");
        cl.shutdown();
    }

    #[test]
    fn concurrent_questions_from_multiple_threads() {
        let (c, cl) = cluster(4, PartitionStrategy::Recv { chunk_size: 8 });
        let cl = Arc::new(cl);
        let qs = QuestionGenerator::new(&c, 7).generate(8);
        let mut handles = Vec::new();
        for gq in qs {
            let cl = Arc::clone(&cl);
            handles.push(std::thread::spawn(move || {
                cl.ask(&gq.question).map(|d| d.answers.len())
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
    }

    // ---- elastic membership ----

    fn elastic_cluster(nodes: usize, ecfg: ElasticConfig) -> (Corpus, Cluster) {
        let c = Corpus::generate(CorpusConfig::small(92)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cfg = ClusterConfig {
            nodes,
            elastic: Some(ecfg),
            ..ClusterConfig::default()
        };
        let cl = Cluster::start(retriever, NamedEntityRecognizer::standard(), cfg);
        (c, cl)
    }

    fn fast_throttle() -> ElasticConfig {
        ElasticConfig {
            throttle: rebalance::MigrationThrottle {
                step_secs: 0.0005,
                ..rebalance::MigrationThrottle::default()
            },
            ..ElasticConfig::default()
        }
    }

    #[test]
    fn drain_migrates_ownership_live_and_join_brings_it_back() {
        let (c, cl) = elastic_cluster(4, fast_throttle());
        assert_eq!(cl.rebalance_status(), Some((0, true)));
        let qs = QuestionGenerator::new(&c, 11).generate(4);
        let before = cl.ask(&qs[0].question).unwrap();
        assert!(before.coverage.is_complete());

        let victim = NodeId::new(1);
        let moved = cl.drain(victim);
        assert!(moved > 0, "the drained node owned sub-collections");
        assert!(
            cl.ownership().iter().all(|(_, n)| *n != victim.raw()),
            "every sub-collection re-homed off the drained node"
        );
        let (epoch, converged) = cl.rebalance_status().unwrap();
        assert!(converged, "drain must restore full coverage");
        assert_eq!(epoch as usize, moved, "one epoch bump per transfer");

        // The drained node serves no further PR work, yet answers stay
        // complete: live migration lost nothing.
        for gq in &qs[1..] {
            let out = cl.ask(&gq.question).unwrap();
            assert!(out.coverage.is_complete());
            assert!(!out.pr_nodes.contains(&victim));
        }

        let rejoined = cl.join(victim);
        assert!(rejoined > 0, "join migrates a fair share back");
        assert!(cl.ownership().iter().any(|(_, n)| *n == victim.raw()));
        assert!(cl.rebalance_status().unwrap().1);

        let snap = cl.metrics().snapshot();
        assert_eq!(
            snap.counter(r#"dqa_rebalance_plans_total{reason="drain"}"#),
            1
        );
        assert_eq!(
            snap.counter(r#"dqa_rebalance_plans_total{reason="join"}"#),
            1
        );
        assert_eq!(
            snap.counter("dqa_rebalance_migrated_total") as usize,
            moved + rejoined
        );
        cl.shutdown();
    }

    #[test]
    fn standby_owns_nothing_until_joined() {
        let ecfg = ElasticConfig {
            standby_nodes: 1,
            ..fast_throttle()
        };
        let (c, cl) = elastic_cluster(4, ecfg);
        let standby = NodeId::new(3);
        assert!(
            cl.ownership().iter().all(|(_, n)| *n != standby.raw()),
            "a warm spare owns nothing at boot"
        );
        let out = cl.ask(&QuestionGenerator::new(&c, 12).generate(1)[0].question);
        let ans = out.unwrap();
        assert!(ans.coverage.is_complete());
        assert!(!ans.pr_nodes.contains(&standby), "standbys get no PR work");

        assert!(cl.join(standby) > 0, "joining pulls in a fair share");
        assert!(cl.ownership().iter().any(|(_, n)| *n == standby.raw()));
        assert_eq!(cl.node_health(standby), Some(NodeHealth::Alive));
        cl.shutdown();
    }

    #[test]
    fn heal_evacuates_a_permanently_lost_owner_but_not_a_straggler() {
        let ecfg = ElasticConfig {
            detector: rebalance::DetectorConfig {
                lease_secs: 0.05,
                suspect_phi: 1.5,
                dead_phi: 3.0,
                min_gap_secs: 0.001,
            },
            ..fast_throttle()
        };
        let (c, cl) = elastic_cluster(3, ecfg);
        // Teach the detector each node's heartbeat cadence.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(15));
            cl.heal();
        }
        let victim = NodeId::new(2);
        assert_eq!(cl.node_health(victim), Some(NodeHealth::Alive));
        cl.kill_node(victim);
        // Within the lease the silence is a straggler: no migration.
        assert_eq!(cl.heal(), 0, "no evacuation inside the lease window");
        std::thread::sleep(Duration::from_millis(200));
        let moved = cl.heal();
        assert!(moved > 0, "past the lease the loss is permanent");
        assert!(cl.ownership().iter().all(|(_, n)| *n != victim.raw()));
        assert!(cl.rebalance_status().unwrap().1, "coverage healed");
        let snap = cl.metrics().snapshot();
        assert_eq!(
            snap.counter(r#"dqa_rebalance_plans_total{reason="permanent-loss"}"#),
            1
        );
        assert!(snap.histograms["dqa_rebalance_heal_seconds"].count >= 1);
        // Questions still answer in full off the survivors.
        let out = cl
            .ask(&QuestionGenerator::new(&c, 13).generate(1)[0].question)
            .unwrap();
        assert!(out.coverage.is_complete());
        cl.shutdown();
    }

    fn integrity_cluster(faults: FaultSchedule) -> (Corpus, Cluster) {
        let c = Corpus::generate(CorpusConfig::small(91)).unwrap();
        let index = Arc::new(ShardedIndex::build(&c.documents, c.config.sub_collections));
        let store = Arc::new(DocumentStore::new(c.documents.clone()));
        let retriever = ParagraphRetriever::new(index, store, RetrievalConfig::default());
        let cfg = ClusterConfig {
            nodes: 3,
            faults,
            integrity: Some(crate::integrity::IntegrityConfig {
                // Exhaustive read-path verification: the sampled check
                // degenerates to check-all, so detection is deterministic.
                read_sample_blocks: usize::MAX,
                ..Default::default()
            }),
            ..ClusterConfig::default()
        };
        let cl = Cluster::start(retriever, NamedEntityRecognizer::standard(), cfg);
        (c, cl)
    }

    #[test]
    fn corruption_degrades_explicitly_then_scrub_repairs() {
        let (c, cl) = integrity_cluster(FaultSchedule::seeded(7).bit_flip_index(1, 0.0));
        let qs = QuestionGenerator::new(&c, 17).generate(2);

        // Clean baseline: full coverage.
        let before = cl.ask(&qs[0].question).unwrap();
        assert!(before.coverage.is_complete());

        // Fire the scheduled bit flip and ask again: the read check
        // quarantines the damaged sub-collection, the question skips it,
        // and the answer closes explicitly coverage-degraded.
        assert_eq!(cl.inject_scheduled_corruption(), 1);
        let degraded = cl.ask(&qs[1].question).unwrap();
        assert!(
            !degraded.coverage.is_complete(),
            "quarantine must reduce coverage, not pass corrupt data"
        );
        assert_eq!(cl.quarantined_subs(), vec![1]);
        let ev = cl.trace().for_question(qs[1].question.id);
        assert!(
            ev.iter()
                .any(|e| matches!(e.kind, crate::trace::TraceKind::Quarantined(1))),
            "degraded question carries the quarantine trace event"
        );

        // Scrub: detection already happened on the read path, so the pass
        // repairs (replica intact → splice) and lifts the quarantine.
        let report = cl.scrub();
        assert_eq!(report.repaired_replica, vec![1]);
        assert!(cl.quarantined_subs().is_empty());

        // Healed: same question returns the same full-coverage answer as
        // the clean baseline — repair is exact, not approximate.
        let after = cl.ask(&qs[0].question).unwrap();
        assert!(after.coverage.is_complete());
        assert_eq!(
            before.answers.best().map(|a| a.candidate.clone()),
            after.answers.best().map(|a| a.candidate.clone()),
        );

        let snap = cl.metrics().snapshot();
        assert_eq!(
            snap.counter(r#"dqa_integrity_checksum_failures_total{target="index"}"#),
            1
        );
        assert_eq!(
            snap.counter(r#"dqa_integrity_repairs_total{source="replica"}"#),
            1
        );
        assert_eq!(snap.counter("dqa_integrity_degraded_total"), 1);
        cl.shutdown();
    }

    #[test]
    fn scrub_detects_torn_write_without_read_traffic() {
        let (_c, cl) = integrity_cluster(FaultSchedule::seeded(9).torn_write_index(2, 0.0));
        assert_eq!(cl.inject_scheduled_corruption(), 1);
        // No question has touched the segment; the background scrubber is
        // the only detector, and one full pass both finds and heals it.
        let report = cl.scrub();
        assert_eq!(report.detected, vec![2]);
        assert_eq!(report.repaired(), 1);
        assert!(cl.quarantined_subs().is_empty());
        let snap = cl.metrics().snapshot();
        assert!(snap.counter("dqa_integrity_scrubbed_total") > 0);
        cl.shutdown();
    }

    #[test]
    fn without_integrity_config_every_hook_is_inert() {
        let (c, cl) = cluster(2, PartitionStrategy::Send);
        assert_eq!(cl.inject_scheduled_corruption(), 0);
        assert!(cl.quarantined_subs().is_empty());
        assert_eq!(cl.scrub(), crate::integrity::ScrubReport::default());
        assert!(cl.integrity_segment().is_none());
        let out = cl
            .ask(&QuestionGenerator::new(&c, 19).generate(1)[0].question)
            .unwrap();
        assert!(out.coverage.is_complete());
        cl.shutdown();
    }
}
