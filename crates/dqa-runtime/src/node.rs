//! Worker node threads.
//!
//! Each node owns a receiver of [`Envelope`]s and the shared substrates
//! (index + store via the [`ParagraphRetriever`], NER, trace log, load
//! board). Its loop: heartbeat, receive (with timeout so heartbeats keep
//! flowing while idle), check the alive flag (failure injection), execute,
//! reply. A dead node drains silently — its queued envelopes are dropped,
//! which the coordinator detects by timeout, mirroring the paper's TCP
//! error path.

use crate::board::LoadBoard;
use crate::message::{Envelope, SubTask, SubTaskResult};
use crate::trace::{TraceKind, TraceLog};
use crossbeam_channel::{Receiver, RecvTimeoutError};
use ir_engine::ParagraphRetriever;
use nlp::NamedEntityRecognizer;
use qa_pipeline::answer::extract_answers;
use qa_pipeline::scoring::score_paragraphs;
use qa_types::NodeId;
use std::sync::Arc;
use std::time::Duration;

/// Everything a worker needs.
pub struct NodeContext {
    /// This node's identity.
    pub id: NodeId,
    /// The PR substrate (shared index + store).
    pub retriever: ParagraphRetriever,
    /// The AP substrate.
    pub ner: NamedEntityRecognizer,
    /// Shared load board.
    pub board: Arc<LoadBoard>,
    /// Shared trace log.
    pub trace: TraceLog,
    /// Heartbeat / idle-poll interval.
    pub heartbeat_every: Duration,
}

/// Run the worker loop until the channel closes or the node is killed.
pub fn run_node(ctx: NodeContext, rx: Receiver<Envelope>) {
    loop {
        if ctx.board.is_suspended(ctx.id) {
            // Transient crash: go silent. No heartbeats (peers age this
            // node out through staleness, like a real silent crash), queued
            // envelopes are discarded, but the thread survives so a resume
            // brings the node back with reset state.
            while rx.try_recv().is_ok() {}
            std::thread::sleep(ctx.heartbeat_every);
            continue;
        }
        ctx.board.heartbeat(ctx.id);
        if !alive(&ctx) {
            // Failure injection: stop serving; drop queued envelopes.
            return;
        }
        match rx.recv_timeout(ctx.heartbeat_every) {
            Ok(envelope) => {
                if ctx.board.is_suspended(ctx.id) {
                    // Suspended between poll and receive: the envelope dies
                    // with the crash; the coordinator recovers it.
                    continue;
                }
                if !alive(&ctx) {
                    return;
                }
                serve(&ctx, envelope);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn alive(ctx: &NodeContext) -> bool {
    // Only the explicit kill switch stops a node's own threads. Staleness
    // is for peers, and quarantine (flap breaker or overload breaker) only
    // excludes the node from *dispatch* — a breaker that killed worker
    // threads would turn a transient overload into a permanent crash.
    ctx.board.self_alive(ctx.id)
}

fn serve(ctx: &NodeContext, envelope: Envelope) {
    let Envelope { task, reply } = envelope;
    let disk_bound = task.is_disk_bound();
    if disk_bound {
        ctx.board.disk_delta(ctx.id, 1);
    } else {
        ctx.board.cpu_delta(ctx.id, 1);
    }
    let started = crate::clock::now_instant();

    let result = match task {
        SubTask::PrShard {
            question,
            keywords,
            shard,
            chunk,
        } => {
            ctx.trace
                .record(question, ctx.id, TraceKind::PrChunkStart(shard));
            // An unknown shard contributes nothing; the coordinator
            // validated shard ids up front, so this only fires on races
            // with reconfiguration.
            let retrieval = ctx.retriever.retrieve(&keywords, shard).unwrap_or_default();
            // PS runs where PR ran (Fig. 3: PR(i) feeds PS(i)).
            let scored = score_paragraphs(retrieval.paragraphs, &keywords);
            ctx.trace
                .record(question, ctx.id, TraceKind::PrChunkDone(shard));
            SubTaskResult::Paragraphs {
                node: ctx.id,
                shard,
                scored,
                chunk,
            }
        }
        SubTask::ApBatch {
            question,
            items,
            config,
            chunk,
        } => {
            let qid = question.question.id;
            ctx.trace
                .record(qid, ctx.id, TraceKind::ApBatchStart(items.len()));
            let answers = extract_answers(&items, &question, &ctx.ner, &config);
            ctx.trace
                .record(qid, ctx.id, TraceKind::ApBatchDone(items.len()));
            SubTaskResult::Answers {
                node: ctx.id,
                answers,
                paragraphs: items.len(),
                chunk,
            }
        }
    };

    // Straggler emulation: a node running at speed `f` takes `1/f` times
    // as long, so pad the real work time by the difference.
    let factor = ctx.board.slowdown(ctx.id);
    if factor < 1.0 {
        let pad = started.elapsed().as_secs_f64() * (1.0 / factor - 1.0);
        std::thread::sleep(Duration::from_secs_f64(pad.min(1.0)));
    }

    if disk_bound {
        ctx.board.disk_delta(ctx.id, -1);
    } else {
        ctx.board.cpu_delta(ctx.id, -1);
    }
    // The coordinator may have given up (timeout); ignore send failures.
    let _ = reply.send(result);
}
