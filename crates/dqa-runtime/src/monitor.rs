//! Broadcast load monitors (§3.1 of the paper).
//!
//! "Periodically each load monitor updates its local CPU and disk load and
//! broadcasts the information on the local interconnection network. Thus
//! every processor is aware not only of its own load but of the load of
//! every other active processor in the system."
//!
//! One monitor thread per node samples that node's counters from the
//! [`LoadBoard`] into a [`LoadPacket`] and delivers it to *every* node's
//! [`LoadTable`] (the channel-fabric analog of an Ethernet broadcast). Each
//! node therefore holds its own, independently-aging view of the cluster —
//! including this module's key behaviour, which the shared board cannot
//! express: a node that stops broadcasting ages out of its *peers'* views
//! after the staleness window, and rejoins the pool the moment it
//! broadcasts again.

use crate::board::LoadBoard;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Mutex;
use dqa_obs::{DqaMetrics, Gauge, MetricsRegistry};
use faults::LossJudge;
use loadsim::{LoadPacket, LoadTable};
use qa_types::{NodeId, ResourceWeights};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The monitor fleet plus every node's view of the cluster.
pub struct BroadcastMonitors {
    views: Vec<Arc<Mutex<LoadTable>>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    epoch: Instant,
}

impl BroadcastMonitors {
    /// Start one monitor thread per board row, broadcasting every
    /// `interval`; packets older than `staleness` seconds age out of the
    /// receiving tables.
    pub fn start(board: Arc<LoadBoard>, interval: Duration, staleness: f64) -> BroadcastMonitors {
        Self::start_lossy(board, interval, staleness, None)
    }

    /// Like [`BroadcastMonitors::start`], but each per-receiver delivery of
    /// a broadcast packet may be lost according to `judge` (the fault
    /// framework's monitor-loss model). A lost packet leaves the receiver
    /// acting on its stale view of the sender — which ages out after the
    /// staleness window, so sustained loss degrades balancing, never
    /// safety.
    pub fn start_lossy(
        board: Arc<LoadBoard>,
        interval: Duration,
        staleness: f64,
        judge: Option<LossJudge>,
    ) -> BroadcastMonitors {
        let off = DqaMetrics::new(&MetricsRegistry::disabled());
        Self::start_instrumented(board, interval, staleness, judge, &off)
    }

    /// Like [`BroadcastMonitors::start_lossy`], but each monitor also
    /// publishes its node's Eq. 1–3 load values into the `dqa_node_load`
    /// gauges of `metrics` on every broadcast — the monitor thread is the
    /// natural sampling point, since it already computes the load packet.
    pub fn start_instrumented(
        board: Arc<LoadBoard>,
        interval: Duration,
        staleness: f64,
        judge: Option<LossJudge>,
        metrics: &DqaMetrics,
    ) -> BroadcastMonitors {
        let nodes = board.len();
        let views: Vec<Arc<Mutex<LoadTable>>> = (0..nodes)
            .map(|_| Arc::new(Mutex::new(LoadTable::new(staleness))))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = crate::clock::now_instant();

        // A monitor thread that fails to spawn is survivable: its node
        // simply never broadcasts, so it ages out of peer views after the
        // staleness window — the same path as a silent node — and
        // dispatchers fall back to the shared board.
        let threads = (0..nodes)
            .filter_map(|i| {
                let node = NodeId::new(i as u32);
                let board = Arc::clone(&board);
                let views = views.clone();
                let stop = Arc::clone(&stop);
                // One gauge per (node, module): the paper's three load
                // functions (Eqs. 1–3) evaluated on this node's counters.
                let load_gauges: [(ResourceWeights, Gauge); 3] = [
                    (ResourceWeights::QA, metrics.node_load(i as u32, "QA")),
                    (ResourceWeights::PR, metrics.node_load(i as u32, "PR")),
                    (ResourceWeights::AP, metrics.node_load(i as u32, "AP")),
                ];
                std::thread::Builder::new()
                    .name(format!("dqa-monitor-{i}"))
                    .spawn(move || {
                        let mut round: u64 = 0;
                        while !stop.load(Ordering::Acquire) {
                            if board.is_alive(node) {
                                let now = epoch.elapsed().as_secs_f64();
                                let load = board.load_of(node);
                                for (weights, gauge) in &load_gauges {
                                    gauge.set(weights.load(load));
                                }
                                let packet = LoadPacket {
                                    node,
                                    load,
                                    memory_used: 0,
                                    questions: load.cpu as u32,
                                    sent_at: now,
                                };
                                for (receiver, view) in views.iter().enumerate() {
                                    // A node always hears itself; peer
                                    // deliveries ride the (lossy) network.
                                    let flow = ((i as u64) << 32) | receiver as u64;
                                    let lost = receiver != i
                                        && judge.as_ref().is_some_and(|j| j.lost(flow, round));
                                    if lost {
                                        continue;
                                    }
                                    let mut t = view.lock();
                                    t.update(packet, now);
                                    t.evict_stale(now);
                                }
                                round += 1;
                            }
                            std::thread::sleep(interval);
                        }
                    })
                    .ok()
            })
            .collect();

        BroadcastMonitors {
            views,
            stop,
            threads,
            epoch,
        }
    }

    /// Number of nodes monitored.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no node is monitored.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The cluster as seen *from* `observer`: live peers with their last
    /// broadcast loads, staleness applied at read time.
    pub fn view_from(&self, observer: NodeId) -> Vec<(NodeId, qa_types::ResourceVector)> {
        let now = self.epoch.elapsed().as_secs_f64();
        let mut table = self.views[observer.index()].lock();
        table.evict_stale(now);
        table.packets().iter().map(|p| (p.node, p.load)).collect()
    }

    /// Stop all monitor threads and join them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for BroadcastMonitors {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn every_node_learns_every_peer() {
        let board = Arc::new(LoadBoard::new(3, 10.0));
        for i in 0..3 {
            board.heartbeat(NodeId::new(i));
        }
        let monitors = BroadcastMonitors::start(Arc::clone(&board), Duration::from_millis(3), 1.0);
        assert_eq!(monitors.len(), 3);
        assert!(!monitors.is_empty());
        let ok = wait_until(1000, || {
            (0..3).all(|obs| monitors.view_from(NodeId::new(obs)).len() == 3)
        });
        assert!(ok, "views incomplete after 1 s");
        monitors.stop();
    }

    #[test]
    fn broadcast_loads_track_the_board() {
        let board = Arc::new(LoadBoard::new(2, 10.0));
        for i in 0..2 {
            board.heartbeat(NodeId::new(i));
        }
        board.cpu_delta(NodeId::new(1), 3);
        let monitors = BroadcastMonitors::start(Arc::clone(&board), Duration::from_millis(3), 1.0);
        let ok = wait_until(1000, || {
            monitors
                .view_from(NodeId::new(0))
                .iter()
                .any(|(n, v)| *n == NodeId::new(1) && v.cpu >= 3.0)
        });
        assert!(ok, "node 0 never saw node 1's load");
        monitors.stop();
    }

    #[test]
    fn total_monitor_loss_blinds_peers_but_not_self() {
        let board = Arc::new(LoadBoard::new(2, 10.0));
        for i in 0..2 {
            board.heartbeat(NodeId::new(i));
        }
        let judge = faults::FaultSchedule::seeded(11)
            .monitor_loss(1.0)
            .monitor_judge();
        let monitors = BroadcastMonitors::start_lossy(
            Arc::clone(&board),
            Duration::from_millis(3),
            1.0,
            Some(judge),
        );
        // Each node hears itself (loss applies to the network, not the
        // local loopback)…
        let self_seen = wait_until(1000, || {
            (0..2).all(|i| {
                monitors
                    .view_from(NodeId::new(i))
                    .iter()
                    .any(|(n, _)| *n == NodeId::new(i))
            })
        });
        assert!(self_seen, "self view missing");
        // …but no peer packet ever lands.
        std::thread::sleep(Duration::from_millis(50));
        for i in 0..2u32 {
            let peers = monitors
                .view_from(NodeId::new(i))
                .iter()
                .filter(|(n, _)| *n != NodeId::new(i))
                .count();
            assert_eq!(peers, 0, "peer packet survived total loss");
        }
        monitors.stop();
    }

    #[test]
    fn silent_node_ages_out_of_peer_views_and_rejoins() {
        let board = Arc::new(LoadBoard::new(2, 10.0));
        for i in 0..2 {
            board.heartbeat(NodeId::new(i));
        }
        let monitors = BroadcastMonitors::start(Arc::clone(&board), Duration::from_millis(3), 0.08);
        let both = wait_until(1000, || monitors.view_from(NodeId::new(0)).len() == 2);
        assert!(both);
        // Node 1 stops broadcasting (kill switch), ages out of node 0's view.
        board.set_alive(NodeId::new(1), false);
        let gone = wait_until(1000, || {
            monitors
                .view_from(NodeId::new(0))
                .iter()
                .all(|(n, _)| *n != NodeId::new(1))
        });
        assert!(gone, "dead node never aged out");
        // It starts broadcasting again and rejoins the pool automatically.
        board.set_alive(NodeId::new(1), true);
        let back = wait_until(1000, || monitors.view_from(NodeId::new(0)).len() == 2);
        assert!(back, "revived node never rejoined");
        monitors.stop();
    }
}
