//! The shared load board: per-node load counters plus liveness.
//!
//! This is the shared-memory analog of the paper's load-monitor broadcast:
//! every node publishes (CPU-ish active sub-tasks, disk-ish active
//! sub-tasks, resident questions, heartbeat) and every dispatcher reads the
//! whole board. A node whose heartbeat goes stale — or whose alive flag is
//! cleared by failure injection — drops out of the pool, and rejoins the
//! moment it publishes again.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use qa_types::{NodeId, ResourceVector};
use std::time::Instant;

/// Circuit-breaker policy for flapping nodes: a node that rejoins
/// [`QuarantinePolicy::flap_threshold`] times, each rejoin within
/// [`QuarantinePolicy::window_secs`] of the previous one, is quarantined
/// (treated as dead by dispatchers) for
/// [`QuarantinePolicy::quarantine_secs`]. Flaps are *explicit* rejoins —
/// `set_alive(_, true)` after a kill, or a chaos resume — never plain
/// heartbeat staleness, so a node stalled on a long sub-task is not
/// punished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinePolicy {
    /// Consecutive quick rejoins before the breaker opens.
    pub flap_threshold: u32,
    /// Two rejoins further apart than this reset the streak (seconds).
    pub window_secs: f64,
    /// How long a quarantined node stays out of the pool (seconds).
    pub quarantine_secs: f64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            flap_threshold: 3,
            window_secs: 1.0,
            quarantine_secs: 0.5,
        }
    }
}

/// One node's published state.
#[derive(Debug)]
struct Row {
    cpu_tasks: AtomicUsize,
    disk_tasks: AtomicUsize,
    questions: AtomicUsize,
    heartbeat_micros: AtomicU64,
    alive: AtomicBool,
    /// Transient-crash switch: a suspended node goes silent (no heartbeats,
    /// queued envelopes discarded) but its threads survive for a resume.
    suspended: AtomicBool,
    /// Straggler factor as `f64` bits; `1.0` = full speed.
    slow_bits: AtomicU64,
    /// Consecutive quick rejoins (see [`QuarantinePolicy`]).
    flap_streak: AtomicUsize,
    /// When the last explicit rejoin happened (micros; 0 = never).
    last_flap_micros: AtomicU64,
    /// Quarantine end (micros since epoch; 0 = not quarantined).
    quarantine_until: AtomicU64,
}

impl Row {
    fn fresh() -> Row {
        Row {
            cpu_tasks: AtomicUsize::new(0),
            disk_tasks: AtomicUsize::new(0),
            questions: AtomicUsize::new(0),
            heartbeat_micros: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            suspended: AtomicBool::new(false),
            slow_bits: AtomicU64::new(1.0f64.to_bits()),
            flap_streak: AtomicUsize::new(0),
            last_flap_micros: AtomicU64::new(0),
            quarantine_until: AtomicU64::new(0),
        }
    }
}

/// The cluster-wide load board.
#[derive(Debug)]
pub struct LoadBoard {
    rows: Vec<Row>,
    epoch: Instant,
    staleness_micros: u64,
    policy: QuarantinePolicy,
}

impl LoadBoard {
    /// A board for `nodes` nodes with the given heartbeat staleness window
    /// and the default quarantine policy.
    pub fn new(nodes: usize, staleness_secs: f64) -> LoadBoard {
        Self::with_policy(nodes, staleness_secs, QuarantinePolicy::default())
    }

    /// A board with an explicit flap-quarantine policy.
    pub fn with_policy(nodes: usize, staleness_secs: f64, policy: QuarantinePolicy) -> LoadBoard {
        let epoch = crate::clock::now_instant();
        LoadBoard {
            rows: (0..nodes).map(|_| Row::fresh()).collect(),
            epoch,
            staleness_micros: (staleness_secs * 1e6) as u64,
            policy,
        }
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of nodes (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the board has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Publish a heartbeat for `node` (called by the node's monitor loop).
    ///
    /// Rejoin hygiene: a heartbeat arriving after a staleness gap means the
    /// node was presumed dead by its peers and coordinators already
    /// recovered its work — its stale task/question counters are reset so
    /// dispatchers do not see phantom load on the rejoined node.
    pub fn heartbeat(&self, node: NodeId) {
        let row = &self.rows[node.index()];
        let now = self.now_micros().max(1);
        let prev = row.heartbeat_micros.swap(now, Ordering::AcqRel);
        if prev > 0 && now.saturating_sub(prev) > self.staleness_micros {
            self.reset_counters(node);
        }
    }

    /// Mark a node dead (failure injection) or alive again. Re-marking a
    /// dead node alive is an explicit rejoin: its stale counters are reset
    /// and the flap breaker is fed.
    pub fn set_alive(&self, node: NodeId, alive: bool) {
        let prev = self.rows[node.index()].alive.swap(alive, Ordering::AcqRel);
        if alive && !prev {
            self.record_rejoin(node);
        }
    }

    /// Suspend a node (transient crash): it goes silent until
    /// [`LoadBoard::resume`]. Peers age it out of the pool through heartbeat
    /// staleness, exactly like a real silent crash.
    pub fn suspend(&self, node: NodeId) {
        self.rows[node.index()]
            .suspended
            .store(true, Ordering::Release);
    }

    /// Resume a suspended node. An explicit rejoin: stale counters reset,
    /// flap breaker fed.
    pub fn resume(&self, node: NodeId) {
        let prev = self.rows[node.index()]
            .suspended
            .swap(false, Ordering::AcqRel);
        if prev {
            self.record_rejoin(node);
        }
    }

    /// Whether the node is currently suspended (read by its own threads).
    pub fn is_suspended(&self, node: NodeId) -> bool {
        self.rows[node.index()].suspended.load(Ordering::Acquire)
    }

    /// Set a straggler speed factor in `(0, 1]`; `1.0` restores full speed.
    pub fn set_slowdown(&self, node: NodeId, factor: f64) {
        self.rows[node.index()]
            .slow_bits
            .store(factor.clamp(1e-3, 1.0).to_bits(), Ordering::Release);
    }

    /// The node's current straggler factor (`1.0` = full speed).
    pub fn slowdown(&self, node: NodeId) -> f64 {
        f64::from_bits(self.rows[node.index()].slow_bits.load(Ordering::Acquire))
    }

    /// Feed the flap circuit-breaker and reset stale counters after an
    /// explicit rejoin.
    fn record_rejoin(&self, node: NodeId) {
        self.reset_counters(node);
        let row = &self.rows[node.index()];
        let now = self.now_micros().max(1);
        let last = row.last_flap_micros.swap(now, Ordering::AcqRel);
        let window = (self.policy.window_secs * 1e6) as u64;
        let streak = if last > 0 && now.saturating_sub(last) <= window {
            row.flap_streak.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            row.flap_streak.store(1, Ordering::Release);
            1
        };
        if self.policy.flap_threshold > 0 && streak >= self.policy.flap_threshold as usize {
            let until = now + (self.policy.quarantine_secs * 1e6) as u64;
            row.quarantine_until.store(until, Ordering::Release);
        }
    }

    /// Zero a node's load counters (rejoin hygiene: a node that was presumed
    /// dead had its work recovered elsewhere, so whatever its counters held
    /// is stale).
    fn reset_counters(&self, node: NodeId) {
        let row = &self.rows[node.index()];
        row.cpu_tasks.store(0, Ordering::Release);
        row.disk_tasks.store(0, Ordering::Release);
        row.questions.store(0, Ordering::Release);
    }

    /// Open the breaker for `node` for `secs` seconds (overload circuit
    /// breaker: a saturated node is excluded from dispatch exactly like a
    /// flap-quarantined one, but keeps serving what it already holds). An
    /// already-open breaker is only ever extended, never shortened.
    pub fn trip_breaker(&self, node: NodeId, secs: f64) {
        let until = self.now_micros().max(1) + (secs.max(0.0) * 1e6) as u64;
        self.rows[node.index()]
            .quarantine_until
            .fetch_max(until, Ordering::AcqRel);
    }

    /// Whether the flap breaker currently excludes the node from the pool.
    pub fn is_quarantined(&self, node: NodeId) -> bool {
        let until = self.rows[node.index()]
            .quarantine_until
            .load(Ordering::Acquire);
        until > 0 && self.now_micros() < until
    }

    /// Whether a node is alive: flagged alive, heartbeat fresh, *and* not
    /// quarantined by the flap breaker.
    pub fn is_alive(&self, node: NodeId) -> bool {
        let row = &self.rows[node.index()];
        if !row.alive.load(Ordering::Acquire) || self.is_quarantined(node) {
            return false;
        }
        let hb = row.heartbeat_micros.load(Ordering::Acquire);
        hb > 0 && self.now_micros().saturating_sub(hb) <= self.staleness_micros
    }

    /// Whether the node's *own* threads should keep serving. Only the
    /// explicit kill switch matters here: staleness and quarantine are
    /// dispatcher-side views, and an overload breaker must park a node,
    /// not kill its worker threads.
    pub fn self_alive(&self, node: NodeId) -> bool {
        self.rows[node.index()].alive.load(Ordering::Acquire)
    }

    /// Number of questions currently resident on the node (admission's
    /// per-node cap reads this).
    pub fn resident_questions(&self, node: NodeId) -> usize {
        self.rows[node.index()].questions.load(Ordering::Acquire)
    }

    /// Track a CPU-bound sub-task starting/ending on a node.
    pub fn cpu_delta(&self, node: NodeId, delta: isize) {
        Self::bump(&self.rows[node.index()].cpu_tasks, delta);
    }

    /// Track a disk-bound sub-task starting/ending on a node.
    pub fn disk_delta(&self, node: NodeId, delta: isize) {
        Self::bump(&self.rows[node.index()].disk_tasks, delta);
    }

    /// Track a question becoming resident / leaving a node.
    pub fn question_delta(&self, node: NodeId, delta: isize) {
        Self::bump(&self.rows[node.index()].questions, delta);
    }

    fn bump(cell: &AtomicUsize, delta: isize) {
        if delta >= 0 {
            cell.fetch_add(delta as usize, Ordering::AcqRel);
        } else {
            let d = (-delta) as usize;
            let mut cur = cell.load(Ordering::Acquire);
            loop {
                let next = cur.saturating_sub(d);
                match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => break,
                    Err(v) => cur = v,
                }
            }
        }
    }

    /// A node's load vector: CPU load = CPU sub-tasks + resident questions
    /// (memory pressure counts against the CPU resource, per the paper's
    /// footnote), disk load = disk sub-tasks.
    pub fn load_of(&self, node: NodeId) -> ResourceVector {
        let row = &self.rows[node.index()];
        ResourceVector::new(
            row.cpu_tasks.load(Ordering::Acquire) as f64
                + 0.5 * row.questions.load(Ordering::Acquire) as f64,
            row.disk_tasks.load(Ordering::Acquire) as f64,
        )
    }

    /// Loads of all *live* nodes, sorted by id.
    pub fn live_loads(&self) -> Vec<(NodeId, ResourceVector)> {
        (0..self.rows.len())
            .map(|i| NodeId::new(i as u32))
            .filter(|&n| self.is_alive(n))
            .map(|n| (n, self.load_of(n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_controls_liveness() {
        let b = LoadBoard::new(2, 0.05);
        let n0 = NodeId::new(0);
        assert!(!b.is_alive(n0), "no heartbeat yet");
        b.heartbeat(n0);
        assert!(b.is_alive(n0));
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert!(!b.is_alive(n0), "stale heartbeat");
        b.heartbeat(n0);
        assert!(b.is_alive(n0), "rejoined");
    }

    #[test]
    fn kill_switch_overrides_heartbeat() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.set_alive(n0, false);
        assert!(!b.is_alive(n0));
        b.set_alive(n0, true);
        assert!(b.is_alive(n0));
    }

    #[test]
    fn counters_feed_load_vector() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.cpu_delta(n0, 2);
        b.disk_delta(n0, 1);
        b.question_delta(n0, 2);
        let v = b.load_of(n0);
        assert_eq!(v.cpu, 3.0);
        assert_eq!(v.disk, 1.0);
        b.cpu_delta(n0, -1);
        assert_eq!(b.load_of(n0).cpu, 2.0);
    }

    #[test]
    fn deltas_saturate_at_zero() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.cpu_delta(n0, -5);
        assert_eq!(b.load_of(n0).cpu, 0.0);
    }

    #[test]
    fn rejoin_after_kill_resets_stale_counters() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.cpu_delta(n0, 3);
        b.disk_delta(n0, 2);
        b.question_delta(n0, 1);
        b.set_alive(n0, false);
        b.set_alive(n0, true);
        let v = b.load_of(n0);
        assert_eq!(v.cpu, 0.0, "rejoined node must not carry phantom load");
        assert_eq!(v.disk, 0.0);
    }

    #[test]
    fn heartbeat_after_staleness_gap_resets_counters() {
        let b = LoadBoard::new(1, 0.03);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.cpu_delta(n0, 4);
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(!b.is_alive(n0), "peers aged the node out");
        b.heartbeat(n0);
        assert!(b.is_alive(n0), "rejoined");
        assert_eq!(b.load_of(n0).cpu, 0.0, "stale counters cleared on rejoin");
    }

    #[test]
    fn flapping_node_trips_the_quarantine_breaker() {
        let b = LoadBoard::with_policy(
            1,
            10.0,
            QuarantinePolicy {
                flap_threshold: 2,
                window_secs: 10.0,
                quarantine_secs: 10.0,
            },
        );
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.set_alive(n0, false);
        b.set_alive(n0, true);
        assert!(!b.is_quarantined(n0), "one flap is forgiven");
        assert!(b.is_alive(n0));
        b.set_alive(n0, false);
        b.set_alive(n0, true);
        assert!(b.is_quarantined(n0), "second quick flap opens the breaker");
        assert!(!b.is_alive(n0), "quarantined node is out of the pool");
        assert!(b.live_loads().is_empty());
    }

    #[test]
    fn quarantine_expires() {
        let b = LoadBoard::with_policy(
            1,
            10.0,
            QuarantinePolicy {
                flap_threshold: 1,
                window_secs: 10.0,
                quarantine_secs: 0.02,
            },
        );
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.set_alive(n0, false);
        b.set_alive(n0, true);
        assert!(b.is_quarantined(n0));
        std::thread::sleep(std::time::Duration::from_millis(40));
        b.heartbeat(n0);
        assert!(!b.is_quarantined(n0));
        assert!(b.is_alive(n0), "served its sentence, back in the pool");
    }

    #[test]
    fn suspend_and_resume_round_trip() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.cpu_delta(n0, 2);
        b.suspend(n0);
        assert!(b.is_suspended(n0));
        b.resume(n0);
        assert!(!b.is_suspended(n0));
        assert_eq!(b.load_of(n0).cpu, 0.0, "resume resets stale counters");
        assert!(!b.is_suspended(n0));
    }

    #[test]
    fn slowdown_factor_round_trips_and_clamps() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        assert_eq!(b.slowdown(n0), 1.0);
        b.set_slowdown(n0, 0.25);
        assert_eq!(b.slowdown(n0), 0.25);
        b.set_slowdown(n0, 7.0);
        assert_eq!(b.slowdown(n0), 1.0, "clamped to full speed");
        b.set_slowdown(n0, 0.0);
        assert!(b.slowdown(n0) > 0.0, "clamped above zero");
    }

    #[test]
    fn tripped_breaker_parks_but_does_not_kill() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.trip_breaker(n0, 10.0);
        assert!(b.is_quarantined(n0), "breaker excludes the node");
        assert!(!b.is_alive(n0), "dispatchers treat it as out of the pool");
        assert!(b.self_alive(n0), "its own threads must keep serving");
        b.trip_breaker(n0, 0.0);
        assert!(b.is_quarantined(n0), "re-trip never shortens the window");
    }

    #[test]
    fn breaker_expires_on_its_own() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.trip_breaker(n0, 0.02);
        assert!(b.is_quarantined(n0));
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert!(!b.is_quarantined(n0));
        assert!(b.is_alive(n0));
    }

    #[test]
    fn resident_questions_tracks_deltas() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        assert_eq!(b.resident_questions(n0), 0);
        b.question_delta(n0, 3);
        assert_eq!(b.resident_questions(n0), 3);
        b.question_delta(n0, -1);
        assert_eq!(b.resident_questions(n0), 2);
    }

    #[test]
    fn live_loads_filters_dead_nodes() {
        let b = LoadBoard::new(3, 10.0);
        for i in 0..3 {
            b.heartbeat(NodeId::new(i));
        }
        b.set_alive(NodeId::new(1), false);
        let live = b.live_loads();
        let ids: Vec<u32> = live.iter().map(|(n, _)| n.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
