//! The shared load board: per-node load counters plus liveness.
//!
//! This is the shared-memory analog of the paper's load-monitor broadcast:
//! every node publishes (CPU-ish active sub-tasks, disk-ish active
//! sub-tasks, resident questions, heartbeat) and every dispatcher reads the
//! whole board. A node whose heartbeat goes stale — or whose alive flag is
//! cleared by failure injection — drops out of the pool, and rejoins the
//! moment it publishes again.

use qa_types::{NodeId, ResourceVector};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One node's published state.
#[derive(Debug)]
struct Row {
    cpu_tasks: AtomicUsize,
    disk_tasks: AtomicUsize,
    questions: AtomicUsize,
    heartbeat_micros: AtomicU64,
    alive: AtomicBool,
}

/// The cluster-wide load board.
#[derive(Debug)]
pub struct LoadBoard {
    rows: Vec<Row>,
    epoch: Instant,
    staleness_micros: u64,
}

impl LoadBoard {
    /// A board for `nodes` nodes with the given heartbeat staleness window.
    pub fn new(nodes: usize, staleness_secs: f64) -> LoadBoard {
        let epoch = Instant::now();
        LoadBoard {
            rows: (0..nodes)
                .map(|_| Row {
                    cpu_tasks: AtomicUsize::new(0),
                    disk_tasks: AtomicUsize::new(0),
                    questions: AtomicUsize::new(0),
                    heartbeat_micros: AtomicU64::new(0),
                    alive: AtomicBool::new(true),
                })
                .collect(),
            epoch,
            staleness_micros: (staleness_secs * 1e6) as u64,
        }
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of nodes (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the board has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Publish a heartbeat for `node` (called by the node's monitor loop).
    pub fn heartbeat(&self, node: NodeId) {
        self.rows[node.index()]
            .heartbeat_micros
            .store(self.now_micros().max(1), Ordering::Release);
    }

    /// Mark a node dead (failure injection) or alive again.
    pub fn set_alive(&self, node: NodeId, alive: bool) {
        self.rows[node.index()]
            .alive
            .store(alive, Ordering::Release);
    }

    /// Whether a node is alive: flagged alive *and* heartbeat fresh.
    pub fn is_alive(&self, node: NodeId) -> bool {
        let row = &self.rows[node.index()];
        if !row.alive.load(Ordering::Acquire) {
            return false;
        }
        let hb = row.heartbeat_micros.load(Ordering::Acquire);
        hb > 0 && self.now_micros().saturating_sub(hb) <= self.staleness_micros
    }

    /// Track a CPU-bound sub-task starting/ending on a node.
    pub fn cpu_delta(&self, node: NodeId, delta: isize) {
        Self::bump(&self.rows[node.index()].cpu_tasks, delta);
    }

    /// Track a disk-bound sub-task starting/ending on a node.
    pub fn disk_delta(&self, node: NodeId, delta: isize) {
        Self::bump(&self.rows[node.index()].disk_tasks, delta);
    }

    /// Track a question becoming resident / leaving a node.
    pub fn question_delta(&self, node: NodeId, delta: isize) {
        Self::bump(&self.rows[node.index()].questions, delta);
    }

    fn bump(cell: &AtomicUsize, delta: isize) {
        if delta >= 0 {
            cell.fetch_add(delta as usize, Ordering::AcqRel);
        } else {
            let d = (-delta) as usize;
            let mut cur = cell.load(Ordering::Acquire);
            loop {
                let next = cur.saturating_sub(d);
                match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => break,
                    Err(v) => cur = v,
                }
            }
        }
    }

    /// A node's load vector: CPU load = CPU sub-tasks + resident questions
    /// (memory pressure counts against the CPU resource, per the paper's
    /// footnote), disk load = disk sub-tasks.
    pub fn load_of(&self, node: NodeId) -> ResourceVector {
        let row = &self.rows[node.index()];
        ResourceVector::new(
            row.cpu_tasks.load(Ordering::Acquire) as f64
                + 0.5 * row.questions.load(Ordering::Acquire) as f64,
            row.disk_tasks.load(Ordering::Acquire) as f64,
        )
    }

    /// Loads of all *live* nodes, sorted by id.
    pub fn live_loads(&self) -> Vec<(NodeId, ResourceVector)> {
        (0..self.rows.len())
            .map(|i| NodeId::new(i as u32))
            .filter(|&n| self.is_alive(n))
            .map(|n| (n, self.load_of(n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_controls_liveness() {
        let b = LoadBoard::new(2, 0.05);
        let n0 = NodeId::new(0);
        assert!(!b.is_alive(n0), "no heartbeat yet");
        b.heartbeat(n0);
        assert!(b.is_alive(n0));
        std::thread::sleep(std::time::Duration::from_millis(80));
        assert!(!b.is_alive(n0), "stale heartbeat");
        b.heartbeat(n0);
        assert!(b.is_alive(n0), "rejoined");
    }

    #[test]
    fn kill_switch_overrides_heartbeat() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.heartbeat(n0);
        b.set_alive(n0, false);
        assert!(!b.is_alive(n0));
        b.set_alive(n0, true);
        assert!(b.is_alive(n0));
    }

    #[test]
    fn counters_feed_load_vector() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.cpu_delta(n0, 2);
        b.disk_delta(n0, 1);
        b.question_delta(n0, 2);
        let v = b.load_of(n0);
        assert_eq!(v.cpu, 3.0);
        assert_eq!(v.disk, 1.0);
        b.cpu_delta(n0, -1);
        assert_eq!(b.load_of(n0).cpu, 2.0);
    }

    #[test]
    fn deltas_saturate_at_zero() {
        let b = LoadBoard::new(1, 10.0);
        let n0 = NodeId::new(0);
        b.cpu_delta(n0, -5);
        assert_eq!(b.load_of(n0).cpu, 0.0);
    }

    #[test]
    fn live_loads_filters_dead_nodes() {
        let b = LoadBoard::new(3, 10.0);
        for i in 0..3 {
            b.heartbeat(NodeId::new(i));
        }
        b.set_alive(NodeId::new(1), false);
        let live = b.live_loads();
        let ids: Vec<u32> = live.iter().map(|(n, _)| n.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
