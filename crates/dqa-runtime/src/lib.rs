#![warn(missing_docs)]
// Node actors must degrade via the failure-recovery path, never abort; the
// deny is scoped to non-test builds because unit tests legitimately unwrap.
// (Workspace [lints] tables cannot be scoped per-crate, hence the attribute;
// `cargo xtask lint` enforces the same invariant as the `runtime-panic`
// rule.)
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Thread-backed distributed Q/A runtime.
//!
//! Where `cluster-sim` reproduces the paper's *quantitative* results on
//! calibrated virtual hardware, this crate demonstrates the architecture
//! *functionally*, with real concurrency on real data: each node is a
//! worker thread holding (a reference to) its copy of the collection and
//! serving PR/PS and AP sub-tasks over crossbeam channels; a per-question
//! coordinator implements the Fig. 3 dataflow — QP, the PR dispatcher with
//! receiver-controlled sub-collection chunks, centralized paragraph
//! merging + ordering, the AP dispatcher with SEND/ISEND/RECV paragraph
//! partitioning, and centralized answer merging/sorting.
//!
//! Fidelity notes (documented deviations from the paper's deployment):
//!
//! * Nodes are threads in one process; the "network" is channels, and the
//!   paper's per-node collection copies become shared `Arc`s. Latency and
//!   bandwidth effects are therefore *not* measured here — that is
//!   `cluster-sim`'s job.
//! * Question migration is realized by where the coordinator sends
//!   sub-tasks (the paper moves a process; we move its work).
//! * Failure detection uses sub-task timeouts plus load-board liveness,
//!   the shared-memory analog of the paper's TCP errors + broadcast
//!   staleness; recovery re-queues lost chunks exactly as Figs. 5c/6b
//!   prescribe.

pub mod board;
pub mod chaos;
pub mod clock;
pub mod cluster;
pub mod failover;
pub mod integrity;
pub mod links;
pub mod message;
pub mod monitor;
pub mod node;
pub mod overload;
pub mod sync;
pub mod trace;

pub use board::{LoadBoard, QuarantinePolicy};
pub use chaos::ChaosDriver;
pub use clock::now_instant;
pub use cluster::{Cluster, ClusterConfig, DistributedAnswer};
pub use failover::{
    heartbeat_channel, Beat, CoordinatorJournal, LeaderLease, Standby, StandbyVerdict,
};
pub use integrity::{IntegrityConfig, IntegrityRuntime, IntegrityStore, RepairSource, ScrubReport};
pub use links::FaultyLink;
pub use monitor::BroadcastMonitors;
pub use overload::{Admission, AdmissionGate, GateDecision, PhaseEstimator};
pub use trace::{TraceEvent, TraceKind, TraceLog};
