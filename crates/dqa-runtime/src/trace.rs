//! Execution traces in the style of the paper's Fig. 7.
//!
//! The log is a bounded *flight recorder*: a drop-oldest ring buffer
//! ([`dqa_obs::FlightRecorder`]) so week-long soaks cannot grow it without
//! bound. Evictions are counted — and mirrored into
//! `dqa_trace_dropped_total` when a metrics counter is attached — never
//! silent. Timestamps come from a [`Clock`], so the same log type serves
//! wall time here and virtual time in the simulator's harnesses.

use dqa_obs::{
    render_waterfall, CausalSpan, CauseSet, Clock, Counter, FlightRecorder, Span, TraceRecorder,
    WallClock,
};
use qa_types::{NodeId, QaModule, QuestionId, SubCollectionId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use dqa_obs::DEFAULT_FLIGHT_RECORDER_CAPACITY;

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Question accepted by its coordinator on `home`.
    QuestionStart,
    /// Node started retrieving one sub-collection.
    PrChunkStart(SubCollectionId),
    /// Node finished one sub-collection.
    PrChunkDone(SubCollectionId),
    /// Coordinator merged all paragraphs (count attached).
    ParagraphsMerged(usize),
    /// Node started an AP batch of `usize` paragraphs.
    ApBatchStart(usize),
    /// Node finished an AP batch of `usize` paragraphs.
    ApBatchDone(usize),
    /// Coordinator produced the final answer set (count attached).
    AnswersSorted(usize),
    /// A worker was detected failed and its work re-queued.
    WorkerFailed,
    /// A straggler's chunk was speculatively re-issued to another worker.
    Speculated(u32),
    /// The coordinator gave up on `usize` chunks (deadline or retry budget
    /// exhausted) and returned a degraded, coverage-annotated answer.
    Degraded(usize),
    /// The admission gate refused the question: queue full, every node at
    /// its resident cap, or the cluster is draining.
    Rejected,
    /// A phase was shed before dispatch: the remaining deadline budget
    /// could not cover its estimated demand.
    Shed(QaModule),
    /// A send into a node's bounded ingress queue timed out; the chunk was
    /// re-queued instead of blocking the coordinator (backpressure).
    Backpressure,
    /// The coordinator skipped `usize` quarantined (corruption-detected)
    /// sub-collections; the answer closes with explicitly reduced
    /// coverage instead of reading damaged postings.
    Quarantined(usize),
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Seconds since cluster start.
    pub at: f64,
    /// Question the event belongs to.
    pub question: QuestionId,
    /// Node involved.
    pub node: NodeId,
    /// The event.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Render in the style of the Fig. 7 listings
    /// (`N2 finished collection C3 in 0.42 secs`-ish).
    pub fn render(&self) -> String {
        let w = match &self.kind {
            TraceKind::QuestionStart => "started question".to_string(),
            TraceKind::PrChunkStart(c) => format!("started collection {c}"),
            TraceKind::PrChunkDone(c) => format!("finished collection {c}"),
            TraceKind::ParagraphsMerged(n) => format!("merged {n} paragraphs"),
            TraceKind::ApBatchStart(n) => format!("started {n} paragraphs"),
            TraceKind::ApBatchDone(n) => format!("finished {n} paragraphs"),
            TraceKind::AnswersSorted(n) => format!("sorted {n} answers"),
            TraceKind::WorkerFailed => "failed; work re-queued".to_string(),
            TraceKind::Speculated(c) => format!("speculated chunk {c}"),
            TraceKind::Degraded(n) => format!("degraded; {n} chunks abandoned"),
            TraceKind::Rejected => "rejected at admission".to_string(),
            TraceKind::Shed(m) => format!("shed {m}; deadline budget too small"),
            TraceKind::Backpressure => "ingress queue full; chunk re-queued".to_string(),
            TraceKind::Quarantined(n) => {
                format!("skipped {n} quarantined collections; coverage reduced")
            }
        };
        format!("[{:>8.3}s] {} {} {}", self.at, self.question, self.node, w)
    }
}

/// Shared bounded trace log (drop-oldest flight recorder).
#[derive(Clone)]
pub struct TraceLog {
    clock: Arc<dyn Clock>,
    events: Arc<FlightRecorder<TraceEvent>>,
    dropped: Counter,
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("len", &self.events.len())
            .field("capacity", &self.events.capacity())
            .field("dropped", &self.events.dropped())
            .finish()
    }
}

impl TraceLog {
    /// A fresh wall-clock log with the default flight-recorder capacity;
    /// timestamps are relative to now.
    pub fn new() -> TraceLog {
        TraceLog::with(
            Arc::new(WallClock::new()),
            DEFAULT_FLIGHT_RECORDER_CAPACITY,
            Counter::default(),
        )
    }

    /// A log over an explicit clock, ring capacity and eviction counter
    /// (pass a `dqa_trace_dropped_total` handle to surface loss in the
    /// metrics snapshot; `Counter::default()` detaches it).
    pub fn with(clock: Arc<dyn Clock>, capacity: usize, dropped: Counter) -> TraceLog {
        TraceLog {
            clock,
            events: Arc::new(FlightRecorder::new(capacity)),
            dropped,
        }
    }

    /// Record an event, evicting the oldest if the ring is full.
    pub fn record(&self, question: QuestionId, node: NodeId, kind: TraceKind) {
        let at = self.clock.now();
        let evicted = self.events.push(TraceEvent {
            at,
            question,
            node,
            kind,
        });
        if evicted {
            self.dropped.inc();
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.snapshot()
    }

    /// Retained events for one question.
    pub fn for_question(&self, q: QuestionId) -> Vec<TraceEvent> {
        self.events.filtered(|e| e.question == q)
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Render the retained trace as Fig. 7-style lines.
    pub fn render(&self) -> Vec<String> {
        self.events
            .snapshot()
            .iter()
            .map(TraceEvent::render)
            .collect()
    }

    /// Reconstruct the per-question timeline from the retained events.
    pub fn timeline(&self, q: QuestionId) -> QuestionTimeline {
        let events = self.for_question(q);
        let phases = phase_spans(&events);
        QuestionTimeline {
            question: q,
            events,
            phases,
        }
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

/// A reconstructed per-question view: the Fig. 7 listing plus the derived
/// QP → PR → PO → AP → SORT phase spans.
#[derive(Debug, Clone)]
pub struct QuestionTimeline {
    /// The question.
    pub question: QuestionId,
    /// Its retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Derived phase spans (only phases both of whose endpoints survive
    /// in the ring appear).
    pub phases: Vec<Span>,
}

impl QuestionTimeline {
    /// Fig. 7-style listing, one rendered line per event.
    pub fn listing(&self) -> Vec<String> {
        self.events.iter().map(TraceEvent::render).collect()
    }

    /// ASCII per-phase waterfall, `width` columns wide.
    pub fn waterfall(&self, width: usize) -> Vec<String> {
        render_waterfall(&self.phases, width)
    }
}

/// Derive phase spans from one question's events. Chunked phases (PR, AP)
/// span first-start to last-done; the centralized steps (PO merge, final
/// sort) span from the previous phase's end to their completion event.
fn phase_spans(events: &[TraceEvent]) -> Vec<Span> {
    let at_of = |pred: &dyn Fn(&TraceKind) -> bool| -> Option<f64> {
        events.iter().find(|e| pred(&e.kind)).map(|e| e.at)
    };
    let last_of = |pred: &dyn Fn(&TraceKind) -> bool| -> Option<f64> {
        events.iter().rev().find(|e| pred(&e.kind)).map(|e| e.at)
    };

    let start = at_of(&|k| matches!(k, TraceKind::QuestionStart));
    let pr_start = at_of(&|k| matches!(k, TraceKind::PrChunkStart(_)));
    let pr_end = last_of(&|k| matches!(k, TraceKind::PrChunkDone(_)));
    let po_at = at_of(&|k| matches!(k, TraceKind::ParagraphsMerged(_)));
    let ap_start = at_of(&|k| matches!(k, TraceKind::ApBatchStart(_)));
    let ap_end = last_of(&|k| matches!(k, TraceKind::ApBatchDone(_)));
    let sorted_at = last_of(&|k| matches!(k, TraceKind::AnswersSorted(_)));

    let mut spans = Vec::new();
    // QP runs on the coordinator between acceptance and the first PR
    // dispatch; without PR (fully shed) it ends where merging happened.
    if let (Some(s), Some(e)) = (start, pr_start.or(po_at)) {
        spans.push(Span::new("QP", s, e));
    }
    if let (Some(s), Some(e)) = (pr_start, pr_end) {
        spans.push(Span::new("PR", s, e));
    }
    if let (Some(e), Some(s)) = (po_at, pr_end.or(start)) {
        spans.push(Span::new("PO", s, e));
    }
    if let (Some(s), Some(e)) = (ap_start, ap_end) {
        spans.push(Span::new("AP", s, e));
    }
    if let (Some(e), Some(s)) = (sorted_at, ap_end.or(po_at).or(start)) {
        spans.push(Span::new("SORT", s, e));
    }
    spans
}

/// Seal a finished question's causal-span tree into `rec` from its
/// flight-recorded events plus the admission timestamps (all on the same
/// [`Clock`] timeline as the events). Returns the trace id.
///
/// The tree is: a `question` root spanning enqueue → finish whose
/// `queue_wait` is the admission-gate wait, with the derived
/// QP/PR/PO/AP/SORT phases as children, per-sub-collection `chunk` spans
/// under PR and per-node `ap-batch` spans under AP. Cause tags fold in
/// the question's fault history (speculation, worker retries,
/// degradation) plus whatever `extra` the caller knows (e.g.
/// [`CauseSet::RESUMED`] for journal-resumed questions).
pub fn seal_question_spans(
    rec: &TraceRecorder,
    question: QuestionId,
    events: &[TraceEvent],
    enqueued_at: f64,
    admitted_at: f64,
    finished_at: f64,
    extra: CauseSet,
) -> u64 {
    let trace = rec.trace_id(u64::from(question.raw()));
    let home = events
        .iter()
        .find(|e| matches!(e.kind, TraceKind::QuestionStart))
        .map(|e| e.node.raw());
    let mut causes = extra;
    for e in events {
        causes = match e.kind {
            TraceKind::Degraded(_) | TraceKind::Shed(_) => causes.with(CauseSet::DEGRADED),
            TraceKind::Speculated(_) => causes.with(CauseSet::SPECULATED),
            TraceKind::WorkerFailed | TraceKind::Backpressure => causes.with(CauseSet::RETRIED),
            TraceKind::Quarantined(_) => {
                causes.with(CauseSet::DEGRADED.with(CauseSet::QUARANTINED))
            }
            _ => causes,
        };
    }
    let lo = enqueued_at.min(admitted_at);
    let hi = finished_at.max(admitted_at).max(lo);
    let clamp = |t: f64| t.clamp(lo, hi);
    let root = rec.emit(CausalSpan::new(
        trace,
        None,
        "question",
        home,
        lo,
        hi,
        (admitted_at - enqueued_at).max(0.0),
        causes,
    ));
    for phase in phase_spans(events) {
        let (ps, pe) = (clamp(phase.start), clamp(phase.end));
        let pid = rec.emit(CausalSpan::new(
            trace,
            Some(root),
            &phase.label,
            home,
            ps,
            pe,
            0.0,
            CauseSet::none(),
        ));
        match phase.label.as_str() {
            "PR" => emit_pr_chunks(rec, trace, pid, events, ps, pe),
            "AP" => emit_ap_batches(rec, trace, pid, events, ps, pe),
            _ => {}
        }
    }
    trace
}

/// Per-sub-collection chunk spans under the PR phase: first start to
/// last done; more than one start means the chunk was re-issued
/// (speculation or worker-failure retry).
fn emit_pr_chunks(
    rec: &TraceRecorder,
    trace: u64,
    parent: u64,
    events: &[TraceEvent],
    lo: f64,
    hi: f64,
) {
    let mut chunks: std::collections::BTreeMap<u32, (Vec<f64>, Option<f64>, NodeId)> =
        std::collections::BTreeMap::new();
    for e in events {
        match e.kind {
            TraceKind::PrChunkStart(c) => {
                chunks
                    .entry(c.raw())
                    .or_insert_with(|| (Vec::new(), None, e.node))
                    .0
                    .push(e.at);
            }
            TraceKind::PrChunkDone(c) => {
                let entry = chunks
                    .entry(c.raw())
                    .or_insert_with(|| (Vec::new(), None, e.node));
                entry.1 = Some(e.at);
                entry.2 = e.node;
            }
            _ => {}
        }
    }
    for (starts, done, node) in chunks.into_values() {
        let (Some(first), Some(done)) = (starts.first().copied(), done) else {
            continue; // endpoint evicted from the ring or chunk abandoned
        };
        let causes = if starts.len() > 1 {
            CauseSet::RETRIED
        } else {
            CauseSet::none()
        };
        rec.emit(CausalSpan::new(
            trace,
            Some(parent),
            "chunk",
            Some(node.raw()),
            first.clamp(lo, hi),
            done.clamp(lo, hi),
            0.0,
            causes,
        ));
    }
}

/// Per-node AP batch spans under the AP phase: the i-th start on a node
/// pairs with the i-th done on that node.
fn emit_ap_batches(
    rec: &TraceRecorder,
    trace: u64,
    parent: u64,
    events: &[TraceEvent],
    lo: f64,
    hi: f64,
) {
    let mut per_node: std::collections::BTreeMap<u32, (Vec<f64>, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for e in events {
        match e.kind {
            TraceKind::ApBatchStart(_) => per_node.entry(e.node.raw()).or_default().0.push(e.at),
            TraceKind::ApBatchDone(_) => per_node.entry(e.node.raw()).or_default().1.push(e.at),
            _ => {}
        }
    }
    for (node, (starts, dones)) in per_node {
        for (s, d) in starts.iter().zip(dones.iter()) {
            rec.emit(CausalSpan::new(
                trace,
                Some(parent),
                "ap-batch",
                Some(node),
                s.clamp(lo, hi),
                d.max(*s).clamp(lo, hi),
                0.0,
                CauseSet::none(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqa_obs::ManualClock;

    #[test]
    fn records_and_filters() {
        let log = TraceLog::new();
        let q1 = QuestionId::new(1);
        let q2 = QuestionId::new(2);
        log.record(q1, NodeId::new(0), TraceKind::QuestionStart);
        log.record(q2, NodeId::new(1), TraceKind::QuestionStart);
        log.record(
            q1,
            NodeId::new(2),
            TraceKind::PrChunkStart(SubCollectionId::new(3)),
        );
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.for_question(q1).len(), 2);
        assert_eq!(log.for_question(q2).len(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let log = TraceLog::new();
        for i in 0..5 {
            log.record(QuestionId::new(i), NodeId::new(0), TraceKind::QuestionStart);
        }
        let ev = log.events();
        for w in ev.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn render_mentions_node_and_collection() {
        let log = TraceLog::new();
        log.record(
            QuestionId::new(226),
            NodeId::new(2),
            TraceKind::PrChunkDone(SubCollectionId::new(5)),
        );
        let lines = log.render();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("Q226"));
        assert!(lines[0].contains("N2"));
        assert!(lines[0].contains("finished collection C5"));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let counter = Counter::live();
        let log = TraceLog::with(Arc::new(WallClock::new()), 4, counter.clone());
        for i in 0..10 {
            log.record(QuestionId::new(i), NodeId::new(0), TraceKind::QuestionStart);
        }
        let ev = log.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(log.dropped(), 6);
        assert_eq!(counter.get(), 6, "evictions mirrored into the counter");
        assert_eq!(log.capacity(), 4);
        // Oldest were evicted: the survivors are the last four questions.
        assert_eq!(ev[0].question, QuestionId::new(6));
    }

    #[test]
    fn timeline_reconstructs_phase_spans_in_virtual_time() {
        let clock = Arc::new(ManualClock::new());
        let log = TraceLog::with(clock.clone(), 1024, Counter::default());
        let q = QuestionId::new(7);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let step = |t: f64, node, kind| {
            clock.set(t);
            log.record(q, node, kind);
        };
        step(0.0, n0, TraceKind::QuestionStart);
        step(0.5, n0, TraceKind::PrChunkStart(SubCollectionId::new(0)));
        step(0.6, n1, TraceKind::PrChunkStart(SubCollectionId::new(1)));
        step(2.0, n1, TraceKind::PrChunkDone(SubCollectionId::new(1)));
        step(2.5, n0, TraceKind::PrChunkDone(SubCollectionId::new(0)));
        step(2.7, n0, TraceKind::ParagraphsMerged(40));
        step(2.8, n1, TraceKind::ApBatchStart(20));
        step(4.0, n1, TraceKind::ApBatchDone(20));
        step(4.2, n0, TraceKind::AnswersSorted(5));

        let tl = log.timeline(q);
        let labels: Vec<&str> = tl.phases.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["QP", "PR", "PO", "AP", "SORT"]);
        let pr = &tl.phases[1];
        assert_eq!((pr.start, pr.end), (0.5, 2.5));
        let po = &tl.phases[2];
        assert_eq!((po.start, po.end), (2.5, 2.7));
        assert_eq!(tl.listing().len(), 9);
        let lines = tl.waterfall(40);
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().any(|l| l.contains("PR")));
    }

    #[test]
    fn timeline_without_ap_still_yields_early_phases() {
        let clock = Arc::new(ManualClock::new());
        let log = TraceLog::with(clock.clone(), 64, Counter::default());
        let q = QuestionId::new(1);
        let n = NodeId::new(0);
        clock.set(0.0);
        log.record(q, n, TraceKind::QuestionStart);
        clock.set(1.0);
        log.record(q, n, TraceKind::ParagraphsMerged(0));
        clock.set(1.1);
        log.record(q, n, TraceKind::AnswersSorted(0));
        let tl = log.timeline(q);
        let labels: Vec<&str> = tl.phases.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["QP", "PO", "SORT"]);
    }

    #[test]
    fn sealed_spans_are_well_nested_and_attribute_fully() {
        let clock = Arc::new(ManualClock::new());
        let log = TraceLog::with(clock.clone(), 1024, Counter::default());
        let rec = TraceRecorder::new(clock.clone(), 42, 1024, Counter::live());
        let q = QuestionId::new(7);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let step = |t: f64, node, kind| {
            clock.set(t);
            log.record(q, node, kind);
        };
        step(0.3, n0, TraceKind::QuestionStart);
        step(0.5, n0, TraceKind::PrChunkStart(SubCollectionId::new(0)));
        step(0.6, n1, TraceKind::PrChunkStart(SubCollectionId::new(1)));
        step(1.0, n1, TraceKind::Speculated(0));
        step(1.2, n1, TraceKind::PrChunkStart(SubCollectionId::new(0)));
        step(2.0, n1, TraceKind::PrChunkDone(SubCollectionId::new(1)));
        step(2.5, n1, TraceKind::PrChunkDone(SubCollectionId::new(0)));
        step(2.7, n0, TraceKind::ParagraphsMerged(40));
        step(2.8, n1, TraceKind::ApBatchStart(20));
        step(4.0, n1, TraceKind::ApBatchDone(20));
        step(4.2, n0, TraceKind::AnswersSorted(5));

        let trace = seal_question_spans(
            &rec,
            q,
            &log.for_question(q),
            0.0,
            0.2,
            4.3,
            CauseSet::none(),
        );
        let spans = rec.for_trace(trace);
        dqa_obs::validate_nesting(&spans).expect("sealed tree is well-nested");
        let root = spans
            .iter()
            .find(|s| s.parent.is_none())
            .expect("root span");
        assert_eq!(root.name, "question");
        assert_eq!((root.start, root.end), (0.0, 4.3));
        assert!((root.queue_wait - 0.2).abs() < 1e-12, "admission wait");
        assert!(root.causes.contains(CauseSet::SPECULATED));
        let chunk_retried = spans
            .iter()
            .any(|s| s.name == "chunk" && s.causes.contains(CauseSet::RETRIED));
        assert!(chunk_retried, "re-issued chunk tagged");
        assert!(spans.iter().any(|s| s.name == "ap-batch"));
        let path = dqa_obs::critical_path(&spans).expect("path");
        let residual = (path.attributed() - path.total()).abs();
        assert!(
            residual < 1e-9,
            "components partition e2e, off by {residual}"
        );
        // Double seal from identical inputs yields identical spans.
        let rec2 = TraceRecorder::new(clock.clone(), 42, 1024, Counter::live());
        seal_question_spans(
            &rec2,
            q,
            &log.for_question(q),
            0.0,
            0.2,
            4.3,
            CauseSet::none(),
        );
        assert_eq!(rec2.spans(), spans, "deterministic identity + layout");
    }
}
