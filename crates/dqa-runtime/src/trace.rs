//! Execution traces in the style of the paper's Fig. 7.

use parking_lot::Mutex;
use qa_types::{NodeId, QaModule, QuestionId, SubCollectionId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Question accepted by its coordinator on `home`.
    QuestionStart,
    /// Node started retrieving one sub-collection.
    PrChunkStart(SubCollectionId),
    /// Node finished one sub-collection.
    PrChunkDone(SubCollectionId),
    /// Coordinator merged all paragraphs (count attached).
    ParagraphsMerged(usize),
    /// Node started an AP batch of `usize` paragraphs.
    ApBatchStart(usize),
    /// Node finished an AP batch of `usize` paragraphs.
    ApBatchDone(usize),
    /// Coordinator produced the final answer set (count attached).
    AnswersSorted(usize),
    /// A worker was detected failed and its work re-queued.
    WorkerFailed,
    /// A straggler's chunk was speculatively re-issued to another worker.
    Speculated(u32),
    /// The coordinator gave up on `usize` chunks (deadline or retry budget
    /// exhausted) and returned a degraded, coverage-annotated answer.
    Degraded(usize),
    /// The admission gate refused the question: queue full, every node at
    /// its resident cap, or the cluster is draining.
    Rejected,
    /// A phase was shed before dispatch: the remaining deadline budget
    /// could not cover its estimated demand.
    Shed(QaModule),
    /// A send into a node's bounded ingress queue timed out; the chunk was
    /// re-queued instead of blocking the coordinator (backpressure).
    Backpressure,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Seconds since cluster start.
    pub at: f64,
    /// Question the event belongs to.
    pub question: QuestionId,
    /// Node involved.
    pub node: NodeId,
    /// The event.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Render in the style of the Fig. 7 listings
    /// (`N2 finished collection C3 in 0.42 secs`-ish).
    pub fn render(&self) -> String {
        let w = match &self.kind {
            TraceKind::QuestionStart => "started question".to_string(),
            TraceKind::PrChunkStart(c) => format!("started collection {c}"),
            TraceKind::PrChunkDone(c) => format!("finished collection {c}"),
            TraceKind::ParagraphsMerged(n) => format!("merged {n} paragraphs"),
            TraceKind::ApBatchStart(n) => format!("started {n} paragraphs"),
            TraceKind::ApBatchDone(n) => format!("finished {n} paragraphs"),
            TraceKind::AnswersSorted(n) => format!("sorted {n} answers"),
            TraceKind::WorkerFailed => "failed; work re-queued".to_string(),
            TraceKind::Speculated(c) => format!("speculated chunk {c}"),
            TraceKind::Degraded(n) => format!("degraded; {n} chunks abandoned"),
            TraceKind::Rejected => "rejected at admission".to_string(),
            TraceKind::Shed(m) => format!("shed {m}; deadline budget too small"),
            TraceKind::Backpressure => "ingress queue full; chunk re-queued".to_string(),
        };
        format!("[{:>8.3}s] {} {} {}", self.at, self.question, self.node, w)
    }
}

/// Shared, append-only trace log.
#[derive(Debug, Clone)]
pub struct TraceLog {
    start: Instant,
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// A fresh log; timestamps are relative to now.
    pub fn new() -> TraceLog {
        TraceLog {
            start: Instant::now(),
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Record an event.
    pub fn record(&self, question: QuestionId, node: NodeId, kind: TraceKind) {
        let at = self.start.elapsed().as_secs_f64();
        self.events.lock().push(TraceEvent {
            at,
            question,
            node,
            kind,
        });
    }

    /// Snapshot of all events so far, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Events for one question.
    pub fn for_question(&self, q: QuestionId) -> Vec<TraceEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.question == q)
            .cloned()
            .collect()
    }

    /// Render the whole trace as Fig. 7-style lines.
    pub fn render(&self) -> Vec<String> {
        self.events.lock().iter().map(TraceEvent::render).collect()
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let log = TraceLog::new();
        let q1 = QuestionId::new(1);
        let q2 = QuestionId::new(2);
        log.record(q1, NodeId::new(0), TraceKind::QuestionStart);
        log.record(q2, NodeId::new(1), TraceKind::QuestionStart);
        log.record(
            q1,
            NodeId::new(2),
            TraceKind::PrChunkStart(SubCollectionId::new(3)),
        );
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.for_question(q1).len(), 2);
        assert_eq!(log.for_question(q2).len(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let log = TraceLog::new();
        for i in 0..5 {
            log.record(QuestionId::new(i), NodeId::new(0), TraceKind::QuestionStart);
        }
        let ev = log.events();
        for w in ev.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn render_mentions_node_and_collection() {
        let log = TraceLog::new();
        log.record(
            QuestionId::new(226),
            NodeId::new(2),
            TraceKind::PrChunkDone(SubCollectionId::new(5)),
        );
        let lines = log.render();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("Q226"));
        assert!(lines[0].contains("N2"));
        assert!(lines[0].contains("finished collection C5"));
    }
}
