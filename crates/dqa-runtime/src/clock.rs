//! The runtime's single sanctioned wall-clock source.
//!
//! All other modules in this crate obtain `Instant`s via [`now_instant`]
//! (the `raw-instant` dqa-lint rule denies `Instant::now()` anywhere else
//! in non-test runtime code) and record durations through the shared
//! [`dqa_obs::Clock`] seam. Funnelling construction through one site keeps
//! the wall-time/virtual-time boundary auditable: the simulator backend
//! must never read wall time, and the runtime backend reads it *here*.

use std::time::Instant;

pub use dqa_obs::{Clock, WallClock};

/// The one place in `dqa-runtime` allowed to read the wall clock.
///
/// Holding, comparing and adding to `Instant` values remains legal
/// everywhere; only *construction* is funnelled through this function.
pub fn now_instant() -> Instant {
    // dqa-lint: allow(raw-instant)
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_instant_is_monotone() {
        let a = now_instant();
        let b = now_instant();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_reexport_ticks() {
        let c = WallClock::new();
        assert!(c.now() >= 0.0);
    }
}
